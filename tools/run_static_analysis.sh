#!/usr/bin/env bash
# Self-analysis harness for LexForensica.
#
# Stages (each gates the exit code):
#   1. warnings-as-errors build        (-DLEXFOR_WERROR=ON)
#   2. ASan+UBSan build + full ctest   (-DLEXFOR_SANITIZE=address;undefined;
#                                       includes the serve wire-format fuzz
#                                       suite, so every mutation path runs
#                                       memory-checked)
#   3. TSan concurrency stress         (-DLEXFOR_SANITIZE=thread; the obs
#                                       layer's multi-threaded counter and
#                                       histogram stress tests, the util
#                                       thread pool and sharded LRU cache,
#                                       the legal batch evaluator, the
#                                       watermark scan batch, the tornet
#                                       detection fan-out, and the serve
#                                       verdict-server worker fan-out)
#   4. lint regression                 (the lint_examples suite: the shipped
#                                       example plans must lint as documented)
#   5. clang-tidy over src/ bench/     (skipped with a notice when clang-tidy
#      examples/                        is not installed; everything else
#                                       still gates)
#   6. differential doctrine sweep     (src/check under ASan: engine vs
#                                       linter vs suppression cross-check
#                                       plus the metamorphic invariant
#                                       rules; LEXFOR_CHECK_TRIALS scales
#                                       the sweep, default 50000)
#
# Usage: tools/run_static_analysis.sh [--skip-tidy] [--jobs N]
# Exits non-zero if any stage fails.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TIDY=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-tidy) SKIP_TIDY=1 ;;
    --jobs) JOBS="${2:?--jobs requires a value}"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

cd "${REPO_ROOT}"

FAILURES=0
declare -a SUMMARY=()

note()  { printf '\n==> %s\n' "$*"; }
stage() {
  # stage <label> <command...>; records pass/fail, keeps going.
  local label="$1"; shift
  note "${label}"
  if "$@"; then
    SUMMARY+=("PASS  ${label}")
  else
    SUMMARY+=("FAIL  ${label}")
    FAILURES=$((FAILURES + 1))
  fi
}

# ---------------------------------------------------------------- 1. -Werror
werror_build() {
  cmake -B build-werror -S . -DLEXFOR_WERROR=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
  cmake --build build-werror -j "${JOBS}"
}
stage "warnings-as-errors build (LEXFOR_WERROR=ON)" werror_build

# ------------------------------------------------------- 2. sanitizer ctest
sanitizer_build() {
  cmake -B build-asan -S . "-DLEXFOR_SANITIZE=address;undefined" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
  cmake --build build-asan -j "${JOBS}"
}
sanitizer_ctest() {
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
}
stage "ASan+UBSan build" sanitizer_build
stage "full ctest under ASan+UBSan" sanitizer_ctest

# ----------------------------------------------- 3. TSan concurrency stress
# ThreadSanitizer checks the concurrent parts of the tree: the obs
# metrics registry's wait-free update promise (src/obs/metrics.h), the
# util thread pool and sharded LRU verdict cache, the legal batch
# evaluator that fans compliance queries across workers, the watermark
# scan batch (parallel multi-flow despread), and the tornet traceback
# detection fan-out built on it.  The rest of the code is
# single-threaded DES and already covered above.
tsan_build() {
  cmake -B build-tsan -S . "-DLEXFOR_SANITIZE=thread" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
  cmake --build build-tsan -j "${JOBS}" \
        --target obs_test util_test legal_test watermark_test tornet_test \
                 stream_test netsim_test serve_test
}
tsan_stress() {
  # Covers the v2 sharded ring (8-thread merge stress), the call-site
  # profiler's concurrent record path, and snapshot capture racing
  # live instrument updates, alongside the v1 counter/histogram stress.
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/obs_test \
      --gtest_filter='ObsMetricsThreadTest.*:ObsTracerTest.*:ObsRingTest.*:ObsShardedRingTest.*:ObsProfileTest.*:ObsSnapshotTest.*'
}
tsan_pool_cache() {
  # ArenaTest/SmallFnTest/PoolTest cover the ISSUE-8 allocation
  # substrate: single-threaded by contract, but instrumented runs also
  # catch lifetime bugs (use-after-reset, double-destroy in SmallFn).
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/util_test \
      --gtest_filter='ThreadPoolTest.*:LruCacheTest.*:ArenaTest.*:PoolTest.*:SmallFnTest.*'
}
tsan_calendar_queue() {
  # The calendar queue + packet store under instrumentation, including
  # the oracle property suite (randomized schedules, resize crossings).
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/netsim_test \
      --gtest_filter='EventQueueTest.*:EventQueueOracleTest.*:PacketStoreTest.*'
}
tsan_batch() {
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/legal_test \
      --gtest_filter='BatchEvaluatorTest.*'
}
tsan_scan_batch() {
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/watermark_test \
      --gtest_filter='ScanBatchTest.*'
}
tsan_stream() {
  # The streaming tap drives netsim + legal admission (shared verdict
  # cache) + online despread in one binary; run the whole suite.
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/stream_test
}
tsan_traceback_fanout() {
  # Thread-fanned detection plus the single-pass TapRegistry path
  # (which spans netsim, legal admission and the despread fan-out in
  # one run) across every detect thread count.
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/tornet_test \
      --gtest_filter='TracebackTest.DetectThreadCountDoesNotChangeResults:TracebackTest.SinglePassMatchesPerSuspectResimulation:MultiflowTest.DetectThreadCountDoesNotChangeResults'
}
tsan_serve() {
  # The verdict server's fan-out path: worker evaluation into disjoint
  # Pending slots through the shared verdict cache, plus the fleet's
  # order-independent wave generation.  Runs the multi-worker server
  # tests and the fleet suite (the wire codec is single-threaded and
  # covered under ASan by serve_fuzz).
  TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/serve_test \
      --gtest_filter='VerdictServerTest.*:SyntheticFleetTest.*'
}
stage "TSan build (obs_test util_test legal_test watermark_test tornet_test stream_test netsim_test serve_test)" tsan_build
stage "obs thread-stress under TSan" tsan_stress
stage "thread pool + sharded LRU cache under TSan" tsan_pool_cache
stage "calendar queue + packet store under TSan" tsan_calendar_queue
stage "batch evaluator under TSan" tsan_batch
stage "watermark scan batch under TSan" tsan_scan_batch
stage "streaming tap suite under TSan" tsan_stream
stage "tornet detection fan-out under TSan" tsan_traceback_fanout
stage "verdict server + fleet under TSan" tsan_serve

# ------------------------------------------------------ 4. lint regression
lint_regression() {
  ctest --test-dir build-asan --output-on-failure -R '^LintExamplesTest'
}
stage "lint regression (lint_examples over shipped plans)" lint_regression

# ----------------------------------------------------------- 5. clang-tidy
if [[ "${SKIP_TIDY}" -eq 1 ]]; then
  SUMMARY+=("SKIP  clang-tidy (--skip-tidy)")
elif ! command -v clang-tidy >/dev/null 2>&1; then
  # Missing toolchain is a skip, not a failure: sanitizer + -Werror +
  # lint regression above still gate.
  SUMMARY+=("SKIP  clang-tidy (not installed)")
  note "clang-tidy not found on PATH; skipping tidy stage"
else
  tidy_src() {
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || return 1
    local files
    files="$(find src bench examples -name '*.cpp' | sort)"
    local rc=0
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p build-tidy -j "${JOBS}" ${files} || rc=1
    else
      # shellcheck disable=SC2086
      clang-tidy -quiet -p build-tidy ${files} || rc=1
    fi
    return "${rc}"
  }
  stage "clang-tidy over src/ bench/ examples/" tidy_src
fi

# --------------------------------------- 6. differential doctrine sweep
# The N-version consistency harness (src/check) at a larger trial count
# than the tier-1 default, reusing the ASan build so a disagreement also
# surfaces any memory error on the failure path.  Each trial walks
# several mutated scenarios, so 50000 trials cross-checks ~200k
# scenarios across engine, linter, and suppression auditor.
check_sweep() {
  LEXFOR_CHECK_TRIALS="${LEXFOR_CHECK_TRIALS:-50000}" \
  ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -R '^CheckFuzzTest'
}
stage "differential doctrine sweep (check_fuzz under ASan)" check_sweep

# ------------------------------------------------------------------ report
note "static analysis summary"
printf '  %s\n' "${SUMMARY[@]}"

if [[ "${FAILURES}" -gt 0 ]]; then
  echo
  echo "static analysis FAILED (${FAILURES} stage(s))" >&2
  exit 1
fi
echo
echo "static analysis clean"
