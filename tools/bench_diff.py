#!/usr/bin/env python3
"""Compare two BENCH_<date>.json files and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CURRENT.json [options]

Options:
    --threshold PCT      regression threshold per benchmark, percent
                         (default: 25 — generous because the CI
                         container is single-core and noisy)
    --require-obs-metrics  fail unless CURRENT embeds the obs snapshot
                         written by bench_obs (doc["obs_metrics"])
    --list               print every compared benchmark, not just
                         regressions/improvements

Reads the aggregate layout produced by tools/run_benchmarks.sh:
doc["microbenchmarks"][binary]["benchmarks"] is the google-benchmark
JSON for that binary.  Times are normalized to nanoseconds before
comparison (binaries may report in different time_units).  A benchmark
present on only one side is reported but never fails the diff — the
bench suite grows PR over PR.

Experiment benches under doc["experiments"] are captured as text, but
self-gating series embed machine-readable lines of the form

    A-<SERIES>-METRIC <name> <value>

(e.g. bench_watermark's A-SIMD scalar/simd ns-per-offset pair,
bench_stream's single-pass vs per-suspect wall times, or bench_serve's
A-SERVE verdicts/s, p99 and allocs-per-batch).  Those are parsed into
cases too — values carry whatever unit the bench printed, which is
fine because the diff is relative.

Exit status: 0 when no benchmark regressed past the threshold (and, if
requested, obs metrics are present), 1 otherwise, 2 on usage errors —
including a missing or unparseable BASELINE/CURRENT file, reported as
a one-line message rather than a traceback.  A benchmark present in
CURRENT with no baseline entry (new bench, or a stale baseline) never
fails: it is listed and skipped, so growing the suite can't break CI.
"""

import argparse
import json
import re
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
_METRIC_LINE = re.compile(r"^A-[A-Z0-9]+-METRIC\s+(\S+)\s+(\S+)\s*$")


def usage_fail(msg):
    """Exit 2 with a clear one-line diagnosis (never a traceback)."""
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def load_cases(path, role):
    """Map '<binary>/<benchmark name>' -> real_time in ns."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        hint = (" (no baseline captured yet? run tools/run_benchmarks.sh "
                "on the base revision first, or skip the diff)"
                if role == "baseline" else "")
        usage_fail(f"{role} file {path} does not exist{hint}")
    except (OSError, json.JSONDecodeError) as e:
        usage_fail(f"cannot read {role} file {path}: {e}")
    if not isinstance(doc, dict):
        usage_fail(f"{role} file {path} is not a run_benchmarks.sh "
                   f"aggregate (top-level JSON object expected, got "
                   f"{type(doc).__name__})")
    cases = {}
    micro = doc.get("microbenchmarks", {})
    if not isinstance(micro, dict):
        usage_fail(f"{role} file {path}: 'microbenchmarks' is not an object")
    for binary, gbench in micro.items():
        if not isinstance(gbench, dict):
            continue
        for bench in gbench.get("benchmarks", []):
            if not isinstance(bench, dict):
                continue
            # Skip aggregate rows (mean/median/stddev of repetitions):
            # only raw iterations are comparable run to run.
            if bench.get("run_type") == "aggregate":
                continue
            scale = _TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
            if scale is None or not isinstance(
                    bench.get("real_time"), (int, float)):
                continue
            cases[f"{binary}/{bench['name']}"] = bench["real_time"] * scale
    experiments = doc.get("experiments", {})
    if not isinstance(experiments, dict):
        usage_fail(f"{role} file {path}: 'experiments' is not an object")
    for binary, text in experiments.items():
        if not isinstance(text, str):
            continue
        for line in text.splitlines():
            m = _METRIC_LINE.match(line)
            if not m:
                continue
            try:
                cases[f"{binary}/{m.group(1)}"] = float(m.group(2))
            except ValueError:
                continue
    return doc, cases


def main():
    parser = argparse.ArgumentParser(
        description="diff two run_benchmarks.sh aggregates")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression threshold in percent")
    parser.add_argument("--require-obs-metrics", action="store_true",
                        help="fail unless CURRENT embeds obs_metrics")
    parser.add_argument("--list", action="store_true",
                        help="print every compared benchmark")
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    base_doc, base = load_cases(args.baseline, "baseline")
    cur_doc, cur = load_cases(args.current, "current")

    failed = False
    if args.require_obs_metrics:
        snap = cur_doc.get("obs_metrics")
        if not isinstance(snap, dict) or "counters" not in snap:
            print(f"FAIL {args.current} has no embedded obs_metrics "
                  "snapshot (did bench_obs run with "
                  "LEXFOR_OBS_SNAPSHOT_OUT set?)")
            failed = True
        else:
            print(f"obs_metrics OK: {len(snap.get('counters', {}))} "
                  f"counters, {len(snap.get('profile', {}))} profile "
                  f"sites, {len(snap.get('ring', []))} ring shards")

    regressions, improvements, compared = [], [], 0
    for name in sorted(base.keys() & cur.keys()):
        compared += 1
        before, after = base[name], cur[name]
        delta_pct = ((after - before) / before * 100.0) if before > 0 else 0.0
        row = (name, before, after, delta_pct)
        if args.list:
            print(f"  {name}: {before:.1f}ns -> {after:.1f}ns "
                  f"({delta_pct:+.1f}%)")
        if delta_pct > args.threshold:
            regressions.append(row)
        elif delta_pct < -args.threshold:
            improvements.append(row)

    # One-sided benchmarks are informational only: a bench added this PR
    # has no baseline entry yet, and a retired bench lingers in old
    # baselines.  Neither is a regression.
    for name in sorted(base.keys() - cur.keys()):
        print(f"  only in baseline (retired or not run): {name}")
    for name in sorted(cur.keys() - base.keys()):
        print(f"  only in current (new bench, no baseline yet): {name}")

    for name, before, after, delta in improvements:
        print(f"IMPROVED {name}: {before:.1f}ns -> {after:.1f}ns "
              f"({delta:+.1f}%)")
    for name, before, after, delta in regressions:
        print(f"REGRESSED {name}: {before:.1f}ns -> {after:.1f}ns "
              f"({delta:+.1f}%, threshold {args.threshold:.0f}%)")

    print(f"bench_diff: {compared} benchmarks compared, "
          f"{len(regressions)} regressed, {len(improvements)} improved "
          f"(threshold {args.threshold:.0f}%)")
    if regressions:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
