#!/usr/bin/env bash
# Benchmark harness for LexForensica.
#
# Builds the bench binaries, runs every executable under build/bench/,
# and aggregates the results into one BENCH_<date>.json at the repo
# root.  google-benchmark binaries are run with
# --benchmark_format=json and their parsed output embedded verbatim;
# the experiment benches (plain executables printing the paper's
# tables/series) are captured as text.
#
# Experiment benches that self-verify gate the harness through their
# exit status: bench_table1 (all 20 rows must reproduce),
# bench_batch_engine (A-BATCH: parallel batch evaluation must be
# bit-identical to serial with a >= 90% verdict-cache hit rate),
# bench_watermark + bench_multiflow (A-SCAN: the correlation kernel and
# the ScanBatch fan-out must score bit-identically to the naive
# reference scan, and the kernel must beat its per-offset cost; A-SIMD:
# the vectorized despread lane must stay verdict-identical to the
# scalar oracle within its documented ULP bound and run >= 2x faster
# per offset — skipped with a note when the lane is unavailable),
# bench_stream (A-STREAM: the online despreader must match the batch
# scan bit for bit in O(ring) memory, the tap admission gate must
# hold, and the single-pass TapRegistry traceback must be bit-identical
# to the per-suspect re-simulation loop at one simulation pass),
# bench_baseline (E-IVB gate: kernel cross_score must match
# the naive pearson oracle bit for bit), bench_netsim (A-NETSIM:
# events/s at 1M+ queued events must stay >= 0.8x the 1k rate, the
# calendar queue must fire randomized schedules bit-identically to the
# retained heap oracle, and DES accounting must balance under
# topology churn), and bench_serve (A-SERVE: wire-batch verdicts
# identical to the direct evaluator at every worker count, exact
# admission accounting under overload + corruption, zero heap
# allocations per steady-state batch, complete latency histogram
# over the million-subscriber fleet run).
#
# Usage: tools/run_benchmarks.sh [options]
#   --build-dir DIR   build tree to use              (default: build)
#   --out FILE        output path                    (default: BENCH_<date>.json)
#   --min-time SEC    google-benchmark min time/case (default: 0.1)
#   --skip-plain      run only the google-benchmark microbenches
#   --jobs N          parallel build jobs            (default: nproc)
#
# Exits non-zero if any bench binary fails or the aggregate cannot be
# written.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="build"
OUT=""
MIN_TIME="0.1"
SKIP_PLAIN=0
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="${2:?--build-dir requires a value}"; shift ;;
    --out) OUT="${2:?--out requires a value}"; shift ;;
    --min-time) MIN_TIME="${2:?--min-time requires a value}"; shift ;;
    --skip-plain) SKIP_PLAIN=1 ;;
    --jobs) JOBS="${2:?--jobs requires a value}"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

cd "${REPO_ROOT}"
DATE="$(date +%Y-%m-%d)"
[[ -n "${OUT}" ]] || OUT="BENCH_${DATE}.json"

echo "==> building benches into ${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S . >/dev/null || exit 1
cmake --build "${BUILD_DIR}" -j "${JOBS}" >/dev/null || exit 1

BENCH_DIR="${BUILD_DIR}/bench"
if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "no bench directory at ${BENCH_DIR}" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
FAILURES=0
GBENCH_NAMES=()
PLAIN_NAMES=()

# bench_obs writes its process-wide obs::Snapshot here after its timing
# runs; the aggregator embeds it as doc["obs_metrics"] so every
# BENCH_<date>.json carries the metrics/profiler state of the run that
# produced it (consumed by tools/bench_diff.py).
export LEXFOR_OBS_SNAPSHOT_OUT="${TMP}/obs_snapshot.json"

# A google-benchmark binary honours --benchmark_format=json and prints
# a JSON document; the experiment benches ignore argv and print their
# tables as text.  Run each binary once and classify by whether stdout
# parses as JSON (flag-sniffing can't distinguish them: the experiment
# benches accept and ignore any flag).
for bin in "${BENCH_DIR}"/*; do
  [[ -x "${bin}" && -f "${bin}" ]] || continue
  name="$(basename "${bin}")"
  if [[ "${SKIP_PLAIN}" -eq 1 ]] && \
     ! timeout 5 "${bin}" --benchmark_list_tests=true 2>/dev/null \
       | grep -q '^BM_'; then
    echo "==> ${name} (experiment bench, skipped)"
    continue
  fi
  echo "==> ${name}"
  if ! "${bin}" --benchmark_format=json \
                --benchmark_min_time="${MIN_TIME}" \
                >"${TMP}/${name}.out" 2>"${TMP}/${name}.err"; then
    echo "FAIL ${name}" >&2
    cat "${TMP}/${name}.err" >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
       "${TMP}/${name}.out" 2>/dev/null; then
    mv "${TMP}/${name}.out" "${TMP}/${name}.json"
    GBENCH_NAMES+=("${name}")
  else
    mv "${TMP}/${name}.out" "${TMP}/${name}.txt"
    PLAIN_NAMES+=("${name}")
  fi
done

echo "==> aggregating into ${OUT}"
python3 - "${TMP}" "${OUT}" "${DATE}" \
    "${GBENCH_NAMES[@]+"${GBENCH_NAMES[@]}"}" <<'PY' || exit 1
import json, pathlib, sys

tmp, out, date, *gbench = sys.argv[1:]
tmp = pathlib.Path(tmp)
doc = {"date": date, "microbenchmarks": {}, "experiments": {}}
for name in gbench:
    with open(tmp / f"{name}.json") as f:
        doc["microbenchmarks"][name] = json.load(f)
for path in sorted(tmp.glob("*.txt")):
    doc["experiments"][path.stem] = path.read_text()
snapshot = tmp / "obs_snapshot.json"
if snapshot.exists():
    with open(snapshot) as f:
        doc["obs_metrics"] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
micro = sum(len(v.get("benchmarks", [])) for v in doc["microbenchmarks"].values())
print(f"    {len(doc['microbenchmarks'])} microbench binaries "
      f"({micro} cases), {len(doc['experiments'])} experiment benches")
PY

if [[ "${FAILURES}" -gt 0 ]]; then
  echo "benchmark harness FAILED (${FAILURES} binary(ies))" >&2
  exit 1
fi
echo "benchmark results written to ${OUT}"
