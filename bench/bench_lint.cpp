// Microbench: plan-linting throughput.
//
// Lints synthetic N-step plans (a derivation chain with periodic
// defects, exercising every pass including the taint closure) and the
// canonical fixtures.  The linter sits on the interactive path of a
// plan-review UI, so steps/second matters.

#include <benchmark/benchmark.h>

#include "lint/example_plans.h"
#include "lint/linter.h"
#include "lint/render.h"

namespace {

using namespace lexfor;
using namespace lexfor::lint;

SimTime day(double d) { return SimTime::from_sec(d * 24 * 3600.0); }

InvestigationPlan synthetic_plan(int steps) {
  using namespace lexfor::legal;

  InvestigationPlan plan("synthetic", CrimeCategory::kIntrusion);
  plan.charging("suspect-0");
  plan.with_fact({FactKind::kIpAddressLinked, 1.0, "ip"});
  plan.with_fact({FactKind::kSubscriberIdentified, 1.0, "subscriber"});

  const PlanStepId order = plan.plan_application(
      "order", ProcessKind::kCourtOrder, day(0));

  PlanStepId prev;
  for (int i = 0; i < steps; ++i) {
    Scenario s = Scenario{}
                     .named("step")
                     .by(ActorKind::kLawEnforcement)
                     .acquiring(i % 7 == 0 ? DataKind::kContent
                                           : DataKind::kAddressing)
                     .located(i % 2 == 0 ? DataState::kInTransit
                                         : DataState::kStoredAtProvider)
                     .when(i % 2 == 0 ? Timing::kRealTime : Timing::kStored);
    if (i % 2 != 0) s.at_provider(ProviderClass::kEcs);
    auto builder =
        plan.plan_acquisition("acq-" + std::to_string(i), s, day(1 + i));
    if (i % 3 != 0) builder.using_authority(order);  // some steps go bare
    if (prev.valid()) builder.derived({prev});
    prev = builder.id();
  }
  return plan;
}

void BM_LintSyntheticPlan(benchmark::State& state) {
  const InvestigationPlan plan = synthetic_plan(static_cast<int>(state.range(0)));
  const PlanLinter linter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linter.lint(plan));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LintSyntheticPlan)->Arg(8)->Arg(64)->Arg(512);

void BM_LintDefectiveFixture(benchmark::State& state) {
  const InvestigationPlan plan = defective_wiretap_plan();
  const PlanLinter linter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linter.lint(plan));
  }
}
BENCHMARK(BM_LintDefectiveFixture);

void BM_RenderJson(benchmark::State& state) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(render_json(report));
  }
}
BENCHMARK(BM_RenderJson);

}  // namespace

BENCHMARK_MAIN();
