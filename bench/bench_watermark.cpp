// Experiment E-IVB (paper §IV.B): long-PN-code DSSS watermark traceback
// through an anonymity network — "workable method with warrant/court
// order/subpoena" (a court order: the collection is non-content).
//
// Series 1: detection rate vs PN code length (processing gain).
// Series 2: detection rate vs relay jitter (robustness).
// Series 3: detection rate vs modulation depth (stealth/robustness
//           trade-off) and decoy false-positive counts throughout.
//
// Shape to reproduce: detection improves with code length, degrades
// gracefully with jitter, and decoy flows stay below threshold; the
// legal cost stays at a court order, below a Title III wiretap.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tornet/traceback.h"
#include "util/rng.h"
#include "watermark/dsss.h"

namespace {

using namespace lexfor;
using tornet::TracebackConfig;

struct Row {
  double detection_rate;
  double mean_suspect_corr;
  std::size_t decoy_flags;
  std::size_t decoy_flows;
};

Row sweep(TracebackConfig base, int trials) {
  Row row{0, 0, 0, 0};
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    base.seed = 1000 + static_cast<std::uint64_t>(t) * 77;
    const auto r = tornet::run_traceback(base).value();
    detected += r.suspect_detected;
    row.mean_suspect_corr += r.suspect_correlation;
    row.decoy_flags += r.decoys_flagged;
    row.decoy_flows += base.num_decoys;
  }
  row.detection_rate = static_cast<double>(detected) / trials;
  row.mean_suspect_corr /= trials;
  return row;
}

}  // namespace

int main() {
  std::printf("E-IVB: DSSS watermark traceback through an anonymity network "
              "(paper IV.B)\n");

  {
    const auto legality =
        legal::ComplianceEngine{}.evaluate(tornet::collection_scenario());
    std::printf("legal posture of collection: %s, minimum process: %s "
                "(a wiretap order is NOT needed)\n\n",
                legality.verdict().c_str(),
                std::string(legal::to_string(legality.required_process)).c_str());
  }

  constexpr int kTrials = 10;

  std::printf("Series 1: detection vs PN code length (depth 0.3, jitter "
              "30ms, 4 decoys, %d trials)\n", kTrials);
  std::printf("%8s %8s %12s %14s %12s\n", "degree", "chips", "detect rate",
              "suspect corr", "decoy FPs");
  for (const int degree : {5, 6, 7, 8, 9, 10, 11}) {
    TracebackConfig cfg;
    cfg.pn_degree = degree;
    cfg.chip_ms = 300.0;
    cfg.depth = 0.3;
    cfg.num_decoys = 4;
    const auto row = sweep(cfg, kTrials);
    std::printf("%8d %8zu %12.2f %14.4f %9zu/%zu\n", degree,
                (std::size_t{1} << degree) - 1, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  std::printf("\nSeries 2: detection vs relay jitter (degree 9, depth 0.3, "
              "%d trials)\n", kTrials);
  std::printf("%12s %12s %14s %12s\n", "jitter (ms)", "detect rate",
              "suspect corr", "decoy FPs");
  for (const double jitter : {10.0, 30.0, 60.0, 120.0, 240.0, 480.0}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 300.0;
    cfg.depth = 0.3;
    cfg.num_decoys = 4;
    cfg.network.relay_jitter_ms = jitter;
    const auto row = sweep(cfg, kTrials);
    std::printf("%12.0f %12.2f %14.4f %9zu/%zu\n", jitter, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  std::printf("\nSeries 3: detection vs modulation depth (degree 9, jitter "
              "30ms, %d trials)\n", kTrials);
  std::printf("%8s %12s %14s %12s\n", "depth", "detect rate", "suspect corr",
              "decoy FPs");
  for (const double depth : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 300.0;
    cfg.depth = depth;
    cfg.num_decoys = 4;
    const auto row = sweep(cfg, kTrials);
    std::printf("%8.2f %12.2f %14.4f %9zu/%zu\n", depth, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  // Series 4: alignment-free detection.  When the observer does not know
  // the embed start, detect_with_scan slides the code over candidate
  // offsets with a Bonferroni-adjusted threshold; this measures the
  // price of that uncertainty versus perfectly aligned detection.
  std::printf("\nSeries 4: aligned vs offset-scan detection vs noise "
              "(degree 9, depth 10%% of mean, 40 trials)\n");
  std::printf("%14s %12s %12s\n", "noise sigma", "aligned", "scan(100)");
  {
    const auto code = lexfor::watermark::PnCode::m_sequence(9).value();
    const lexfor::watermark::Detector det(code, 4.0);
    lexfor::Rng rng{2024};
    for (const double sigma : {10.0, 20.0, 40.0, 60.0, 90.0}) {
      int aligned_ok = 0, scan_ok = 0;
      constexpr int kTrials = 40;
      for (int t = 0; t < kTrials; ++t) {
        const std::size_t offset = rng.uniform(100);
        std::vector<double> rates(offset, 0.0);
        for (auto& r : rates) r = 100.0 + rng.normal(0.0, sigma);
        for (const auto c : code.chips()) {
          rates.push_back(100.0 + 10.0 * c + rng.normal(0.0, sigma));
        }
        // Aligned detector gets the true offset for free.
        const std::vector<double> window(
            rates.begin() + static_cast<std::ptrdiff_t>(offset), rates.end());
        aligned_ok += det.detect(window).value().detected;
        scan_ok += det.detect_with_scan(rates, 100).value().best.detected;
      }
      std::printf("%14.0f %12.2f %12.2f\n", sigma,
                  static_cast<double>(aligned_ok) / kTrials,
                  static_cast<double>(scan_ok) / kTrials);
    }
  }

  // Series 5 / experiment A-SCAN: correlation-kernel scan vs the
  // retained naive reference.  Self-verifying: the two scans must agree
  // bit for bit on every trial AND the kernel must beat the reference's
  // per-offset cost, or the bench exits non-zero and fails the harness.
  std::printf("\nSeries 5 (A-SCAN): kernel vs naive reference offset scan "
              "(single core)\n");
  std::printf("%8s %8s %12s %14s %14s %10s\n", "degree", "offsets", "reps",
              "ref ns/off", "kernel ns/off", "speedup");
  {
    using clock = std::chrono::steady_clock;
    bool all_identical = true;
    bool all_faster = true;
    lexfor::Rng rng{4242};
    for (const int degree : {8, 10, 12}) {
      const auto code = lexfor::watermark::PnCode::m_sequence(degree).value();
      const lexfor::watermark::Detector det(code, 5.0);
      const std::size_t max_offset = 256;
      std::vector<double> rates;
      for (std::size_t i = 0; i < max_offset / 2; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, 10.0));
      }
      for (const auto c : code.chips()) {
        rates.push_back(100.0 * (1.0 + 0.3 * c) + rng.normal(0.0, 10.0));
      }
      for (std::size_t i = 0; i < max_offset; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, 10.0));
      }
      const std::size_t offsets =
          std::min(max_offset, rates.size() - code.length()) + 1;
      const int reps = degree >= 12 ? 20 : 60;

      // Correctness gate first: bit-identical ScanResult.
      const auto ref = det.detect_with_scan_reference(rates, max_offset)
                           .value();
      const auto ker = det.detect_with_scan(rates, max_offset).value();
      const bool identical =
          ref.offset == ker.offset &&
          ref.best.detected == ker.best.detected &&
          std::bit_cast<std::uint64_t>(ref.best.correlation) ==
              std::bit_cast<std::uint64_t>(ker.best.correlation) &&
          std::bit_cast<std::uint64_t>(ref.best.threshold) ==
              std::bit_cast<std::uint64_t>(ker.best.threshold);
      all_identical = all_identical && identical;

      double sink = 0.0;  // defeat dead-code elimination
      const auto t0 = clock::now();
      for (int r = 0; r < reps; ++r) {
        sink += det.detect_with_scan_reference(rates, max_offset)
                    .value()
                    .best.correlation;
      }
      const auto t1 = clock::now();
      for (int r = 0; r < reps; ++r) {
        sink += det.detect_with_scan(rates, max_offset).value()
                    .best.correlation;
      }
      const auto t2 = clock::now();
      const double ref_ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          (static_cast<double>(reps) * static_cast<double>(offsets));
      const double ker_ns =
          std::chrono::duration<double, std::nano>(t2 - t1).count() /
          (static_cast<double>(reps) * static_cast<double>(offsets));
      all_faster = all_faster && ker_ns < ref_ns;
      std::printf("%8d %8zu %12d %14.1f %14.1f %9.2fx%s\n", degree, offsets,
                  reps, ref_ns, ker_ns, ref_ns / ker_ns,
                  identical ? "" : "  MISMATCH");
      if (sink == -1.0) std::printf("%f\n", sink);
    }
    if (!all_identical) {
      std::printf("A-SCAN FAILED: kernel and reference scans disagree\n");
      return 1;
    }
    if (!all_faster) {
      std::printf("A-SCAN FAILED: kernel not faster than the naive "
                  "reference\n");
      return 1;
    }
    std::printf("A-SCAN OK: bit-identical scores, kernel faster at every "
                "degree\n");
  }

  // Series 6 / experiment A-SIMD: the vectorized multi-accumulator scan
  // lane vs the scalar oracle.  Self-verifying on two axes:
  //   (1) correctness — 300+ randomized trials must be VERDICT-identical
  //       (same offset, same decision, bit-identical threshold) with the
  //       correlation's ULP distance <= CorrelationKernel::kSimdMaxUlp;
  //   (2) performance — the lane must be >= 2.0x the scalar per-offset
  //       cost at every degree, or the bench exits non-zero.
  // When the lane is unavailable (LEXFOR_SIMD=OFF or no AVX2/FMA at
  // runtime) the series is SKIPPED with a note — scan_simd forwards to
  // the scalar scan there, so there is nothing to gate.
  // A-SIMD-METRIC lines are machine-readable for tools/bench_diff.py.
  std::printf("\nSeries 6 (A-SIMD): vectorized multi-accumulator lane vs "
              "scalar scan (single core)\n");
  if (!lexfor::watermark::CorrelationKernel::simd_lane_available()) {
    std::printf("A-SIMD SKIPPED: vector lane unavailable on this "
                "build/host (LEXFOR_SIMD off or no AVX2+FMA); scan_simd "
                "forwards to the scalar scan\n");
    return 0;
  }
  {
    using clock = std::chrono::steady_clock;
    lexfor::Rng rng{20260809};

    // Correctness gate: randomized degrees/offsets/marks, verdicts
    // locked, ULP distance bounded and reported.
    constexpr int kUlpTrials = 300;
    int verdict_mismatches = 0;
    std::uint64_t max_ulp = 0;
    for (int t = 0; t < kUlpTrials; ++t) {
      const int degree = 8 + static_cast<int>(rng.uniform(5));  // 8..12
      const auto code = lexfor::watermark::PnCode::m_sequence(degree).value();
      const lexfor::watermark::CorrelationKernel kernel(code);
      const std::size_t max_offset = t % 2 == 0 ? 0 : 256;
      const std::size_t embed = rng.uniform(max_offset + 1);
      const double sigma = 1.0 + 30.0 * rng.uniform01();
      const bool marked = rng.bernoulli(0.5);
      std::vector<double> rates;
      for (std::size_t i = 0; i < embed; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, sigma));
      }
      for (const auto c : code.chips()) {
        rates.push_back(100.0 + (marked ? 25.0 * c : 0.0) +
                        rng.normal(0.0, sigma));
      }
      for (std::size_t i = embed; i < max_offset + 8; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, sigma));
      }
      const auto scalar = kernel.scan(rates, max_offset).value();
      const auto simd = kernel.scan_simd(rates, max_offset).value();
      const bool verdict_ok =
          scalar.offset == simd.offset &&
          scalar.best.detected == simd.best.detected &&
          std::bit_cast<std::uint64_t>(scalar.best.threshold) ==
              std::bit_cast<std::uint64_t>(simd.best.threshold);
      if (!verdict_ok) ++verdict_mismatches;
      max_ulp = std::max(max_ulp,
                         lexfor::watermark::ulp_distance(
                             scalar.best.correlation, simd.best.correlation));
    }
    std::printf("verdicts: %d/%d randomized trials identical, max ULP "
                "distance %llu (bound %llu)\n",
                kUlpTrials - verdict_mismatches, kUlpTrials,
                static_cast<unsigned long long>(max_ulp),
                static_cast<unsigned long long>(
                    lexfor::watermark::CorrelationKernel::kSimdMaxUlp));
    std::printf("A-SIMD-METRIC max_ulp %llu\n",
                static_cast<unsigned long long>(max_ulp));
    if (verdict_mismatches != 0) {
      std::printf("A-SIMD FAILED: SIMD and scalar scans returned different "
                  "verdicts\n");
      return 1;
    }
    if (max_ulp > lexfor::watermark::CorrelationKernel::kSimdMaxUlp) {
      std::printf("A-SIMD FAILED: correlation ULP distance exceeds the "
                  "documented bound\n");
      return 1;
    }

    // Performance gate: both paths timed over the same series.
    std::printf("%8s %8s %12s %14s %14s %10s\n", "degree", "offsets", "reps",
                "scalar ns/off", "simd ns/off", "speedup");
    bool all_2x = true;
    for (const int degree : {8, 10, 12}) {
      const auto code = lexfor::watermark::PnCode::m_sequence(degree).value();
      const lexfor::watermark::CorrelationKernel kernel(code, 5.0);
      const std::size_t max_offset = 256;
      std::vector<double> rates;
      for (std::size_t i = 0; i < max_offset / 2; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, 10.0));
      }
      for (const auto c : code.chips()) {
        rates.push_back(100.0 * (1.0 + 0.3 * c) + rng.normal(0.0, 10.0));
      }
      for (std::size_t i = 0; i < max_offset; ++i) {
        rates.push_back(100.0 + rng.normal(0.0, 10.0));
      }
      const std::size_t offsets =
          std::min(max_offset, rates.size() - code.length()) + 1;
      const int reps = degree >= 12 ? 20 : 60;

      double sink = 0.0;
      const auto t0 = clock::now();
      for (int r = 0; r < reps; ++r) {
        sink += kernel.scan(rates, max_offset).value().best.correlation;
      }
      const auto t1 = clock::now();
      for (int r = 0; r < reps; ++r) {
        sink += kernel.scan_simd(rates, max_offset).value().best.correlation;
      }
      const auto t2 = clock::now();
      const double scalar_ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          (static_cast<double>(reps) * static_cast<double>(offsets));
      const double simd_ns =
          std::chrono::duration<double, std::nano>(t2 - t1).count() /
          (static_cast<double>(reps) * static_cast<double>(offsets));
      all_2x = all_2x && simd_ns * 2.0 <= scalar_ns;
      std::printf("%8d %8zu %12d %14.1f %14.1f %9.2fx\n", degree, offsets,
                  reps, scalar_ns, simd_ns, scalar_ns / simd_ns);
      std::printf("A-SIMD-METRIC scan_scalar_deg%d_ns_per_offset %.1f\n",
                  degree, scalar_ns);
      std::printf("A-SIMD-METRIC scan_simd_deg%d_ns_per_offset %.1f\n",
                  degree, simd_ns);
      if (sink == -1.0) std::printf("%f\n", sink);
    }
    if (!all_2x) {
      std::printf("A-SIMD FAILED: vector lane under 2.0x the scalar scan\n");
      return 1;
    }
    std::printf("A-SIMD OK: verdict-identical, ULP-bounded, >= 2x at every "
                "degree\n");
  }
  return 0;
}
