// Experiment E-IVB (paper §IV.B): long-PN-code DSSS watermark traceback
// through an anonymity network — "workable method with warrant/court
// order/subpoena" (a court order: the collection is non-content).
//
// Series 1: detection rate vs PN code length (processing gain).
// Series 2: detection rate vs relay jitter (robustness).
// Series 3: detection rate vs modulation depth (stealth/robustness
//           trade-off) and decoy false-positive counts throughout.
//
// Shape to reproduce: detection improves with code length, degrades
// gracefully with jitter, and decoy flows stay below threshold; the
// legal cost stays at a court order, below a Title III wiretap.

#include <cstdio>

#include "tornet/traceback.h"
#include "util/rng.h"
#include "watermark/dsss.h"

namespace {

using namespace lexfor;
using tornet::TracebackConfig;

struct Row {
  double detection_rate;
  double mean_suspect_corr;
  std::size_t decoy_flags;
  std::size_t decoy_flows;
};

Row sweep(TracebackConfig base, int trials) {
  Row row{0, 0, 0, 0};
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    base.seed = 1000 + static_cast<std::uint64_t>(t) * 77;
    const auto r = tornet::run_traceback(base).value();
    detected += r.suspect_detected;
    row.mean_suspect_corr += r.suspect_correlation;
    row.decoy_flags += r.decoys_flagged;
    row.decoy_flows += base.num_decoys;
  }
  row.detection_rate = static_cast<double>(detected) / trials;
  row.mean_suspect_corr /= trials;
  return row;
}

}  // namespace

int main() {
  std::printf("E-IVB: DSSS watermark traceback through an anonymity network "
              "(paper IV.B)\n");

  {
    const auto legality =
        legal::ComplianceEngine{}.evaluate(tornet::collection_scenario());
    std::printf("legal posture of collection: %s, minimum process: %s "
                "(a wiretap order is NOT needed)\n\n",
                legality.verdict().c_str(),
                std::string(legal::to_string(legality.required_process)).c_str());
  }

  constexpr int kTrials = 10;

  std::printf("Series 1: detection vs PN code length (depth 0.3, jitter "
              "30ms, 4 decoys, %d trials)\n", kTrials);
  std::printf("%8s %8s %12s %14s %12s\n", "degree", "chips", "detect rate",
              "suspect corr", "decoy FPs");
  for (const int degree : {5, 6, 7, 8, 9, 10, 11}) {
    TracebackConfig cfg;
    cfg.pn_degree = degree;
    cfg.chip_ms = 300.0;
    cfg.depth = 0.3;
    cfg.num_decoys = 4;
    const auto row = sweep(cfg, kTrials);
    std::printf("%8d %8zu %12.2f %14.4f %9zu/%zu\n", degree,
                (std::size_t{1} << degree) - 1, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  std::printf("\nSeries 2: detection vs relay jitter (degree 9, depth 0.3, "
              "%d trials)\n", kTrials);
  std::printf("%12s %12s %14s %12s\n", "jitter (ms)", "detect rate",
              "suspect corr", "decoy FPs");
  for (const double jitter : {10.0, 30.0, 60.0, 120.0, 240.0, 480.0}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 300.0;
    cfg.depth = 0.3;
    cfg.num_decoys = 4;
    cfg.network.relay_jitter_ms = jitter;
    const auto row = sweep(cfg, kTrials);
    std::printf("%12.0f %12.2f %14.4f %9zu/%zu\n", jitter, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  std::printf("\nSeries 3: detection vs modulation depth (degree 9, jitter "
              "30ms, %d trials)\n", kTrials);
  std::printf("%8s %12s %14s %12s\n", "depth", "detect rate", "suspect corr",
              "decoy FPs");
  for (const double depth : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 300.0;
    cfg.depth = depth;
    cfg.num_decoys = 4;
    const auto row = sweep(cfg, kTrials);
    std::printf("%8.2f %12.2f %14.4f %9zu/%zu\n", depth, row.detection_rate,
                row.mean_suspect_corr, row.decoy_flags, row.decoy_flows);
  }

  // Series 4: alignment-free detection.  When the observer does not know
  // the embed start, detect_with_scan slides the code over candidate
  // offsets with a Bonferroni-adjusted threshold; this measures the
  // price of that uncertainty versus perfectly aligned detection.
  std::printf("\nSeries 4: aligned vs offset-scan detection vs noise "
              "(degree 9, depth 10%% of mean, 40 trials)\n");
  std::printf("%14s %12s %12s\n", "noise sigma", "aligned", "scan(100)");
  {
    const auto code = lexfor::watermark::PnCode::m_sequence(9).value();
    const lexfor::watermark::Detector det(code, 4.0);
    lexfor::Rng rng{2024};
    for (const double sigma : {10.0, 20.0, 40.0, 60.0, 90.0}) {
      int aligned_ok = 0, scan_ok = 0;
      constexpr int kTrials = 40;
      for (int t = 0; t < kTrials; ++t) {
        const std::size_t offset = rng.uniform(100);
        std::vector<double> rates(offset, 0.0);
        for (auto& r : rates) r = 100.0 + rng.normal(0.0, sigma);
        for (const auto c : code.chips()) {
          rates.push_back(100.0 + 10.0 * c + rng.normal(0.0, sigma));
        }
        // Aligned detector gets the true offset for free.
        const std::vector<double> window(
            rates.begin() + static_cast<std::ptrdiff_t>(offset), rates.end());
        aligned_ok += det.detect(window).value().detected;
        scan_ok += det.detect_with_scan(rates, 100).value().best.detected;
      }
      std::printf("%14.0f %12.2f %12.2f\n", sigma,
                  static_cast<double>(aligned_ok) / kTrials,
                  static_cast<double>(scan_ok) / kTrials);
    }
  }
  return 0;
}
