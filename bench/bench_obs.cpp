// A-OBS: observability overhead.
//
// The obs layer is compiled into every module, so its cost model must
// hold: a disabled-level event is one relaxed atomic load and a branch
// (within noise of the uninstrumented baseline, <5%), an enabled event
// into the ring stays under ~50ns after the argument string is built,
// and metrics updates are single atomic ops.  The baseline workload
// does representative engine-adjacent arithmetic (~100ns) so that the
// disabled-path delta is measured against real work, not an empty loop.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/obs.h"

namespace {

using namespace lexfor;

// Representative unit of work: a short integer hash chain, opaque to the
// optimizer.  Everything below measures deltas against this.
std::uint64_t workload(std::uint64_t seed) {
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 16; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
  }
  return h;
}

void BM_Workload_Baseline(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_Baseline);

// Same workload with a disabled-level instrumentation point: the string
// argument must NOT be constructed (the macro guards evaluation), so
// the delta vs baseline is just the level check.
void BM_Workload_EventDisabled(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = workload(x);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "bench", "tick",
                     "x=" + std::to_string(x), obs::no_sim_time());
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_EventDisabled);

void BM_Workload_SpanDisabled(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    LEXFOR_OBS_SPAN(obs::Level::kInfo, "bench", "work",
                    "x=" + std::to_string(x), obs::no_sim_time());
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_SpanDisabled);

// Enabled paths: event emission into the ring (no sinks attached), so
// this isolates stamp + spinlock + ring copy.
void BM_EventEnabled_NoArgs(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kDebug);
  for (auto _ : state) {
    tracer.instant(obs::Level::kDebug, "bench", "tick");
  }
  state.counters["events"] =
      benchmark::Counter(static_cast<double>(tracer.events_emitted()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventEnabled_NoArgs);

void BM_EventEnabled_WithArgs(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kDebug);
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracer.instant(obs::Level::kDebug, "bench", "tick",
                   "i=" + std::to_string(++i));
  }
}
BENCHMARK(BM_EventEnabled_WithArgs);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kInfo);
  for (auto _ : state) {
    const obs::Span s = tracer.span(obs::Level::kInfo, "bench", "work");
    benchmark::DoNotOptimize(s.id());
  }
}
BENCHMARK(BM_SpanEnabled);

// Metrics: always-on atomics — these run even at Level::kOff.
void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    LEXFOR_OBS_COUNTER_ADD("bench.obs.counter", 1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    LEXFOR_OBS_GAUGE_SET("bench.obs.gauge", ++v);
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    v = (v + 97) % 5'000'000;
    LEXFOR_OBS_HISTOGRAM_RECORD("bench.obs.hist", v);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  obs::Histogram h("bench.p", {});
  for (std::int64_t v = 1; v < 100'000; v += 7) h.record(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(95));
  }
}
BENCHMARK(BM_HistogramPercentile);

}  // namespace

BENCHMARK_MAIN();
