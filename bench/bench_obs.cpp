// A-OBS2: observability v2 overhead + correctness gates.
//
// The obs layer is compiled into every module, so its cost model must
// hold: a disabled-level event is one relaxed atomic load and a branch
// (within noise of the uninstrumented baseline), an enabled event goes
// into the emitting thread's ring shard without cross-thread
// contention, metrics updates are single atomic ops, and a disabled
// profiler scope is a load + branch.  The baseline workload does
// representative engine-adjacent arithmetic (~100ns) so the
// disabled-path delta is measured against real work, not an empty
// loop.
//
// Unlike v1 this bench SELF-GATES (exit 1 on violation) before the
// timing runs, on stderr so stdout stays pure google-benchmark JSON
// for tools/run_benchmarks.sh:
//
//   gate 1  8-thread sharded-ring stress through a Tracer: every
//           emitted event drains exactly once, merged strictly
//           (wall_ns, seq)-ordered, per-thread streams intact;
//   gate 2  overflow accounting: emitted == drained + dropped on a
//           deliberately tiny ring;
//   gate 3  disabled-path tracing stays within noise of the
//           uninstrumented workload (generous 15% bound, best of 5
//           trials — single-core CI makes tight timing gates flaky).
//
// After the timing runs, if LEXFOR_OBS_SNAPSHOT_OUT is set in the
// environment, the process-wide obs::Snapshot is written there as JSON
// for tools/run_benchmarks.sh to embed into BENCH_<date>.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace {

using namespace lexfor;

// Representative unit of work: a short integer hash chain, opaque to the
// optimizer.  Everything below measures deltas against this.
std::uint64_t workload(std::uint64_t seed) {
  std::uint64_t h = seed * 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 16; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Self-gates (stderr only; stdout belongs to google-benchmark JSON).
// ---------------------------------------------------------------------------

bool gate_stress_merge() {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 5'000;
  obs::Tracer tracer(/*ring_capacity=*/kPerThread);  // per shard: no drops
  tracer.set_level(obs::Level::kDebug);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.counter(obs::Level::kDebug, "stress",
                       "t" + std::to_string(t),
                       static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::vector<obs::TraceEvent> events = tracer.drain();
  if (events.size() != kThreads * kPerThread) {
    std::fprintf(stderr,
                 "GATE FAIL stress-merge: drained %zu of %llu events\n",
                 events.size(),
                 static_cast<unsigned long long>(kThreads * kPerThread));
    return false;
  }
  std::set<std::uint64_t> seqs;
  std::vector<std::int64_t> last(kThreads, -1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::TraceEvent& ev = events[i];
    if (i > 0) {
      const obs::TraceEvent& prev = events[i - 1];
      const bool ordered = prev.wall_ns < ev.wall_ns ||
                           (prev.wall_ns == ev.wall_ns && prev.seq < ev.seq);
      if (!ordered) {
        std::fprintf(stderr,
                     "GATE FAIL stress-merge: event %zu out of "
                     "(wall_ns, seq) order\n",
                     i);
        return false;
      }
    }
    if (!seqs.insert(ev.seq).second) {
      std::fprintf(stderr, "GATE FAIL stress-merge: duplicate seq %llu\n",
                   static_cast<unsigned long long>(ev.seq));
      return false;
    }
    const std::size_t t = ev.name[1] - '0';  // "tK" counter name
    if (ev.value != last[t] + 1) {
      std::fprintf(stderr,
                   "GATE FAIL stress-merge: thread %zu stream reordered "
                   "(saw %lld after %lld)\n",
                   t, static_cast<long long>(ev.value),
                   static_cast<long long>(last[t]));
      return false;
    }
    last[t] = ev.value;
  }
  std::fprintf(stderr,
               "gate stress-merge OK: %zu events, %zu shards, strict "
               "order, no loss\n",
               events.size(), tracer.ring().shard_count());
  return true;
}

bool gate_overflow_accounting() {
  obs::Tracer tracer(/*ring_capacity=*/32);
  tracer.set_level(obs::Level::kDebug);
  for (int i = 0; i < 1'000; ++i) {
    tracer.instant(obs::Level::kInfo, "overflow", "e");
  }
  (void)tracer.drain();
  const obs::ShardedEventRing& ring = tracer.ring();
  if (ring.pushed() != ring.drained() + ring.dropped() ||
      ring.pushed() != tracer.events_emitted()) {
    std::fprintf(stderr,
                 "GATE FAIL overflow-accounting: emitted=%llu pushed=%llu "
                 "!= drained=%llu + dropped=%llu\n",
                 static_cast<unsigned long long>(tracer.events_emitted()),
                 static_cast<unsigned long long>(ring.pushed()),
                 static_cast<unsigned long long>(ring.drained()),
                 static_cast<unsigned long long>(ring.dropped()));
    return false;
  }
  std::fprintf(stderr,
               "gate overflow-accounting OK: emitted %llu == drained %llu "
               "+ dropped %llu\n",
               static_cast<unsigned long long>(tracer.events_emitted()),
               static_cast<unsigned long long>(ring.drained()),
               static_cast<unsigned long long>(ring.dropped()));
  return true;
}

double time_loop_ns(bool instrumented) {
  constexpr int kIters = 200'000;
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  const auto begin = std::chrono::steady_clock::now();
  if (instrumented) {
    for (int i = 0; i < kIters; ++i) {
      x = workload(x);
      LEXFOR_OBS_EVENT(obs::Level::kDebug, "bench", "tick",
                       "x=" + std::to_string(x), obs::no_sim_time());
      LEXFOR_OBS_PROFILE("bench.gate.disabled");
      benchmark::DoNotOptimize(x);
    }
  } else {
    for (int i = 0; i < kIters; ++i) {
      x = workload(x);
      benchmark::DoNotOptimize(x);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         kIters;
}

bool gate_disabled_within_noise() {
  // Best of 5 trials: single-core containers schedule noisily, and the
  // claim under test (one relaxed load + branch per macro) only needs
  // ONE clean trial to demonstrate.
  double best_ratio = 1e9;
  double base_ns = 0.0;
  double inst_ns = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const double base = time_loop_ns(false);
    const double inst = time_loop_ns(true);
    const double ratio = inst / base;
    if (ratio < best_ratio) {
      best_ratio = ratio;
      base_ns = base;
      inst_ns = inst;
    }
  }
  const bool ok = best_ratio <= 1.15;
  std::fprintf(stderr,
               "gate disabled-path %s: baseline %.1fns vs disabled-macros "
               "%.1fns (best ratio %.3f, bound 1.15)\n",
               ok ? "OK" : "FAIL", base_ns, inst_ns, best_ratio);
  return ok;
}

void write_snapshot_if_requested() {
  const char* path = std::getenv("LEXFOR_OBS_SNAPSHOT_OUT");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write obs snapshot to %s\n", path);
    return;
  }
  // Ensure the global ring has at least the main thread's shard so the
  // snapshot's "ring" section is never empty.
  obs::tracer().ring().register_this_thread();
  obs::Snapshot::capture().to_json(os);
  std::fprintf(stderr, "obs snapshot written to %s\n", path);
}

// ---------------------------------------------------------------------------
// Microbenchmarks.
// ---------------------------------------------------------------------------

void BM_Workload_Baseline(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_Baseline);

// Same workload with a disabled-level instrumentation point: the string
// argument must NOT be constructed (the macro guards evaluation), so
// the delta vs baseline is just the level check.
void BM_Workload_EventDisabled(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = workload(x);
    LEXFOR_OBS_EVENT(obs::Level::kDebug, "bench", "tick",
                     "x=" + std::to_string(x), obs::no_sim_time());
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_EventDisabled);

void BM_Workload_SpanDisabled(benchmark::State& state) {
  obs::tracer().set_level(obs::Level::kOff);
  std::uint64_t x = 1;
  for (auto _ : state) {
    LEXFOR_OBS_SPAN(obs::Level::kInfo, "bench", "work",
                    "x=" + std::to_string(x), obs::no_sim_time());
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_SpanDisabled);

void BM_Workload_ProfileDisabled(benchmark::State& state) {
  obs::profiler().set_enabled(false);
  std::uint64_t x = 1;
  for (auto _ : state) {
    LEXFOR_OBS_PROFILE("bench.obs.profile_disabled");
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Workload_ProfileDisabled);

void BM_Workload_ProfileEnabled(benchmark::State& state) {
  obs::profiler().set_enabled(true);
  std::uint64_t x = 1;
  for (auto _ : state) {
    LEXFOR_OBS_PROFILE("bench.obs.profile_enabled");
    x = workload(x);
    benchmark::DoNotOptimize(x);
  }
  obs::profiler().set_enabled(false);
}
BENCHMARK(BM_Workload_ProfileEnabled);

// Enabled paths: event emission into the emitting thread's ring shard
// (no sinks attached), so this isolates stamp + seq + shard push.  The
// threaded variants show what sharding buys: v1's global spinlock made
// this serialize; now each thread writes its own shard.
void BM_EventEnabled_NoArgs(benchmark::State& state) {
  static obs::Tracer* tracer = [] {
    auto* t = new obs::Tracer();
    t->set_level(obs::Level::kDebug);
    return t;
  }();
  for (auto _ : state) {
    tracer->instant(obs::Level::kDebug, "bench", "tick");
  }
  if (state.thread_index() == 0) {
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(tracer->events_emitted()),
                           benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_EventEnabled_NoArgs)->ThreadRange(1, 8);

void BM_EventEnabled_WithArgs(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kDebug);
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracer.instant(obs::Level::kDebug, "bench", "tick",
                   "i=" + std::to_string(++i));
  }
}
BENCHMARK(BM_EventEnabled_WithArgs);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kInfo);
  for (auto _ : state) {
    const obs::Span s = tracer.span(obs::Level::kInfo, "bench", "work");
    benchmark::DoNotOptimize(s.id());
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_ShardedRingPush(benchmark::State& state) {
  static obs::ShardedEventRing* ring = new obs::ShardedEventRing(4096);
  obs::TraceEvent ev;
  ev.category = "bench";
  ev.name = "push";
  for (auto _ : state) {
    ring->push(ev);
  }
}
BENCHMARK(BM_ShardedRingPush)->ThreadRange(1, 8);

void BM_TracerDrain(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_level(obs::Level::kDebug);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 1'000; ++i) {
      tracer.instant(obs::Level::kDebug, "bench", "fill");
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(tracer.drain());
  }
}
BENCHMARK(BM_TracerDrain);

// Metrics: always-on atomics — these run even at Level::kOff.
void BM_CounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    LEXFOR_OBS_COUNTER_ADD("bench.obs.counter", 1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    LEXFOR_OBS_GAUGE_SET("bench.obs.gauge", ++v);
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  std::int64_t v = 0;
  for (auto _ : state) {
    v = (v + 97) % 5'000'000;
    LEXFOR_OBS_HISTOGRAM_RECORD("bench.obs.hist", v);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  obs::Histogram h("bench.p", {});
  for (std::int64_t v = 1; v < 100'000; v += 7) h.record(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(95));
  }
}
BENCHMARK(BM_HistogramPercentile);

// Export paths: snapshot capture and the two renderers, over the
// process-wide registry as populated by this binary's own runs.
void BM_SnapshotCapture(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::Snapshot::capture());
  }
}
BENCHMARK(BM_SnapshotCapture);

void BM_SnapshotPrometheus(benchmark::State& state) {
  const obs::Snapshot snap = obs::Snapshot::capture();
  for (auto _ : state) {
    std::ostringstream os;
    snap.to_prometheus(os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_SnapshotPrometheus);

void BM_SnapshotJson(benchmark::State& state) {
  const obs::Snapshot snap = obs::Snapshot::capture();
  for (auto _ : state) {
    std::string out;
    snap.append_json(out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SnapshotJson);

}  // namespace

int main(int argc, char** argv) {
  const bool gates_ok = gate_stress_merge() && gate_overflow_accounting() &&
                        gate_disabled_within_noise();
  if (!gates_ok) {
    std::fprintf(stderr, "A-OBS2 self-gates FAILED\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_snapshot_if_requested();
  return 0;
}
