// A-CAPTURE: authority-scoped capture, throughput and bytes retained.
//
// The statutory split made measurable: a pen/trap device retains header
// records but zero payload bytes; a Title III device retains everything.
// Also reports tap throughput in the packet simulator.

#include <cstdio>
#include <memory>
#include <vector>

#include "capture/capture.h"
#include "netsim/flow.h"

namespace {

using namespace lexfor;
using capture::CaptureDevice;
using capture::CaptureMode;

legal::GrantedAuthority authority(legal::ProcessKind kind) {
  legal::LegalProcess p;
  p.id = ProcessId{1};
  p.kind = kind;
  p.issued_at = SimTime::zero();
  return legal::GrantedAuthority{p};
}

void run_mode(CaptureMode mode, legal::ProcessKind held,
              legal::ProcessKind required) {
  netsim::Network net{2024};
  const NodeId client = net.add_node("client");
  const NodeId isp = net.add_node("isp");
  const NodeId server = net.add_node("server");
  netsim::LinkConfig link;
  link.latency = SimDuration::from_ms(5);
  (void)net.connect(client, isp, link).value();
  (void)net.connect(isp, server, link).value();

  auto device_r = CaptureDevice::create(mode, authority(held), required, isp,
                                        "isp", SimTime::zero());
  if (!device_r.ok()) {
    std::printf("%-24s refused: %s\n",
                std::string(to_string(mode)).c_str(),
                device_r.status().message().c_str());
    return;
  }
  auto device = std::move(device_r).value();
  (void)device.attach(net);

  netsim::FlowConfig flow;
  flow.id = FlowId{1};
  flow.src = client;
  flow.dst = server;
  flow.packet_bytes = 512;
  flow.packets_per_sec = 2000.0;
  flow.stop = SimTime::from_sec(10.0);
  netsim::FlowSource source(net, flow, netsim::ArrivalProcess::kPoisson, 5);
  source.start();
  net.run();

  const auto& stats = device.stats();
  std::printf("%-24s observed=%8llu retained=%8llu payloadB kept=%9llu "
              "payloadB dropped=%9llu\n",
              std::string(to_string(mode)).c_str(),
              static_cast<unsigned long long>(stats.packets_observed),
              static_cast<unsigned long long>(stats.packets_retained),
              static_cast<unsigned long long>(stats.payload_bytes_retained),
              static_cast<unsigned long long>(stats.payload_bytes_discarded));
}

}  // namespace

int main() {
  std::printf("A-CAPTURE: what each legal instrument lets a tap retain "
              "(10s of 2000pps x 512B)\n\n");

  std::printf("-- held: pen/trap court order --\n");
  run_mode(CaptureMode::kPenRegister, legal::ProcessKind::kCourtOrder,
           legal::ProcessKind::kCourtOrder);
  run_mode(CaptureMode::kTrapAndTrace, legal::ProcessKind::kCourtOrder,
           legal::ProcessKind::kCourtOrder);
  run_mode(CaptureMode::kPenTrap, legal::ProcessKind::kCourtOrder,
           legal::ProcessKind::kCourtOrder);
  // Insufficient for full content: the device refuses to exist.
  run_mode(CaptureMode::kFullContent, legal::ProcessKind::kCourtOrder,
           legal::ProcessKind::kWiretapOrder);

  std::printf("\n-- held: Title III wiretap order --\n");
  run_mode(CaptureMode::kPenTrap, legal::ProcessKind::kWiretapOrder,
           legal::ProcessKind::kCourtOrder);
  run_mode(CaptureMode::kFullContent, legal::ProcessKind::kWiretapOrder,
           legal::ProcessKind::kWiretapOrder);

  std::printf("\n-- held: nothing --\n");
  run_mode(CaptureMode::kPenTrap, legal::ProcessKind::kNone,
           legal::ProcessKind::kCourtOrder);

  // Scope-filter ablation (§III.A.2.a): the same wiretap, unscoped vs
  // scoped to one service port.  The scoped device retains a fraction of
  // the traffic — the minimization a particularized warrant demands.
  std::printf("\n-- scope-filter ablation (Title III, two flows: web + "
              "mail) --\n");
  for (const bool scoped : {false, true}) {
    netsim::Network net{4242};
    const NodeId client = net.add_node("client");
    const NodeId isp = net.add_node("isp");
    const NodeId server = net.add_node("server");
    (void)net.connect(client, isp).value();
    (void)net.connect(isp, server).value();

    auto device =
        CaptureDevice::create(CaptureMode::kFullContent,
                              authority(legal::ProcessKind::kWiretapOrder),
                              legal::ProcessKind::kWiretapOrder, isp, "isp",
                              SimTime::zero())
            .value();
    if (scoped) {
      device.set_scope_filter(capture::Filter::parse("dstport 80").value());
    }
    (void)device.attach(net);

    std::vector<std::unique_ptr<netsim::FlowSource>> sources;
    for (const std::uint16_t port : {std::uint16_t{80}, std::uint16_t{25}}) {
      netsim::FlowConfig flow;
      flow.id = FlowId{port};
      flow.src = client;
      flow.dst = server;
      flow.dst_port = port;
      flow.packet_bytes = 512;
      flow.packets_per_sec = 1000.0;
      flow.stop = SimTime::from_sec(5.0);
      sources.push_back(std::make_unique<netsim::FlowSource>(
          net, flow, netsim::ArrivalProcess::kPoisson, port));
      sources.back()->start();
    }
    net.run();
    std::printf("%-24s retained=%8llu out-of-scope=%8llu payloadB kept=%9llu\n",
                scoped ? "scoped (dstport 80)" : "unscoped",
                static_cast<unsigned long long>(device.stats().packets_retained),
                static_cast<unsigned long long>(
                    device.stats().packets_out_of_scope),
                static_cast<unsigned long long>(
                    device.stats().payload_bytes_retained));
  }
  return 0;
}
