// E-IVA extension: message-level cost of the probing attack.
//
// The timing attack is legally free; this bench quantifies its
// *technical* cost on the overlay — message overhead per probe, reach,
// and per-peer load — as TTL and trust degree vary.  Investigator-side
// relevance (§III of the paper): a technique that floods the network
// draws attention; knowing the overhead guides probe budgets.

#include <cstdio>

#include "anonp2p/protocol.h"

int main() {
  using namespace lexfor;
  using namespace lexfor::anonp2p;

  std::printf("E-IVA/protocol: flooding cost per probe (64-peer overlay, "
              "20 probes per point)\n\n");

  const auto run_point = [](int ttl, std::size_t degree) {
    OverlayConfig cfg;
    cfg.num_peers = 64;
    cfg.trusted_degree = degree;
    cfg.file_popularity = 0.15;
    cfg.seed = 33;
    Overlay overlay(cfg);
    FloodConfig flood;
    flood.ttl = ttl;
    FloodSimulation sim(overlay, flood);
    Rng rng{77};

    double msgs = 0, dup = 0, responders = 0, first_ms = 0;
    int answered = 0;
    constexpr int kProbes = 20;
    for (int i = 0; i < kProbes; ++i) {
      const auto out =
          sim.run_query(PeerId{static_cast<std::uint64_t>(i) % 64}, rng);
      msgs += static_cast<double>(out.stats.queries_forwarded +
                                  out.stats.responses_forwarded);
      dup += static_cast<double>(out.stats.duplicates_dropped);
      responders += static_cast<double>(out.responders);
      if (out.first_response_ms.has_value()) {
        first_ms += *out.first_response_ms;
        ++answered;
      }
    }
    std::printf("%6d %8zu %12.1f %12.1f %12.2f %14.1f\n", ttl, degree,
                msgs / kProbes, dup / kProbes, responders / kProbes,
                answered ? first_ms / answered : -1.0);
  };

  std::printf("%6s %8s %12s %12s %12s %14s\n", "TTL", "degree", "msgs/probe",
              "dups/probe", "responders", "1st resp (ms)");
  for (const int ttl : {1, 2, 3, 4}) run_point(ttl, 4);
  std::printf("\n");
  for (const std::size_t degree : {2u, 4u, 8u, 12u}) run_point(3, degree);

  return 0;
}
