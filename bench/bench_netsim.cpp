// A-NETSIM: discrete-event simulator throughput (events/sec, packets/sec)
// — the substrate every experiment runs on.
//
// Self-gating (ISSUE 8): before any timing runs, three correctness gates
// execute and the process exits 1 if any fails, so a perf regression or
// a semantic drift in the rebuilt core can never publish numbers:
//
//  1. THROUGHPUT FLATNESS — events/s with 1M+ queued events must stay
//     >= 0.8x the 1k-queue rate (the old heap-of-std::function queue
//     collapsed to ~0.2x; the calendar queue must not).
//  2. ORDER BIT-IDENTITY — the calendar EventQueue must fire randomized
//     schedules (including events scheduled from inside callbacks, and
//     past-time clamping) in exactly the order of the retained
//     HeapEventQueue oracle.
//  3. CHURN ACCOUNTING — on a topology under connect/disconnect churn,
//     sent == delivered + dropped, every flow's emitted() matches the
//     network's accepted sends (emitted + errors = attempts), and the
//     per-link state maps stay flat.
//
// Gate diagnostics go to stderr; stdout stays pure google-benchmark
// output so tools/run_benchmarks.sh can parse the JSON.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "netsim/flow.h"
#include "netsim/heap_event_queue.h"
#include "netsim/network.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::netsim;

// --- gate 1: throughput flatness ------------------------------------

// Schedules `n` events over 997 distinct timestamps (the worst case for
// a naive calendar queue: occupancy >> windows) and drains the queue,
// `reps` times back to back; returns aggregate events/s.  Aggregating
// over comparable wall time for both queue sizes matters: a 150us
// 1k-event run can land entirely in a quiet scheduler slice that a
// 200ms 1M-event run must average over, and a best-of-N of such bursts
// would inflate the small-queue baseline with pure timing noise.
double aggregate_events_per_sec(std::int64_t n, int reps) {
  double total_sec = 0.0;
  for (int t = 0; t < reps; ++t) {
    EventQueue q;
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_at(SimTime::from_us(i % 997), [] {});
    }
    q.run();
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(q.processed());
    total_sec += std::chrono::duration<double>(stop - start).count();
  }
  return static_cast<double>(n) * reps / total_sec;
}

bool gate_throughput_flat() {
  constexpr std::int64_t kSmall = 1'000;
  constexpr std::int64_t kLarge = 1'048'576;  // 1M+ queued events
  (void)aggregate_events_per_sec(kSmall, 50);  // warm caches + allocator
  // A shared/virtualized runner can still eat one measurement; the gate
  // retries a bounded number of times before declaring a regression.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const double small_rate = aggregate_events_per_sec(kSmall, 400);
    const double large_rate = aggregate_events_per_sec(kLarge, 2);
    const double ratio = large_rate / small_rate;
    std::fprintf(stderr,
                 "[gate:throughput] attempt %d: 1k=%.3gM/s 1M=%.3gM/s "
                 "ratio=%.3f (floor 0.8)\n",
                 attempt, small_rate / 1e6, large_rate / 1e6, ratio);
    if (ratio >= 0.8) return true;
  }
  return false;
}

// --- gate 2: order bit-identity vs the heap oracle -------------------

// Replays one randomized schedule on a queue; returns the (id, at_us)
// firing trace.  Some events schedule children from inside their own
// callback (the pattern every simulator in the repo uses), and some are
// scheduled in the past to exercise the clamp-to-now rule.
template <typename Queue>
std::vector<std::pair<int, std::int64_t>> firing_trace(std::uint64_t seed,
                                                       int n_roots) {
  Queue q;
  std::vector<std::pair<int, std::int64_t>> trace;
  Rng rng{seed};
  int next_id = 0;
  // fire(): record, then maybe spawn two children relative to now.
  std::function<void(int)> fire = [&](int id) {
    trace.emplace_back(id, q.now().us);
    if (id % 7 == 3) {
      const int a = 1'000'000 + id * 2;
      const int b = a + 1;
      q.schedule_at(q.now() + SimDuration::from_us(id % 11),
                    [&fire, a] { fire(a); });
      // Past-time child: clamps to now, fires after already-queued
      // same-time events (FIFO by sequence).
      q.schedule_at(SimTime::from_us(q.now().us - 5), [&fire, b] { fire(b); });
    }
  };
  for (int i = 0; i < n_roots; ++i) {
    const int id = next_id++;
    q.schedule_at(SimTime::from_us(static_cast<std::int64_t>(
                      rng.uniform(2'000))),
                  [&fire, id] { fire(id); });
  }
  q.run();
  return trace;
}

bool gate_order_identity() {
  for (const std::uint64_t seed : {1ull, 42ull, 1337ull, 0xdeadbeefull}) {
    const auto oracle = firing_trace<HeapEventQueue>(seed, 2'000);
    const auto actual = firing_trace<EventQueue>(seed, 2'000);
    if (oracle != actual) {
      std::fprintf(stderr,
                   "[gate:order] seed=%llu: calendar queue diverged from "
                   "heap oracle (%zu vs %zu events)\n",
                   static_cast<unsigned long long>(seed), actual.size(),
                   oracle.size());
      return false;
    }
  }
  std::fprintf(stderr, "[gate:order] calendar == heap oracle on 4 seeds\n");
  return true;
}

// --- gate 3: accounting under topology churn -------------------------

bool gate_churn_accounting() {
  Network net{7};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  const NodeId d = net.add_node("d");
  const NodeId island = net.add_node("island");  // never connected

  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(2.0);
  cfg.drop_probability = 0.01;
  cfg.bandwidth_bytes_per_sec = 1e6;  // populates link_busy_until_
  (void)net.connect(a, b, cfg).value();
  LinkId mid = net.connect(b, c, cfg).value();
  (void)net.connect(c, d, cfg).value();
  (void)net.add_node_tap(d, [](const TapEvent&) {});

  FlowConfig fc;
  fc.id = FlowId{1};
  fc.src = a;
  fc.dst = d;
  fc.packets_per_sec = 2'000.0;
  fc.stop = SimTime::from_sec(1.0);
  FlowSource flow(net, fc, ArrivalProcess::kPoisson, 11);
  flow.start();

  FlowConfig pc = fc;
  pc.id = FlowId{2};
  pc.dst = island;  // partitioned: every send must be refused
  FlowSource partitioned(net, pc, ArrivalProcess::kConstant, 12);
  partitioned.start();

  // Churn the middle link every 50ms: packets in flight across the
  // removal are dropped-and-counted; reconnection re-routes new sends.
  std::function<void()> churn = [&] {
    (void)net.disconnect(mid);
    mid = net.connect(b, c, cfg).value();
    if (net.now() < SimTime::from_sec(0.9)) {
      net.clock().schedule_in(SimDuration::from_ms(50.0), [&churn] { churn(); });
    }
  };
  net.clock().schedule_in(SimDuration::from_ms(50.0), [&churn] { churn(); });

  net.run();

  bool ok = true;
  if (net.packets_sent() !=
      net.packets_delivered() + net.packets_dropped()) {
    std::fprintf(stderr, "[gate:churn] sent != delivered + dropped\n");
    ok = false;
  }
  if (flow.emitted() + partitioned.emitted() != net.packets_sent()) {
    std::fprintf(stderr, "[gate:churn] emitted != accepted sends\n");
    ok = false;
  }
  if (partitioned.emitted() != 0 || partitioned.errors() == 0) {
    std::fprintf(stderr, "[gate:churn] partitioned flow accounting wrong\n");
    ok = false;
  }
  // Per-link maps must not leak one entry per churned link.
  if (net.busy_link_entries() > net.link_count() ||
      net.link_tap_entries() > net.link_count()) {
    std::fprintf(stderr, "[gate:churn] per-link state leaked (%zu busy, "
                         "%zu tap entries, %zu links ever created)\n",
                 net.busy_link_entries(), net.link_tap_entries(),
                 net.link_count());
    ok = false;
  }
  if (net.packet_store().live() != 0) {
    std::fprintf(stderr, "[gate:churn] packet slots leaked: %zu live\n",
                 net.packet_store().live());
    ok = false;
  }
  if (ok) {
    std::fprintf(stderr,
                 "[gate:churn] sent=%llu delivered=%llu dropped=%llu "
                 "refused=%llu; maps flat\n",
                 static_cast<unsigned long long>(net.packets_sent()),
                 static_cast<unsigned long long>(net.packets_delivered()),
                 static_cast<unsigned long long>(net.packets_dropped()),
                 static_cast<unsigned long long>(partitioned.errors()));
  }
  return ok;
}

// --- benchmarks ------------------------------------------------------

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_at(SimTime::from_us(i % 997), [] {});
    }
    q.run();
    benchmark::DoNotOptimize(q.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(1024, 1 << 20);

// The retained oracle, benchmarked for the before/after comparison the
// JSON artifacts preserve.
void BM_HeapEventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    HeapEventQueue q;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_at(SimTime::from_us(i % 997), [] {});
    }
    q.run();
    benchmark::DoNotOptimize(q.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapEventQueueScheduleRun)->Range(1024, 1 << 17);

void BM_PacketDeliveryLine(benchmark::State& state) {
  // src -- r1 -- r2 -- dst line; measures full routed delivery.
  for (auto _ : state) {
    state.PauseTiming();
    Network net{1};
    const NodeId src = net.add_node("src");
    const NodeId r1 = net.add_node("r1");
    const NodeId r2 = net.add_node("r2");
    const NodeId dst = net.add_node("dst");
    (void)net.connect(src, r1).value();
    (void)net.connect(r1, r2).value();
    (void)net.connect(r2, dst).value();
    PacketHeader h;
    h.src = src;
    h.dst = dst;
    state.ResumeTiming();

    for (std::int64_t i = 0; i < state.range(0); ++i) {
      (void)net.send(FlowId{1}, h, Bytes(64, 0));
    }
    net.run();
    benchmark::DoNotOptimize(net.packets_delivered());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketDeliveryLine)->Range(256, 16384);

void BM_ShortestPathGrid(benchmark::State& state) {
  // k x k grid; BFS from corner to corner.
  const std::int64_t k = state.range(0);
  Network net{2};
  std::vector<NodeId> nodes;
  for (std::int64_t i = 0; i < k * k; ++i) {
    nodes.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < k; ++c) {
      if (c + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>(r * k + c + 1)]);
      }
      if (r + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>((r + 1) * k + c)]);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.shortest_path(nodes.front(), nodes.back()));
  }
}
BENCHMARK(BM_ShortestPathGrid)->Arg(8)->Arg(16)->Arg(32);

// Memoized routing: repeated sends on a fixed pair hit the RouteCache
// instead of re-running BFS per packet.
void BM_RouteCacheHit(benchmark::State& state) {
  const std::int64_t k = 16;
  Network net{5};
  std::vector<NodeId> nodes;
  for (std::int64_t i = 0; i < k * k; ++i) {
    nodes.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < k; ++c) {
      if (c + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>(r * k + c + 1)]);
      }
      if (r + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>((r + 1) * k + c)]);
      }
    }
  }
  PacketHeader h;
  h.src = nodes.front();
  h.dst = nodes.back();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      (void)net.send(FlowId{1}, h, Bytes(64, 0));
    }
    net.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["bfs_runs"] =
      static_cast<double>(net.route_cache().bfs_runs());
}
BENCHMARK(BM_RouteCacheHit);

void BM_FlowThroughTap(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Network net{3};
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    (void)net.connect(a, b).value();
    std::uint64_t tapped = 0;
    (void)net.add_node_tap(b, [&](const TapEvent&) { ++tapped; });
    FlowConfig cfg;
    cfg.id = FlowId{1};
    cfg.src = a;
    cfg.dst = b;
    cfg.packets_per_sec = static_cast<double>(state.range(0));
    cfg.stop = SimTime::from_sec(1.0);
    FlowSource flow(net, cfg, ArrivalProcess::kPoisson, 4);
    state.ResumeTiming();

    flow.start();
    net.run();
    benchmark::DoNotOptimize(tapped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowThroughTap)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  const bool gates_ok =
      gate_order_identity() && gate_churn_accounting() && gate_throughput_flat();
  if (!gates_ok) {
    std::fprintf(stderr, "A-NETSIM self-gates FAILED\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
