// A-NETSIM: discrete-event simulator throughput (events/sec, packets/sec)
// — the substrate every experiment runs on.

#include <benchmark/benchmark.h>

#include "netsim/flow.h"
#include "netsim/network.h"

namespace {

using namespace lexfor;
using namespace lexfor::netsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule_at(SimTime::from_us(i % 997), [] {});
    }
    q.run();
    benchmark::DoNotOptimize(q.processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Range(1024, 262144);

void BM_PacketDeliveryLine(benchmark::State& state) {
  // src -- r1 -- r2 -- dst line; measures full routed delivery.
  for (auto _ : state) {
    state.PauseTiming();
    Network net{1};
    const NodeId src = net.add_node("src");
    const NodeId r1 = net.add_node("r1");
    const NodeId r2 = net.add_node("r2");
    const NodeId dst = net.add_node("dst");
    (void)net.connect(src, r1).value();
    (void)net.connect(r1, r2).value();
    (void)net.connect(r2, dst).value();
    PacketHeader h;
    h.src = src;
    h.dst = dst;
    state.ResumeTiming();

    for (std::int64_t i = 0; i < state.range(0); ++i) {
      (void)net.send(FlowId{1}, h, Bytes(64, 0));
    }
    net.run();
    benchmark::DoNotOptimize(net.packets_delivered());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketDeliveryLine)->Range(256, 16384);

void BM_ShortestPathGrid(benchmark::State& state) {
  // k x k grid; BFS from corner to corner.
  const std::int64_t k = state.range(0);
  Network net{2};
  std::vector<NodeId> nodes;
  for (std::int64_t i = 0; i < k * k; ++i) {
    nodes.push_back(net.add_node("n" + std::to_string(i)));
  }
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t c = 0; c < k; ++c) {
      if (c + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>(r * k + c + 1)]);
      }
      if (r + 1 < k) {
        (void)net.connect(nodes[static_cast<std::size_t>(r * k + c)],
                          nodes[static_cast<std::size_t>((r + 1) * k + c)]);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.shortest_path(nodes.front(), nodes.back()));
  }
}
BENCHMARK(BM_ShortestPathGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_FlowThroughTap(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Network net{3};
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    (void)net.connect(a, b).value();
    std::uint64_t tapped = 0;
    (void)net.add_node_tap(b, [&](const TapEvent&) { ++tapped; });
    FlowConfig cfg;
    cfg.id = FlowId{1};
    cfg.src = a;
    cfg.dst = b;
    cfg.packets_per_sec = static_cast<double>(state.range(0));
    cfg.stop = SimTime::from_sec(1.0);
    FlowSource flow(net, cfg, ArrivalProcess::kPoisson, 4);
    state.ResumeTiming();

    flow.start();
    net.run();
    benchmark::DoNotOptimize(tapped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FlowThroughTap)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
