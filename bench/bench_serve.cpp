// Experiment A-SERVE: the verdict server under a million-subscriber
// synthetic fleet.
//
// Self-verifying, like A-STREAM: the bench exits non-zero unless
//   (1) server verdicts are bit-identical (on every wire-carried
//       field) to direct legal::BatchEvaluator evaluation, at every
//       worker count,
//   (2) admission accounting is EXACT under forced overload, with
//       malformed and version-skewed frames injected into the flood:
//       accepted + shed_queue_full + rejected_malformed +
//       rejected_version == offered,
//   (3) the steady state is arena-flat: after a warm-up batch, the
//       connection's arena never grows a chunk, slot/response
//       capacities never move, and — on the workers==1 inline path —
//       a batch performs ZERO heap allocations (a global operator new
//       override counts them); fan-out batches stay bounded by the
//       constant per-chunk dispatch cost,
//   (4) the serve.request_latency_ns histogram carries the samples the
//       throughput run produced (count == verdicts served).
// It reports verdicts/s and p50/p95/p99 per worker count, as
// A-SERVE-METRIC lines for tools/bench_diff.py.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "legal/batch.h"
#include "obs/obs.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting overrides: every heap allocation in the process ticks
// g_allocs.  The steady-state gate reads the counter around a batch.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using lexfor::legal::BatchEvaluator;
using lexfor::legal::BatchOptions;
using lexfor::legal::Determination;
using lexfor::serve::Connection;
using lexfor::serve::FleetOptions;
using lexfor::serve::ServeStats;
using lexfor::serve::ServerOptions;
using lexfor::serve::SyntheticFleet;
using lexfor::serve::VerdictServer;
namespace wire = lexfor::serve::wire;

using clock_type = std::chrono::steady_clock;

std::vector<wire::Response> decode_all(std::span<const std::uint8_t> buf) {
  std::vector<wire::Response> out;
  while (!buf.empty()) {
    const auto info = wire::peek_frame(buf);
    if (!info.ok()) break;
    wire::Response r;
    if (!wire::decode_response(buf.subspan(0, info.value().frame_len), r)
             .ok()) {
      break;
    }
    out.push_back(r);
    buf = buf.subspan(info.value().frame_len);
  }
  return out;
}

ServerOptions server_options(unsigned workers) {
  ServerOptions opts;
  opts.workers = workers;
  opts.queue_capacity = 16384;
  opts.grain = 512;
  opts.batch.use_shared_cache = false;
  return opts;
}

}  // namespace

int main() {
  std::printf("A-SERVE: verdict server vs direct evaluator, "
              "million-subscriber fleet\n\n");

  // Gate 1: verdict parity with the direct evaluator at every worker
  // count.  The fleet oracle says what each client asked; the direct
  // evaluator says what the answer must be.
  {
    FleetOptions fopts;
    fopts.fleet_size = 4096;
    const SyntheticFleet fleet(fopts);
    std::vector<std::uint8_t> wave;
    wave.reserve(fleet.max_bytes_per_client() * fopts.fleet_size);
    fleet.generate_wave(1, wave);

    BatchEvaluator direct(BatchOptions{.use_shared_cache = false});
    std::uint64_t mismatches = 0;
    for (const unsigned workers : {1u, 2u, 4u, 8u}) {
      VerdictServer server(server_options(workers));
      Connection conn = server.connect();
      const ServeStats stats = server.serve(conn, wave);
      const auto responses = decode_all(conn.responses());
      if (stats.accepted != fopts.fleet_size ||
          responses.size() != fopts.fleet_size) {
        ++mismatches;
        continue;
      }
      for (std::uint64_t c = 0; c < fopts.fleet_size; ++c) {
        const Determination d = direct.evaluate(fleet.scenario_for(1, c, 0));
        const wire::Response& r = responses[c];
        if (r.request_id != SyntheticFleet::request_id(1, c) ||
            r.needs_process != d.needs_process ||
            r.required_process != d.required_process ||
            r.required_proof != d.required_proof) {
          ++mismatches;
        }
      }
      std::printf("verdict parity @ %u workers: %s\n", workers,
                  mismatches == 0 ? "identical" : "DIVERGED");
    }
    if (mismatches != 0) {
      std::printf("A-SERVE FAILED: server verdicts diverged from the "
                  "direct evaluator\n");
      return 1;
    }
  }

  // Gate 2: exact admission accounting under forced overload, garbage
  // included.  A wave 4x the queue bound, with every 17th frame
  // version-skewed and every 23rd malformed.
  {
    FleetOptions fopts;
    fopts.fleet_size = 8192;
    const SyntheticFleet fleet(fopts);
    std::vector<std::uint8_t> wave;
    fleet.generate_wave(2, wave);

    // Corrupt in place: walk frames, poison selected ones.
    std::uint64_t skewed = 0, mangled = 0, index = 0;
    std::size_t at = 0;
    while (at < wave.size()) {
      const auto info = wire::peek_frame(
          std::span<const std::uint8_t>(wave).subspan(at));
      if (!info.ok()) break;
      if (index % 17 == 0) {
        wave[at + 4] = wire::kWireVersion + 1;
        ++skewed;
      } else if (index % 23 == 0) {
        wave[at + 6] = 0xFF;  // reserved byte: malformed payload
        ++mangled;
      }
      at += info.value().frame_len;
      ++index;
    }

    ServerOptions opts = server_options(2);
    opts.queue_capacity = 2048;
    VerdictServer server(opts);
    Connection conn = server.connect();
    const ServeStats s = server.serve(conn, wave);

    std::printf("\noverload accounting: offered=%llu accepted=%llu "
                "shed=%llu malformed=%llu version=%llu\n",
                static_cast<unsigned long long>(s.offered),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.shed_queue_full),
                static_cast<unsigned long long>(s.rejected_malformed),
                static_cast<unsigned long long>(s.rejected_version));
    const bool exact =
        s.balanced() && s.offered == fopts.fleet_size &&
        s.accepted == opts.queue_capacity &&
        s.rejected_version == skewed && s.rejected_malformed == mangled &&
        s.shed_queue_full ==
            fopts.fleet_size - opts.queue_capacity - skewed - mangled &&
        s.responses == s.accepted &&
        decode_all(conn.responses()).size() == s.accepted;
    if (!exact) {
      std::printf("A-SERVE FAILED: admission accounting not exact under "
                  "overload\n");
      return 1;
    }
    std::printf("accepted + shed + malformed + version == offered: exact\n");
  }

  // Gate 3: arena-flat, zero-alloc steady state.
  {
    FleetOptions fopts;
    fopts.fleet_size = 4096;
    const SyntheticFleet fleet(fopts);
    std::vector<std::uint8_t> wave;
    fleet.generate_wave(3, wave);

    std::printf("\n%8s %14s %12s %12s\n", "workers", "allocs/batch",
                "arena chunks", "arena bytes");
    bool flat = true;
    std::uint64_t inline_allocs = 0;
    for (const unsigned workers : {1u, 4u}) {
      VerdictServer server(server_options(workers));
      Connection conn = server.connect();
      // Two warm-up batches: grow capacities, warm the verdict table.
      server.serve(conn, wave);
      server.serve(conn, wave);
      const std::size_t chunks = conn.arena().chunk_count();
      const std::size_t reserved = conn.arena().bytes_reserved();
      const std::size_t slot_cap = conn.slot_capacity();
      const std::size_t resp_cap = conn.response_capacity();

      std::uint64_t max_batch_allocs = 0;
      for (int i = 0; i < 8; ++i) {
        const std::uint64_t before =
            g_allocs.load(std::memory_order_relaxed);
        server.serve(conn, wave);
        const std::uint64_t batch_allocs =
            g_allocs.load(std::memory_order_relaxed) - before;
        max_batch_allocs =
            batch_allocs > max_batch_allocs ? batch_allocs : max_batch_allocs;
      }
      flat = flat && conn.arena().chunk_count() == chunks &&
             conn.arena().bytes_reserved() == reserved &&
             conn.slot_capacity() == slot_cap &&
             conn.response_capacity() == resp_cap;
      std::printf("%8u %14llu %12zu %12zu\n", workers,
                  static_cast<unsigned long long>(max_batch_allocs), chunks,
                  reserved);
      if (workers == 1) {
        inline_allocs = max_batch_allocs;
      } else {
        // Fan-out pays only the per-chunk dispatch closures plus pool
        // queue churn: a fixed multiple of the chunk count.
        const std::uint64_t chunk_count =
            (fopts.fleet_size + 512 - 1) / 512;
        if (max_batch_allocs > 8 * chunk_count + 64) flat = false;
      }
    }
    std::printf("A-SERVE-METRIC steady_state_allocs_per_batch %llu\n",
                static_cast<unsigned long long>(inline_allocs));
    if (inline_allocs != 0) {
      std::printf("A-SERVE FAILED: workers==1 steady-state batch "
                  "allocated on the heap\n");
      return 1;
    }
    if (!flat) {
      std::printf("A-SERVE FAILED: connection footprint grew after "
                  "warm-up\n");
      return 1;
    }
    std::printf("steady state: zero allocs inline, footprint flat\n");
  }

  // Throughput + latency: a million subscribers served in bounded
  // batches, per worker count.  Gate 4: the latency histogram saw
  // every verdict.
  {
    constexpr std::uint64_t kFleetSize = 1'000'000;
    constexpr std::uint64_t kBatchClients = 8192;
    FleetOptions fopts;
    fopts.fleet_size = kFleetSize;
    const SyntheticFleet fleet(fopts);

    std::printf("\n%8s %14s %12s %12s %12s\n", "workers", "verdicts/s",
                "p50 ns", "p95 ns", "p99 ns");
    bool histogram_ok = true;
    for (const unsigned workers : {1u, 4u}) {
      auto& hist =
          lexfor::obs::metrics().histogram("serve.request_latency_ns");
      hist.reset();

      VerdictServer server(server_options(workers));
      Connection conn = server.connect();
      std::vector<std::uint8_t> batch;
      batch.reserve(fleet.max_bytes_per_client() * kBatchClients);

      // Warm the verdict table so the run measures steady state.
      batch.clear();
      fleet.generate(0, 0, kBatchClients, batch);
      server.serve(conn, batch);
      hist.reset();

      std::uint64_t served = 0;
      const auto t0 = clock_type::now();
      for (std::uint64_t first = 0; first < kFleetSize;
           first += kBatchClients) {
        const std::uint64_t count =
            first + kBatchClients <= kFleetSize ? kBatchClients
                                                : kFleetSize - first;
        batch.clear();
        fleet.generate(0, first, count, batch);
        served += server.serve(conn, batch).responses;
      }
      const auto t1 = clock_type::now();
      const double secs =
          std::chrono::duration<double>(t1 - t0).count();
      const double rate = static_cast<double>(served) / secs;
      const double p50 = hist.percentile(50);
      const double p95 = hist.percentile(95);
      const double p99 = hist.percentile(99);
      std::printf("%8u %14.0f %12.0f %12.0f %12.0f\n", workers, rate, p50,
                  p95, p99);
      std::printf("A-SERVE-METRIC verdicts_per_sec_w%u %.0f\n", workers,
                  rate);
      std::printf("A-SERVE-METRIC p99_ns_w%u %.0f\n", workers, p99);
      if (served != kFleetSize || hist.count() != served) {
        histogram_ok = false;
      }
    }
    if (!histogram_ok) {
      std::printf("A-SERVE FAILED: latency histogram lost verdicts\n");
      return 1;
    }
  }

  std::printf("\nA-SERVE OK: verdict parity, exact overload accounting, "
              "zero-alloc steady state, histogram complete\n");
  return 0;
}
