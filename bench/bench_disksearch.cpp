// A-CRYPTO/disk: known-file hash search over a disk image (Table-1
// scene 18 made measurable) and carving throughput.

#include <benchmark/benchmark.h>

#include "crypto/sha256.h"
#include "diskimage/hash_search.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::diskimage;

legal::GrantedAuthority warrant() {
  legal::LegalProcess p;
  p.id = ProcessId{1};
  p.kind = legal::ProcessKind::kSearchWarrant;
  p.issued_at = SimTime::zero();
  return legal::GrantedAuthority{p};
}

// Builds an image of `files` files of ~4KB each, 1% matching the known
// set, 10% deleted.
struct Workload {
  DiskImage disk;
  HashSearcher searcher{std::unordered_set<std::string>{}};

  explicit Workload(std::size_t files) {
    Rng rng{13};
    std::unordered_set<std::string> known;
    for (std::size_t i = 0; i < files; ++i) {
      Bytes content(4096);
      for (auto& b : content) b = static_cast<std::uint8_t>(rng());
      const std::string path = "/data/f" + std::to_string(i);
      (void)disk.write_file(path, content);
      if (i % 100 == 0) known.insert(crypto::Sha256::hex(content));
      if (i % 10 == 3) (void)disk.delete_file(path);
    }
    searcher = HashSearcher{std::move(known)};
  }
};

void BM_HashSearch(benchmark::State& state) {
  const Workload w(static_cast<std::size_t>(state.range(0)));
  const auto auth = warrant();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.searcher.search(w.disk, auth, legal::ProcessKind::kSearchWarrant,
                          "drive", SimTime::zero()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4096);
}
BENCHMARK(BM_HashSearch)->Range(64, 4096);

void BM_Carve(benchmark::State& state) {
  DiskImage disk(512);
  Rng rng{17};
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    Bytes obj = (i % 2 == 0) ? magic_jpeg() : magic_pdf();
    obj.resize(1024 + rng.uniform(2048), 0x5A);
    (void)disk.write_file("/o" + std::to_string(i), obj);
  }
  Carver carver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(carver.carve(disk));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(disk.raw().size()));
}
BENCHMARK(BM_Carve)->Range(16, 1024);

}  // namespace

BENCHMARK_MAIN();
