// A-CRYPTO: hashing throughput (the substrate of evidence integrity and
// known-file search).

#include <benchmark/benchmark.h>

#include "crypto/crc32.h"
#include "crypto/md5.h"
#include "crypto/sha256.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::crypto;

Bytes random_bytes(std::size_t n) {
  Rng rng{7};
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Range(64, 1 << 20);

void BM_Md5(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Range(64, 1 << 20);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Range(64, 1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(32);
  const Bytes msg = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Range(64, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
