// A-BATCH: batch compliance evaluation — serial engine vs. the
// cached/parallel BatchEvaluator.
//
// Replays the full Table-1 scene library as a 100k-query workload (the
// shape of a plan-lint or bulk-audit run: a small set of distinct legal
// scenarios queried over and over), then checks:
//
//   1. the parallel batch result is bit-identical to the serial loop,
//   2. the verdict cache absorbs >= 90% of the queries (obs counters),
//   3. throughput vs. the uncached serial engine (>= 4x expected on an
//      8-core host; on few-core hosts the pool cannot scale and the
//      cached hit path roughly matches the raw engine, which is already
//      a sub-microsecond rule-table walk).
//
// Exit status is 0 only when (1) and (2) hold; (3) is printed but not
// gated, since absolute speedup depends on the host's core count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "legal/batch.h"
#include "legal/engine.h"
#include "legal/table1.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::legal;

bool identical(const Determination& a, const Determination& b) {
  return a.scenario_name == b.scenario_name &&
         a.needs_process == b.needs_process &&
         a.required_process == b.required_process &&
         a.required_proof == b.required_proof &&
         a.governing_statutes == b.governing_statutes &&
         a.exceptions_applied == b.exceptions_applied &&
         a.rationale == b.rationale && a.citations == b.citations &&
         a.report() == b.report();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One cold-cache batch run with the given worker count.
struct BatchRun {
  std::vector<Determination> results;
  double seconds = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

BatchRun run_batch(const std::vector<Scenario>& workload, unsigned threads) {
  auto& hits = obs::metrics().counter("legal.batch.cache_hits");
  auto& misses = obs::metrics().counter("legal.batch.cache_misses");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  const BatchEvaluator evaluator{
      BatchOptions{.threads = threads, .use_shared_cache = false}};
  BatchRun run;
  const auto start = std::chrono::steady_clock::now();
  run.results = evaluator.evaluate_batch(workload);
  run.seconds = seconds_since(start);
  run.hits = hits.value() - hits_before;
  run.misses = misses.value() - misses_before;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: query count.  Non-numeric flags (the benchmark
  // harness passes --benchmark_* to every binary) are ignored.
  std::size_t queries = 100'000;
  if (argc > 1 && std::atoll(argv[1]) > 0) {
    queries = static_cast<std::size_t>(std::atoll(argv[1]));
  }

  // Table-1 replay, shuffled under a fixed seed so every run sees the
  // identical query stream.
  std::vector<Scenario> workload;
  workload.reserve(queries);
  const auto& scenes = table1::all_scenes();
  for (std::size_t i = 0; i < queries; ++i) {
    workload.push_back(scenes[i % scenes.size()].scenario);
  }
  Rng rng{2012};
  rng.shuffle(workload);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("A-BATCH: batch compliance evaluation, %zu queries over %zu "
              "distinct Table-1 scenes, %u core(s)\n\n",
              workload.size(), scenes.size(), cores);

  // Serial baseline: the raw engine, no cache, one thread — what every
  // evaluation path paid per query before the batch layer existed.
  const ComplianceEngine engine;
  std::vector<Determination> serial;
  serial.reserve(workload.size());
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& s : workload) serial.push_back(engine.evaluate(s));
  const double serial_s = seconds_since(serial_start);

  const BatchRun one = run_batch(workload, 1);
  const BatchRun wide = run_batch(workload, cores);

  const double hit_rate =
      static_cast<double>(wide.hits) / static_cast<double>(workload.size());

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    mismatches += !identical(serial[i], one.results[i]);
    mismatches += !identical(serial[i], wide.results[i]);
  }

  const auto qps = [&](double s) {
    return static_cast<double>(workload.size()) / s;
  };
  std::printf("serial engine       : %8.3f s  (%12.0f eval/s)\n", serial_s,
              qps(serial_s));
  std::printf("batch, 1 thread     : %8.3f s  (%12.0f eval/s)  speedup %.1fx\n",
              one.seconds, qps(one.seconds), serial_s / one.seconds);
  std::printf("batch, %2u thread(s) : %8.3f s  (%12.0f eval/s)  speedup %.1fx\n",
              cores, wide.seconds, qps(wide.seconds), serial_s / wide.seconds);
  std::printf("pool scaling        : %.1fx over 1-thread batch\n",
              one.seconds / wide.seconds);
  std::printf("cache               : %llu hits / %llu misses  "
              "(hit rate %.2f%%)\n",
              static_cast<unsigned long long>(wide.hits),
              static_cast<unsigned long long>(wide.misses), 100.0 * hit_rate);
  std::printf("bit-identical       : %s (%zu mismatches)\n",
              mismatches == 0 ? "yes" : "NO", mismatches);
  std::printf("speedup >= 4x       : %s (informational; expected on >= 8 "
              "cores)\n",
              serial_s / wide.seconds >= 4.0 ? "yes" : "no");

  const bool ok = mismatches == 0 && hit_rate >= 0.90;
  std::printf("\nA-BATCH %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
