// E-IVB baseline comparison: active DSSS watermarking vs passive
// flow-correlation, on identical network conditions and matched
// observation time.  The paper's claim to reproduce (§IV.B): "we claim
// the method is more effective than other methods" — expect the
// watermark to hold its success rate as relay mixing grows while the
// passive baseline collapses, and to scale better with decoy count.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "tornet/baseline.h"
#include "util/rng.h"
#include "util/stats.h"
#include "watermark/correlate.h"

int main() {
  using namespace lexfor::tornet;

  std::printf("E-IVB baseline: active watermark vs passive correlation\n");
  std::printf("(success = suspect identified with zero decoy confusion; "
              "5 trials per point)\n\n");

  constexpr int kTrials = 5;

  std::printf("Series 1: success vs relay jitter (degree 9, depth 0.35, "
              "6 decoys)\n");
  std::printf("%12s %18s %18s\n", "jitter (ms)", "watermark", "passive");
  for (const double jitter : {20.0, 60.0, 120.0, 250.0, 500.0}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 400.0;
    cfg.depth = 0.35;
    cfg.num_decoys = 6;
    cfg.network.relay_jitter_ms = jitter;
    cfg.network.relay_batch_ms = jitter / 2.0;
    cfg.seed = 71;
    const auto r = run_baseline_comparison(cfg, kTrials).value();
    std::printf("%12.0f %18.2f %18.2f\n", jitter, r.watermark_success_rate,
                r.passive_success_rate);
  }

  std::printf("\nSeries 2: success vs decoy count (jitter 250ms)\n");
  std::printf("%12s %18s %18s\n", "decoys", "watermark", "passive");
  for (const std::size_t decoys : {2u, 4u, 8u, 16u, 32u}) {
    TracebackConfig cfg;
    cfg.pn_degree = 9;
    cfg.chip_ms = 400.0;
    cfg.depth = 0.35;
    cfg.num_decoys = decoys;
    cfg.network.relay_jitter_ms = 250.0;
    cfg.network.relay_batch_ms = 125.0;
    cfg.seed = 73;
    const auto r = run_baseline_comparison(cfg, kTrials).value();
    std::printf("%12zu %18.2f %18.2f\n", decoys, r.watermark_success_rate,
                r.passive_success_rate);
  }

  std::printf("\nSeries 3: success vs observation time (jitter 250ms, via "
              "code degree)\n");
  std::printf("%8s %14s %18s %18s\n", "degree", "observe (s)", "watermark",
              "passive");
  for (const int degree : {6, 7, 8, 9, 10}) {
    TracebackConfig cfg;
    cfg.pn_degree = degree;
    cfg.chip_ms = 400.0;
    cfg.depth = 0.35;
    cfg.num_decoys = 6;
    cfg.network.relay_jitter_ms = 250.0;
    cfg.network.relay_batch_ms = 125.0;
    cfg.seed = 79;
    const auto r = run_baseline_comparison(cfg, kTrials).value();
    std::printf("%8d %14.1f %18.2f %18.2f\n", degree, r.observation_sec,
                r.watermark_success_rate, r.passive_success_rate);
  }

  // Gate: the passive baseline now scores flows through the shared
  // CorrelationKernel::cross_score; it must still be bit-identical to
  // the naive pearson it replaced, or the comparison above is invalid.
  {
    lexfor::Rng rng{4242};
    bool identical = true;
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t n = 2 + rng.uniform(300);
      std::vector<double> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.normal(120.0, 30.0);
        b[i] = 0.5 * a[i] + rng.normal(0.0, 12.0);
      }
      const double kernel =
          lexfor::watermark::CorrelationKernel::cross_score(a, b);
      const double naive = lexfor::pearson(a, b);
      identical = identical && std::bit_cast<std::uint64_t>(kernel) ==
                                   std::bit_cast<std::uint64_t>(naive);
    }
    if (!identical) {
      std::printf("\nE-IVB FAILED: cross_score diverged from the naive "
                  "pearson oracle\n");
      return 1;
    }
    std::printf("\nE-IVB gate OK: kernel cross_score bit-identical to the "
                "pearson oracle\n");
  }
  return 0;
}
