// Experiment E-SCA (paper §III.A.3): the ECS/RCS lifecycle and the
// § 2703 compelled-disclosure ladder, as a matrix.
//
// Rows: provider type x message lifecycle state.  Columns: the minimum
// process to compel each disclosure kind.  The paper's Alice/Bob
// walk-through appears as the "non-public / opened" row falling out of
// the SCA (Fourth Amendment only).

#include <cstdio>

#include "storedcomm/provider.h"

int main() {
  using namespace lexfor;
  using namespace lexfor::storedcomm;

  std::printf("E-SCA: compelled-disclosure matrix (paper III.A.3)\n\n");
  std::printf("%-34s %-14s %-22s %-22s %-22s\n", "provider / message state",
              "SCA class", "subscriber recs", "transactional recs", "content");

  struct Case {
    const char* label;
    ProviderPublicity publicity;
    bool opened;
  };
  const Case cases[] = {
      {"public (Gmail-like), unopened", ProviderPublicity::kPublic, false},
      {"public (Gmail-like), opened", ProviderPublicity::kPublic, true},
      {"non-public (university), unopened", ProviderPublicity::kNonPublic, false},
      {"non-public (university), opened", ProviderPublicity::kNonPublic, true},
  };

  for (const auto& c : cases) {
    Provider provider("bench-provider", c.publicity);
    const AccountId account =
        provider.create_account("user@host", {"User", "Addr", "Pay"});
    (void)account;
    const auto msg = provider
                         .deliver("user@host", "peer@other", "subject",
                                  to_bytes("body"), SimTime::zero())
                         .value();
    if (c.opened) {
      (void)provider.open_message(msg, SimTime::from_sec(60));
    }

    const auto cls = provider.classify(msg);
    const auto sub =
        provider.required_process(DisclosureKind::kBasicSubscriber, msg);
    const auto rec =
        provider.required_process(DisclosureKind::kTransactionalRecords, msg);
    const auto content = provider.required_process(DisclosureKind::kContent, msg);

    std::printf("%-34s %-14s %-22s %-22s %-22s\n", c.label,
                std::string(legal::to_string(cls)).c_str(),
                std::string(legal::to_string(sub.required_process)).c_str(),
                std::string(legal::to_string(rec.required_process)).c_str(),
                std::string(legal::to_string(content.required_process)).c_str());
  }

  std::printf("\nAlice/Bob walk-through (paper's example):\n");
  Provider gmail("gmail", ProviderPublicity::kPublic);
  Provider univ("cs.charlie.edu", ProviderPublicity::kNonPublic);
  (void)gmail.create_account("bob@gmail.com", {"Bob", "", ""});
  (void)univ.create_account("alice@cs.charlie.edu", {"Alice", "", ""});

  const auto to_bob = gmail
                          .deliver("bob@gmail.com", "alice@cs.charlie.edu",
                                   "hi", to_bytes("hello bob"), SimTime::zero())
                          .value();
  std::printf("  1. Alice->Bob arrives at Gmail:        %s\n",
              std::string(legal::to_string(gmail.classify(to_bob))).c_str());
  (void)gmail.open_message(to_bob, SimTime::from_sec(10));
  std::printf("  2. Bob opens and stores it:            %s\n",
              std::string(legal::to_string(gmail.classify(to_bob))).c_str());

  const auto to_alice = univ
                            .deliver("alice@cs.charlie.edu", "bob@gmail.com",
                                     "re: hi", to_bytes("hello alice"),
                                     SimTime::zero())
                            .value();
  std::printf("  3. Bob->Alice awaits at university:    %s\n",
              std::string(legal::to_string(univ.classify(to_alice))).c_str());
  (void)univ.open_message(to_alice, SimTime::from_sec(20));
  std::printf("  4. Alice opens it (drops out of SCA):  %s\n",
              std::string(legal::to_string(univ.classify(to_alice))).c_str());

  // Voluntary-disclosure rules (§ 2702).
  std::printf("\nVoluntary disclosure to the government (SCA 2702):\n");
  const auto bob_account = gmail.find_account("bob@gmail.com")->id;
  const auto alice_account = univ.find_account("alice@cs.charlie.edu")->id;
  const auto denied = gmail.voluntary_disclosure_to_government(
      DisclosureKind::kContent, bob_account, false, false);
  std::printf("  public provider, no emergency/consent: %s\n",
              denied.ok() ? "ALLOWED (wrong!)" : "refused");
  const auto emergency = gmail.voluntary_disclosure_to_government(
      DisclosureKind::kContent, bob_account, true, false);
  std::printf("  public provider, emergency:            %s\n",
              emergency.ok() ? "allowed" : "refused (wrong!)");
  const auto nonpublic = univ.voluntary_disclosure_to_government(
      DisclosureKind::kContent, alice_account, false, false);
  std::printf("  non-public provider, freely:           %s\n",
              nonpublic.ok() ? "allowed" : "refused (wrong!)");
  return 0;
}
