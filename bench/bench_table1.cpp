// Regenerates Table 1 of the paper: twenty digital crime scenes, the
// paper's verdict, the engine's verdict, and the minimum process the
// engine derives.  This is the paper's entire quantitative evaluation;
// the "Match" column must read "yes" on every row.

#include <cstdio>

#include "legal/engine.h"
#include "legal/table1.h"

int main() {
  using namespace lexfor::legal;

  std::printf("TABLE 1: WARRANT/COURT ORDER/SUBPOENA IN DIGITAL CRIME SCENES\n");
  std::printf("(paper verdict vs. compliance-engine verdict; (*) = paper's "
              "own judgment)\n\n");
  std::printf("%3s  %-66s %-12s %-12s %-28s %s\n", "#", "Scene",
              "Paper", "Engine", "Minimum process", "Match");
  std::printf("%.*s\n", 140,
              "----------------------------------------------------------------"
              "----------------------------------------------------------------"
              "------------");

  ComplianceEngine engine;
  int matches = 0;
  for (const auto& scene : table1::all_scenes()) {
    const Determination d = engine.evaluate(scene.scenario);
    const bool match = d.needs_process == scene.paper_says_need;
    matches += match;
    std::printf("%3d  %-66.66s %-12s %-12s %-28s %s\n", scene.number,
                scene.summary.c_str(),
                (std::string(scene.paper_says_need ? "Need" : "No need") +
                 (scene.author_judgment ? " (*)" : ""))
                    .c_str(),
                d.verdict().c_str(),
                d.needs_process ? std::string(to_string(d.required_process)).c_str()
                                : "-",
                match ? "yes" : "NO");
  }
  std::printf("\n%d/20 rows reproduced.\n", matches);

  // One full rationale as a sample of the engine's citation-backed output.
  std::printf("\n--- sample determination (scene 18) ---\n%s\n",
              engine.evaluate(table1::scene(18).scenario).report().c_str());
  return matches == 20 ? 0 : 1;
}
