// A-ENGINE: compliance-engine throughput.
//
// The engine sits on every acquisition path (capture devices, provider
// disclosure, disk examination), so determinations must be cheap.  This
// measures evaluations/second over the Table-1 scenes and over
// randomized scenarios covering the whole input space.

#include <benchmark/benchmark.h>

#include "legal/caselaw.h"
#include "legal/engine.h"
#include "legal/table1.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::legal;

void BM_EvaluateTable1Scene(benchmark::State& state) {
  ComplianceEngine engine;
  const auto& scene = table1::scene(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(scene.scenario));
  }
}
BENCHMARK(BM_EvaluateTable1Scene)->DenseRange(1, 20, 5);

Scenario random_scenario(Rng& rng) {
  Scenario s;
  s.actor = static_cast<ActorKind>(rng.uniform(4));
  s.data = static_cast<DataKind>(rng.uniform(4));
  s.state = static_cast<DataState>(rng.uniform(4));
  s.timing = static_cast<Timing>(rng.uniform(2));
  s.provider = static_cast<ProviderClass>(rng.uniform(4));
  s.consent = static_cast<ConsentKind>(rng.uniform(10));
  s.knowingly_exposed_to_public = rng.bernoulli(0.2);
  s.shared_with_third_party = rng.bernoulli(0.2);
  s.delivered_to_recipient = rng.bernoulli(0.2);
  s.readily_accessible_to_public = rng.bernoulli(0.2);
  s.exigent_circumstances = rng.bernoulli(0.1);
  s.in_plain_view = rng.bernoulli(0.1);
  s.target_on_probation = rng.bernoulli(0.1);
  s.is_victim_system = rng.bernoulli(0.1);
  s.message_opened_by_recipient = rng.bernoulli(0.3);
  s.contents_previously_lawfully_acquired = rng.bernoulli(0.1);
  return s;
}

void BM_EvaluateRandomScenarios(benchmark::State& state) {
  ComplianceEngine engine;
  Rng rng{42};
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 1024; ++i) scenarios.push_back(random_scenario(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(scenarios[i & 1023]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluateRandomScenarios);

void BM_DeterminationReport(benchmark::State& state) {
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(18).scenario);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.report());
  }
}
BENCHMARK(BM_DeterminationReport);

void BM_CaseLawLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_case("katz-1967"));
    benchmark::DoNotOptimize(find_case("sloane-2008"));
  }
}
BENCHMARK(BM_CaseLawLookup);

}  // namespace

BENCHMARK_MAIN();
