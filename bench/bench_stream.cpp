// Experiment A-STREAM: bounded-memory streaming despread vs the batch
// oracle.
//
// Self-verifying, like bench_watermark's A-SCAN: the bench exits
// non-zero unless
//   (1) the OnlineDespreader's verdict is bit-identical to the batch
//       CorrelationKernel::scan on randomized flows/codes/offsets,
//   (2) peak state is exactly O(ring capacity + code length) doubles
//       and never grows over a stream 50x the code length,
//   (3) a TapSession under a court order admits the §IV.B collection
//       posture while a content-grab with the same order is refused,
//   (4) run_streaming_traceback's single-pass TapRegistry fan-out is
//       bit-identical to the per-suspect re-simulation loop and its
//       simulation pass count stays at 1 regardless of suspect count.
// It also reports the per-bin ingest cost (the number an ISP-side
// deployment would size hardware against) and the single-pass vs
// per-suspect wall time.

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "legal/process.h"
#include "stream/online_despread.h"
#include "stream/tap_session.h"
#include "tornet/traceback.h"
#include "util/rng.h"
#include "watermark/correlate.h"
#include "watermark/pn_code.h"

namespace {

using lexfor::Rng;
using lexfor::stream::OnlineDespreader;
using lexfor::watermark::CorrelationKernel;
using lexfor::watermark::PnCode;

std::vector<double> random_series(const PnCode& code, std::size_t offset,
                                  std::size_t tail, bool marked,
                                  double sigma, Rng& rng) {
  std::vector<double> rates;
  rates.reserve(offset + code.length() + tail);
  for (std::size_t i = 0; i < offset; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, sigma));
  }
  for (const auto c : code.chips()) {
    const double mark = marked ? 30.0 * static_cast<double>(c) : 0.0;
    rates.push_back(100.0 + mark + rng.normal(0.0, sigma));
  }
  for (std::size_t i = 0; i < tail; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, sigma));
  }
  return rates;
}

bool bit_identical(const lexfor::watermark::ScanResult& a,
                   const lexfor::watermark::ScanResult& b) {
  return a.offset == b.offset && a.best.detected == b.best.detected &&
         std::bit_cast<std::uint64_t>(a.best.correlation) ==
             std::bit_cast<std::uint64_t>(b.best.correlation) &&
         std::bit_cast<std::uint64_t>(a.best.threshold) ==
             std::bit_cast<std::uint64_t>(b.best.threshold);
}

}  // namespace

int main() {
  std::printf("A-STREAM: online despreader vs batch scan oracle\n\n");

  // Gate 1: randomized bit-identity.
  {
    Rng rng{20260805};
    constexpr int kTrials = 300;
    int mismatches = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const int degree = 5 + static_cast<int>(rng.uniform(6));  // 5..10
      const auto code = PnCode::m_sequence(degree).value();
      const std::size_t max_offset = rng.uniform(96);
      const std::size_t embed = rng.uniform(max_offset + 1);
      const std::size_t tail = max_offset - embed + rng.uniform(20);
      const double sigma = 1.0 + 40.0 * rng.uniform01();
      const auto rates = random_series(code, embed, tail,
                                       rng.bernoulli(0.5), sigma, rng);

      const CorrelationKernel kernel(code);
      OnlineDespreader online(kernel, max_offset);
      for (const double r : rates) (void)online.push(r);
      const auto batch = kernel.scan(rates, max_offset).value();
      if (!online.verdict().complete ||
          !bit_identical(online.verdict().scan, batch)) {
        ++mismatches;
      }
    }
    std::printf("bit-identity: %d/%d randomized trials identical\n",
                kTrials - mismatches, kTrials);
    if (mismatches != 0) {
      std::printf("A-STREAM FAILED: streaming verdict diverged from the "
                  "batch oracle\n");
      return 1;
    }
  }

  // Gate 2 + ingest cost: memory must stay flat while we time push().
  std::printf("\n%8s %10s %12s %14s %12s\n", "degree", "max_off",
              "bins", "state doubles", "ns/bin");
  {
    using clock = std::chrono::steady_clock;
    Rng rng{99};
    bool memory_ok = true;
    for (const int degree : {8, 10, 12}) {
      for (const std::size_t max_offset : {std::size_t{0}, std::size_t{256}}) {
        const auto code = PnCode::m_sequence(degree).value();
        const CorrelationKernel kernel(code);
        const std::size_t n = code.length();
        const std::size_t bins = 50 * n;
        std::vector<double> stream(bins);
        for (auto& r : stream) r = rng.normal(100.0, 15.0);

        OnlineDespreader online(kernel, max_offset);
        const std::size_t expected = n + max_offset;
        double sink = 0.0;  // defeat dead-code elimination
        const auto t0 = clock::now();
        for (const double r : stream) {
          const auto score = online.push(r);
          if (score) sink += score->correlation;
          if (online.memory_doubles() != expected) memory_ok = false;
        }
        const auto t1 = clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            static_cast<double>(bins);
        std::printf("%8d %10zu %12zu %14zu %12.1f\n", degree, max_offset,
                    bins, online.memory_doubles(), ns);
        if (sink == -1.0) std::printf("%f\n", sink);
      }
    }
    if (!memory_ok) {
      std::printf("A-STREAM FAILED: despreader state grew during the "
                  "stream\n");
      return 1;
    }
  }

  // Gate 3: the legal gate holds.  A court order admits non-content
  // rate collection; the same order does NOT admit a content grab.
  {
    const auto code = PnCode::m_sequence(6).value();
    const CorrelationKernel kernel(code);

    lexfor::legal::LegalProcess order;
    order.kind = lexfor::legal::ProcessKind::kCourtOrder;
    order.scope.data_kinds = {lexfor::legal::DataKind::kAddressing};
    order.issued_at = lexfor::SimTime::zero();
    order.validity = lexfor::SimDuration::from_sec(30 * 24 * 3600.0);

    lexfor::stream::TapSessionConfig cfg;
    cfg.scenario = lexfor::legal::Scenario{}
                       .named("streaming rate collection")
                       .by(lexfor::legal::ActorKind::kLawEnforcement)
                       .acquiring(lexfor::legal::DataKind::kAddressing)
                       .located(lexfor::legal::DataState::kInTransit)
                       .when(lexfor::legal::Timing::kRealTime);
    cfg.authority = lexfor::legal::GrantedAuthority{order};
    cfg.target = lexfor::NodeId{1};
    cfg.ring.start = lexfor::SimTime::zero();
    cfg.ring.bin_width = lexfor::SimDuration::from_ms(400.0);
    cfg.ring.capacity = 128;

    const auto admitted =
        lexfor::stream::TapSession::create(kernel, cfg);
    auto content_cfg = cfg;
    content_cfg.scenario =
        content_cfg.scenario.acquiring(lexfor::legal::DataKind::kContent);
    const auto refused =
        lexfor::stream::TapSession::create(kernel, content_cfg);

    std::printf("\nlegal gate: court-order rate tap %s, content grab %s\n",
                admitted.ok() ? "admitted" : "REFUSED",
                refused.ok() ? "ADMITTED" : "refused");
    if (!admitted.ok() || refused.ok()) {
      std::printf("A-STREAM FAILED: admission gate gave the wrong answer\n");
      return 1;
    }
  }

  // Gate 4: single-pass multi-tap collection.  run_streaming_traceback
  // taps every candidate flow through one stream::TapRegistry during
  // ONE simulation pass; the per-suspect re-simulation loop is the
  // reference.  Results must be bit-identical and the pass count must
  // not scale with the suspect count — that is the whole point of the
  // registry.
  {
    using clock = std::chrono::steady_clock;
    std::printf("\nsingle-pass tap registry vs per-suspect re-simulation\n");
    std::printf("%8s %10s %10s %14s %14s\n", "suspects", "passes",
                "ref passes", "single ms", "per-suspect ms");
    bool identical = true, pass_count_ok = true;
    for (const std::size_t decoys : {std::size_t{3}, std::size_t{8}}) {
      lexfor::tornet::TracebackConfig cfg;
      cfg.pn_degree = 8;
      cfg.chip_ms = 400.0;
      cfg.depth = 0.35;
      cfg.base_rate_pps = 120.0;
      cfg.num_decoys = decoys;
      cfg.seed = 424242;

      const auto t0 = clock::now();
      const auto single = lexfor::tornet::run_streaming_traceback(cfg).value();
      const auto t1 = clock::now();
      auto ref_cfg = cfg;
      ref_cfg.resimulate_per_suspect = true;
      const auto reference =
          lexfor::tornet::run_streaming_traceback(ref_cfg).value();
      const auto t2 = clock::now();

      pass_count_ok = pass_count_ok && single.sim_passes == 1 &&
                      reference.sim_passes == 1 + decoys;
      identical = identical && single.flows.size() == reference.flows.size();
      for (std::size_t i = 0;
           identical && i < single.flows.size(); ++i) {
        identical =
            std::bit_cast<std::uint64_t>(single.flows[i].detection.correlation) ==
                std::bit_cast<std::uint64_t>(
                    reference.flows[i].detection.correlation) &&
            single.flows[i].detection.detected ==
                reference.flows[i].detection.detected;
      }
      const double single_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double loop_ms =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      std::printf("%8zu %10llu %10llu %14.1f %14.1f\n", decoys + 1,
                  static_cast<unsigned long long>(single.sim_passes),
                  static_cast<unsigned long long>(reference.sim_passes),
                  single_ms, loop_ms);
      std::printf("A-STREAM-METRIC single_pass_%zu_suspects_ms %.1f\n",
                  decoys + 1, single_ms);
      std::printf("A-STREAM-METRIC per_suspect_%zu_suspects_ms %.1f\n",
                  decoys + 1, loop_ms);
    }
    if (!pass_count_ok) {
      std::printf("A-STREAM FAILED: simulation pass count scaled with the "
                  "suspect count\n");
      return 1;
    }
    if (!identical) {
      std::printf("A-STREAM FAILED: single-pass verdicts diverged from the "
                  "per-suspect loop\n");
      return 1;
    }
  }

  std::printf("\nA-STREAM OK: bit-identical verdicts, flat memory, "
              "admission gate enforced, single-pass == per-suspect loop\n");
  return 0;
}
