// E-IVB extension: Gold-code multi-flow traceback — marking every
// account on the seized server simultaneously, each with its own code
// from a Gold family, and identifying which account the observed client
// corresponds to.  This is the natural scale-up of the paper's single
// suspect scenario ("they find a lot of accounts on that server").

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "tornet/traceback.h"
#include "watermark/gold_code.h"
#include "watermark/multibit.h"
#include "watermark/scan_batch.h"

namespace {

using lexfor::tornet::MultiflowConfig;
using lexfor::tornet::run_multiflow_traceback;

struct Row {
  double accuracy;
  double mean_margin;
};

Row sweep(MultiflowConfig base, int trials) {
  Row row{0, 0};
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    auto cfg = base;
    cfg.seed = 500 + static_cast<std::uint64_t>(t) * 97;
    cfg.true_account = static_cast<std::size_t>(t) % base.num_accounts;
    const auto r = run_multiflow_traceback(cfg).value();
    correct += r.correct;
    row.mean_margin += r.margin;
  }
  row.accuracy = static_cast<double>(correct) / trials;
  row.mean_margin /= trials;
  return row;
}

}  // namespace

int main() {
  std::printf("E-IVB/multiflow: Gold-code account identification "
              "(degree-9 family, 511 chips, 10 trials per point)\n\n");

  constexpr int kTrials = 10;

  std::printf("Series 1: accuracy vs number of concurrently marked accounts\n");
  std::printf("%12s %12s %14s\n", "accounts", "accuracy", "mean margin");
  for (const std::size_t accounts : {2u, 4u, 8u, 16u, 32u, 64u}) {
    MultiflowConfig cfg;
    cfg.gold_degree = 9;
    cfg.num_accounts = accounts;
    cfg.chip_ms = 400.0;
    cfg.depth = 0.35;
    const auto row = sweep(cfg, kTrials);
    std::printf("%12zu %12.2f %14.4f\n", accounts, row.accuracy,
                row.mean_margin);
  }

  std::printf("\nSeries 2: accuracy vs relay jitter (8 accounts)\n");
  std::printf("%12s %12s %14s\n", "jitter (ms)", "accuracy", "mean margin");
  for (const double jitter : {30.0, 100.0, 200.0, 400.0}) {
    MultiflowConfig cfg;
    cfg.gold_degree = 9;
    cfg.num_accounts = 8;
    cfg.chip_ms = 400.0;
    cfg.depth = 0.35;
    cfg.network.relay_jitter_ms = jitter;
    const auto row = sweep(cfg, kTrials);
    std::printf("%12.0f %12.2f %14.4f\n", jitter, row.accuracy,
                row.mean_margin);
  }

  std::printf("\nSeries 3: accuracy vs modulation depth (8 accounts)\n");
  std::printf("%12s %12s %14s\n", "depth", "accuracy", "mean margin");
  for (const double depth : {0.1, 0.2, 0.35, 0.5}) {
    MultiflowConfig cfg;
    cfg.gold_degree = 9;
    cfg.num_accounts = 8;
    cfg.chip_ms = 400.0;
    cfg.depth = depth;
    const auto row = sweep(cfg, kTrials);
    std::printf("%12.2f %12.2f %14.4f\n", depth, row.accuracy,
                row.mean_margin);
  }

  // Series 4: multi-bit payload through the network.  Embed a 16-bit
  // case id (each bit spread over 63 chips of a degree-10 code) in the
  // suspect flow's rate and decode it from the binned arrivals at the
  // ISP; report bit error rate vs relay jitter.
  std::printf("\nSeries 4: 16-bit payload BER vs relay jitter "
              "(63 chips/bit, depth 0.35, 10 trials)\n");
  std::printf("%12s %12s\n", "jitter (ms)", "mean BER");
  {
    using namespace lexfor;
    const auto code = watermark::PnCode::m_sequence(10).value();
    const std::vector<std::int8_t> case_id = {1, -1, 1, 1, -1, -1, 1, -1,
                                              -1, 1, -1, 1, 1, -1, 1, 1};
    watermark::MultiBitParams mp;
    mp.start = SimTime::zero();
    mp.chip_duration = SimDuration::from_ms(400.0);
    mp.depth = 0.35;
    mp.chips_per_bit = 63;
    const auto embedder =
        watermark::MultiBitEmbedder::create(code, case_id, mp).value();
    const std::size_t n_chips = case_id.size() * mp.chips_per_bit;
    const double chip_sec = 0.4;
    const double t_end = chip_sec * static_cast<double>(n_chips) + 2.0;

    for (const double jitter : {30.0, 100.0, 200.0, 400.0}) {
      tornet::TorConfig net_cfg;
      net_cfg.relay_jitter_ms = jitter;
      tornet::AnonymityNetwork net(net_cfg);
      double ber_sum = 0.0;
      constexpr int kBerTrials = 10;
      for (int t = 0; t < kBerTrials; ++t) {
        Rng rng(9000 + static_cast<std::uint64_t>(t) * 31);
        const auto circuit = net.build_circuit(rng).value();
        const auto sends = tornet::generate_modulated_poisson(
            150.0, t_end, 1.0 + mp.depth,
            [&embedder](double t_sec) {
              return embedder.multiplier(SimTime::from_sec(t_sec));
            },
            rng);
        const auto arrivals = net.transit(circuit, sends, rng);
        const double shift =
            3.0 * (net_cfg.hop_latency_ms + net_cfg.relay_jitter_ms +
                   net_cfg.relay_batch_ms / 2.0) * 1e-3;
        const auto bins =
            tornet::bin_arrivals(arrivals, shift, chip_sec, n_chips);
        std::vector<double> rates(bins.begin(), bins.end());
        const watermark::MultiBitDecoder decoder(code, mp.chips_per_bit);
        ber_sum += decoder.decode_and_compare(rates, case_id)
                       .value()
                       .bit_error_rate;
      }
      std::printf("%12.0f %12.4f\n", jitter, ber_sum / kBerTrials);
    }
  }

  // Series 5 / experiment A-SCAN (parallel side): the whole Gold family
  // scanning one tap through watermark::ScanBatch, against the serial
  // per-account loop.  Self-verifying: the fanned-out correlations must
  // be bit-identical to the serial ones, or the bench exits non-zero.
  std::printf("\nSeries 5 (A-SCAN): serial vs ScanBatch multi-code offset "
              "scan (degree-9 Gold family, 65 codes, max_offset 128)\n");
  std::printf("%10s %14s %10s\n", "threads", "scan ms", "speedup");
  {
    using namespace lexfor;
    using clock = std::chrono::steady_clock;
    const auto family = watermark::GoldCodeFamily::create(9).value();
    const std::size_t n_chips = family.code_length();
    const std::size_t max_offset = 128;
    Rng rng{7777};
    std::vector<double> rates;
    for (std::size_t i = 0; i < n_chips + max_offset + 32; ++i) {
      rates.push_back(100.0 + rng.normal(0.0, 20.0));
    }
    std::vector<watermark::CorrelationKernel> kernels;
    kernels.reserve(family.size());
    for (std::size_t a = 0; a < family.size(); ++a) {
      kernels.emplace_back(family.code(a), 5.0);
    }
    std::vector<watermark::ScanJob> jobs(kernels.size());
    for (std::size_t a = 0; a < kernels.size(); ++a) {
      jobs[a].kernel = &kernels[a];
      jobs[a].rates = std::span<const double>(rates);
      jobs[a].max_offset = max_offset;
    }

    constexpr int kReps = 8;
    // Serial baseline: one kernel.scan per account, in order.
    std::vector<watermark::ScanResult> serial;
    const auto t0 = clock::now();
    for (int r = 0; r < kReps; ++r) {
      serial.clear();
      for (const auto& job : jobs) {
        serial.push_back(
            job.kernel->scan(job.rates, job.max_offset).value());
      }
    }
    const auto t1 = clock::now();
    const double serial_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
    std::printf("%10s %14.3f %10s\n", "serial", serial_ms, "1.00x");

    bool all_identical = true;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const watermark::ScanBatch batch(watermark::ScanBatchOptions{threads});
      std::vector<Result<watermark::ScanResult>> fanned = batch.run(jobs);
      const auto b0 = clock::now();
      for (int r = 0; r < kReps; ++r) fanned = batch.run(jobs);
      const auto b1 = clock::now();
      for (std::size_t a = 0; a < jobs.size(); ++a) {
        const auto& got = fanned[a].value();
        all_identical =
            all_identical && got.offset == serial[a].offset &&
            std::bit_cast<std::uint64_t>(got.best.correlation) ==
                std::bit_cast<std::uint64_t>(serial[a].best.correlation);
      }
      const double batch_ms =
          std::chrono::duration<double, std::milli>(b1 - b0).count() / kReps;
      std::printf("%10u %14.3f %9.2fx%s\n", threads, batch_ms,
                  serial_ms / batch_ms, all_identical ? "" : "  MISMATCH");
    }
    if (!all_identical) {
      std::printf("A-SCAN FAILED: ScanBatch correlations differ from the "
                  "serial loop\n");
      return 1;
    }
    std::printf("A-SCAN OK: ScanBatch bit-identical to the serial loop at "
                "every thread count\n");
  }
  return 0;
}
