// Experiment E-IVA (paper §IV.A): timing-based source identification in
// an anonymous P2P overlay — "workable method without warrant/court
// order/subpoena".
//
// Series 1: classification accuracy vs. the hop-delay / lookup-delay
//           separation (how distinguishable proxies are from sources).
// Series 2: accuracy vs. number of probes per neighbor.
// Series 3: accuracy vs. overlay size (does the attack scale?).
//
// The paper's qualitative claim to reproduce: the attack reliably
// separates sources from proxies using only protocol-exposed traffic,
// and the engine confirms the collection is process-free.

#include <cstdio>

#include "anonp2p/investigator.h"

namespace {

using namespace lexfor;
using anonp2p::Overlay;
using anonp2p::OverlayConfig;
using anonp2p::TimingInvestigator;

std::vector<PeerId> all_peers(const Overlay& overlay) {
  std::vector<PeerId> out;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) out.emplace_back(i);
  return out;
}

anonp2p::InvestigationReport run(OverlayConfig cfg, std::size_t probes,
                                 std::uint64_t seed) {
  Overlay overlay(cfg);
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng(seed);
  return inv.run(probes, rng);
}

}  // namespace

int main() {
  std::printf("E-IVA: timing attack on an anonymous P2P overlay (paper IV.A)\n");

  {
    const auto legality = legal::ComplianceEngine{}.evaluate(
        TimingInvestigator::legal_scenario());
    std::printf("legal posture: %s (required process: %s)\n\n",
                legality.verdict().c_str(),
                std::string(legal::to_string(legality.required_process)).c_str());
  }

  std::printf("Series 1: accuracy vs hop/lookup delay separation "
              "(128 peers, 30 probes)\n");
  std::printf("%18s %10s %8s %8s %8s\n", "hop/lookup ratio", "accuracy",
              "TPR", "FPR", "thr(ms)");
  for (const double ratio : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    OverlayConfig cfg;
    cfg.num_peers = 128;
    cfg.file_popularity = 0.2;
    cfg.local_lookup_ms = 20.0;
    cfg.hop_delay_ms = 20.0 * ratio;
    cfg.seed = 17;
    const auto r = run(cfg, 30, 1001);
    std::printf("%18.1f %10.3f %8.3f %8.3f %8.1f\n", ratio, r.accuracy,
                r.true_positive_rate, r.false_positive_rate, r.threshold_ms);
  }

  std::printf("\nSeries 2: accuracy vs probes per neighbor "
              "(128 peers, hop/lookup = 3)\n");
  std::printf("%10s %10s %8s %8s\n", "probes", "accuracy", "TPR", "FPR");
  for (const std::size_t probes : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
    OverlayConfig cfg;
    cfg.num_peers = 128;
    cfg.file_popularity = 0.2;
    cfg.local_lookup_ms = 20.0;
    cfg.hop_delay_ms = 60.0;
    cfg.seed = 17;
    const auto r = run(cfg, probes, 2002);
    std::printf("%10zu %10.3f %8.3f %8.3f\n", probes, r.accuracy,
                r.true_positive_rate, r.false_positive_rate);
  }

  std::printf("\nSeries 3: accuracy vs overlay size (30 probes, "
              "hop/lookup = 3)\n");
  std::printf("%10s %10s %8s %8s\n", "peers", "accuracy", "TPR", "FPR");
  for (const std::size_t peers : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    OverlayConfig cfg;
    cfg.num_peers = peers;
    cfg.file_popularity = 0.2;
    cfg.local_lookup_ms = 20.0;
    cfg.hop_delay_ms = 60.0;
    cfg.seed = 29;
    const auto r = run(cfg, 30, 3003);
    std::printf("%10zu %10.3f %8.3f %8.3f\n", peers, r.accuracy,
                r.true_positive_rate, r.false_positive_rate);
  }

  return 0;
}
