// A-SUPPRESS: fruit-of-the-poisonous-tree closure at scale.
//
// The suppression analyzer must handle real case provenance graphs
// (thousands of items) in interactive time.  Sweeps chains, wide
// fan-outs, and random DAGs with a tainted root fraction.

#include <benchmark/benchmark.h>

#include "legal/suppression.h"
#include "util/rng.h"

namespace {

using namespace lexfor;
using namespace lexfor::legal;

ProvenanceGraph chain_graph(std::size_t n, bool tainted_root) {
  ProvenanceGraph g;
  AcquisitionRecord root;
  root.id = EvidenceId{0};
  root.required =
      tainted_root ? ProcessKind::kSearchWarrant : ProcessKind::kNone;
  root.held = ProcessKind::kNone;
  (void)g.add(root);
  for (std::size_t i = 1; i < n; ++i) {
    AcquisitionRecord r;
    r.id = EvidenceId{i};
    r.derived_from = {EvidenceId{i - 1}};
    (void)g.add(r);
  }
  return g;
}

ProvenanceGraph random_dag(std::size_t n, double taint_fraction,
                           std::uint64_t seed) {
  Rng rng{seed};
  ProvenanceGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    AcquisitionRecord r;
    r.id = EvidenceId{i};
    if (i > 0) {
      const std::size_t parents = 1 + rng.uniform(std::min<std::size_t>(i, 3));
      for (std::size_t p = 0; p < parents; ++p) {
        r.derived_from.push_back(EvidenceId{rng.uniform(i)});
      }
    }
    if (rng.bernoulli(taint_fraction)) {
      r.required = ProcessKind::kSearchWarrant;
      r.held = ProcessKind::kNone;
    }
    (void)g.add(r);
  }
  return g;
}

void BM_SuppressionChain(benchmark::State& state) {
  const auto g = chain_graph(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_suppression(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuppressionChain)->Range(64, 65536);

void BM_SuppressionRandomDag(benchmark::State& state) {
  const auto g =
      random_dag(static_cast<std::size_t>(state.range(0)), 0.1, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_suppression(g));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuppressionRandomDag)->Range(64, 65536);

void BM_GraphInsertion(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chain_graph(static_cast<std::size_t>(state.range(0)), false));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphInsertion)->Range(64, 16384);

}  // namespace

BENCHMARK_MAIN();
