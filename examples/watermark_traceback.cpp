// End-to-end reproduction of the paper's §IV.B "situation one":
// tracing a client of a seized contraband server through an anonymity
// network with a long-PN-code DSSS watermark — under a court order, not
// a wiretap.

#include <cstdio>

#include "investigation/investigation.h"
#include "tornet/traceback.h"

int main() {
  using namespace lexfor;

  // --- the legal groundwork first ---------------------------------------
  investigation::Court court;
  investigation::Investigation inv(CaseId{2}, "anonymity-network traceback",
                                   legal::CrimeCategory::kChildExploitation,
                                   court);
  inv.add_fact({legal::FactKind::kContrabandObserved, 1.0,
                "seized web server hosts contraband; subscriber list found"});
  inv.add_fact({legal::FactKind::kAccountLinked, 1.0,
                "an account on the server downloads through an anonymity "
                "network"});

  // What does the engine say the collection step needs?
  const auto determination =
      legal::ComplianceEngine{}.evaluate(tornet::collection_scenario());
  std::printf("collection step requires: %s\n",
              std::string(legal::to_string(determination.required_process))
                  .c_str());

  legal::ProcessScope scope;
  scope.data_kinds = {legal::DataKind::kAddressing};
  scope.locations = {"suspect-isp"};
  scope.crime = "receipt of child pornography";
  const auto order = inv.apply_for(legal::ProcessKind::kCourtOrder, scope,
                                   SimTime::zero());
  if (!order.ok()) {
    std::printf("court order denied: %s\n", order.status().message().c_str());
    return 1;
  }
  std::printf("pen/trap court order issued\n\n");

  // --- the technical experiment ------------------------------------------
  tornet::TracebackConfig cfg;
  cfg.pn_degree = 10;  // 1023 chips — a "long" PN code
  cfg.chip_ms = 350.0;
  cfg.depth = 0.3;
  cfg.base_rate_pps = 150.0;
  cfg.num_decoys = 7;
  cfg.seed = 424242;

  const auto result = tornet::run_traceback(cfg).value();
  std::printf("watermark despread at the suspect's ISP:\n");
  std::printf("  suspect flow:  corr %.4f vs threshold %.4f -> %s\n",
              result.suspect_correlation,
              result.flows[0].detection.threshold,
              result.suspect_detected ? "DETECTED" : "missed");
  std::printf("  decoy flows:   %zu of %zu crossed the threshold "
              "(max corr %.4f)\n\n",
              result.decoys_flagged, cfg.num_decoys,
              result.max_decoy_correlation);

  // --- record the acquisition and audit ------------------------------------
  const auto rates = inv.acquire(tornet::collection_scenario(),
                                 "per-flow packet rates at the suspect ISP",
                                 inv.authority(order.value()));
  std::printf("rate collection lawful: %s\n", rates.lawful ? "yes" : "no");

  const auto audit = inv.admissibility_audit();
  std::printf("admissibility audit: %zu admissible, %zu suppressed\n",
              audit.admissible_count, audit.suppressed_count);

  // The contrast the paper draws: the same collection attempted WITHOUT
  // any process would be suppressed.
  investigation::Investigation rogue(CaseId{3}, "the cautionary tale",
                                     legal::CrimeCategory::kChildExploitation,
                                     court);
  const auto bad = rogue.acquire(tornet::collection_scenario(),
                                 "rate collection with no legal process",
                                 legal::GrantedAuthority{});
  const auto rogue_audit = rogue.admissibility_audit();
  std::printf("\nthe same collection without a court order: %s\n",
              rogue_audit.is_suppressed(bad.evidence)
                  ? "SUPPRESSED (as the paper warns)"
                  : "admissible (wrong!)");

  return result.suspect_detected && result.decoys_flagged == 0 ? 0 : 1;
}
