// Prints the generated doctrine table (every scene in LEXFOR_SCENE_LIST
// with its expected verdict) and then runs a small differential sweep to
// demonstrate the N-version consistency harness.
//
//   $ ./build/examples/scene_table [trials]

#include <cstdlib>
#include <iostream>

#include "check/rules.h"
#include "legal/scenario_library.h"

int main(int argc, char** argv) {
  using namespace lexfor;

  std::cout << "# Scenario library (" << legal::library::kSceneCount
            << " scenes)\n\n"
            << legal::library::scene_table_markdown() << "\n";

  check::CheckOptions options;
  options.trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  std::cout << "# Differential + metamorphic sweep\n\n";
  const check::CheckReport report = check::run_all(options);
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}
