// Quickstart: ask the compliance engine whether a contemplated
// acquisition needs legal process, and read its citation-backed answer.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "legal/engine.h"
#include "legal/table1.h"

int main() {
  using namespace lexfor::legal;

  ComplianceEngine engine;

  // 1. Describe the acquisition you are considering.  Here: an officer
  //    wants to log full packets (headers AND payload) of a suspect's
  //    traffic at a public ISP, in real time.
  const Scenario full_capture =
      Scenario{}
          .named("full-packet capture at the suspect's ISP")
          .by(ActorKind::kLawEnforcement)
          .acquiring(DataKind::kContent)
          .located(DataState::kInTransit)
          .when(Timing::kRealTime);

  std::printf("%s\n", engine.evaluate(full_capture).report().c_str());

  // 2. The researcher's pivot the paper recommends: drop to non-content
  //    (headers, sizes).  The requirement falls from a Title III
  //    super-warrant to a pen/trap court order.
  const Scenario headers_only =
      Scenario{}
          .named("header-only capture at the suspect's ISP")
          .by(ActorKind::kLawEnforcement)
          .acquiring(DataKind::kAddressing)
          .located(DataState::kInTransit)
          .when(Timing::kRealTime);

  std::printf("%s\n", engine.evaluate(headers_only).report().c_str());

  // 3. Or find a process-free design: observe only what the protocol
  //    exposes publicly (Table 1, scene 10 — the paper's IV.A strategy).
  std::printf("%s\n",
              engine.evaluate(table1::scene(10).scenario).report().c_str());

  return 0;
}
