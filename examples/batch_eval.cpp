// Batch compliance evaluation: answer "which of these acquisitions
// needs process?" for a whole caseload at once, through the verdict
// cache and the worker pool, and show via the obs counters that the
// cache absorbed the repeated questions.

#include <cstdio>
#include <vector>

#include "legal/batch.h"
#include "legal/table1.h"
#include "obs/obs.h"

int main() {
  using namespace lexfor;
  using namespace lexfor::legal;

  // A caseload: every Table-1 scene, asked five times over — the shape
  // of re-linting a plan after edits, or auditing many similar cases.
  std::vector<Scenario> caseload;
  for (int repeat = 0; repeat < 5; ++repeat) {
    for (const auto& scene : table1::all_scenes()) {
      caseload.push_back(scene.scenario);
    }
  }

  auto& hits = obs::metrics().counter("legal.batch.cache_hits");
  auto& misses = obs::metrics().counter("legal.batch.cache_misses");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  const BatchEvaluator evaluator;  // shared verdict cache, auto threads
  const std::vector<Determination> verdicts =
      evaluator.evaluate_batch(caseload);

  std::printf("%-66s %s\n", "Scenario", "Verdict");
  for (std::size_t i = 0; i < table1::all_scenes().size(); ++i) {
    std::printf("%-66.66s %s\n", caseload[i].name.c_str(),
                verdicts[i].verdict().c_str());
  }

  std::printf("\n%zu queries answered: %llu cache hits, %llu misses\n",
              caseload.size(),
              static_cast<unsigned long long>(hits.value() - hits_before),
              static_cast<unsigned long long>(misses.value() - misses_before));
  std::printf("fingerprint of scene 1: %s\n",
              fingerprint_hex(table1::scene(1).scenario).c_str());
  return 0;
}
