// Live streaming ISP tap (§IV.B, but online): the investigator's box
// at the suspect's ISP bins arrivals as they happen and despreads the
// PN watermark incrementally — bounded memory, verdict available the
// moment one code period has been observed, and bit-identical to the
// batch detector the courtroom analysis would re-run.
//
// The legal gate comes first: the tap object cannot even be
// constructed unless the held process covers the collection scenario.
//
// Act two widens the lens: a stream::TapRegistry taps EVERY candidate
// suspect behind the ISP at once — one arena behind all the rings and
// despread windows, per-suspect legal admission, one simulation pass —
// which is how run_streaming_traceback avoids re-simulating the
// network per suspect.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "netsim/flow.h"
#include "stream/tap_registry.h"
#include "stream/tap_session.h"
#include "watermark/dsss.h"
#include "watermark/pn_code.h"

int main() {
  using namespace lexfor;

  // --- the marked flow --------------------------------------------------
  // The seized server modulates its send rate with a 63-chip PN code.
  const auto code = watermark::PnCode::m_sequence(6).value();
  const watermark::CorrelationKernel kernel(code);
  const SimDuration chip = SimDuration::from_ms(200.0);

  netsim::Network net(2026);
  const auto server = net.add_node("seized-server");
  const auto isp = net.add_node("suspect-isp");
  const auto suspect = net.add_node("suspect");
  (void)net.connect(server, isp);
  (void)net.connect(isp, suspect);

  watermark::EmbedParams ep;
  ep.start = SimTime::zero();
  ep.chip_duration = chip;
  ep.depth = 0.4;
  const watermark::Embedder embedder(code, ep);

  netsim::FlowConfig fc;
  fc.id = FlowId{1};
  fc.src = server;
  fc.dst = suspect;
  fc.packets_per_sec = 180.0;
  fc.stop = embedder.end();
  netsim::FlowSource flow(net, fc, netsim::ArrivalProcess::kPoisson, 7,
                          [&embedder](SimTime t) {
                            return embedder.multiplier(t);
                          });

  // --- the legal gate ---------------------------------------------------
  // Non-content rate collection in real time: pen/trap territory, so a
  // court order suffices (the paper's central point — no wiretap order
  // is needed to despread rates).
  legal::LegalProcess order;
  order.kind = legal::ProcessKind::kCourtOrder;
  order.scope.data_kinds = {legal::DataKind::kAddressing};
  order.issued_at = SimTime::zero();
  order.validity = SimDuration::from_sec(30 * 24 * 3600.0);

  stream::TapSessionConfig cfg;
  cfg.scenario = legal::Scenario{}
                     .named("streaming rate collection at the suspect's ISP")
                     .by(legal::ActorKind::kLawEnforcement)
                     .acquiring(legal::DataKind::kAddressing)
                     .located(legal::DataState::kInTransit)
                     .when(legal::Timing::kRealTime);
  cfg.authority = legal::GrantedAuthority{order};
  cfg.target = suspect;
  cfg.ring.start = SimTime::zero();
  cfg.ring.bin_width = chip;  // bin == chip: aligned despread
  cfg.ring.capacity = code.length() + 8;

  // A content grab under the SAME court order must refuse to exist.
  auto overreach = cfg;
  overreach.scenario = overreach.scenario
                           .named("full-content intercept, court order only")
                           .acquiring(legal::DataKind::kContent);
  const auto refused = stream::TapSession::create(kernel, overreach);
  std::printf("content intercept under a court order: %s\n",
              refused.ok() ? "ADMITTED (bug!)"
                           : refused.status().message().c_str());

  auto session_r = stream::TapSession::create(kernel, cfg);
  if (!session_r.ok()) {
    std::printf("tap refused: %s\n", session_r.status().message().c_str());
    return 1;
  }
  auto session = std::move(session_r).value();
  std::printf("rate tap admitted (required process: %s)\n\n",
              std::string(legal::to_string(session.admission().required_process))
                  .c_str());

  // --- run the tap live -------------------------------------------------
  if (!session.attach(net).ok()) return 1;
  flow.start();
  net.run();
  session.pump(net.now() + chip);  // flush the final chip bin

  const auto& v = session.verdict();
  std::printf("packets seen        : %llu\n",
              static_cast<unsigned long long>(session.stats().packets_seen));
  std::printf("bins scored         : %llu (ring capacity %zu — bounded)\n",
              static_cast<unsigned long long>(session.stats().bins_scored),
              session.ring().capacity());
  std::printf("watermark detected  : %s\n",
              v.scan.best.detected ? "YES" : "no");
  std::printf("correlation         : %.4f (threshold %.4f)\n",
              v.scan.best.correlation, v.scan.best.threshold);
  if (!v.scan.best.detected) return 1;

  // --- act two: every suspect at once, one pass -------------------------
  // Three candidates behind the ISP; only suspect-0's flow carries the
  // watermark.  One TapRegistry admits each tap through the verdict
  // cache, carves all tap state from a single arena, and one net.run()
  // scores all three.
  std::printf("\n-- multi-suspect registry: one pass, all candidates --\n");
  netsim::Network net2(2027);
  const auto server2 = net2.add_node("seized-server");
  const auto isp2 = net2.add_node("suspect-isp");
  (void)net2.connect(server2, isp2);

  stream::TapRegistry registry;
  std::vector<NodeId> candidates;
  std::vector<std::unique_ptr<netsim::FlowSource>> flows;
  for (int i = 0; i < 3; ++i) {
    const auto node = net2.add_node("candidate" + std::to_string(i));
    (void)net2.connect(isp2, node);
    candidates.push_back(node);

    auto tap_cfg = cfg;
    tap_cfg.target = node;
    if (!registry.add_tap(kernel, tap_cfg).ok()) return 1;

    netsim::FlowConfig fc2 = fc;
    fc2.id = FlowId{static_cast<std::uint32_t>(i + 10)};
    fc2.src = server2;
    fc2.dst = node;
    // Only candidate 0 gets the marked flow; the rest are decoys.
    flows.push_back(
        i == 0 ? std::make_unique<netsim::FlowSource>(
                     net2, fc2, netsim::ArrivalProcess::kPoisson, 7,
                     [&embedder](SimTime t) { return embedder.multiplier(t); })
               : std::make_unique<netsim::FlowSource>(
                     net2, fc2, netsim::ArrivalProcess::kPoisson, 7 + i));
  }
  if (!registry.attach_all(net2).ok()) return 1;
  for (auto& f : flows) f->start();
  net2.run();  // the ONE simulation pass
  registry.pump_all(net2.now() + chip);

  bool marked_found = false, decoy_flagged = false;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& tap = registry.tap(i);
    const auto& scan = tap.verdict().scan;
    std::printf("candidate%zu: corr %+.4f vs %.4f -> %s\n", i,
                scan.best.correlation, scan.best.threshold,
                scan.best.detected ? "WATERMARKED" : "clean");
    if (i == 0) marked_found = scan.best.detected;
    else decoy_flagged = decoy_flagged || scan.best.detected;
  }
  const auto agg = registry.aggregate_ring_stats();
  std::printf("registry: %zu taps, %llu refused, %llu bins recorded, "
              "%zu arena bytes\n",
              registry.size(),
              static_cast<unsigned long long>(registry.refused()),
              static_cast<unsigned long long>(agg.recorded),
              registry.arena_bytes());
  return marked_found && !decoy_flagged ? 0 : 1;
}
