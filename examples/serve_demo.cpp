// serve_demo: an in-process verdict server fielding a synthetic
// subscriber fleet — including one wave deliberately past the
// admission bound, so the shed accounting shows up in the exported
// metrics.
//
// Walkthrough:
//   1. stand up a serve::VerdictServer (2 workers, small queue bound);
//   2. run a few in-capacity bursts from a serve::SyntheticFleet and
//      decode a couple of responses to show the wire format at work;
//   3. send one over-capacity wave and print the exact admission
//      arithmetic (accepted + shed + rejected == offered);
//   4. dump the serve.* section of an obs Prometheus snapshot — the
//      view a scraping monitor would see, shed counters included.
//
// Build & run:  ./build/examples/serve_demo

#include <iostream>
#include <sstream>
#include <vector>

#include "obs/obs.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "serve/wire.h"

using namespace lexfor;

int main() {
  // -- 1. the server ---------------------------------------------------
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 1024;  // small on purpose: step 3 overruns it
  serve::VerdictServer server(opts);
  serve::Connection conn = server.connect();
  std::cout << "verdict server up: " << server.workers()
            << " workers, queue bound " << opts.queue_capacity << "\n\n";

  // -- 2. in-capacity bursts -------------------------------------------
  serve::FleetOptions fopts;
  fopts.fleet_size = 800;  // per-burst slice of the subscriber base
  const serve::SyntheticFleet fleet(fopts);
  std::cout << "fleet mix: " << fleet.mix_size()
            << " distinct scenarios (Table-1 rows + scenario library)\n";

  std::vector<std::uint8_t> wave;
  for (std::uint64_t w = 0; w < 3; ++w) {
    wave.clear();
    fleet.generate_wave(w, wave);
    const serve::ServeStats s = server.serve(conn, wave);
    std::cout << "burst " << w << ": offered=" << s.offered
              << " accepted=" << s.accepted << " cache_hits=" << s.cache_hits
              << " cache_misses=" << s.cache_misses << "\n";
  }

  // Crack open the first two response frames of the last burst.
  std::cout << "\nfirst responses on the wire:\n";
  std::span<const std::uint8_t> buf = conn.responses();
  for (int i = 0; i < 2 && !buf.empty(); ++i) {
    const auto info = serve::wire::peek_frame(buf);
    if (!info.ok()) break;
    serve::wire::Response r;
    if (!serve::wire::decode_response(buf.subspan(0, info.value().frame_len),
                                      r)
             .ok()) {
      break;
    }
    buf = buf.subspan(info.value().frame_len);
    std::cout << "  request " << r.request_id << ": "
              << (r.needs_process ? "NEEDS PROCESS" : "no process") << " ("
              << legal::to_string(r.required_process) << ", "
              << (r.cache_hit ? "cache hit" : "evaluated") << ", "
              << r.server_ns << " ns)\n";
  }

  // -- 3. the over-capacity wave ---------------------------------------
  serve::FleetOptions big = fopts;
  big.fleet_size = 4000;  // ~4x the queue bound
  wave.clear();
  serve::SyntheticFleet(big).generate_wave(9, wave);
  const serve::ServeStats s = server.serve(conn, wave);
  std::cout << "\nover-capacity wave: offered=" << s.offered
            << " accepted=" << s.accepted << " shed=" << s.shed_queue_full
            << " malformed=" << s.rejected_malformed
            << " version=" << s.rejected_version << "\n"
            << "accounting exact: "
            << (s.balanced() ? "yes" : "NO — BUG") << " (" << s.accepted
            << " + " << s.shed_queue_full << " + " << s.rejected_malformed
            << " + " << s.rejected_version << " == " << s.offered << ")\n";

  // -- 4. what a monitor scrapes ---------------------------------------
  std::cout << "\nserve.* metrics, Prometheus exposition:\n";
  const obs::Snapshot snap = obs::Snapshot::capture();
  std::ostringstream prom;
  snap.to_prometheus(prom);
  std::istringstream lines(prom.str());
  for (std::string line; std::getline(lines, line);) {
    // Keep the demo readable: show the serve.* families but skip the
    // histogram's per-bucket series.
    if (line.find("serve_") != std::string::npos &&
        line.find("_bucket{") == std::string::npos) {
      std::cout << "  " << line << "\n";
    }
  }
  return 0;
}
