// Table-1 scenes 18-20, executed: a seized drive, imaged under a
// tamper-evident chain of custody, hash-searched for known contraband
// (needs a warrant — U.S. v. Crist), then mined as lawfully acquired
// data (needs nothing — State v. Sloane), with carving recovering a
// deleted file along the way.

#include <cstdio>

#include "crypto/sha256.h"
#include "diskimage/hash_search.h"
#include "evidence/custody.h"
#include "investigation/investigation.h"
#include "legal/table1.h"

int main() {
  using namespace lexfor;
  using namespace lexfor::diskimage;

  // --- the suspect's drive ----------------------------------------------
  DiskImage drive(512);
  Bytes contraband = magic_jpeg();
  const Bytes tail = to_bytes(" [contraband image payload]");
  contraband.insert(contraband.end(), tail.begin(), tail.end());
  (void)drive.write_file("/photos/IMG_0001.jpg", contraband);
  (void)drive.write_file("/docs/taxes.pdf",
                         to_bytes("%PDF boring tax documents"));
  (void)drive.write_file("/photos/deleted.jpg", contraband);
  (void)drive.delete_file("/photos/deleted.jpg");  // "I got rid of it"

  // --- seizure and imaging under chain of custody -------------------------
  const Bytes case_key = to_bytes("case-2012-0042-key");
  evidence::EvidenceItem original(EvidenceId{1}, "suspect desktop HDD",
                                  drive.raw(), "Officer Reed",
                                  SimTime::zero(), case_key);
  auto image = original.image(EvidenceId{2}, "Analyst Kim",
                              SimTime::from_sec(1800), case_key);
  std::printf("seized drive sha256: %s\n", original.content_hash_hex().c_str());
  std::printf("forensic image matches original: %s\n",
              image.content_hash() == original.content_hash() ? "yes" : "NO");
  std::printf("chain of custody verifies: %s\n\n",
              image.verify(case_key).ok() ? "yes" : "NO");

  // --- the legal gate --------------------------------------------------------
  investigation::Court court;
  investigation::Investigation inv(CaseId{7}, "seized drive examination",
                                   legal::CrimeCategory::kChildExploitation,
                                   court);
  const auto scene18 = legal::ComplianceEngine{}.evaluate(
      legal::table1::scene(18).scenario);
  std::printf("hash-searching the whole drive requires: %s (U.S. v. Crist)\n",
              std::string(legal::to_string(scene18.required_process)).c_str());

  HashSearcher searcher({crypto::Sha256::hex(contraband)});

  // Without a warrant the tool refuses.
  const auto refused =
      searcher.search(drive, legal::GrantedAuthority{},
                      scene18.required_process, "suspect-hdd", SimTime::zero());
  std::printf("search without warrant: %s\n",
              refused.ok() ? "ran (wrong!)" : refused.status().message().c_str());

  // Get the warrant.
  inv.add_fact({legal::FactKind::kIpAddressLinked, 2.0, "IP traced to suspect"});
  inv.add_fact({legal::FactKind::kSubscriberIdentified, 1.0, "ISP return"});
  legal::ProcessScope scope;
  scope.locations = {"suspect-hdd"};
  scope.crime = "possession of child pornography";
  const auto warrant =
      inv.apply_for(legal::ProcessKind::kSearchWarrant, scope, SimTime::zero())
          .value();

  const auto hits = searcher
                        .search(drive, inv.authority(warrant),
                                scene18.required_process, "suspect-hdd",
                                SimTime::zero())
                        .value();
  std::printf("search with warrant: %zu hit(s)\n", hits.size());
  for (const auto& h : hits) {
    std::printf("  %s%s  sha256=%.16s...\n", h.path.c_str(),
                h.deleted ? " (recovered from deleted space)" : "",
                h.sha256_hex.c_str());
  }

  // --- carving finds the deleted copy too ----------------------------------
  Carver carver;
  const auto carved = carver.carve(drive);
  std::printf("\ncarver recovered %zu object(s) from raw sectors\n",
              carved.size());

  // --- scene 19: mining the now-lawfully-acquired data ----------------------
  const auto scene19 = legal::ComplianceEngine{}.evaluate(
      legal::table1::scene(19).scenario);
  std::printf("\nmining the lawfully acquired data requires: %s "
              "(State v. Sloane)\n",
              scene19.needs_process
                  ? std::string(legal::to_string(scene19.required_process))
                        .c_str()
                  : "nothing");

  // Record both acquisitions; audit.
  const auto search_ev =
      inv.acquire(legal::table1::scene(18).scenario, "hash search hits",
                  inv.authority(warrant));
  (void)inv.acquire(legal::table1::scene(19).scenario,
                    "pattern mining over the acquired data",
                    legal::GrantedAuthority{}, {search_ev.evidence});
  const auto audit = inv.admissibility_audit();
  std::printf("admissibility audit: %zu admissible, %zu suppressed\n",
              audit.admissible_count, audit.suppressed_count);
  return audit.suppressed_count == 0 ? 0 : 1;
}
