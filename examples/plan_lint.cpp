// Plan-time compliance linting: catch suppression before acquisition.
//
// Builds a deliberately defective plan — a warrantless wiretap, evidence
// derived from it, a premature Title III application, an expired-order
// log pull invading a third party's rights, and a derivation from a
// step that hasn't happened yet — and prints the linter's diagnostic
// report, citations included.  Contrast with the clean quickstart plan,
// which lints empty.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/plan_lint

#include <cstdio>

#include "lint/example_plans.h"
#include "lint/linter.h"
#include "lint/render.h"

int main() {
  using namespace lexfor::lint;

  const PlanLinter linter;

  std::printf("=== defective plan ===\n%s\n",
              render_text(linter.lint(defective_wiretap_plan())).c_str());

  std::printf("=== clean plan ===\n%s",
              render_text(linter.lint(clean_quickstart_plan())).c_str());

  return 0;
}
