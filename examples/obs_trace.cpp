// obs_trace: a full investigation rendered as a Chrome trace.
//
// Runs the pipeline — facts, court order, pen/trap capture on a
// simulated network, evidence custody, compliance verdicts, suppression
// audit — with the observability layer turned all the way up, and
// writes obs_trace.json in Chrome trace_event format.  Load it in
// chrome://tracing or https://ui.perfetto.dev to see custody, authority
// and acquisition events interleaved on the simulation timeline, plus a
// metrics summary on stdout.
//
// Also demonstrates the v2 surfaces: the call-site profiler is enabled
// for the run, the final obs::Snapshot is printed in Prometheus text
// exposition and written as obs_metrics.json, and a flight record of
// the run's last trace events is dumped to obs_flight.jsonl.
//
//   ./build/examples/obs_trace [output.json]

#include <fstream>
#include <iostream>

#include "capture/capture.h"
#include "evidence/locker.h"
#include "investigation/investigation.h"
#include "investigation/report.h"
#include "legal/engine.h"
#include "netsim/network.h"
#include "obs/obs.h"

using namespace lexfor;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "obs_trace.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }

  // Everything below runs under the DES clock, so put the Chrome trace
  // on the simulation timeline; kDebug admits even per-packet events.
  obs::ChromeTraceSink chrome(out, obs::ChromeTraceSink::TimeBase::kSim);
  obs::tracer().add_sink(&chrome);
  obs::tracer().set_level(obs::Level::kDebug);

  // v2: profile the instrumented hot paths (engine evaluate, batch
  // fingerprint+lookup, netsim event loop, ...) and arm the flight
  // recorder so the run leaves a last-N-events record behind.
  obs::profiler().set_enabled(true);
  obs::FlightRecorderConfig flight_cfg;
  flight_cfg.path = "obs_flight.jsonl";
  flight_cfg.last_events = 128;
  obs::flight_recorder().configure(flight_cfg);

  // --- the case -------------------------------------------------------
  investigation::Court court;
  investigation::Investigation inv(CaseId{7}, "pen/trap on a suspect ISP",
                                   legal::CrimeCategory::kFraud, court);
  inv.add_fact({legal::FactKind::kAccountLinked, 2.0,
                "fraudulent listings tie to the suspect's account"});
  inv.add_fact({legal::FactKind::kIpAddressLinked, 2.0,
                "session logs resolve to the suspect's ISP"});

  // What process does the acquisition need?  (Emits the audit verdict.)
  const auto scenario = legal::Scenario{}
                            .named("realtime addressing at the ISP")
                            .acquiring(legal::DataKind::kAddressing)
                            .located(legal::DataState::kInTransit)
                            .when(legal::Timing::kRealTime);
  const auto determination = legal::ComplianceEngine{}.evaluate(scenario);

  legal::ProcessScope scope;
  scope.data_kinds = {legal::DataKind::kAddressing};
  scope.locations = {"suspect-isp"};
  scope.crime = "wire fraud";
  const auto order = inv.apply_for(determination.required_process, scope,
                                   SimTime::zero());
  if (!order.ok()) {
    std::cerr << "court denied the application: " << order.status() << '\n';
    return 1;
  }

  // --- the tap --------------------------------------------------------
  netsim::Network net(42);
  const NodeId suspect = net.add_node("suspect");
  const NodeId isp = net.add_node("suspect-isp");
  const NodeId peer = net.add_node("remote-peer");
  netsim::LinkConfig link;
  link.latency = SimDuration::from_ms(5);
  (void)net.connect(suspect, isp, link).value();
  (void)net.connect(isp, peer, link).value();

  auto device = capture::CaptureDevice::create(
      capture::CaptureMode::kPenTrap, inv.authority(order.value()),
      determination.required_process, isp, "suspect-isp", net.now());
  if (!device.ok()) {
    std::cerr << "capture refused: " << device.status() << '\n';
    return 1;
  }
  auto tap = std::move(device).value();
  (void)tap.attach(net);

  // 20 packets of suspect traffic spread over two simulated seconds.
  for (int i = 0; i < 20; ++i) {
    netsim::PacketHeader header;
    header.src = (i % 2 == 0) ? suspect : peer;
    header.dst = (i % 2 == 0) ? peer : suspect;
    header.payload_size = 64;
    (void)net.send(FlowId{1}, header, Bytes(64, 0x5A));
    net.run_until(SimTime::from_ms(100 * (i + 1)));
  }
  net.run();

  // --- custody & audit ------------------------------------------------
  evidence::EvidenceLocker locker(to_bytes("case-7-key"));
  Bytes log;
  for (const auto& rec : tap.records()) {
    log.push_back(static_cast<unsigned char>(rec.header.payload_size));
  }
  const auto item = locker.deposit("pen/trap addressing log", log, "Agent V",
                                   net.now());
  (void)locker.record_examination(item, "Analyst W", "dialing-record review",
                                  net.now() + SimDuration::from_sec(60));

  const auto acq = inv.acquire(scenario, "pen/trap collection at the ISP",
                               inv.authority(order.value()));
  const auto audit = inv.admissibility_audit();

  obs::tracer().flush();
  chrome.finish();

  // --- summary --------------------------------------------------------
  std::cout << "case:       " << investigation::case_report(inv) << '\n';
  std::cout << "capture:    observed=" << tap.stats().packets_observed
            << " retained=" << tap.stats().packets_retained
            << " payload_bytes_retained="
            << tap.stats().payload_bytes_retained << " (pen/trap minimization)"
            << '\n';
  std::cout << "acquisition lawful: " << (acq.lawful ? "yes" : "no")
            << ", suppressed items: " << audit.suppressed_count << "\n\n";
  // One point-in-time snapshot feeds every export: Prometheus text on
  // stdout, JSON to obs_metrics.json.
  const obs::Snapshot snap = obs::Snapshot::capture();
  std::cout << "--- metrics (Prometheus exposition) ---\n";
  snap.to_prometheus(std::cout);
  std::ofstream metrics_out("obs_metrics.json");
  if (metrics_out) snap.to_json(metrics_out);

  // Explicit flight dump: the same JSONL record an error event or a
  // differential-check violation would have produced.
  const bool dumped = obs::dump_flight_record("obs_trace-demo");
  obs::flight_recorder().disarm();

  std::cout << "\ntrace events emitted: " << obs::tracer().events_emitted()
            << "\nChrome trace written to " << out_path
            << " (load in chrome://tracing or ui.perfetto.dev)"
            << "\nmetrics snapshot written to obs_metrics.json\n";
  if (dumped) {
    std::cout << "flight record written to " << flight_cfg.path << '\n';
  }
  return 0;
}
