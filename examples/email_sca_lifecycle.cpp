// The paper's Alice/Bob SCA walk-through (§III.A.3), executed: how a
// message's lifecycle moves it between ECS storage, RCS storage, and out
// of the SCA entirely — and what that does to the process the government
// needs to compel it.

#include <cstdio>

#include "storedcomm/provider.h"

namespace {

using namespace lexfor;
using namespace lexfor::storedcomm;

void show(const Provider& provider, MessageId msg, const char* moment) {
  const auto cls = provider.classify(msg);
  const auto det = provider.required_process(DisclosureKind::kContent, msg);
  std::printf("  %-44s %-22s content needs: %s\n", moment,
              std::string(legal::to_string(cls)).c_str(),
              std::string(legal::to_string(det.required_process)).c_str());
}

}  // namespace

int main() {
  Provider gmail("gmail.com", ProviderPublicity::kPublic);
  Provider university("cs.charlie.edu", ProviderPublicity::kNonPublic);

  (void)gmail.create_account("bob@gmail.com",
                             {"Bob", "9 Elm St", "card-on-file"});
  (void)university.create_account("alice@cs.charlie.edu",
                                  {"Alice", "CS dept", "payroll"});

  std::printf("Alice (alice@cs.charlie.edu) emails Bob (bob@gmail.com):\n\n");

  // Alice -> Bob, lands at Gmail.
  const auto to_bob =
      gmail
          .deliver("bob@gmail.com", "alice@cs.charlie.edu", "lunch?",
                   to_bytes("burgers at noon?"), SimTime::zero())
          .value();
  show(gmail, to_bob, "arrives at Gmail (awaiting retrieval)");

  // Bob opens and keeps it.
  (void)gmail.open_message(to_bob, SimTime::from_sec(300));
  show(gmail, to_bob, "Bob opens it and leaves it stored");

  // Bob -> Alice, lands at the university server.
  const auto to_alice =
      university
          .deliver("alice@cs.charlie.edu", "bob@gmail.com", "re: lunch?",
                   to_bytes("noon works"), SimTime::from_sec(600))
          .value();
  show(university, to_alice, "reply awaits Alice at the university");

  // Alice opens it: the message drops out of the SCA.
  (void)university.open_message(to_alice, SimTime::from_sec(900));
  show(university, to_alice, "Alice opens it (SCA drops out)");

  // The compelled-disclosure ladder at Gmail.
  std::printf("\nCompelling Gmail (the 2703 ladder):\n");
  const auto bob = gmail.find_account("bob@gmail.com")->id;
  gmail.log_transaction(bob, "login 2012-03-01 10:04 from 203.0.113.9");

  auto make_auth = [](legal::ProcessKind kind) {
    legal::LegalProcess p;
    p.id = ProcessId{1};
    p.kind = kind;
    p.issued_at = SimTime::zero();
    return legal::GrantedAuthority{p};
  };

  struct Attempt {
    DisclosureKind what;
    legal::ProcessKind with;
    const char* label;
  };
  const Attempt attempts[] = {
      {DisclosureKind::kBasicSubscriber, legal::ProcessKind::kSubpoena,
       "subscriber records with a subpoena"},
      {DisclosureKind::kTransactionalRecords, legal::ProcessKind::kSubpoena,
       "transaction logs with a subpoena"},
      {DisclosureKind::kTransactionalRecords, legal::ProcessKind::kCourtOrder,
       "transaction logs with a 2703(d) order"},
      {DisclosureKind::kContent, legal::ProcessKind::kCourtOrder,
       "message content with a 2703(d) order"},
      {DisclosureKind::kContent, legal::ProcessKind::kSearchWarrant,
       "message content with a search warrant"},
  };
  for (const auto& a : attempts) {
    const auto r = gmail.compelled_disclosure(a.what, bob, make_auth(a.with),
                                              SimTime::zero());
    std::printf("  %-46s %s\n", a.label,
                r.ok() ? "disclosed" : r.status().message().c_str());
  }

  std::printf("\nVoluntary disclosure (2702): Gmail, asked nicely by an "
              "agent: %s\n",
              gmail
                      .voluntary_disclosure_to_government(
                          DisclosureKind::kContent, bob, false, false)
                      .ok()
                  ? "handed over (wrong!)"
                  : "refused, as the SCA requires");
  return 0;
}
