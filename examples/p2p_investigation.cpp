// End-to-end reproduction of the paper's §IV.A workflow, as an
// investigator would actually run it:
//
//   1. join an anonymous P2P overlay and probe neighbors (process-free);
//   2. classify sources by response timing;
//   3. feed the identified IP into the case as a fact;
//   4. subpoena the ISP for the subscriber;
//   5. obtain a search warrant on the combined showing;
//   6. run the admissibility audit: everything survives.

#include <cstdio>

#include "anonp2p/investigator.h"
#include "investigation/investigation.h"

int main() {
  using namespace lexfor;
  using namespace lexfor::anonp2p;

  // --- the overlay under investigation --------------------------------
  OverlayConfig overlay_cfg;
  overlay_cfg.num_peers = 96;
  overlay_cfg.file_popularity = 0.15;
  overlay_cfg.local_lookup_ms = 20.0;
  overlay_cfg.hop_delay_ms = 90.0;
  overlay_cfg.seed = 2012;
  Overlay overlay(overlay_cfg);
  std::printf("overlay: %zu peers, %zu actually hold the contraband file\n",
              overlay.peer_count(), overlay.holder_count());

  // --- step 1-2: timing probes ------------------------------------------
  std::vector<PeerId> neighbors;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) {
    neighbors.emplace_back(i);
  }
  TimingInvestigator timing(overlay, neighbors);
  Rng rng{77};
  const auto report = timing.run(/*probes_per_neighbor=*/40, rng);
  std::printf("probe verdicts: accuracy %.3f, TPR %.3f, FPR %.3f "
              "(threshold %.1f ms)\n",
              report.accuracy, report.true_positive_rate,
              report.false_positive_rate, report.threshold_ms);
  std::printf("legal posture of probing: %s\n\n",
              report.legality.verdict().c_str());

  // Pick the first neighbor classified as a source.
  PeerId identified;
  for (const auto& n : report.neighbors) {
    if (n.classified_source) {
      identified = n.peer;
      break;
    }
  }
  if (!identified.valid()) {
    std::printf("no source identified; investigation ends\n");
    return 0;
  }
  std::printf("identified peer #%llu as a direct source (ground truth: %s)\n",
              static_cast<unsigned long long>(identified.value()),
              overlay.holds_file(identified) ? "correct" : "WRONG");

  // --- step 3-6: the legal workflow -------------------------------------
  investigation::Court court;
  investigation::Investigation inv(CaseId{1}, "anonymous P2P distribution",
                                   legal::CrimeCategory::kChildExploitation,
                                   court);

  // The probe observations become the first evidence item (process-free).
  const auto probes = inv.acquire(TimingInvestigator::legal_scenario(),
                                  "timing probe log identifying source peer",
                                  legal::GrantedAuthority{});
  inv.add_fact({legal::FactKind::kIpAddressLinked, 0.0,
                "peer IP observed serving the contraband file"});

  // Subpoena the ISP for subscriber identity.
  const auto subpoena_id =
      inv.apply_for(legal::ProcessKind::kSubpoena, {}, SimTime::zero());
  if (!subpoena_id.ok()) {
    std::printf("subpoena denied: %s\n", subpoena_id.status().message().c_str());
    return 1;
  }
  const auto subscriber = inv.acquire(
      legal::Scenario{}
          .named("ISP subscriber records")
          .acquiring(legal::DataKind::kSubscriberRecords)
          .located(legal::DataState::kStoredAtProvider)
          .when(legal::Timing::kStored)
          .at_provider(legal::ProviderClass::kEcs),
      "subscriber identified from IP", inv.authority(subpoena_id.value()),
      {probes.evidence});
  inv.add_fact({legal::FactKind::kSubscriberIdentified, 0.0,
                "ISP resolved the IP to a street address"});
  std::printf("subpoena returned subscriber records (lawful: %s)\n",
              subscriber.lawful ? "yes" : "no");

  // Search warrant for the home.
  legal::ProcessScope scope;
  scope.locations = {"subscriber-home"};
  scope.crime = "distribution of child pornography";
  const auto warrant_id = inv.apply_for(legal::ProcessKind::kSearchWarrant,
                                        scope, SimTime::from_sec(3600));
  if (!warrant_id.ok()) {
    std::printf("warrant denied: %s\n", warrant_id.status().message().c_str());
    return 1;
  }
  std::printf("search warrant issued on %s\n",
              std::string(legal::to_string(inv.current_standard().standard))
                  .c_str());

  const auto device = inv.acquire(
      legal::Scenario{}
          .named("home computer search")
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "seized computer contents", inv.authority(warrant_id.value()),
      {probes.evidence, subscriber.evidence});
  std::printf("device search executed (lawful: %s)\n\n",
              device.lawful ? "yes" : "no");

  // --- the audit -----------------------------------------------------------
  const auto audit = inv.admissibility_audit();
  std::printf("admissibility audit: %zu admissible, %zu suppressed\n",
              audit.admissible_count, audit.suppressed_count);
  for (const auto& f : audit.findings) {
    std::printf("  evidence %llu: %s — %s\n",
                static_cast<unsigned long long>(f.id.value()),
                f.suppressed ? "SUPPRESSED" : "admissible", f.reason.c_str());
  }
  return audit.suppressed_count == 0 ? 0 : 1;
}
