// §IV of the paper as a program: feed proposed forensic techniques to
// the FeasibilityAnalyzer and get the paper's verdicts — "workable
// without process" (the IV.A timing attack), "workable with process"
// (the IV.B watermark), and the cautionary tale (naive full-content
// interception), each with redesign guidance.

#include <cstdio>

#include "legal/analysis.h"
#include "legal/table1.h"

int main() {
  using namespace lexfor::legal;

  FeasibilityAnalyzer analyzer;

  // --- §IV.A: the anonymous-P2P timing attack -----------------------------
  Technique p2p;
  p2p.name = "timing attack on anonymous P2P (paper IV.A)";
  p2p.steps.push_back({"join the overlay and broadcast queries",
                       table1::scene(10).scenario});
  p2p.steps.push_back(
      {"measure delays of responses the protocol delivers to us",
       Scenario{}
           .acquiring(DataKind::kContent)
           .located(DataState::kPublicVenue)
           .when(Timing::kStored)
           .exposed_publicly()
           .delivered()});
  std::printf("%s\n", analyzer.analyze(p2p).summary().c_str());

  // --- §IV.B: the DSSS watermark traceback --------------------------------
  Technique watermark;
  watermark.name = "long-PN-code DSSS watermark traceback (paper IV.B)";
  watermark.steps.push_back(
      {"modulate the seized server's transmission rate",
       Scenario{}
           .acquiring(DataKind::kContent)
           .located(DataState::kOnDevice)
           .when(Timing::kStored)
           .with_consent(ConsentKind::kOwnerConsent)});
  watermark.steps.push_back(
      {"collect per-flow packet rates at the suspect's ISP",
       Scenario{}
           .acquiring(DataKind::kAddressing)
           .located(DataState::kInTransit)
           .when(Timing::kRealTime)});
  std::printf("%s\n", analyzer.analyze(watermark).summary().c_str());

  // --- the design the paper warns against ----------------------------------
  Technique naive;
  naive.name = "naive full-content sniffing at the ISP";
  naive.steps.push_back({"capture entire packets of the suspect's traffic",
                         Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kInTransit)
                             .when(Timing::kRealTime)});
  std::printf("%s\n", analyzer.analyze(naive).summary().c_str());

  // --- the same technique, redesigned per the guidance ----------------------
  Technique redesigned;
  redesigned.name = "the same technique after the IV.B pivot";
  redesigned.steps.push_back(
      {"capture only headers and sizes of the suspect's traffic",
       Scenario{}
           .acquiring(DataKind::kAddressing)
           .located(DataState::kInTransit)
           .when(Timing::kRealTime)});
  std::printf("%s\n", analyzer.analyze(redesigned).summary().c_str());
  return 0;
}
