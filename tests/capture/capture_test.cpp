#include "capture/capture.h"

#include <gtest/gtest.h>

namespace lexfor::capture {
namespace {

using legal::DataKind;
using legal::GrantedAuthority;
using legal::LegalProcess;
using legal::ProcessKind;

LegalProcess make_process(ProcessKind kind) {
  LegalProcess p;
  p.id = ProcessId{1};
  p.kind = kind;
  p.issued_at = SimTime::zero();
  return p;
}

netsim::TapEvent make_event(const netsim::Packet& p, NodeId from, NodeId to) {
  return netsim::TapEvent{p, LinkId{0}, from, to, SimTime::from_ms(1)};
}

netsim::Packet make_packet(NodeId src, NodeId dst, std::size_t payload) {
  netsim::Packet p;
  p.id = PacketId{1};
  p.flow = FlowId{1};
  p.header.src = src;
  p.header.dst = dst;
  p.header.payload_size = static_cast<std::uint32_t>(payload);
  p.payload = Bytes(payload, 0x55);
  return p;
}

TEST(CaptureGateTest, PenTrapNeedsCourtOrder) {
  const GrantedAuthority none;
  const auto r = CaptureDevice::create(CaptureMode::kPenTrap, none,
                                       ProcessKind::kCourtOrder, NodeId{1},
                                       "isp", SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);

  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  EXPECT_TRUE(CaptureDevice::create(CaptureMode::kPenTrap, order,
                                    ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                    SimTime::zero())
                  .ok());
}

TEST(CaptureGateTest, FullContentNeedsWiretapOrderEvenIfEngineSaysLess) {
  // Even if a caller (wrongly) claims only a court order is required, the
  // statutory floor for a full-content device is the Title III order.
  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  const auto r = CaptureDevice::create(CaptureMode::kFullContent, order,
                                       ProcessKind::kCourtOrder, NodeId{1},
                                       "isp", SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);

  const GrantedAuthority wiretap{make_process(ProcessKind::kWiretapOrder)};
  EXPECT_TRUE(CaptureDevice::create(CaptureMode::kFullContent, wiretap,
                                    ProcessKind::kWiretapOrder, NodeId{1},
                                    "isp", SimTime::zero())
                  .ok());
}

TEST(CaptureGateTest, ProcessFreeAcquisitionNeedsNoAuthority) {
  // When an exception applies (engine returns kNone), even a pen/trap
  // style device may run without process — e.g. victim-consent monitoring.
  const GrantedAuthority none;
  EXPECT_TRUE(CaptureDevice::create(CaptureMode::kPenTrap, none,
                                    ProcessKind::kNone, NodeId{1}, "victim-box",
                                    SimTime::zero())
                  .ok());
}

TEST(CaptureGateTest, ExpiredProcessIsRefused) {
  auto p = make_process(ProcessKind::kWiretapOrder);
  p.validity = SimDuration::from_sec(10.0);
  const GrantedAuthority expired{p};
  const auto r = CaptureDevice::create(CaptureMode::kFullContent, expired,
                                       ProcessKind::kWiretapOrder, NodeId{1},
                                       "isp", SimTime::from_sec(100.0));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CaptureMinimizationTest, PenTrapNeverRetainsPayload) {
  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kPenTrap, order,
                                   ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                   SimTime::zero())
                 .value();
  const auto packet = make_packet(NodeId{1}, NodeId{2}, 300);
  dev.on_traversal(make_event(packet, NodeId{1}, NodeId{2}));

  ASSERT_EQ(dev.records().size(), 1u);
  EXPECT_FALSE(dev.records()[0].payload.has_value());
  EXPECT_EQ(dev.records()[0].header.payload_size, 300u);  // size retained
  EXPECT_EQ(dev.stats().payload_bytes_discarded, 300u);
  EXPECT_EQ(dev.stats().payload_bytes_retained, 0u);
}

TEST(CaptureMinimizationTest, FullContentRetainsPayload) {
  const GrantedAuthority wiretap{make_process(ProcessKind::kWiretapOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kFullContent, wiretap,
                                   ProcessKind::kWiretapOrder, NodeId{1},
                                   "isp", SimTime::zero())
                 .value();
  const auto packet = make_packet(NodeId{1}, NodeId{2}, 128);
  dev.on_traversal(make_event(packet, NodeId{1}, NodeId{2}));
  ASSERT_EQ(dev.records().size(), 1u);
  ASSERT_TRUE(dev.records()[0].payload.has_value());
  EXPECT_EQ(dev.records()[0].payload->size(), 128u);
  EXPECT_EQ(dev.stats().payload_bytes_retained, 128u);
}

TEST(CaptureDirectionTest, PenRegisterRecordsOutgoingOnly) {
  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kPenRegister, order,
                                   ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                   SimTime::zero())
                 .value();
  const auto out = make_packet(NodeId{1}, NodeId{2}, 10);
  const auto in = make_packet(NodeId{2}, NodeId{1}, 10);
  dev.on_traversal(make_event(out, NodeId{1}, NodeId{2}));  // outgoing
  dev.on_traversal(make_event(in, NodeId{2}, NodeId{1}));   // incoming
  EXPECT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.records()[0].from, NodeId{1});
}

TEST(CaptureDirectionTest, TrapAndTraceRecordsIncomingOnly) {
  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kTrapAndTrace, order,
                                   ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                   SimTime::zero())
                 .value();
  const auto out = make_packet(NodeId{1}, NodeId{2}, 10);
  const auto in = make_packet(NodeId{2}, NodeId{1}, 10);
  dev.on_traversal(make_event(out, NodeId{1}, NodeId{2}));
  dev.on_traversal(make_event(in, NodeId{2}, NodeId{1}));
  EXPECT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.records()[0].to, NodeId{1});
}

TEST(CaptureIntegrationTest, DeviceOnNetworkCapturesTraffic) {
  netsim::Network net{11};
  const NodeId client = net.add_node("client");
  const NodeId isp = net.add_node("isp");
  const NodeId server = net.add_node("server");
  (void)net.connect(client, isp).value();
  (void)net.connect(isp, server).value();

  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kPenTrap, order,
                                   ProcessKind::kCourtOrder, isp, "isp",
                                   SimTime::zero())
                 .value();
  ASSERT_TRUE(dev.attach(net).ok());

  netsim::PacketHeader h;
  h.src = client;
  h.dst = server;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.send(FlowId{1}, h, Bytes(64, 0)).ok());
  }
  net.run();
  // Each packet traverses two links incident to the ISP: both match.
  EXPECT_EQ(dev.records().size(), 20u);
  EXPECT_EQ(dev.stats().payload_bytes_retained, 0u);
}

TEST(CaptureTest, MinimumProcessMapping) {
  EXPECT_EQ(minimum_process(CaptureMode::kPenRegister), ProcessKind::kCourtOrder);
  EXPECT_EQ(minimum_process(CaptureMode::kTrapAndTrace), ProcessKind::kCourtOrder);
  EXPECT_EQ(minimum_process(CaptureMode::kPenTrap), ProcessKind::kCourtOrder);
  EXPECT_EQ(minimum_process(CaptureMode::kFullContent), ProcessKind::kWiretapOrder);
}

}  // namespace
}  // namespace lexfor::capture

// --- process-expiry auto-stop ------------------------------------------

namespace lexfor::capture {
namespace {

TEST(CaptureExpiryTest, RetentionStopsWhenTheProcessLapses) {
  auto p = make_process(ProcessKind::kCourtOrder);
  p.validity = SimDuration::from_sec(100.0);
  const GrantedAuthority order{p};
  auto dev = CaptureDevice::create(CaptureMode::kPenTrap, order,
                                   ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                   SimTime::zero())
                 .value();
  ASSERT_TRUE(dev.expires_at().has_value());
  EXPECT_EQ(*dev.expires_at(), SimTime::from_sec(100.0));

  const auto packet = make_packet(NodeId{1}, NodeId{2}, 10);
  netsim::TapEvent before{packet, LinkId{0}, NodeId{1}, NodeId{2},
                          SimTime::from_sec(50)};
  netsim::TapEvent after{packet, LinkId{0}, NodeId{1}, NodeId{2},
                         SimTime::from_sec(150)};
  dev.on_traversal(before);
  dev.on_traversal(after);

  EXPECT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.stats().packets_after_expiry, 1u);
}

TEST(CaptureExpiryTest, ProcessFreeDevicesNeverExpire) {
  auto dev = CaptureDevice::create(CaptureMode::kPenTrap, GrantedAuthority{},
                                   ProcessKind::kNone, NodeId{1}, "victim",
                                   SimTime::zero())
                 .value();
  EXPECT_FALSE(dev.expires_at().has_value());
  const auto packet = make_packet(NodeId{1}, NodeId{2}, 10);
  netsim::TapEvent late{packet, LinkId{0}, NodeId{1}, NodeId{2},
                        SimTime::from_sec(1e7)};
  dev.on_traversal(late);
  EXPECT_EQ(dev.records().size(), 1u);
}

}  // namespace
}  // namespace lexfor::capture

// --- capture -> trace handoff ----------------------------------------------

namespace lexfor::capture {
namespace {

TEST(ToTraceTest, TraceMirrorsRetainedRecords) {
  const GrantedAuthority wiretap{make_process(ProcessKind::kWiretapOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kFullContent, wiretap,
                                   ProcessKind::kWiretapOrder, NodeId{1},
                                   "isp", SimTime::zero())
                 .value();
  for (int i = 0; i < 5; ++i) {
    const auto packet = make_packet(NodeId{1}, NodeId{2}, 32);
    dev.on_traversal(make_event(packet, NodeId{1}, NodeId{2}));
  }
  const auto trace = to_trace(dev);
  EXPECT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.payload_bytes(), 5u * 32u);
  // And it survives the wire format.
  const auto reread = netsim::Trace::deserialize(trace.serialize());
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().size(), 5u);
}

TEST(ToTraceTest, PenTrapTraceHasNoPayload) {
  const GrantedAuthority order{make_process(ProcessKind::kCourtOrder)};
  auto dev = CaptureDevice::create(CaptureMode::kPenTrap, order,
                                   ProcessKind::kCourtOrder, NodeId{1}, "isp",
                                   SimTime::zero())
                 .value();
  const auto packet = make_packet(NodeId{1}, NodeId{2}, 64);
  dev.on_traversal(make_event(packet, NodeId{1}, NodeId{2}));
  const auto trace = to_trace(dev);
  EXPECT_EQ(trace.payload_bytes(), 0u);
}

}  // namespace
}  // namespace lexfor::capture
