#include "capture/filter.h"

#include <gtest/gtest.h>

#include "capture/capture.h"

namespace lexfor::capture {
namespace {

netsim::PacketHeader header(std::uint64_t src, std::uint64_t dst,
                            std::uint16_t sport = 1000,
                            std::uint16_t dport = 80,
                            netsim::Protocol proto = netsim::Protocol::kTcp,
                            std::uint32_t size = 100) {
  netsim::PacketHeader h;
  h.src = NodeId{src};
  h.dst = NodeId{dst};
  h.src_port = sport;
  h.dst_port = dport;
  h.protocol = proto;
  h.payload_size = size;
  return h;
}

TEST(FilterTest, DefaultMatchesEverything) {
  const Filter f;
  EXPECT_TRUE(f.matches(header(1, 2)));
  EXPECT_EQ(f.str(), "any");
}

TEST(FilterTest, HostMatchesEitherDirection) {
  const Filter f = Filter::host(NodeId{5});
  EXPECT_TRUE(f.matches(header(5, 9)));
  EXPECT_TRUE(f.matches(header(9, 5)));
  EXPECT_FALSE(f.matches(header(1, 2)));
}

TEST(FilterTest, SrcDstAreDirectional) {
  EXPECT_TRUE(Filter::src(NodeId{3}).matches(header(3, 4)));
  EXPECT_FALSE(Filter::src(NodeId{3}).matches(header(4, 3)));
  EXPECT_TRUE(Filter::dst(NodeId{3}).matches(header(4, 3)));
  EXPECT_FALSE(Filter::dst(NodeId{3}).matches(header(3, 4)));
}

TEST(FilterTest, PortMatchesEitherEnd) {
  const Filter f = Filter::port(80);
  EXPECT_TRUE(f.matches(header(1, 2, 9999, 80)));
  EXPECT_TRUE(f.matches(header(1, 2, 80, 9999)));
  EXPECT_FALSE(f.matches(header(1, 2, 1, 2)));
  EXPECT_FALSE(Filter::dst_port(80).matches(header(1, 2, 80, 443)));
}

TEST(FilterTest, ProtocolAndSize) {
  EXPECT_TRUE(Filter::protocol(netsim::Protocol::kUdp)
                  .matches(header(1, 2, 1, 2, netsim::Protocol::kUdp)));
  EXPECT_FALSE(Filter::protocol(netsim::Protocol::kUdp)
                   .matches(header(1, 2, 1, 2, netsim::Protocol::kTcp)));
  EXPECT_TRUE(Filter::max_size(100).matches(header(1, 2, 1, 2,
                                                   netsim::Protocol::kTcp, 100)));
  EXPECT_FALSE(Filter::max_size(99).matches(header(1, 2, 1, 2,
                                                   netsim::Protocol::kTcp, 100)));
}

TEST(FilterTest, Combinators) {
  const Filter f = Filter::src(NodeId{1}) && Filter::dst_port(80);
  EXPECT_TRUE(f.matches(header(1, 2, 5, 80)));
  EXPECT_FALSE(f.matches(header(1, 2, 5, 443)));
  EXPECT_FALSE(f.matches(header(2, 1, 5, 80)));

  const Filter g = Filter::host(NodeId{1}) || Filter::host(NodeId{2});
  EXPECT_TRUE(g.matches(header(2, 9)));
  EXPECT_FALSE(g.matches(header(3, 9)));

  const Filter h = !Filter::protocol(netsim::Protocol::kTcp);
  EXPECT_TRUE(h.matches(header(1, 2, 1, 2, netsim::Protocol::kUdp)));
}

TEST(FilterParseTest, ParsesAtoms) {
  EXPECT_TRUE(Filter::parse("any").value().matches(header(1, 2)));
  EXPECT_TRUE(Filter::parse("host 5").value().matches(header(5, 2)));
  EXPECT_TRUE(Filter::parse("src 1").value().matches(header(1, 2)));
  EXPECT_TRUE(Filter::parse("dst 2").value().matches(header(1, 2)));
  EXPECT_TRUE(Filter::parse("port 80").value().matches(header(1, 2, 5, 80)));
  EXPECT_TRUE(Filter::parse("proto tcp").value().matches(header(1, 2)));
  EXPECT_TRUE(
      Filter::parse("maxsize 200").value().matches(header(1, 2)));
}

TEST(FilterParseTest, ParsesBooleanStructure) {
  const auto f = Filter::parse("src 1 and dstport 80").value();
  EXPECT_TRUE(f.matches(header(1, 2, 5, 80)));
  EXPECT_FALSE(f.matches(header(1, 2, 5, 443)));

  const auto g = Filter::parse("host 1 or host 2").value();
  EXPECT_TRUE(g.matches(header(2, 3)));

  const auto h = Filter::parse("not proto udp").value();
  EXPECT_TRUE(h.matches(header(1, 2)));
}

TEST(FilterParseTest, AndBindsTighterThanOr) {
  // "a or b and c" == "a or (b and c)".
  const auto f = Filter::parse("src 1 or src 2 and dstport 80").value();
  EXPECT_TRUE(f.matches(header(1, 9, 5, 443)));   // src 1 alone suffices
  EXPECT_TRUE(f.matches(header(2, 9, 5, 80)));    // src 2 needs port 80
  EXPECT_FALSE(f.matches(header(2, 9, 5, 443)));
}

TEST(FilterParseTest, ParenthesesOverridePrecedence) {
  const auto f = Filter::parse("(src 1 or src 2) and dstport 80").value();
  EXPECT_FALSE(f.matches(header(1, 9, 5, 443)));
  EXPECT_TRUE(f.matches(header(1, 9, 5, 80)));
}

TEST(FilterParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Filter::parse("").ok());
  EXPECT_FALSE(Filter::parse("bogus 1").ok());
  EXPECT_FALSE(Filter::parse("host").ok());
  EXPECT_FALSE(Filter::parse("host xyz").ok());
  EXPECT_FALSE(Filter::parse("port 99999").ok());
  EXPECT_FALSE(Filter::parse("(host 1").ok());
  EXPECT_FALSE(Filter::parse("host 1 host 2").ok());
  EXPECT_FALSE(Filter::parse("proto icmp").ok());
}

TEST(FilterParseTest, IsCaseInsensitive) {
  EXPECT_TRUE(Filter::parse("HOST 5 AND Proto TCP").ok());
}

TEST(FilterScopedCaptureTest, OutOfScopeTrafficNeverRetained) {
  // A warrant scoped to traffic between node 0 and node 2 on port 80:
  // the device observes everything at the tap but retains only in-scope.
  legal::LegalProcess p;
  p.id = ProcessId{1};
  p.kind = legal::ProcessKind::kWiretapOrder;
  p.issued_at = SimTime::zero();
  auto dev = CaptureDevice::create(CaptureMode::kFullContent,
                                   legal::GrantedAuthority{p},
                                   legal::ProcessKind::kWiretapOrder,
                                   NodeId{1}, "isp", SimTime::zero())
                 .value();
  dev.set_scope_filter(
      Filter::parse("(src 0 and dst 2 or src 2 and dst 0) and port 80")
          .value());

  netsim::Packet in_scope;
  in_scope.header = header(0, 2, 5000, 80);
  in_scope.payload = Bytes(50, 1);
  netsim::Packet out_of_scope;
  out_of_scope.header = header(0, 3, 5000, 80);  // wrong destination
  out_of_scope.payload = Bytes(50, 2);

  const netsim::TapEvent ev1{in_scope, LinkId{0}, NodeId{0}, NodeId{1},
                             SimTime::zero()};
  const netsim::TapEvent ev2{out_of_scope, LinkId{0}, NodeId{0}, NodeId{1},
                             SimTime::zero()};
  dev.on_traversal(ev1);
  dev.on_traversal(ev2);

  EXPECT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.stats().packets_out_of_scope, 1u);
  EXPECT_EQ(dev.records()[0].header.dst, NodeId{2});
}

}  // namespace
}  // namespace lexfor::capture
