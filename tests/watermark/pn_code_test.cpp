#include "watermark/pn_code.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace lexfor::watermark {
namespace {

TEST(PnCodeTest, RejectsBadDegrees) {
  EXPECT_FALSE(PnCode::m_sequence(2).ok());
  EXPECT_FALSE(PnCode::m_sequence(17).ok());
  EXPECT_TRUE(PnCode::m_sequence(3).ok());
  EXPECT_TRUE(PnCode::m_sequence(16).ok());
}

TEST(PnCodeTest, RejectsZeroSeed) {
  EXPECT_FALSE(PnCode::m_sequence(5, 0).ok());
  // Seed that is zero modulo 2^degree.
  EXPECT_FALSE(PnCode::m_sequence(5, 32).ok());
}

TEST(PnCodeTest, LengthIsTwoToTheNMinusOne) {
  for (int d = 3; d <= 12; ++d) {
    const auto code = PnCode::m_sequence(d).value();
    EXPECT_EQ(code.length(), (std::size_t{1} << d) - 1) << "degree " << d;
  }
}

TEST(PnCodeTest, ChipsAreAllPlusMinusOne) {
  const auto code = PnCode::m_sequence(9).value();
  for (const auto c : code.chips()) {
    EXPECT_TRUE(c == 1 || c == -1);
  }
}

class PnPropertyTest : public ::testing::TestWithParam<int> {};

// m-sequence balance property: |sum of chips| == 1 (one extra of one
// polarity in an odd-length maximal sequence).
TEST_P(PnPropertyTest, BalanceIsPlusMinusOne) {
  const auto code = PnCode::m_sequence(GetParam()).value();
  EXPECT_EQ(std::abs(code.balance()), 1) << "degree " << GetParam();
}

// Two-valued autocorrelation: 1 at zero shift, -1/N at all other shifts.
TEST_P(PnPropertyTest, AutocorrelationIsTwoValued) {
  const auto code = PnCode::m_sequence(GetParam()).value();
  const auto n = static_cast<double>(code.length());
  EXPECT_DOUBLE_EQ(code.autocorrelation(0), 1.0);
  for (std::size_t shift = 1; shift < code.length(); shift += 7) {
    EXPECT_NEAR(code.autocorrelation(shift), -1.0 / n, 1e-12)
        << "degree " << GetParam() << " shift " << shift;
  }
}

// The LFSR state cycles through all 2^d - 1 nonzero states exactly once
// per period, so the sequence has full period (no shorter cycle).
TEST_P(PnPropertyTest, SequenceHasFullPeriod) {
  const auto code = PnCode::m_sequence(GetParam()).value();
  const auto& c = code.chips();
  // A sequence with period p < N would satisfy c[i] == c[i+p] for all i.
  for (std::size_t p = 1; p <= c.size() / 2; ++p) {
    if (c.size() % p != 0) continue;
    bool periodic = true;
    for (std::size_t i = 0; i + p < c.size() && periodic; ++i) {
      periodic = c[i] == c[i + p];
    }
    EXPECT_FALSE(periodic) << "degree " << GetParam() << " has period " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PnPropertyTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11));

TEST(PnCodeTest, DifferentSeedsGivePhaseShiftedSequences) {
  const auto a = PnCode::m_sequence(7, 1).value();
  const auto b = PnCode::m_sequence(7, 5).value();
  EXPECT_NE(a.chips(), b.chips());
  // Same multiset of chips (same balance).
  EXPECT_EQ(a.balance(), b.balance());
}

TEST(PnCodeTest, FromChipsValidates) {
  EXPECT_TRUE(PnCode::from_chips({1, -1, 1}).ok());
  EXPECT_FALSE(PnCode::from_chips({}).ok());
  EXPECT_FALSE(PnCode::from_chips({1, 0, -1}).ok());
  EXPECT_FALSE(PnCode::from_chips({2}).ok());
}

TEST(PnCodeTest, CrossCorrelationOfIdenticalCodesIsOne) {
  const auto a = PnCode::m_sequence(8).value();
  EXPECT_DOUBLE_EQ(a.cross_correlation(a), 1.0);
}

TEST(PnCodeTest, CrossCorrelationOfDistinctPhasesIsLow) {
  const auto a = PnCode::m_sequence(10, 1).value();
  const auto b = PnCode::m_sequence(10, 77).value();
  EXPECT_LT(std::abs(a.cross_correlation(b)), 0.1);
}

}  // namespace
}  // namespace lexfor::watermark
