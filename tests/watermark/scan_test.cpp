// Alignment-free (offset-scan) watermark detection.

#include <gtest/gtest.h>

#include "util/rng.h"
#include "watermark/dsss.h"

namespace lexfor::watermark {
namespace {

PnCode code9() { return PnCode::m_sequence(9).value(); }

std::vector<double> marked_series(const PnCode& code, std::size_t offset,
                                  double depth, double noise_sigma,
                                  Rng& rng) {
  std::vector<double> rates(offset, 100.0);
  for (std::size_t i = 0; i < offset; ++i) {
    rates[i] += rng.normal(0.0, noise_sigma);
  }
  for (const auto c : code.chips()) {
    rates.push_back(100.0 * (1.0 + depth * c) + rng.normal(0.0, noise_sigma));
  }
  // Some trailing noise bins.
  for (int i = 0; i < 20; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  return rates;
}

TEST(ScanTest, FindsTheEmbedOffset) {
  Rng rng{5};
  const auto code = code9();
  const std::size_t true_offset = 37;
  const auto rates = marked_series(code, true_offset, 0.3, 5.0, rng);
  const Detector det(code);
  const auto r = det.detect_with_scan(rates, 100).value();
  EXPECT_TRUE(r.best.detected);
  EXPECT_EQ(r.offset, true_offset);
}

TEST(ScanTest, ZeroOffsetEquivalentToDirectDetect) {
  Rng rng{7};
  const auto code = code9();
  const auto rates = marked_series(code, 0, 0.3, 5.0, rng);
  const Detector det(code);
  const auto direct = det.detect(rates).value();
  const auto scanned = det.detect_with_scan(rates, 0).value();
  EXPECT_EQ(scanned.offset, 0u);
  EXPECT_DOUBLE_EQ(scanned.best.correlation, direct.correlation);
}

TEST(ScanTest, ScanningRaisesTheThreshold) {
  Rng rng{9};
  const auto code = code9();
  const auto rates = marked_series(code, 10, 0.3, 5.0, rng);
  const Detector det(code);
  const auto direct = det.detect(rates).value();
  const auto scanned = det.detect_with_scan(rates, 50).value();
  // Bonferroni inflation: the scan threshold must exceed the direct one.
  EXPECT_GT(scanned.best.threshold, direct.threshold);
}

TEST(ScanTest, PureNoiseSurvivesScanWithoutFalsePositive) {
  Rng rng{11};
  const auto code = code9();
  const Detector det(code);
  int false_positives = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> noise;
    for (std::size_t i = 0; i < code.length() + 100; ++i) {
      noise.push_back(100.0 + rng.normal(0.0, 20.0));
    }
    const auto r = det.detect_with_scan(noise, 100).value();
    false_positives += r.best.detected;
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(ScanTest, RejectsShortSeries) {
  const auto code = code9();
  const Detector det(code);
  const std::vector<double> short_series(code.length() - 1, 1.0);
  EXPECT_FALSE(det.detect_with_scan(short_series, 10).ok());
}

TEST(ScanTest, MaxOffsetClampsToSeriesLength) {
  Rng rng{13};
  const auto code = code9();
  const auto rates = marked_series(code, 5, 0.3, 5.0, rng);
  const Detector det(code);
  // Asking for a huge offset range must not read past the end.
  const auto r = det.detect_with_scan(rates, 1u << 20).value();
  EXPECT_TRUE(r.best.detected);
  EXPECT_EQ(r.offset, 5u);
}

}  // namespace
}  // namespace lexfor::watermark
