#include "watermark/gold_code.h"

#include <gtest/gtest.h>

#include <cmath>

#include "watermark/dsss.h"

namespace lexfor::watermark {
namespace {

TEST(GoldCodeTest, RejectsUnsupportedDegrees) {
  EXPECT_FALSE(GoldCodeFamily::create(4).ok());
  EXPECT_FALSE(GoldCodeFamily::create(8).ok());  // no preferred pair
  EXPECT_TRUE(GoldCodeFamily::create(9).ok());
}

class GoldFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldFamilyTest, FamilySizeIsTwoToTheNPlusOne) {
  const auto family = GoldCodeFamily::create(GetParam()).value();
  EXPECT_EQ(family.size(), (std::size_t{1} << GetParam()) + 1);
  EXPECT_EQ(family.code_length(), (std::size_t{1} << GetParam()) - 1);
}

TEST_P(GoldFamilyTest, AllCodesAreValidPnCodes) {
  const auto family = GoldCodeFamily::create(GetParam()).value();
  for (std::size_t i = 0; i < family.size(); i += family.size() / 8 + 1) {
    const auto& code = family.code(i);
    EXPECT_EQ(code.length(), family.code_length());
    for (const auto c : code.chips()) EXPECT_TRUE(c == 1 || c == -1);
  }
}

TEST_P(GoldFamilyTest, CrossCorrelationIsWithinGoldBound) {
  const auto family = GoldCodeFamily::create(GetParam()).value();
  const double bound = family.cross_correlation_bound();
  // Spot-check pairs across the family (full O(n^2) is too slow at 1023+).
  const std::size_t stride = family.size() / 12 + 1;
  for (std::size_t i = 0; i < family.size(); i += stride) {
    for (std::size_t j = i + 1; j < family.size(); j += stride) {
      const double xc =
          std::abs(family.code(i).cross_correlation(family.code(j)));
      EXPECT_LE(xc, bound + 1e-9)
          << "degree " << GetParam() << " codes " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, GoldFamilyTest,
                         ::testing::Values(5, 6, 7, 9, 10));

TEST(GoldCodeTest, BoundIsMuchSmallerThanOne) {
  const auto family = GoldCodeFamily::create(9).value();
  EXPECT_LT(family.cross_correlation_bound(), 0.07);  // 33/511
}

TEST(GoldCodeTest, CodesAreDistinct) {
  const auto family = GoldCodeFamily::create(5).value();
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      EXPECT_NE(family.code(i).chips(), family.code(j).chips())
          << i << "," << j;
    }
  }
}

TEST(GoldCodeTest, MarkUnderOneCodeDoesNotDespreadUnderAnother) {
  const auto family = GoldCodeFamily::create(9).value();
  std::vector<double> rates;
  for (const auto c : family.code(3).chips()) {
    rates.push_back(100.0 * (1.0 + 0.3 * c));
  }
  const Detector right(family.code(3));
  const Detector wrong(family.code(17));
  EXPECT_TRUE(right.detect(rates).value().detected);
  EXPECT_FALSE(wrong.detect(rates).value().detected);
}

}  // namespace
}  // namespace lexfor::watermark
