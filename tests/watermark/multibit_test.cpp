#include "watermark/multibit.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lexfor::watermark {
namespace {

PnCode code10() { return PnCode::m_sequence(10).value(); }  // 1023 chips

MultiBitParams params(std::size_t chips_per_bit = 63) {
  MultiBitParams p;
  p.start = SimTime::zero();
  p.chip_duration = SimDuration::from_ms(100.0);
  p.depth = 0.3;
  p.chips_per_bit = chips_per_bit;
  return p;
}

std::vector<std::int8_t> payload16() {
  return {1, -1, -1, 1, 1, 1, -1, 1, -1, -1, 1, -1, 1, 1, -1, -1};
}

TEST(MultiBitTest, CreateValidatesInputs) {
  EXPECT_FALSE(MultiBitEmbedder::create(code10(), {}, params()).ok());
  EXPECT_FALSE(MultiBitEmbedder::create(code10(), {1, 0, -1}, params()).ok());
  auto zero_l = params();
  zero_l.chips_per_bit = 0;
  EXPECT_FALSE(MultiBitEmbedder::create(code10(), {1, -1}, zero_l).ok());
  // 17 bits x 63 chips = 1071 > 1023: too long.
  std::vector<std::int8_t> too_many(17, 1);
  EXPECT_FALSE(MultiBitEmbedder::create(code10(), too_many, params()).ok());
  EXPECT_TRUE(MultiBitEmbedder::create(code10(), payload16(), params()).ok());
}

TEST(MultiBitTest, MultiplierEncodesBitTimesChip) {
  const auto code = code10();
  const auto emb =
      MultiBitEmbedder::create(code, payload16(), params()).value();
  const auto bits = payload16();
  for (std::size_t chip = 0; chip < 16 * 63; chip += 97) {
    const SimTime mid = SimTime::from_ms(100.0 * static_cast<double>(chip) + 50.0);
    const double expected =
        1.0 + 0.3 * static_cast<double>(bits[chip / 63]) *
                  static_cast<double>(code.chips()[chip]);
    EXPECT_DOUBLE_EQ(emb.multiplier(mid), expected) << "chip " << chip;
  }
}

TEST(MultiBitTest, MultiplierIsOneOutsideTheMark) {
  const auto emb =
      MultiBitEmbedder::create(code10(), payload16(), params()).value();
  EXPECT_DOUBLE_EQ(
      emb.multiplier(emb.end() + SimDuration::from_ms(1)), 1.0);
  // end = 16 * 63 chips * 100ms.
  EXPECT_NEAR(emb.end().seconds(), 16 * 63 * 0.1, 1e-9);
}

TEST(MultiBitTest, CleanSignalDecodesPerfectly) {
  const auto code = code10();
  const auto bits = payload16();
  std::vector<double> rates;
  for (std::size_t chip = 0; chip < bits.size() * 63; ++chip) {
    rates.push_back(100.0 * (1.0 + 0.3 * bits[chip / 63] *
                                       code.chips()[chip]));
  }
  const MultiBitDecoder decoder(code, 63);
  const auto r = decoder.decode_and_compare(rates, bits).value();
  EXPECT_DOUBLE_EQ(r.bit_error_rate, 0.0);
  EXPECT_EQ(r.bits, bits);
}

TEST(MultiBitTest, NoisySignalDecodesWithLowBer) {
  const auto code = code10();
  const auto bits = payload16();
  Rng rng{3};
  std::vector<double> rates;
  for (std::size_t chip = 0; chip < bits.size() * 63; ++chip) {
    rates.push_back(100.0 + 30.0 * bits[chip / 63] * code.chips()[chip] +
                    rng.normal(0.0, 60.0));  // SNR 0.5 per chip
  }
  const MultiBitDecoder decoder(code, 63);
  const auto r = decoder.decode_and_compare(rates, bits).value();
  EXPECT_LE(r.bit_error_rate, 1.0 / 16.0);  // at most one bit wrong
}

TEST(MultiBitTest, BaselineDriftIsToleratedBySegmentMeans) {
  const auto code = code10();
  const auto bits = payload16();
  std::vector<double> rates;
  for (std::size_t chip = 0; chip < bits.size() * 63; ++chip) {
    const double drift = 0.05 * static_cast<double>(chip);  // slow ramp
    rates.push_back(100.0 + drift +
                    30.0 * bits[chip / 63] * code.chips()[chip]);
  }
  const MultiBitDecoder decoder(code, 63);
  const auto r = decoder.decode_and_compare(rates, bits).value();
  EXPECT_DOUBLE_EQ(r.bit_error_rate, 0.0);
}

TEST(MultiBitTest, DecodeRejectsShortSeries) {
  const MultiBitDecoder decoder(code10(), 63);
  const std::vector<double> short_series(100, 1.0);
  EXPECT_FALSE(decoder.decode(short_series, 16).ok());
}

TEST(MultiBitTest, LongerSpreadingLowersBerAtFixedNoise) {
  const auto code = code10();
  Rng rng{9};
  auto ber_at = [&](std::size_t chips_per_bit, std::size_t n_bits) {
    std::vector<std::int8_t> bits;
    for (std::size_t i = 0; i < n_bits; ++i) {
      bits.push_back(rng.bernoulli(0.5) ? 1 : -1);
    }
    double total_errors = 0, total_bits = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<double> rates;
      for (std::size_t chip = 0; chip < n_bits * chips_per_bit; ++chip) {
        rates.push_back(100.0 +
                        10.0 * bits[chip / chips_per_bit] * code.chips()[chip] +
                        rng.normal(0.0, 50.0));
      }
      const MultiBitDecoder decoder(code, chips_per_bit);
      const auto r = decoder.decode_and_compare(rates, bits).value();
      total_errors += r.bit_error_rate * static_cast<double>(n_bits);
      total_bits += static_cast<double>(n_bits);
    }
    return total_errors / total_bits;
  };
  // Same noise, same code: 15 chips/bit vs 127 chips/bit.
  const double short_spread = ber_at(15, 8);
  const double long_spread = ber_at(127, 8);
  EXPECT_LT(long_spread, short_spread);
}

}  // namespace
}  // namespace lexfor::watermark
