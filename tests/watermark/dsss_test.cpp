#include "watermark/dsss.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lexfor::watermark {
namespace {

PnCode code9() { return PnCode::m_sequence(9).value(); }

EmbedParams params(double chip_ms = 100.0, double depth = 0.3) {
  EmbedParams p;
  p.start = SimTime::from_sec(1.0);
  p.chip_duration = SimDuration::from_ms(chip_ms);
  p.depth = depth;
  return p;
}

TEST(EmbedderTest, MultiplierIsOneOutsideCodeWindow) {
  const Embedder emb(code9(), params());
  EXPECT_DOUBLE_EQ(emb.multiplier(SimTime::from_sec(0.5)), 1.0);
  EXPECT_DOUBLE_EQ(emb.multiplier(emb.end() + SimDuration::from_ms(1)), 1.0);
}

TEST(EmbedderTest, MultiplierFollowsChips) {
  const auto code = code9();
  const Embedder emb(code, params(100.0, 0.25));
  for (std::size_t i = 0; i < code.length(); i += 13) {
    const SimTime mid = SimTime::from_sec(1.0) +
                        SimDuration::from_ms(100.0 * static_cast<double>(i) + 50.0);
    const double expected = 1.0 + 0.25 * static_cast<double>(code.chips()[i]);
    EXPECT_DOUBLE_EQ(emb.multiplier(mid), expected) << "chip " << i;
  }
}

TEST(EmbedderTest, EndMatchesCodeLength) {
  const auto code = code9();
  const Embedder emb(code, params(100.0));
  const double expected_sec =
      1.0 + 0.1 * static_cast<double>(code.length());
  EXPECT_NEAR(emb.end().seconds(), expected_sec, 1e-9);
}

TEST(DetectorTest, RejectsShortSeries) {
  const Detector det(code9());
  const std::vector<double> too_short(10, 1.0);
  EXPECT_EQ(det.detect(too_short).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectorTest, FlatSeriesIsNotDetected) {
  const Detector det(code9());
  const std::vector<double> flat(code9().length(), 100.0);
  const auto r = det.detect(flat);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().detected);
  EXPECT_DOUBLE_EQ(r.value().correlation, 0.0);
}

TEST(DetectorTest, CleanMarkIsDetected) {
  const auto code = code9();
  const Detector det(code);
  std::vector<double> rates;
  for (const auto c : code.chips()) {
    rates.push_back(100.0 * (1.0 + 0.3 * c));
  }
  const auto r = det.detect(rates);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().detected);
  EXPECT_GT(r.value().correlation, 0.9);
}

TEST(DetectorTest, NoisyMarkIsStillDetected) {
  const auto code = code9();
  const Detector det(code);
  Rng rng{13};
  std::vector<double> rates;
  for (const auto c : code.chips()) {
    // SNR well below 1: noise sigma 3x the mark amplitude.
    rates.push_back(100.0 + 10.0 * c + rng.normal(0.0, 30.0));
  }
  const auto r = det.detect(rates);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().detected) << "corr=" << r.value().correlation
                                  << " thr=" << r.value().threshold;
}

TEST(DetectorTest, PureNoiseIsNotDetected) {
  const auto code = code9();
  const Detector det(code);
  Rng rng{17};
  int false_positives = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> rates;
    for (std::size_t i = 0; i < code.length(); ++i) {
      rates.push_back(100.0 + rng.normal(0.0, 20.0));
    }
    const auto r = det.detect(rates);
    ASSERT_TRUE(r.ok());
    false_positives += r.value().detected;
  }
  // 5-sigma threshold: essentially zero false positives expected.
  EXPECT_LE(false_positives, 1);
}

TEST(DetectorTest, WrongCodeDoesNotDespreadTheMark) {
  const auto marked_code = PnCode::m_sequence(9, 1).value();
  const auto wrong_code = PnCode::m_sequence(9, 101).value();
  std::vector<double> rates;
  for (const auto c : marked_code.chips()) {
    rates.push_back(100.0 * (1.0 + 0.3 * c));
  }
  const Detector det(wrong_code);
  const auto r = det.detect(rates);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().detected)
      << "phase-shifted code must not despread the mark";
}

TEST(DetectorTest, LongerCodesTolerateMoreNoise) {
  // Property the paper's §IV.B technique depends on: processing gain
  // grows with code length.
  Rng rng{21};
  const double noise_sigma = 60.0;
  const double mark = 10.0;

  auto detection_rate = [&](int degree) {
    const auto code = PnCode::m_sequence(degree).value();
    const Detector det(code, 4.0);
    int detected = 0;
    constexpr int kTrials = 60;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<double> rates;
      for (const auto c : code.chips()) {
        rates.push_back(100.0 + mark * c + rng.normal(0.0, noise_sigma));
      }
      detected += det.detect(rates).value().detected;
    }
    return static_cast<double>(detected) / kTrials;
  };

  const double short_code = detection_rate(5);   // 31 chips
  const double long_code = detection_rate(11);   // 2047 chips
  EXPECT_GT(long_code, short_code);
  EXPECT_GT(long_code, 0.9);
}

TEST(DetectorTest, DetectCountsMatchesDetectOnRates) {
  const auto code = PnCode::m_sequence(6).value();
  const Detector det(code);
  std::vector<std::uint32_t> counts;
  std::vector<double> rates;
  for (const auto c : code.chips()) {
    const std::uint32_t n = static_cast<std::uint32_t>(50 + 10 * c);
    counts.push_back(n);
    rates.push_back(static_cast<double>(n));
  }
  const auto a = det.detect_counts(counts);
  const auto b = det.detect(rates);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().correlation, b.value().correlation);
}

TEST(DetectorTest, ExtraTrailingBinsAreIgnored) {
  const auto code = PnCode::m_sequence(6).value();
  const Detector det(code);
  std::vector<double> rates;
  for (const auto c : code.chips()) rates.push_back(100.0 * (1.0 + 0.3 * c));
  const auto exact = det.detect(rates).value();
  rates.push_back(9999.0);
  rates.push_back(0.0);
  const auto padded = det.detect(rates).value();
  EXPECT_DOUBLE_EQ(exact.correlation, padded.correlation);
}

}  // namespace
}  // namespace lexfor::watermark
