// ScanBatch: deterministic multi-flow fan-out over the thread pool.
//
// The contract under test: slot i of the output always answers job i
// with bits identical to running the job alone, whatever the pool
// size; error jobs (null kernel, short series) fill their slot without
// aborting the batch; and the watermark.scan.* obs instruments account
// for exactly the work done.

#include "watermark/scan_batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "util/rng.h"
#include "watermark/multibit.h"

namespace lexfor::watermark {
namespace {

struct Flow {
  std::vector<double> rates;
  std::size_t true_offset = 0;
};

Flow marked_flow(const PnCode& code, std::size_t offset, double noise_sigma,
                 Rng& rng) {
  Flow f;
  f.true_offset = offset;
  for (std::size_t i = 0; i < offset; ++i) {
    f.rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  for (const auto c : code.chips()) {
    f.rates.push_back(100.0 * (1.0 + 0.3 * c) + rng.normal(0.0, noise_sigma));
  }
  for (int i = 0; i < 10; ++i) {
    f.rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  return f;
}

TEST(ScanBatchTest, DeterministicOrderingAcrossPoolSizes) {
  Rng rng{71};
  const auto code = PnCode::m_sequence(9).value();
  const CorrelationKernel kernel(code, 5.0);

  std::vector<Flow> flows;
  for (std::size_t i = 0; i < 12; ++i) {
    flows.push_back(marked_flow(code, 3 * i, 5.0, rng));
  }
  std::vector<ScanJob> jobs(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    jobs[i].kernel = &kernel;
    jobs[i].rates = std::span<const double>(flows[i].rates);
    jobs[i].max_offset = 64;
  }

  // Serial ground truth straight from the kernel.
  std::vector<ScanResult> expected;
  for (const auto& job : jobs) {
    expected.push_back(kernel.scan(job.rates, job.max_offset).value());
  }

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const ScanBatch batch(ScanBatchOptions{threads});
    const auto results = batch.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "threads=" << threads << " job " << i;
      const auto& got = results[i].value();
      // Slot i answers job i: the recovered offset is job i's embed
      // offset, not some other flow's.
      EXPECT_EQ(got.offset, flows[i].true_offset)
          << "threads=" << threads << " job " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.best.correlation),
                std::bit_cast<std::uint64_t>(expected[i].best.correlation))
          << "threads=" << threads << " job " << i;
      EXPECT_EQ(got.best.detected, expected[i].best.detected);
    }
  }
}

TEST(ScanBatchTest, RepeatedRunsAreIdentical) {
  Rng rng{73};
  const auto code = PnCode::m_sequence(7).value();
  const CorrelationKernel kernel(code, 4.0);
  std::vector<Flow> flows;
  for (std::size_t i = 0; i < 32; ++i) {
    flows.push_back(marked_flow(code, i, 15.0, rng));
  }
  std::vector<ScanJob> jobs(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    jobs[i].kernel = &kernel;
    jobs[i].rates = std::span<const double>(flows[i].rates);
    jobs[i].max_offset = 40;
  }
  const ScanBatch batch;  // default: hardware concurrency
  const auto first = batch.run(jobs);
  const auto second = batch.run(jobs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(first[i].value().best.correlation),
        std::bit_cast<std::uint64_t>(second[i].value().best.correlation));
    EXPECT_EQ(first[i].value().offset, second[i].value().offset);
  }
}

TEST(ScanBatchTest, EmptyBatchReturnsEmpty) {
  const ScanBatch batch;
  const auto results = batch.run({});
  EXPECT_TRUE(results.empty());
}

TEST(ScanBatchTest, NullKernelAndShortFlowFillTheirSlotsWithoutAborting) {
  Rng rng{77};
  const auto code = PnCode::m_sequence(7).value();
  const CorrelationKernel kernel(code, 5.0);
  const auto good = marked_flow(code, 4, 5.0, rng);
  const std::vector<double> too_short(code.length() / 2, 100.0);

  std::vector<ScanJob> jobs(3);
  jobs[0].kernel = nullptr;  // null kernel: error slot
  jobs[0].rates = std::span<const double>(good.rates);
  jobs[1].kernel = &kernel;  // empty flow: short-series error slot
  jobs[1].rates = std::span<const double>(too_short);
  jobs[1].max_offset = 10;
  jobs[2].kernel = &kernel;  // healthy job after two bad ones
  jobs[2].rates = std::span<const double>(good.rates);
  jobs[2].max_offset = 20;

  const ScanBatch batch(ScanBatchOptions{2});
  const auto results = batch.run(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[2].ok());
  EXPECT_TRUE(results[2].value().best.detected);
  EXPECT_EQ(results[2].value().offset, 4u);
}

#if LEXFOR_OBS
TEST(ScanBatchTest, ObsCountersAccountForTheWorkDone) {
  Rng rng{79};
  const auto code = PnCode::m_sequence(7).value();  // 127 chips
  const CorrelationKernel kernel(code, 5.0);
  std::vector<Flow> flows;
  for (std::size_t i = 0; i < 5; ++i) {
    flows.push_back(marked_flow(code, i, 5.0, rng));
  }
  std::vector<ScanJob> jobs(flows.size());
  std::size_t expected_offsets = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    jobs[i].kernel = &kernel;
    jobs[i].rates = std::span<const double>(flows[i].rates);
    jobs[i].max_offset = 2 * i;  // 1 + 3 + 5 + 7 + 9 = 25 offsets total
    expected_offsets += 2 * i + 1;
  }

  auto& batches = obs::metrics().counter("watermark.scan.batches");
  auto& flows_c = obs::metrics().counter("watermark.scan.flows");
  auto& offsets = obs::metrics().counter("watermark.scan.offsets");
  auto& latency = obs::metrics().histogram("watermark.scan.latency_us");
  const auto batches_before = batches.value();
  const auto flows_before = flows_c.value();
  const auto offsets_before = offsets.value();
  const auto latency_before = latency.count();

  const ScanBatch batch(ScanBatchOptions{3});
  const auto results = batch.run(jobs);
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  EXPECT_EQ(batches.value() - batches_before, 1u);
  EXPECT_EQ(flows_c.value() - flows_before, jobs.size());
  EXPECT_EQ(offsets.value() - offsets_before, expected_offsets);
  // The scan-latency histogram records one sample per job.
  EXPECT_EQ(latency.count() - latency_before, jobs.size());
}
#endif  // LEXFOR_OBS

TEST(ScanBatchTest, MultibitDecodeWithBatchIsBitIdenticalToSerialDecode) {
  Rng rng{81};
  const auto code = PnCode::m_sequence(10).value();
  const std::vector<std::int8_t> payload = {1,  -1, 1, 1, -1, -1, 1, -1,
                                            -1, 1,  1, 1, -1, 1,  -1, -1};
  constexpr std::size_t kChipsPerBit = 63;
  std::vector<double> rates;
  for (std::size_t chip = 0; chip < payload.size() * kChipsPerBit; ++chip) {
    rates.push_back(100.0 +
                    20.0 * payload[chip / kChipsPerBit] * code.chips()[chip] +
                    rng.normal(0.0, 40.0));
  }
  const MultiBitDecoder decoder(code, kChipsPerBit);
  const auto serial = decoder.decode(rates, payload.size()).value();
  const ScanBatch batch(ScanBatchOptions{4});
  const auto fanned =
      decoder.decode_with(batch, rates, payload.size()).value();
  EXPECT_EQ(serial.bits, fanned.bits);
  ASSERT_EQ(serial.correlations.size(), fanned.correlations.size());
  for (std::size_t i = 0; i < serial.correlations.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.correlations[i]),
              std::bit_cast<std::uint64_t>(fanned.correlations[i]));
  }
}

}  // namespace
}  // namespace lexfor::watermark
