// CorrelationKernel bit-identity: the allocation-free scan must produce
// the EXACT bits the retained naive reference produces — correlation,
// threshold, offset and decision — on randomized series, flat series,
// short-series errors, and the max_offset clamp edge.

#include "watermark/correlate.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "watermark/dsss.h"

namespace lexfor::watermark {
namespace {

void expect_bit_identical(const ScanResult& kernel, const ScanResult& ref) {
  EXPECT_EQ(kernel.offset, ref.offset);
  EXPECT_EQ(kernel.best.detected, ref.best.detected);
  // EXPECT_DOUBLE_EQ tolerates 4 ULPs; the contract is 0.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(kernel.best.correlation),
            std::bit_cast<std::uint64_t>(ref.best.correlation))
      << "correlation " << kernel.best.correlation << " vs "
      << ref.best.correlation;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(kernel.best.threshold),
            std::bit_cast<std::uint64_t>(ref.best.threshold))
      << "threshold " << kernel.best.threshold << " vs "
      << ref.best.threshold;
}

std::vector<double> random_series(const PnCode& code, std::size_t offset,
                                  std::size_t tail, bool marked, double depth,
                                  double noise_sigma, Rng& rng) {
  std::vector<double> rates;
  rates.reserve(offset + code.length() + tail);
  for (std::size_t i = 0; i < offset; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  for (const auto c : code.chips()) {
    const double mark = marked ? 100.0 * depth * static_cast<double>(c) : 0.0;
    rates.push_back(100.0 + mark + rng.normal(0.0, noise_sigma));
  }
  for (std::size_t i = 0; i < tail; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  return rates;
}

TEST(CorrelationKernelTest, RandomizedScanMatchesReferenceBitForBit) {
  Rng rng{2026};
  for (int trial = 0; trial < 60; ++trial) {
    const int degree = 5 + static_cast<int>(rng.uniform(5));  // 5..9
    const auto code = PnCode::m_sequence(degree).value();
    const std::size_t offset = rng.uniform(40);
    const std::size_t tail = rng.uniform(30);
    const bool marked = rng.bernoulli(0.5);
    const double sigma = 1.0 + 30.0 * rng.uniform01();
    const auto rates =
        random_series(code, offset, tail, marked, 0.3, sigma, rng);
    const std::size_t max_offset = rng.uniform(80);

    const Detector det(code);
    const auto kernel_r = det.detect_with_scan(rates, max_offset);
    const auto ref_r = det.detect_with_scan_reference(rates, max_offset);
    ASSERT_TRUE(kernel_r.ok());
    ASSERT_TRUE(ref_r.ok());
    expect_bit_identical(kernel_r.value(), ref_r.value());
  }
}

TEST(CorrelationKernelTest, FlatSeriesMatchesReference) {
  const auto code = PnCode::m_sequence(7).value();
  const Detector det(code);
  const std::vector<double> flat(code.length() + 50, 42.0);
  const auto kernel_r = det.detect_with_scan(flat, 20).value();
  const auto ref_r = det.detect_with_scan_reference(flat, 20).value();
  expect_bit_identical(kernel_r, ref_r);
  EXPECT_DOUBLE_EQ(kernel_r.best.correlation, 0.0);
  EXPECT_FALSE(kernel_r.best.detected);
  EXPECT_EQ(kernel_r.offset, 0u);  // ties keep the earliest offset
}

TEST(CorrelationKernelTest, ShortSeriesErrorsMatchReference) {
  const auto code = PnCode::m_sequence(9).value();
  const Detector det(code);
  const std::vector<double> short_series(code.length() - 1, 1.0);
  const auto kernel_r = det.detect_with_scan(short_series, 10);
  const auto ref_r = det.detect_with_scan_reference(short_series, 10);
  EXPECT_FALSE(kernel_r.ok());
  EXPECT_FALSE(ref_r.ok());
  EXPECT_EQ(kernel_r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(kernel_r.status().code(), ref_r.status().code());
}

TEST(CorrelationKernelTest, MaxOffsetClampEdgeMatchesReference) {
  Rng rng{31};
  const auto code = PnCode::m_sequence(7).value();
  const Detector det(code);
  const auto rates = random_series(code, 13, 0, true, 0.3, 4.0, rng);
  // rates.size() - n == 13: every max_offset at or past the clamp edge
  // must scan exactly offsets [0, 13] — including the huge ask.
  for (const std::size_t max_offset : {std::size_t{13}, std::size_t{14},
                                       std::size_t{1} << 20}) {
    const auto kernel_r = det.detect_with_scan(rates, max_offset).value();
    const auto ref_r =
        det.detect_with_scan_reference(rates, max_offset).value();
    expect_bit_identical(kernel_r, ref_r);
    EXPECT_EQ(kernel_r.offset, 13u);
  }
}

TEST(CorrelationKernelTest, ExactSizeSeriesScansSingleOffset) {
  Rng rng{33};
  const auto code = PnCode::m_sequence(6).value();
  const Detector det(code);
  const auto rates = random_series(code, 0, 0, true, 0.3, 2.0, rng);
  ASSERT_EQ(rates.size(), code.length());
  const auto kernel_r = det.detect_with_scan(rates, 500).value();
  const auto ref_r = det.detect_with_scan_reference(rates, 500).value();
  expect_bit_identical(kernel_r, ref_r);
  // k = 1: no Bonferroni inflation, so the scan threshold equals the
  // aligned detector's.
  const auto aligned = det.detect(rates).value();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(kernel_r.best.threshold),
            std::bit_cast<std::uint64_t>(aligned.threshold));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(kernel_r.best.correlation),
            std::bit_cast<std::uint64_t>(aligned.correlation));
}

TEST(CorrelationKernelTest, AlignedDetectMatchesNaiveFormula) {
  Rng rng{35};
  const auto code = PnCode::m_sequence(9).value();
  const auto rates = random_series(code, 0, 10, true, 0.25, 8.0, rng);
  const CorrelationKernel kernel(code, 5.0);
  const auto r = kernel.detect(rates).value();

  // Independent naive despread, the historic Detector::detect loop.
  const std::size_t n = code.length();
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += rates[i];
  mean /= static_cast<double>(n);
  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rates[i] - mean;
    num += x * static_cast<double>(code.chips()[i]);
    denom += x * x;
  }
  const double expected = num / std::sqrt(denom * static_cast<double>(n));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.correlation),
            std::bit_cast<std::uint64_t>(expected));
}

TEST(CorrelationKernelTest, DetectCountsScratchOverloadIsIdentical) {
  Rng rng{37};
  const auto code = PnCode::m_sequence(7).value();
  const Detector det(code);
  std::vector<std::uint32_t> counts;
  for (std::size_t i = 0; i < code.length() + 5; ++i) {
    counts.push_back(40 + static_cast<std::uint32_t>(rng.uniform(40)));
  }
  const auto plain = det.detect_counts(counts).value();
  std::vector<double> scratch;
  const auto reused = det.detect_counts(counts, scratch).value();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(plain.correlation),
            std::bit_cast<std::uint64_t>(reused.correlation));
  EXPECT_EQ(plain.detected, reused.detected);
  EXPECT_EQ(scratch.size(), counts.size());
  // The scratch buffer is reusable across calls.
  const auto again = det.detect_counts(counts, scratch).value();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(plain.correlation),
            std::bit_cast<std::uint64_t>(again.correlation));
}

TEST(CorrelationKernelTest, SegmentDespreadMatchesNaiveSegmentLoop) {
  Rng rng{39};
  const auto code = PnCode::m_sequence(10).value();
  const std::size_t L = 63;
  std::vector<double> rates;
  for (std::size_t i = 0; i < 8 * L; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, 20.0));
  }
  const CorrelationKernel kernel(code);
  for (std::size_t b = 0; b < 8; ++b) {
    const std::size_t begin = b * L;
    double mean = 0.0;
    for (std::size_t j = 0; j < L; ++j) mean += rates[begin + j];
    mean /= static_cast<double>(L);
    double num = 0.0, denom = 0.0;
    for (std::size_t j = 0; j < L; ++j) {
      const double x = rates[begin + j] - mean;
      num += x * static_cast<double>(code.chips()[begin + j]);
      denom += x * x;
    }
    const double expected =
        denom > 0.0 ? num / std::sqrt(denom * static_cast<double>(L)) : 0.0;
    const double got = kernel.despread(rates.data() + begin, begin, L);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(expected))
        << "segment " << b;
  }
}

TEST(CorrelationKernelTest, CrossScoreMatchesPearsonBitForBit) {
  // cross_score is the kernel-side replacement for the hand-rolled
  // passive correlation in bench_baseline; util::pearson stays as the
  // naive oracle it must match exactly.
  Rng rng{20260805};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform(200);
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal(100.0, 25.0);
      b[i] = 0.4 * a[i] + rng.normal(0.0, 10.0);
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  CorrelationKernel::cross_score(a, b)),
              std::bit_cast<std::uint64_t>(lexfor::pearson(a, b)))
        << "trial " << trial << " n " << n;
  }
}

TEST(CorrelationKernelTest, CrossScoreDegenerateInputsAreZero) {
  const std::vector<double> flat(8, 3.0);
  const std::vector<double> ramp{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const std::vector<double> one{1.0};
  const std::vector<double> shorter{1.0, 2.0};
  EXPECT_EQ(CorrelationKernel::cross_score(flat, ramp), 0.0);   // zero variance
  EXPECT_EQ(CorrelationKernel::cross_score(ramp, flat), 0.0);
  EXPECT_EQ(CorrelationKernel::cross_score(one, one), 0.0);     // n < 2
  EXPECT_EQ(CorrelationKernel::cross_score(ramp, shorter), 0.0);  // mismatch
  EXPECT_EQ(CorrelationKernel::cross_score({}, {}), 0.0);
}

}  // namespace
}  // namespace lexfor::watermark
