// The SIMD despread lane's contract: opt-in, verdict-identical to the
// scalar oracle, correlation within kSimdMaxUlp ULPs, graceful scalar
// fallback when the lane is unavailable.  Every property here holds on
// BOTH CI legs — with LEXFOR_SIMD=OFF scan_simd forwards to scan and
// the bounds below collapse to 0 ULPs, so one test binary covers both.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "watermark/correlate.h"
#include "watermark/dsss.h"
#include "watermark/pn_code.h"
#include "watermark/scan_batch.h"

namespace lexfor::watermark {
namespace {

std::vector<double> random_series(const PnCode& code, std::size_t offset,
                                  std::size_t tail, bool marked, double sigma,
                                  Rng& rng) {
  std::vector<double> rates;
  rates.reserve(offset + code.length() + tail);
  for (std::size_t i = 0; i < offset; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, sigma));
  }
  for (const auto c : code.chips()) {
    const double mark = marked ? 30.0 * static_cast<double>(c) : 0.0;
    rates.push_back(100.0 + mark + rng.normal(0.0, sigma));
  }
  for (std::size_t i = 0; i < tail; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, sigma));
  }
  return rates;
}

// The lane's shipping gate, in test form: same offset, same decision,
// bit-identical threshold, ULP-bounded correlation.
void expect_verdict_identical(const ScanResult& scalar, const ScanResult& simd,
                              const char* what) {
  EXPECT_EQ(scalar.offset, simd.offset) << what;
  EXPECT_EQ(scalar.best.detected, simd.best.detected) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(scalar.best.threshold),
            std::bit_cast<std::uint64_t>(simd.best.threshold))
      << what;
  EXPECT_LE(ulp_distance(scalar.best.correlation, simd.best.correlation),
            CorrelationKernel::kSimdMaxUlp)
      << what;
}

TEST(UlpDistanceTest, CountsRepresentableSteps) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(ulp_distance(1.0, next), 1u);
  EXPECT_EQ(ulp_distance(next, 1.0), 1u);  // symmetric
  // Crossing zero counts the steps through both signs' subnormals.
  const double pos = std::nextafter(0.0, 1.0);
  const double neg = std::nextafter(0.0, -1.0);
  EXPECT_EQ(ulp_distance(pos, neg), 2u);
  // Monotone: further apart means more ULPs.
  EXPECT_GT(ulp_distance(1.0, 1.5), ulp_distance(1.0, 1.25));
}

TEST(CorrelateSimdTest, VerdictIdenticalAcrossDegreesAndOffsets) {
  // The ISSUE's acceptance matrix: degrees {8, 10, 12} x offset windows
  // {0, 256}, randomized marked/unmarked series.
  Rng rng{20260809};
  for (const int degree : {8, 10, 12}) {
    const auto code = PnCode::m_sequence(degree).value();
    const CorrelationKernel kernel(code);
    for (const std::size_t max_offset : {std::size_t{0}, std::size_t{256}}) {
      for (int trial = 0; trial < 10; ++trial) {
        const std::size_t embed = rng.uniform(max_offset + 1);
        const std::size_t tail = max_offset - embed + rng.uniform(8);
        const auto rates =
            random_series(code, embed, tail, rng.bernoulli(0.5),
                          1.0 + 30.0 * rng.uniform01(), rng);
        const auto scalar = kernel.scan(rates, max_offset).value();
        const auto simd = kernel.scan_simd(rates, max_offset).value();
        expect_verdict_identical(scalar, simd, "scan_simd vs scan");
      }
    }
  }
}

TEST(CorrelateSimdTest, DespreadSimdMatchesScalarOnCodeSegments) {
  // Multibit decoding despreads mid-code segments (code_begin != 0,
  // unaligned against the 64-byte chip lane); the single-window SIMD
  // despread must stay ULP-close on every segment.
  Rng rng{7};
  const auto code = PnCode::m_sequence(10).value();  // 1023 chips
  const CorrelationKernel kernel(code);
  const std::size_t seg = 93;  // deliberately not a multiple of 4
  std::vector<double> x(seg);
  for (std::size_t begin = 0; begin + seg <= kernel.length(); begin += seg) {
    for (auto& v : x) v = 100.0 + rng.normal(0.0, 20.0);
    const double scalar = kernel.despread(x.data(), begin, seg);
    const double simd = kernel.despread_simd(x.data(), begin, seg);
    EXPECT_LE(ulp_distance(scalar, simd), CorrelationKernel::kSimdMaxUlp)
        << "segment at " << begin;
  }
}

TEST(CorrelateSimdTest, FlatWindowScoresExactlyZero) {
  // The denominator guard is a semantic boundary, not a rounding one:
  // both lanes must return exactly 0.0 for a flat window.
  const auto code = PnCode::m_sequence(8).value();
  const CorrelationKernel kernel(code);
  const std::vector<double> flat(kernel.length(), 42.0);
  EXPECT_EQ(kernel.despread(flat.data(), 0, kernel.length()), 0.0);
  EXPECT_EQ(kernel.despread_simd(flat.data(), 0, kernel.length()), 0.0);
}

TEST(CorrelateSimdTest, ErrorPathsMatchScalarScan) {
  const auto code = PnCode::m_sequence(8).value();
  const CorrelationKernel kernel(code);
  const std::vector<double> short_series(kernel.length() - 1, 100.0);
  const auto scalar_short = kernel.scan(short_series, 0);
  const auto simd_short = kernel.scan_simd(short_series, 0);
  ASSERT_FALSE(scalar_short.ok());
  ASSERT_FALSE(simd_short.ok());
  EXPECT_EQ(scalar_short.status().code(), simd_short.status().code());

  const std::vector<double> ok_series(kernel.length(), 100.0);
  const auto scalar_seg = kernel.scan(ok_series, 0, 10, kernel.length());
  const auto simd_seg = kernel.scan_simd(ok_series, 0, 10, kernel.length());
  ASSERT_FALSE(scalar_seg.ok());
  ASSERT_FALSE(simd_seg.ok());
  EXPECT_EQ(scalar_seg.status().code(), simd_seg.status().code());
}

TEST(CorrelateSimdTest, CopiedKernelKeepsAWorkingLane) {
  // Copies rebuild the arena-backed aligned chip buffer; a stale
  // pointer into the source's arena would read freed memory here.
  Rng rng{11};
  const auto code = PnCode::m_sequence(9).value();
  const CorrelationKernel original(code);
  const CorrelationKernel copy(original);      // copy-construct
  CorrelationKernel assigned(PnCode::m_sequence(5).value());
  assigned = original;                         // copy-assign
  const auto rates = random_series(code, 13, 40, true, 10.0, rng);
  const auto want = original.scan_simd(rates, 32).value();
  const auto via_copy = copy.scan_simd(rates, 32).value();
  const auto via_assign = assigned.scan_simd(rates, 32).value();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.best.correlation),
            std::bit_cast<std::uint64_t>(via_copy.best.correlation));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.best.correlation),
            std::bit_cast<std::uint64_t>(via_assign.best.correlation));
}

TEST(ScanBatchSimdTest, BatchAndPerJobFlagsStayVerdictIdentical) {
  Rng rng{23};
  const auto code = PnCode::m_sequence(9).value();
  const CorrelationKernel kernel(code);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 6; ++i) {
    series.push_back(random_series(code, 17, 80, i % 2 == 0, 12.0, rng));
  }
  std::vector<ScanJob> jobs(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    jobs[i].kernel = &kernel;
    jobs[i].rates = series[i];
    jobs[i].max_offset = 64;
  }

  const ScanBatch scalar_batch(ScanBatchOptions{.threads = 2});
  const auto scalar = scalar_batch.run(jobs);

  // Batch-wide flag.
  const ScanBatch simd_batch(ScanBatchOptions{.threads = 2, .use_simd = true});
  const auto batch_wide = simd_batch.run(jobs);

  // Per-job flag under a scalar-default batch.
  for (auto& job : jobs) job.use_simd = true;
  const auto per_job = scalar_batch.run(jobs);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(scalar[i].ok());
    ASSERT_TRUE(batch_wide[i].ok());
    ASSERT_TRUE(per_job[i].ok());
    expect_verdict_identical(scalar[i].value(), batch_wide[i].value(),
                             "batch-wide use_simd");
    expect_verdict_identical(scalar[i].value(), per_job[i].value(),
                             "per-job use_simd");
  }
}

TEST(DetectorSimdTest, DetectConfigRoutesBothLanes) {
  Rng rng{31};
  const auto code = PnCode::m_sequence(8).value();
  const Detector detector(code);
  const auto rates = random_series(code, 21, 60, true, 8.0, rng);

  const auto plain = detector.detect_with_scan(rates, 48).value();
  const auto cfg_scalar =
      detector
          .detect_with_scan(rates,
                            Detector::DetectConfig{.max_offset = 48,
                                                   .use_simd = false})
          .value();
  // use_simd = false is the SAME code path, bit for bit.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(plain.best.correlation),
            std::bit_cast<std::uint64_t>(cfg_scalar.best.correlation));
  EXPECT_EQ(plain.offset, cfg_scalar.offset);

  const auto cfg_simd =
      detector
          .detect_with_scan(rates,
                            Detector::DetectConfig{.max_offset = 48,
                                                   .use_simd = true})
          .value();
  expect_verdict_identical(plain, cfg_simd, "DetectConfig use_simd");
}

}  // namespace
}  // namespace lexfor::watermark
