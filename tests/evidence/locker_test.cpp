#include "evidence/locker.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace lexfor::evidence {
namespace {

struct LockerFixture {
  EvidenceLocker locker{to_bytes("case-key-007")};
  EvidenceId drive = locker.deposit("seized drive", to_bytes("drive bytes"),
                                    "Officer Reed", SimTime::zero());
};

TEST(LockerTest, DepositCreatesRetrievableItem) {
  LockerFixture f;
  const auto* item = f.locker.find(f.drive);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->description(), "seized drive");
  EXPECT_EQ(f.locker.size(), 1u);
}

TEST(LockerTest, IdsAreSequentialAndDistinct) {
  LockerFixture f;
  const auto second = f.locker.deposit("phone", to_bytes("phone bytes"),
                                       "Officer Reed", SimTime::zero());
  EXPECT_NE(second, f.drive);
  EXPECT_EQ(f.locker.size(), 2u);
}

TEST(LockerTest, FindByHashLocatesDuplicates) {
  LockerFixture f;
  (void)f.locker.deposit("copy of drive", to_bytes("drive bytes"),
                         "Analyst Kim", SimTime::zero());
  const auto hash = crypto::Sha256::hex(to_bytes("drive bytes"));
  EXPECT_EQ(f.locker.find_by_hash(hash).size(), 2u);
  EXPECT_TRUE(f.locker.find_by_hash(std::string(64, '0')).empty());
}

TEST(LockerTest, TransferAndExaminationExtendChain) {
  LockerFixture f;
  ASSERT_TRUE(
      f.locker.transfer(f.drive, "Analyst Kim", "to lab", SimTime::from_sec(60))
          .ok());
  ASSERT_TRUE(f.locker
                  .record_examination(f.drive, "Analyst Kim", "hash search",
                                      SimTime::from_sec(120))
                  .ok());
  const auto* item = f.locker.find(f.drive);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->chain().size(), 3u);  // seize + transfer + examine
  EXPECT_TRUE(f.locker.all_verify());
}

TEST(LockerTest, OperationsOnUnknownIdFail) {
  LockerFixture f;
  EXPECT_EQ(f.locker.transfer(EvidenceId{99}, "x", "", SimTime::zero()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      f.locker.record_examination(EvidenceId{99}, "x", "", SimTime::zero())
          .code(),
      StatusCode::kNotFound);
  EXPECT_FALSE(f.locker.image(EvidenceId{99}, "x", SimTime::zero()).ok());
}

TEST(LockerTest, ImageCreatesSecondVerifyingItem) {
  LockerFixture f;
  const auto copy =
      f.locker.image(f.drive, "Analyst Kim", SimTime::from_sec(30)).value();
  EXPECT_NE(copy, f.drive);
  EXPECT_EQ(f.locker.size(), 2u);
  const auto* original = f.locker.find(f.drive);
  const auto* duplicate = f.locker.find(copy);
  ASSERT_NE(duplicate, nullptr);
  EXPECT_EQ(duplicate->content_hash(), original->content_hash());
  EXPECT_TRUE(f.locker.all_verify());
}

TEST(LockerTest, AuditFlagsTamperedItemOnly) {
  LockerFixture f;
  const auto phone = f.locker.deposit("phone", to_bytes("phone bytes"),
                                      "Officer Reed", SimTime::zero());
  f.locker.mutable_item_for_test(phone)->tamper_with_content_for_test(0, 0xEE);

  const auto audit = f.locker.audit();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_TRUE(audit[0].status.ok());
  EXPECT_FALSE(audit[1].status.ok());
  EXPECT_FALSE(f.locker.all_verify());
}

}  // namespace
}  // namespace lexfor::evidence
