#include "evidence/custody.h"

#include <gtest/gtest.h>

namespace lexfor::evidence {
namespace {

const Bytes kKey = to_bytes("case-0042-hmac-key");

EvidenceItem make_item() {
  return EvidenceItem(EvidenceId{1}, "suspect laptop drive",
                      to_bytes("disk contents with contraband"),
                      "Officer Reed", SimTime::zero(), kKey);
}

TEST(CustodyTest, SeizureCreatesFirstRecord) {
  const auto item = make_item();
  ASSERT_EQ(item.chain().size(), 1u);
  EXPECT_EQ(item.chain()[0].action, CustodyAction::kSeized);
  EXPECT_EQ(item.chain()[0].custodian, "Officer Reed");
}

TEST(CustodyTest, ContentHashIsStableSha256) {
  const auto item = make_item();
  EXPECT_EQ(item.content_hash_hex(),
            crypto::Sha256::hex(to_bytes("disk contents with contraband")));
}

TEST(CustodyTest, FreshItemVerifies) {
  const auto item = make_item();
  EXPECT_TRUE(item.verify(kKey).ok());
}

TEST(CustodyTest, RecordsExtendTheChain) {
  auto item = make_item();
  item.record(CustodyAction::kTransferred, "Analyst Kim", "to lab",
              SimTime::from_sec(3600), kKey);
  item.record(CustodyAction::kExamined, "Analyst Kim", "keyword search",
              SimTime::from_sec(7200), kKey);
  EXPECT_EQ(item.chain().size(), 3u);
  EXPECT_TRUE(item.verify(kKey).ok());
}

TEST(CustodyTest, ContentTamperingIsDetected) {
  auto item = make_item();
  item.tamper_with_content_for_test(0, 0xFF);
  const auto s = item.verify(kKey);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("content"), std::string::npos);
}

TEST(CustodyTest, ChainTamperingIsDetected) {
  auto item = make_item();
  item.record(CustodyAction::kTransferred, "Analyst Kim", "to lab",
              SimTime::from_sec(100), kKey);
  item.tamper_with_chain_for_test(1, "Impostor");
  const auto s = item.verify(kKey);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("custody record 1"), std::string::npos);
}

TEST(CustodyTest, WrongKeyFailsVerification) {
  const auto item = make_item();
  EXPECT_FALSE(item.verify(to_bytes("wrong-key")).ok());
}

TEST(CustodyTest, EarlierRecordTamperBreaksAllSubsequentMacs) {
  auto item = make_item();
  item.record(CustodyAction::kTransferred, "A", "", SimTime::from_sec(1), kKey);
  item.record(CustodyAction::kExamined, "B", "", SimTime::from_sec(2), kKey);
  item.tamper_with_chain_for_test(0, "Impostor");
  const auto s = item.verify(kKey);
  EXPECT_FALSE(s.ok());
  // The first failing record is 0.
  EXPECT_NE(s.message().find("custody record 0"), std::string::npos);
}

TEST(ImagingTest, ImageSharesContentHashWithOriginal) {
  auto item = make_item();
  const auto copy =
      item.image(EvidenceId{2}, "Analyst Kim", SimTime::from_sec(50), kKey);
  EXPECT_EQ(copy.content_hash(), item.content_hash());
  EXPECT_EQ(copy.content(), item.content());
  EXPECT_TRUE(copy.verify(kKey).ok());
  EXPECT_TRUE(item.verify(kKey).ok());
}

TEST(ImagingTest, BothSidesRecordTheImaging) {
  auto item = make_item();
  const auto copy =
      item.image(EvidenceId{2}, "Analyst Kim", SimTime::from_sec(50), kKey);
  EXPECT_EQ(item.chain().back().action, CustodyAction::kImaged);
  // Copy: seizure record + imaging provenance record.
  ASSERT_EQ(copy.chain().size(), 2u);
  EXPECT_EQ(copy.chain()[1].action, CustodyAction::kImaged);
}

TEST(WriteBlockerTest, ReadsSucceedWritesBlocked) {
  const auto item = make_item();
  WriteBlocker wb(item);
  EXPECT_EQ(wb.size(), item.content().size());
  EXPECT_EQ(wb.read(0), item.content()[0]);
  EXPECT_EQ(wb.write(0, 0xFF).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(wb.write(1, 0x00).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(wb.blocked_writes(), 2u);
  // Content untouched.
  EXPECT_TRUE(item.verify(kKey).ok());
}

}  // namespace
}  // namespace lexfor::evidence
