#include "legal/jurisdiction.h"

#include <gtest/gtest.h>

#include "legal/engine.h"

namespace lexfor::legal {
namespace {

TEST(JurisdictionTest, FederalBaselineIsOneParty) {
  EXPECT_EQ(consent_regime("US"), ConsentRegime::kOneParty);
}

TEST(JurisdictionTest, ClassicAllPartyStates) {
  for (const char* code : {"CA", "FL", "IL", "MD", "MA", "PA", "WA"}) {
    EXPECT_EQ(consent_regime(code), ConsentRegime::kAllParty) << code;
  }
}

TEST(JurisdictionTest, OnePartyStates) {
  for (const char* code : {"NY", "TX", "VA"}) {
    EXPECT_EQ(consent_regime(code), ConsentRegime::kOneParty) << code;
  }
}

TEST(JurisdictionTest, UnknownCodeFallsBackToFederal) {
  EXPECT_EQ(consent_regime("ZZ"), ConsentRegime::kOneParty);
  EXPECT_FALSE(find_jurisdiction("ZZ").has_value());
}

TEST(JurisdictionTest, LookupReturnsFullRecord) {
  const auto ca = find_jurisdiction("CA");
  ASSERT_TRUE(ca.has_value());
  EXPECT_EQ(ca->name, "California");
  EXPECT_EQ(ca->regime, ConsentRegime::kAllParty);
}

TEST(JurisdictionTest, CodesAreUnique) {
  const auto& db = jurisdictions();
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (std::size_t j = i + 1; j < db.size(); ++j) {
      EXPECT_NE(db[i].code, db[j].code);
    }
  }
}

// The doctrinal consequence: an undercover one-party-consent recording
// is process-free federally but not in an all-party state.
TEST(JurisdictionEngineTest, OnePartyConsentWorksFederally) {
  ComplianceEngine engine;
  const auto d = engine.evaluate(Scenario{}
                                     .named("undercover agent records a call")
                                     .acquiring(DataKind::kContent)
                                     .located(DataState::kInTransit)
                                     .when(Timing::kRealTime)
                                     .with_consent(ConsentKind::kOnePartyToComm)
                                     .in_jurisdiction("US"));
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(JurisdictionEngineTest, OnePartyConsentFailsInAllPartyState) {
  ComplianceEngine engine;
  const auto d = engine.evaluate(Scenario{}
                                     .named("same recording in California")
                                     .acquiring(DataKind::kContent)
                                     .located(DataState::kInTransit)
                                     .when(Timing::kRealTime)
                                     .with_consent(ConsentKind::kOnePartyToComm)
                                     .in_jurisdiction("CA"));
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kWiretapOrder);
}

TEST(JurisdictionEngineTest, AllPartyConsentWorksEverywhere) {
  ComplianceEngine engine;
  for (const char* code : {"US", "CA", "MA"}) {
    const auto d = engine.evaluate(
        Scenario{}
            .acquiring(DataKind::kContent)
            .located(DataState::kInTransit)
            .when(Timing::kRealTime)
            .with_consent(ConsentKind::kAllPartiesToComm)
            .in_jurisdiction(code));
    EXPECT_FALSE(d.needs_process) << code << "\n" << d.report();
  }
}

}  // namespace
}  // namespace lexfor::legal
