#include "legal/export.h"

#include <gtest/gtest.h>

#include "legal/table1.h"

namespace lexfor::legal {
namespace {

TEST(JsonEscapeTest, PlainStringsQuoted) {
  EXPECT_EQ(json_escape("hello"), "\"hello\"");
  EXPECT_EQ(json_escape(""), "\"\"");
}

TEST(JsonEscapeTest, SpecialsEscaped) {
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_escape("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(json_escape("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(DeterminationJsonTest, ContainsAllSections) {
  const auto d =
      ComplianceEngine{}.evaluate(table1::scene(18).scenario);
  const auto json = to_json(d);
  EXPECT_NE(json.find("\"needs_process\":true"), std::string::npos);
  EXPECT_NE(json.find("\"required_process\":\"search warrant\""),
            std::string::npos);
  EXPECT_NE(json.find("\"statutes\":[\"Fourth Amendment\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"citations\":["), std::string::npos);
  EXPECT_NE(json.find("katz-1967"), std::string::npos);
}

TEST(DeterminationJsonTest, ProcessFreeSceneExports) {
  const auto d = ComplianceEngine{}.evaluate(table1::scene(10).scenario);
  const auto json = to_json(d);
  EXPECT_NE(json.find("\"needs_process\":false"), std::string::npos);
  EXPECT_NE(json.find("\"required_process\":\"none\""), std::string::npos);
}

TEST(DeterminationJsonTest, BalancedBracesAndBrackets) {
  for (int scene = 1; scene <= 20; ++scene) {
    const auto json = to_json(
        ComplianceEngine{}.evaluate(table1::scene(scene).scenario));
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      braces += (c == '{') - (c == '}');
      brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0) << "scene " << scene;
    EXPECT_EQ(brackets, 0) << "scene " << scene;
    EXPECT_FALSE(in_string) << "scene " << scene;
  }
}

TEST(SuppressionJsonTest, ReportsFindings) {
  ProvenanceGraph g;
  AcquisitionRecord bad;
  bad.id = EvidenceId{1};
  bad.required = ProcessKind::kSearchWarrant;
  bad.held = ProcessKind::kNone;
  (void)g.add(bad);
  const auto json = to_json(analyze_suppression(g));
  EXPECT_NE(json.find("\"suppressed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("exclusionary rule"), std::string::npos);
}

TEST(FeasibilityJsonTest, ExportsTechniqueShape) {
  Technique t;
  t.name = "naive sniffing";
  t.steps.push_back({"sniff",
                     Scenario{}
                         .acquiring(DataKind::kContent)
                         .located(DataState::kInTransit)
                         .when(Timing::kRealTime)});
  const auto json = to_json(FeasibilityAnalyzer{}.analyze(t));
  EXPECT_NE(json.find("\"technique\":\"naive sniffing\""), std::string::npos);
  EXPECT_NE(json.find("impractical"), std::string::npos);
  EXPECT_NE(json.find("\"steps\":[{\"name\":\"sniff\""), std::string::npos);
}

TEST(ExportTest, DeterministicOutput) {
  const auto d = ComplianceEngine{}.evaluate(table1::scene(7).scenario);
  EXPECT_EQ(to_json(d), to_json(d));
}

}  // namespace
}  // namespace lexfor::legal
