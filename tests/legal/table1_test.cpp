// The paper's evaluation: Table 1 lists twenty digital crime scenes and
// whether law enforcement needs a warrant/court order/subpoena.  The
// compliance engine must reproduce every row.

#include "legal/table1.h"

#include <gtest/gtest.h>

#include "legal/engine.h"

namespace lexfor::legal {
namespace {

class Table1Row : public ::testing::TestWithParam<int> {};

TEST_P(Table1Row, EngineMatchesPaperVerdict) {
  const auto& scene = table1::scene(GetParam());
  ComplianceEngine engine;
  const Determination d = engine.evaluate(scene.scenario);
  EXPECT_EQ(d.needs_process, scene.paper_says_need)
      << "scene " << scene.number << " (" << scene.summary << ")\n"
      << d.report();
}

TEST_P(Table1Row, RationaleIsNeverEmpty) {
  const auto& scene = table1::scene(GetParam());
  ComplianceEngine engine;
  const Determination d = engine.evaluate(scene.scenario);
  EXPECT_FALSE(d.rationale.empty()) << "scene " << scene.number;
}

TEST_P(Table1Row, NeedVerdictsCarryAProcessAndStandard) {
  const auto& scene = table1::scene(GetParam());
  ComplianceEngine engine;
  const Determination d = engine.evaluate(scene.scenario);
  if (d.needs_process) {
    EXPECT_NE(d.required_process, ProcessKind::kNone);
    EXPECT_NE(d.required_proof, StandardOfProof::kNone);
  } else {
    EXPECT_EQ(d.required_process, ProcessKind::kNone);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, Table1Row,
                         ::testing::Range(1, table1::kSceneCount + 1));

TEST(Table1Test, SceneAccessorRejectsOutOfRange) {
  EXPECT_THROW((void)table1::scene(0), std::out_of_range);
  EXPECT_THROW((void)table1::scene(21), std::out_of_range);
}

TEST(Table1Test, ScenesAreNumberedSequentially) {
  const auto& all = table1::all_scenes();
  for (int i = 0; i < table1::kSceneCount; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)].number, i + 1);
  }
}

TEST(Table1Test, ExactlyFourStarredAuthorJudgments) {
  // The paper stars scenes 3-6 ("answers with (*) ... judgments based on
  // our own knowledge").
  int starred = 0;
  for (const auto& s : table1::all_scenes()) {
    if (s.author_judgment) {
      ++starred;
      EXPECT_GE(s.number, 3);
      EXPECT_LE(s.number, 6);
    }
  }
  EXPECT_EQ(starred, 4);
}

TEST(Table1Test, PaperVerdictSplit) {
  // Paper's table: scenes 4,6,7,8,12,13,14,16,18 say Need (9 rows),
  // the other 11 say No need.
  int need = 0;
  for (const auto& s : table1::all_scenes()) need += s.paper_says_need;
  EXPECT_EQ(need, 9);
}

// Specific minimum-process expectations the paper's prose implies.
TEST(Table1Test, PenTrapSceneRequiresCourtOrderNotWarrant) {
  // Scene 7: header logging at an ISP is Pen/Trap territory; a court
  // order suffices (no wiretap order needed).
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(7).scenario);
  EXPECT_EQ(d.required_process, ProcessKind::kCourtOrder) << d.report();
}

TEST(Table1Test, FullContentSceneRequiresWiretapOrder) {
  // Scene 8: full-packet capture is a Title III interception.
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(8).scenario);
  EXPECT_EQ(d.required_process, ProcessKind::kWiretapOrder) << d.report();
}

TEST(Table1Test, HashSearchSceneRequiresSearchWarrant) {
  // Scene 18 (U.S. v. Crist): hashing a lawfully held drive is a search.
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(18).scenario);
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant) << d.report();
}

TEST(Table1Test, TrespasserSceneIsExcusedByStatutoryException) {
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(15).scenario);
  EXPECT_FALSE(d.needs_process);
  const bool has_trespasser =
      std::find(d.exceptions_applied.begin(), d.exceptions_applied.end(),
                ExceptionKind::kComputerTrespasser) != d.exceptions_applied.end();
  EXPECT_TRUE(has_trespasser) << d.report();
}

TEST(Table1Test, ReachingAttackerMachineNeedsWarrantDespiteVictimConsent) {
  ComplianceEngine engine;
  const auto d = engine.evaluate(table1::scene(16).scenario);
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant) << d.report();
}

}  // namespace
}  // namespace lexfor::legal
