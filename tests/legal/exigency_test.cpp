#include "legal/exigency.h"

#include <gtest/gtest.h>

#include "legal/engine.h"

namespace lexfor::legal {
namespace {

TEST(ExigencyTest, NoFactorsNoExigency) {
  const auto f = assess_exigency({});
  EXPECT_FALSE(f.exigency_exists);
  EXPECT_FALSE(f.justifies_search);
  EXPECT_FALSE(f.justifies_seizure);
  EXPECT_FALSE(f.rationale.empty());
}

TEST(ExigencyTest, ImminentDestructionJustifiesSearchAndSeizure) {
  ExigencyFactors factors;
  factors.evidence_destruction_imminent = true;
  const auto f = assess_exigency(factors);
  EXPECT_TRUE(f.exigency_exists);
  EXPECT_TRUE(f.justifies_search);
  EXPECT_TRUE(f.justifies_seizure);
}

TEST(ExigencyTest, DeviceVolatilityFactorsCount) {
  for (const auto setter :
       {+[](ExigencyFactors& x) { x.remote_wipe_possible = true; },
        +[](ExigencyFactors& x) { x.auto_delete_timer = true; },
        +[](ExigencyFactors& x) { x.battery_dying = true; },
        +[](ExigencyFactors& x) { x.incoming_traffic_overwrites = true; }}) {
    ExigencyFactors factors;
    setter(factors);
    const auto f = assess_exigency(factors);
    EXPECT_TRUE(f.exigency_exists);
    EXPECT_TRUE(f.justifies_seizure);
  }
}

TEST(ExigencyTest, IsolationDowngradesSearchToSeizure) {
  // A Faraday-bagged phone can wait for the warrant: the exigency
  // justifies holding the device, not examining it.
  ExigencyFactors factors;
  factors.remote_wipe_possible = true;
  factors.device_can_be_isolated = true;
  const auto f = assess_exigency(factors);
  EXPECT_TRUE(f.exigency_exists);
  EXPECT_TRUE(f.justifies_seizure);
  EXPECT_FALSE(f.justifies_search);
}

TEST(ExigencyTest, DangerAndPursuitJustifySearch) {
  ExigencyFactors danger;
  danger.danger_to_public_or_police = true;
  EXPECT_TRUE(assess_exigency(danger).justifies_search);

  ExigencyFactors pursuit;
  pursuit.hot_pursuit = true;
  EXPECT_TRUE(assess_exigency(pursuit).justifies_search);
}

TEST(ExigencyTest, EscapeRiskAloneJustifiesSeizureOnly) {
  ExigencyFactors factors;
  factors.suspect_escape_risk = true;
  const auto f = assess_exigency(factors);
  EXPECT_TRUE(f.justifies_seizure);
  EXPECT_FALSE(f.justifies_search);
}

TEST(ExigencyTest, FindingsCarryCitations) {
  ExigencyFactors factors;
  factors.evidence_destruction_imminent = true;
  factors.hot_pursuit = true;
  const auto f = assess_exigency(factors);
  EXPECT_FALSE(f.citations.empty());
}

TEST(ExigencyEngineTest, AppliedExigencyExcusesTheWarrant) {
  ExigencyFactors factors;
  factors.remote_wipe_possible = true;

  const Scenario base = Scenario{}
                            .named("phone search in the field")
                            .acquiring(DataKind::kContent)
                            .located(DataState::kOnDevice)
                            .when(Timing::kStored);
  ComplianceEngine engine;

  const auto without = engine.evaluate(base);
  EXPECT_TRUE(without.needs_process);

  const auto with = engine.evaluate(apply_exigency(base, factors));
  EXPECT_FALSE(with.needs_process) << with.report();
}

TEST(ExigencyEngineTest, IsolatedDeviceStillNeedsTheWarrant) {
  ExigencyFactors factors;
  factors.remote_wipe_possible = true;
  factors.device_can_be_isolated = true;

  const Scenario s = apply_exigency(Scenario{}
                                        .acquiring(DataKind::kContent)
                                        .located(DataState::kOnDevice)
                                        .when(Timing::kStored),
                                    factors);
  const auto d = ComplianceEngine{}.evaluate(s);
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
}

}  // namespace
}  // namespace lexfor::legal
