#include "legal/batch.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "legal/table1.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace lexfor::legal {
namespace {

// Field-by-field equality: Determination carries no operator==, and the
// batch contract is bit-identical output, not "same verdict".
void expect_identical(const Determination& a, const Determination& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  EXPECT_EQ(a.needs_process, b.needs_process);
  EXPECT_EQ(a.required_process, b.required_process);
  EXPECT_EQ(a.required_proof, b.required_proof);
  EXPECT_EQ(a.governing_statutes, b.governing_statutes);
  EXPECT_EQ(a.exceptions_applied, b.exceptions_applied);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_EQ(a.citations, b.citations);
  EXPECT_EQ(a.report(), b.report());
}

// The randomized workload the engine microbench uses, reproduced here
// under a fixed seed so serial and parallel runs see identical inputs.
Scenario random_scenario(Rng& rng, int i) {
  Scenario s;
  s.name = "fuzz-" + std::to_string(i % 64);  // repeats: cacheable
  s.actor = static_cast<ActorKind>(rng.uniform(4));
  s.data = static_cast<DataKind>(rng.uniform(4));
  s.state = static_cast<DataState>(rng.uniform(4));
  s.timing = static_cast<Timing>(rng.uniform(2));
  s.provider = static_cast<ProviderClass>(rng.uniform(4));
  s.consent = static_cast<ConsentKind>(rng.uniform(10));
  s.knowingly_exposed_to_public = rng.bernoulli(0.2);
  s.shared_with_third_party = rng.bernoulli(0.2);
  s.delivered_to_recipient = rng.bernoulli(0.2);
  s.readily_accessible_to_public = rng.bernoulli(0.2);
  s.exigent_circumstances = rng.bernoulli(0.1);
  s.in_plain_view = rng.bernoulli(0.1);
  s.target_on_probation = rng.bernoulli(0.1);
  s.is_victim_system = rng.bernoulli(0.1);
  s.message_opened_by_recipient = rng.bernoulli(0.3);
  s.contents_previously_lawfully_acquired = rng.bernoulli(0.1);
  return s;
}

TEST(ScenarioFingerprintTest, StableForEqualScenarios) {
  const Scenario a = table1::scene(7).scenario;
  const Scenario b = table1::scene(7).scenario;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(fingerprint_hex(a), fingerprint_hex(b));
  EXPECT_EQ(fingerprint_hex(a).size(), 64u);
}

TEST(ScenarioFingerprintTest, DistinguishesEveryField) {
  // Flip every Scenario field in turn; each flip must move the digest,
  // otherwise two legally distinct scenarios would collide in the
  // verdict cache.
  const Scenario base;
  using Mutator = void (*)(Scenario&);
  const Mutator mutators[] = {
      [](Scenario& s) { s.name = "renamed"; },
      [](Scenario& s) { s.actor = ActorKind::kPrivateParty; },
      [](Scenario& s) { s.acting_under_color_of_law = true; },
      [](Scenario& s) { s.data = DataKind::kAddressing; },
      [](Scenario& s) { s.state = DataState::kOnDevice; },
      [](Scenario& s) { s.timing = Timing::kStored; },
      [](Scenario& s) { s.knowingly_exposed_to_public = true; },
      [](Scenario& s) { s.shared_with_third_party = true; },
      [](Scenario& s) { s.delivered_to_recipient = true; },
      [](Scenario& s) { s.inside_home = true; },
      [](Scenario& s) { s.via_sense_enhancing_tech = true; },
      [](Scenario& s) { s.tech_in_general_public_use = true; },
      [](Scenario& s) { s.readily_accessible_to_public = true; },
      [](Scenario& s) { s.encrypted = true; },
      [](Scenario& s) { s.provider = ProviderClass::kEcs; },
      [](Scenario& s) { s.message_opened_by_recipient = true; },
      [](Scenario& s) { s.consent = ConsentKind::kOwnerConsent; },
      [](Scenario& s) { s.consent_revoked = true; },
      [](Scenario& s) { s.target_area_password_protected = true; },
      [](Scenario& s) { s.is_victim_system = true; },
      [](Scenario& s) { s.targets_attacker_system = true; },
      [](Scenario& s) { s.exigent_circumstances = true; },
      [](Scenario& s) { s.in_plain_view = true; },
      [](Scenario& s) { s.target_on_probation = true; },
      [](Scenario& s) { s.emergency_pen_trap = true; },
      [](Scenario& s) { s.provider_self_protection = true; },
      [](Scenario& s) { s.jurisdiction = "CA"; },
      [](Scenario& s) { s.device_lawfully_in_custody = true; },
      [](Scenario& s) { s.contents_previously_lawfully_acquired = true; },
      [](Scenario& s) { s.credentials_lawfully_obtained = true; },
      [](Scenario& s) { s.target_arrested = true; },
  };
  const ScenarioFingerprint baseline = fingerprint(base);
  for (std::size_t i = 0; i < std::size(mutators); ++i) {
    Scenario mutated = base;
    mutators[i](mutated);
    EXPECT_NE(fingerprint(mutated), baseline)
        << "mutator " << i << " did not change the fingerprint";
  }
}

TEST(ScenarioFingerprintTest, LengthPrefixPreventsStringSplicing) {
  // "ab" + jurisdiction "c" must not collide with "a" + "bc": the
  // canonical serialization length-prefixes every string field.
  Scenario a;
  a.name = "ab";
  a.jurisdiction = "c";
  Scenario b;
  b.name = "a";
  b.jurisdiction = "bc";
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(BatchEvaluatorTest, SingleEvaluationMatchesSerialEngine) {
  const ComplianceEngine engine;
  const BatchEvaluator cached{BatchOptions{.use_shared_cache = false}};
  for (const auto& scene : table1::all_scenes()) {
    // Twice: once cold (miss path), once warm (hit path) — both must
    // be indistinguishable from the raw engine.
    expect_identical(cached.evaluate(scene.scenario),
                     engine.evaluate(scene.scenario));
    expect_identical(cached.evaluate(scene.scenario),
                     engine.evaluate(scene.scenario));
  }
}

TEST(BatchEvaluatorTest, ParallelBatchBitIdenticalToSerialOnTable1) {
  // Full Table-1 library, repeated, shuffled under a fixed Rng seed so
  // the workload is reproducible and cache hits interleave with misses.
  std::vector<Scenario> batch;
  for (int repeat = 0; repeat < 8; ++repeat) {
    for (const auto& scene : table1::all_scenes()) {
      batch.push_back(scene.scenario);
    }
  }
  Rng rng{2026};
  rng.shuffle(batch);

  const ComplianceEngine engine;
  std::vector<Determination> serial;
  serial.reserve(batch.size());
  for (const auto& s : batch) serial.push_back(engine.evaluate(s));

  const BatchEvaluator evaluator{
      BatchOptions{.threads = 4, .use_shared_cache = false}};
  const std::vector<Determination> parallel = evaluator.evaluate_batch(batch);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(parallel[i], serial[i]);
  }
}

TEST(BatchEvaluatorTest, ParallelBatchBitIdenticalOnRandomizedScenarios) {
  Rng rng{42};
  std::vector<Scenario> batch;
  batch.reserve(512);
  for (int i = 0; i < 512; ++i) batch.push_back(random_scenario(rng, i));

  const ComplianceEngine engine;
  std::vector<Determination> serial;
  serial.reserve(batch.size());
  for (const auto& s : batch) serial.push_back(engine.evaluate(s));

  const BatchEvaluator evaluator{
      BatchOptions{.threads = 4, .use_shared_cache = false}};
  const std::vector<Determination> parallel = evaluator.evaluate_batch(batch);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(parallel[i], serial[i]);
  }
}

TEST(BatchEvaluatorTest, ResultsStayInInputOrder) {
  std::vector<Scenario> batch;
  for (const auto& scene : table1::all_scenes()) batch.push_back(scene.scenario);
  const BatchEvaluator evaluator{
      BatchOptions{.threads = 4, .use_shared_cache = false}};
  const auto out = evaluator.evaluate_batch(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out[i].scenario_name, batch[i].name);
  }
}

TEST(BatchEvaluatorTest, RepeatedQueriesHitTheCache) {
  auto& hits = obs::metrics().counter("legal.batch.cache_hits");
  auto& misses = obs::metrics().counter("legal.batch.cache_misses");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  const BatchEvaluator evaluator{BatchOptions{.use_shared_cache = false}};
  std::vector<Scenario> batch;
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (const auto& scene : table1::all_scenes()) {
      batch.push_back(scene.scenario);
    }
  }
  (void)evaluator.evaluate_batch(batch);

  const std::uint64_t hit_delta = hits.value() - hits_before;
  const std::uint64_t miss_delta = misses.value() - misses_before;
  EXPECT_EQ(hit_delta + miss_delta, batch.size());
  // 20 distinct scenarios, 200 queries: at most one miss per distinct
  // scenario per racing worker; with the serial fallback this is
  // exactly 20 misses, and in the worst parallel interleaving still a
  // >= 90% hit rate.
  EXPECT_GE(miss_delta, 20u);
  EXPECT_GE(hit_delta, batch.size() - 2 * 20);
}

TEST(BatchEvaluatorTest, SharedCacheIsVisibleAcrossEvaluators) {
  // Two evaluators on the shared cache: the second's first query for a
  // scenario the first already derived must be a hit.
  auto& hits = obs::metrics().counter("legal.batch.cache_hits");
  const BatchEvaluator first{};
  const BatchEvaluator second{};
  Scenario s = table1::scene(3).scenario;
  s.name = "shared-cache-probe";  // unique name => fresh entry
  (void)first.evaluate(s);
  const std::uint64_t hits_before = hits.value();
  expect_identical(second.evaluate(s), first.engine().evaluate(s));
  EXPECT_EQ(hits.value(), hits_before + 1);
}

TEST(BatchEvaluatorTest, EmptyBatchReturnsEmpty) {
  const BatchEvaluator evaluator{BatchOptions{.use_shared_cache = false}};
  EXPECT_TRUE(evaluator.evaluate_batch({}).empty());
}

}  // namespace
}  // namespace lexfor::legal
