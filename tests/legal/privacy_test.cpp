#include "legal/privacy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lexfor::legal {
namespace {

bool cites(const RepAnalysis& r, const std::string& id) {
  return std::find(r.citations.begin(), r.citations.end(), id) !=
         r.citations.end();
}

TEST(PrivacyTest, ContentOnDeviceRetainsRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kOnDevice)
                                 .when(Timing::kStored));
  EXPECT_TRUE(r.has_rep);
  EXPECT_TRUE(cites(r, "guest-2001"));
}

TEST(PrivacyTest, ContentInTransitRetainsRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kInTransit)
                                 .when(Timing::kRealTime));
  EXPECT_TRUE(r.has_rep);
  EXPECT_TRUE(cites(r, "villarreal-1992"));
}

TEST(PrivacyTest, PublicExposureDefeatsRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kPublicVenue)
                                 .exposed_publicly());
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "hoffa-1966"));
}

TEST(PrivacyTest, SharedFolderDefeatsRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kOnDevice)
                                 .shared());
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "king-2007"));
}

TEST(PrivacyTest, DeliveryTerminatesSenderRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kStoredAtProvider)
                                 .delivered());
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "king-1995"));
}

TEST(PrivacyTest, SubscriberRecordsFallUnderThirdPartyDoctrine) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kSubscriberRecords)
                                 .located(DataState::kStoredAtProvider));
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "smith-1979"));
}

TEST(PrivacyTest, AddressingHasNoConstitutionalRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kAddressing)
                                 .located(DataState::kInTransit)
                                 .when(Timing::kRealTime));
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "forrester-2008"));
}

TEST(PrivacyTest, KylloRestoresRepForSenseEnhancingTech) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kOnDevice)
                                 .in_home()
                                 .sense_enhancing());
  EXPECT_TRUE(r.has_rep);
  EXPECT_TRUE(cites(r, "kyllo-2001"));
}

TEST(PrivacyTest, KylloDoesNotApplyWhenTechIsInGeneralPublicUse) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kPublicVenue)
                                 .exposed_publicly()
                                 .in_home()
                                 .sense_enhancing()
                                 .general_public_use());
  // With the tech in general public use the Kyllo shortcut does not fire
  // and ordinary exposure analysis applies.
  EXPECT_FALSE(r.has_rep);
}

TEST(PrivacyTest, PreviouslyAcquiredDataHasNoRep) {
  const auto r = analyze_rep(Scenario{}
                                 .acquiring(DataKind::kContent)
                                 .located(DataState::kOnDevice)
                                 .previously_acquired());
  EXPECT_FALSE(r.has_rep);
  EXPECT_TRUE(cites(r, "sloane-2008"));
}

TEST(PrivacyTest, ReasonsAccompanyEveryFinding) {
  for (const auto state :
       {DataState::kOnDevice, DataState::kInTransit, DataState::kStoredAtProvider,
        DataState::kPublicVenue}) {
    const auto r = analyze_rep(
        Scenario{}.acquiring(DataKind::kContent).located(state).exposed_publicly(
            state == DataState::kPublicVenue));
    EXPECT_FALSE(r.reasons.empty()) << to_string(state);
  }
}

}  // namespace
}  // namespace lexfor::legal
