#include "legal/suppression.h"

#include <gtest/gtest.h>

namespace lexfor::legal {
namespace {

AcquisitionRecord rec(std::uint64_t id, ProcessKind required, ProcessKind held,
                      std::vector<EvidenceId> parents = {}) {
  AcquisitionRecord r;
  r.id = EvidenceId{id};
  r.description = "evidence " + std::to_string(id);
  r.required = required;
  r.held = held;
  r.derived_from = std::move(parents);
  return r;
}

TEST(ProvenanceGraphTest, RejectsInvalidId) {
  ProvenanceGraph g;
  AcquisitionRecord r;  // default id invalid
  EXPECT_EQ(g.add(r).code(), StatusCode::kInvalidArgument);
}

TEST(ProvenanceGraphTest, RejectsDuplicateId) {
  ProvenanceGraph g;
  EXPECT_TRUE(g.add(rec(1, ProcessKind::kNone, ProcessKind::kNone)).ok());
  EXPECT_EQ(g.add(rec(1, ProcessKind::kNone, ProcessKind::kNone)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ProvenanceGraphTest, RejectsUnknownParent) {
  ProvenanceGraph g;
  EXPECT_EQ(g.add(rec(2, ProcessKind::kNone, ProcessKind::kNone,
                      {EvidenceId{99}}))
                .code(),
            StatusCode::kNotFound);
}

TEST(ProvenanceGraphTest, FindResolvesRecords) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec(5, ProcessKind::kSubpoena, ProcessKind::kSubpoena)).ok());
  const auto* r = g.find(EvidenceId{5});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->required, ProcessKind::kSubpoena);
  EXPECT_EQ(g.find(EvidenceId{6}), nullptr);
}

TEST(SuppressionTest, LawfulAcquisitionIsAdmissible) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kSearchWarrant))
          .ok());
  const auto report = analyze_suppression(g);
  EXPECT_EQ(report.suppressed_count, 0u);
  EXPECT_FALSE(report.is_suppressed(EvidenceId{1}));
}

TEST(SuppressionTest, InsufficientProcessIsSuppressed) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kSubpoena)).ok());
  const auto report = analyze_suppression(g);
  EXPECT_TRUE(report.is_suppressed(EvidenceId{1}));
}

TEST(SuppressionTest, StrongerProcessThanRequiredIsFine) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSubpoena, ProcessKind::kWiretapOrder)).ok());
  EXPECT_FALSE(analyze_suppression(g).is_suppressed(EvidenceId{1}));
}

TEST(SuppressionTest, FruitOfThePoisonousTreePropagates) {
  ProvenanceGraph g;
  // Unlawful root -> derived child -> grandchild.
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());
  ASSERT_TRUE(g.add(rec(2, ProcessKind::kNone, ProcessKind::kNone,
                        {EvidenceId{1}}))
                  .ok());
  ASSERT_TRUE(g.add(rec(3, ProcessKind::kNone, ProcessKind::kNone,
                        {EvidenceId{2}}))
                  .ok());
  const auto report = analyze_suppression(g);
  EXPECT_TRUE(report.is_suppressed(EvidenceId{1}));
  EXPECT_TRUE(report.is_suppressed(EvidenceId{2}));
  EXPECT_TRUE(report.is_suppressed(EvidenceId{3}));
  EXPECT_EQ(report.suppressed_count, 3u);
}

TEST(SuppressionTest, IndependentSourceSavesDerivedEvidence) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());  // tainted
  ASSERT_TRUE(
      g.add(rec(2, ProcessKind::kSubpoena, ProcessKind::kSubpoena)).ok());  // clean
  ASSERT_TRUE(g.add(rec(3, ProcessKind::kNone, ProcessKind::kNone,
                        {EvidenceId{1}, EvidenceId{2}}))
                  .ok());
  const auto report = analyze_suppression(g);
  EXPECT_FALSE(report.is_suppressed(EvidenceId{3}));
}

TEST(SuppressionTest, InevitableDiscoveryCleansesTaint) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());
  auto child = rec(2, ProcessKind::kNone, ProcessKind::kNone, {EvidenceId{1}});
  child.inevitable_discovery = true;
  ASSERT_TRUE(g.add(child).ok());
  const auto report = analyze_suppression(g);
  EXPECT_FALSE(report.is_suppressed(EvidenceId{2}));
}

TEST(SuppressionTest, GoodFaithExceptionKeepsAcquisitionAdmissible) {
  ProvenanceGraph g;
  auto r = rec(1, ProcessKind::kSearchWarrant, ProcessKind::kCourtOrder);
  r.good_faith = true;
  ASSERT_TRUE(g.add(r).ok());
  const auto report = analyze_suppression(g);
  EXPECT_FALSE(report.is_suppressed(EvidenceId{1}));
}

TEST(SuppressionTest, GoodFaithDoesNotShieldDescendantsOfOtherTaint) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kWiretapOrder, ProcessKind::kNone)).ok());
  auto child = rec(2, ProcessKind::kNone, ProcessKind::kNone, {EvidenceId{1}});
  child.good_faith = true;  // good faith about its own acquisition only
  ASSERT_TRUE(g.add(child).ok());
  EXPECT_TRUE(analyze_suppression(g).is_suppressed(EvidenceId{2}));
}

TEST(SuppressionTest, CountsPartitionFindings) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec(1, ProcessKind::kNone, ProcessKind::kNone)).ok());
  ASSERT_TRUE(
      g.add(rec(2, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());
  const auto report = analyze_suppression(g);
  EXPECT_EQ(report.suppressed_count + report.admissible_count,
            report.findings.size());
}

TEST(SuppressionTest, DeepChainPropagationIsLinear) {
  // A 1000-node chain rooted in an unlawful acquisition: every node
  // suppressed; exercises the topological pass at scale.
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(0, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());
  for (std::uint64_t i = 1; i < 1000; ++i) {
    ASSERT_TRUE(g.add(rec(i, ProcessKind::kNone, ProcessKind::kNone,
                          {EvidenceId{i - 1}}))
                    .ok());
  }
  const auto report = analyze_suppression(g);
  EXPECT_EQ(report.suppressed_count, 1000u);
}

}  // namespace
}  // namespace lexfor::legal

// --- standing doctrine ----------------------------------------------------

namespace lexfor::legal {
namespace {

AcquisitionRecord rec_against(std::uint64_t id, std::string aggrieved,
                              ProcessKind required, ProcessKind held,
                              std::vector<EvidenceId> parents = {}) {
  auto r = rec(id, required, held, std::move(parents));
  r.aggrieved_party = std::move(aggrieved);
  return r;
}

TEST(StandingTest, DefaultAnalysisIgnoresStanding) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec_against(1, "alice", ProcessKind::kSearchWarrant,
                                ProcessKind::kNone))
                  .ok());
  EXPECT_TRUE(analyze_suppression(g).is_suppressed(EvidenceId{1}));
}

TEST(StandingTest, AggrievedPartyCanSuppress) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec_against(1, "alice", ProcessKind::kSearchWarrant,
                                ProcessKind::kNone))
                  .ok());
  EXPECT_TRUE(
      analyze_suppression_for(g, "alice").is_suppressed(EvidenceId{1}));
}

TEST(StandingTest, ThirdPartyCannotSuppress) {
  // Evidence unlawfully seized from Alice is admissible against Bob.
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec_against(1, "alice", ProcessKind::kSearchWarrant,
                                ProcessKind::kNone))
                  .ok());
  const auto report = analyze_suppression_for(g, "bob");
  EXPECT_FALSE(report.is_suppressed(EvidenceId{1}));
  EXPECT_NE(report.findings[0].reason.find("no standing"), std::string::npos);
}

TEST(StandingTest, EmptyAggrievedPartyMeansEveryMovantHasStanding) {
  ProvenanceGraph g;
  ASSERT_TRUE(
      g.add(rec(1, ProcessKind::kSearchWarrant, ProcessKind::kNone)).ok());
  EXPECT_TRUE(analyze_suppression_for(g, "anyone").is_suppressed(EvidenceId{1}));
}

TEST(StandingTest, FruitAnalysisRespectsStanding) {
  // A derived item whose only tainted source invaded a third party's
  // rights is admissible against this movant (the source isn't
  // poisonous as to them).
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec_against(1, "alice", ProcessKind::kSearchWarrant,
                                ProcessKind::kNone))
                  .ok());
  ASSERT_TRUE(g.add(rec_against(2, "bob", ProcessKind::kNone,
                                ProcessKind::kNone, {EvidenceId{1}}))
                  .ok());
  const auto vs_bob = analyze_suppression_for(g, "bob");
  EXPECT_FALSE(vs_bob.is_suppressed(EvidenceId{2}));

  const auto vs_alice = analyze_suppression_for(g, "alice");
  EXPECT_TRUE(vs_alice.is_suppressed(EvidenceId{1}));
  EXPECT_TRUE(vs_alice.is_suppressed(EvidenceId{2}));
}

TEST(StandingTest, LawfulEvidenceUnaffectedByMovantIdentity) {
  ProvenanceGraph g;
  ASSERT_TRUE(g.add(rec_against(1, "alice", ProcessKind::kSubpoena,
                                ProcessKind::kSearchWarrant))
                  .ok());
  for (const char* movant : {"alice", "bob", "carol"}) {
    EXPECT_FALSE(analyze_suppression_for(g, movant).is_suppressed(EvidenceId{1}));
  }
}

}  // namespace
}  // namespace lexfor::legal
