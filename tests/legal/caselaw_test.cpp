#include "legal/caselaw.h"

#include <gtest/gtest.h>

#include <set>

namespace lexfor::legal {
namespace {

TEST(CaseLawTest, DatabaseIsNonTrivial) {
  EXPECT_GE(case_law_database().size(), 40u);
}

TEST(CaseLawTest, IdsAreUnique) {
  std::set<std::string> ids;
  for (const auto& c : case_law_database()) {
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate id " << c.id;
  }
}

TEST(CaseLawTest, EveryEntryIsComplete) {
  for (const auto& c : case_law_database()) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_FALSE(c.name.empty()) << c.id;
    EXPECT_FALSE(c.citation.empty()) << c.id;
    EXPECT_GT(c.year, 1900) << c.id;
    EXPECT_LE(c.year, 2012) << c.id;  // nothing postdates the paper
    EXPECT_FALSE(c.holding.empty()) << c.id;
    EXPECT_FALSE(c.doctrines.empty()) << c.id;
  }
}

TEST(CaseLawTest, FindCaseResolvesKnownIds) {
  const auto katz = find_case("katz-1967");
  ASSERT_TRUE(katz.has_value());
  EXPECT_EQ(katz->name, "Katz v. United States");
  EXPECT_EQ(katz->year, 1967);
}

TEST(CaseLawTest, FindCaseReturnsNulloptForUnknown) {
  EXPECT_FALSE(find_case("made-up-2099").has_value());
}

TEST(CaseLawTest, CasesForDoctrineFindsSupport) {
  const auto rep = cases_for(Doctrine::kReasonableExpectationOfPrivacy);
  EXPECT_FALSE(rep.empty());
  bool has_katz = false;
  for (const auto& c : rep) has_katz = has_katz || c.id == "katz-1967";
  EXPECT_TRUE(has_katz);
}

TEST(CaseLawTest, KeyDoctrinesAllHaveSupport) {
  for (const auto d :
       {Doctrine::kThirdPartyDoctrine, Doctrine::kClosedContainer,
        Doctrine::kSenseEnhancingTech, Doctrine::kConsent,
        Doctrine::kProbableCauseIp, Doctrine::kStaleness,
        Doctrine::kWiretapIntercept, Doctrine::kHashSearchIsSearch,
        Doctrine::kMiningLawfulData}) {
    EXPECT_FALSE(cases_for(d).empty());
  }
}

TEST(CaseLawTest, FormatCitationIncludesNameCiteYear) {
  const auto katz = find_case("katz-1967");
  ASSERT_TRUE(katz.has_value());
  EXPECT_EQ(format_citation(*katz), "Katz v. United States, 389 U.S. 347 (1967)");
}

}  // namespace
}  // namespace lexfor::legal
