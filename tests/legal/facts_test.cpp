#include "legal/facts.h"

#include <gtest/gtest.h>

namespace lexfor::legal {
namespace {

TEST(FactsTest, NoFactsMeansNoStandard) {
  const auto a = assess_proof({}, CrimeCategory::kGeneral);
  EXPECT_EQ(a.standard, StandardOfProof::kNone);
}

TEST(FactsTest, AnonymousTipIsMereSuspicion) {
  const auto a = assess_proof({{FactKind::kAnonymousTip, 1.0, "hotline tip"}},
                              CrimeCategory::kGeneral);
  EXPECT_EQ(a.standard, StandardOfProof::kMereSuspicion);
}

TEST(FactsTest, IpPlusSubscriberIsProbableCause) {
  // §III.A.1(a): IP address resolved to a subscriber typically supports
  // a search warrant.
  const auto a = assess_proof(
      {{FactKind::kIpAddressLinked, 5.0, "IP seen distributing contraband"},
       {FactKind::kSubscriberIdentified, 2.0, "ISP resolved IP to suspect"}},
      CrimeCategory::kChildExploitation);
  EXPECT_EQ(a.standard, StandardOfProof::kProbableCause);
}

TEST(FactsTest, IpAloneIsOnlyArticulableFacts) {
  const auto a =
      assess_proof({{FactKind::kIpAddressLinked, 5.0, "IP seen in logs"}},
                   CrimeCategory::kGeneral);
  EXPECT_EQ(a.standard, StandardOfProof::kArticulableFacts);
}

TEST(FactsTest, MembershipAloneCappedBelowProbableCause) {
  // Coreas: bare membership may not support a warrant.
  const auto a = assess_proof(
      {{FactKind::kMembershipOnly, 1.0, "member of illicit e-group"},
       {FactKind::kMembershipOnly, 1.0, "second membership record"},
       {FactKind::kMembershipOnly, 1.0, "third membership record"}},
      CrimeCategory::kChildExploitation);
  EXPECT_LT(a.standard, StandardOfProof::kProbableCause);
}

TEST(FactsTest, MembershipPlusIntentIsProbableCause) {
  // Gourde: membership plus evidence of intent supports probable cause.
  const auto a = assess_proof(
      {{FactKind::kMembershipOnly, 1.0, "paid membership"},
       {FactKind::kAccountLinked, 1.0, "account used for downloads"},
       {FactKind::kIntentEvidence, 1.0, "search history shows intent"}},
      CrimeCategory::kChildExploitation);
  EXPECT_EQ(a.standard, StandardOfProof::kProbableCause);
}

TEST(FactsTest, ContrabandObservedIsProbableCause) {
  const auto a = assess_proof(
      {{FactKind::kContrabandObserved, 0.0, "officer saw contraband"}},
      CrimeCategory::kGeneral);
  EXPECT_EQ(a.standard, StandardOfProof::kProbableCause);
}

TEST(StalenessTest, ChildExploitationFactsNeverGoStale) {
  // Irving / Paull: years-old information still supports the warrant.
  const Fact f{FactKind::kIpAddressLinked, 2000.0, "two-year-old IP link"};
  EXPECT_FALSE(is_stale(f, CrimeCategory::kChildExploitation));
}

TEST(StalenessTest, GeneralFactsGoStaleAfterSixMonths) {
  const Fact fresh{FactKind::kWitnessStatement, 30.0, "recent statement"};
  const Fact old{FactKind::kWitnessStatement, 200.0, "old statement"};
  EXPECT_FALSE(is_stale(fresh, CrimeCategory::kFraud));
  EXPECT_TRUE(is_stale(old, CrimeCategory::kFraud));
}

TEST(StalenessTest, PriorConvictionsNeverStale) {
  const Fact f{FactKind::kPriorConviction, 3650.0, "decade-old conviction"};
  EXPECT_FALSE(is_stale(f, CrimeCategory::kFraud));
}

TEST(StalenessTest, StaleFactsAreDiscountedInAssessment) {
  // The same facts, fresh vs stale, in a fraud case.
  const std::vector<Fact> fresh = {
      {FactKind::kIpAddressLinked, 10.0, "IP link"},
      {FactKind::kSubscriberIdentified, 10.0, "subscriber"}};
  const std::vector<Fact> stale = {
      {FactKind::kIpAddressLinked, 400.0, "IP link"},
      {FactKind::kSubscriberIdentified, 400.0, "subscriber"}};
  const auto a = assess_proof(fresh, CrimeCategory::kFraud);
  const auto b = assess_proof(stale, CrimeCategory::kFraud);
  EXPECT_EQ(a.standard, StandardOfProof::kProbableCause);
  EXPECT_EQ(b.standard, StandardOfProof::kNone);
  EXPECT_FALSE(b.notes.empty());
}

TEST(FactsTest, AssessmentCitesDoctrinalCases) {
  const auto a = assess_proof(
      {{FactKind::kIpAddressLinked, 1.0, "x"},
       {FactKind::kSubscriberIdentified, 1.0, "y"}},
      CrimeCategory::kGeneral);
  EXPECT_FALSE(a.citations.empty());
}

TEST(FactsTest, MoreFactsNeverLowerTheStandard) {
  // Property: appending a (non-stale) fact never weakens the assessment.
  std::vector<Fact> facts;
  StandardOfProof prev = StandardOfProof::kNone;
  const FactKind kinds[] = {FactKind::kAnonymousTip, FactKind::kWitnessStatement,
                            FactKind::kIpAddressLinked,
                            FactKind::kSubscriberIdentified,
                            FactKind::kContrabandObserved};
  for (const auto k : kinds) {
    facts.push_back({k, 1.0, "fact"});
    const auto a = assess_proof(facts, CrimeCategory::kGeneral);
    EXPECT_GE(static_cast<int>(a.standard), static_cast<int>(prev));
    prev = a.standard;
  }
}

}  // namespace
}  // namespace lexfor::legal
