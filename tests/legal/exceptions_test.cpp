#include "legal/exceptions.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lexfor::legal {
namespace {

std::vector<ExceptionFinding> run(const Scenario& s) {
  const auto rep = analyze_rep(s);
  const auto statutes = analyze_statutes(s, rep);
  return applicable_exceptions(s, rep, statutes);
}

const ExceptionFinding* find_kind(const std::vector<ExceptionFinding>& fs,
                                  ExceptionKind k) {
  const auto it = std::find_if(fs.begin(), fs.end(),
                               [&](const auto& f) { return f.kind == k; });
  return it == fs.end() ? nullptr : &*it;
}

TEST(ExceptionsTest, PrivatePartySearchIsPrivateSearch) {
  const auto fs = run(Scenario{}
                          .by(ActorKind::kPrivateParty)
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice));
  const auto* f = find_kind(fs, ExceptionKind::kPrivateSearch);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_fourth);
}

TEST(ExceptionsTest, ProviderAdminAlsoEscapesWiretap) {
  const auto fs = run(Scenario{}
                          .by(ActorKind::kProviderAdmin)
                          .acquiring(DataKind::kContent)
                          .located(DataState::kInTransit)
                          .when(Timing::kRealTime));
  const auto* f = find_kind(fs, ExceptionKind::kPrivateSearch);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_wiretap);
  EXPECT_TRUE(f->excuses_pen_trap);
}

TEST(ExceptionsTest, GovernmentAgentGetsNoPrivateSearch) {
  const auto fs = run(Scenario{}
                          .by(ActorKind::kPrivateParty)
                          .under_color_of_law()
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice));
  EXPECT_EQ(find_kind(fs, ExceptionKind::kPrivateSearch), nullptr);
}

TEST(ExceptionsTest, OnePartyConsentExcusesWiretapAndFourth) {
  // 2511(2)(c) plus the misplaced-confidence doctrine (Hoffa): the
  // non-consenting party assumed the risk of disclosure.
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kInTransit)
                          .when(Timing::kRealTime)
                          .with_consent(ConsentKind::kOnePartyToComm));
  const auto* f = find_kind(fs, ExceptionKind::kConsent);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_wiretap);
  EXPECT_TRUE(f->excuses_fourth);
  EXPECT_FALSE(f->excuses_sca);
}

TEST(ExceptionsTest, RevokedConsentDoesNotApply) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice)
                          .with_consent(ConsentKind::kOwnerConsent)
                          .revoked());
  EXPECT_EQ(find_kind(fs, ExceptionKind::kConsent), nullptr);
}

TEST(ExceptionsTest, TrespasserExceptionRequiresVictimConsentOnVictimSystem) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kInTransit)
                          .when(Timing::kRealTime)
                          .with_consent(ConsentKind::kVictimOfAttack)
                          .on_victim_system());
  const auto* f = find_kind(fs, ExceptionKind::kComputerTrespasser);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_wiretap);
}

TEST(ExceptionsTest, TrespasserExceptionNeverReachesAttackerMachine) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice)
                          .with_consent(ConsentKind::kVictimOfAttack)
                          .on_victim_system()
                          .reaching_attacker());
  EXPECT_EQ(find_kind(fs, ExceptionKind::kComputerTrespasser), nullptr);
  const auto* consent = find_kind(fs, ExceptionKind::kConsent);
  ASSERT_NE(consent, nullptr);
  EXPECT_FALSE(consent->excuses_fourth);
}

TEST(ExceptionsTest, PublicAccessibilityExcusesInterception) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kInTransit)
                          .when(Timing::kRealTime)
                          .publicly_accessible());
  const auto* f = find_kind(fs, ExceptionKind::kAccessibleToPublic);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_wiretap);
  EXPECT_TRUE(f->excuses_pen_trap);
}

TEST(ExceptionsTest, ExigencyExcusesFourthOnly) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice)
                          .exigent());
  const auto* f = find_kind(fs, ExceptionKind::kExigentCircumstances);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_fourth);
  EXPECT_FALSE(f->excuses_wiretap);
}

TEST(ExceptionsTest, PlainViewApplies) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice)
                          .plain_view());
  EXPECT_NE(find_kind(fs, ExceptionKind::kPlainView), nullptr);
}

TEST(ExceptionsTest, ProbationersHaveDiminishedProtection) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kOnDevice)
                          .probationer());
  const auto* f = find_kind(fs, ExceptionKind::kProbationParole);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_fourth);
}

TEST(ExceptionsTest, EmergencyPenTrapOnlyWhenPenTrapApplies) {
  // Real-time addressing: the statute applies, emergency excuses it.
  const auto with = run(Scenario{}
                            .acquiring(DataKind::kAddressing)
                            .located(DataState::kInTransit)
                            .when(Timing::kRealTime)
                            .pen_trap_emergency());
  EXPECT_NE(find_kind(with, ExceptionKind::kEmergencyPenTrap), nullptr);

  // Stored content: pen/trap inapplicable; the emergency flag is moot.
  const auto without = run(Scenario{}
                               .acquiring(DataKind::kContent)
                               .located(DataState::kOnDevice)
                               .when(Timing::kStored)
                               .pen_trap_emergency());
  EXPECT_EQ(find_kind(without, ExceptionKind::kEmergencyPenTrap), nullptr);
}

TEST(ExceptionsTest, NoRepFindingCarriesRepCitations) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kPublicVenue)
                          .exposed_publicly());
  const auto* f =
      find_kind(fs, ExceptionKind::kNoReasonableExpectationOfPrivacy);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->citations.empty());
}

TEST(ExceptionsTest, PolicyBannerExcusesEverything) {
  const auto fs = run(Scenario{}
                          .acquiring(DataKind::kContent)
                          .located(DataState::kInTransit)
                          .when(Timing::kRealTime)
                          .with_consent(ConsentKind::kPolicyBanner));
  const auto* f = find_kind(fs, ExceptionKind::kConsent);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->excuses_everything());
}

}  // namespace
}  // namespace lexfor::legal

// --- consent scope (Trulock) --------------------------------------------
#include "legal/engine.h"

namespace lexfor::legal {
namespace {

TEST(ConsentScopeTest, CoUserConsentStopsAtPasswordProtectedAreas) {
  const auto open = run(Scenario{}
                            .acquiring(DataKind::kContent)
                            .located(DataState::kOnDevice)
                            .with_consent(ConsentKind::kCoUserSharedSpace));
  const auto* f_open = find_kind(open, ExceptionKind::kConsent);
  ASSERT_NE(f_open, nullptr);
  EXPECT_TRUE(f_open->excuses_fourth);

  const auto locked = run(Scenario{}
                              .acquiring(DataKind::kContent)
                              .located(DataState::kOnDevice)
                              .with_consent(ConsentKind::kCoUserSharedSpace)
                              .password_protected());
  const auto* f_locked = find_kind(locked, ExceptionKind::kConsent);
  ASSERT_NE(f_locked, nullptr);
  EXPECT_FALSE(f_locked->excuses_fourth);
}

TEST(ConsentScopeTest, SpouseConsentAlsoLimited) {
  const auto locked = run(Scenario{}
                              .acquiring(DataKind::kContent)
                              .located(DataState::kOnDevice)
                              .with_consent(ConsentKind::kSpouseConsent)
                              .password_protected());
  const auto* f = find_kind(locked, ExceptionKind::kConsent);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->excuses_fourth);
}

TEST(ConsentScopeTest, OwnerConsentUnaffectedByPasswordFlag) {
  const auto d = ComplianceEngine{}.evaluate(
      Scenario{}
          .acquiring(DataKind::kContent)
          .located(DataState::kOnDevice)
          .with_consent(ConsentKind::kOwnerConsent)
          .password_protected());
  EXPECT_FALSE(d.needs_process);
}

TEST(ConsentScopeTest, EngineRequiresWarrantForLockedAreaDespiteCoUserConsent) {
  const auto d = ComplianceEngine{}.evaluate(
      Scenario{}
          .acquiring(DataKind::kContent)
          .located(DataState::kOnDevice)
          .with_consent(ConsentKind::kCoUserSharedSpace)
          .password_protected());
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
}

}  // namespace
}  // namespace lexfor::legal
