#include "legal/engine.h"

#include <gtest/gtest.h>

namespace lexfor::legal {
namespace {

ComplianceEngine engine;

TEST(EngineTest, WiretapBeatsPenTrapWhenBothRegimesTouched) {
  // Full-packet capture acquires content; the composed requirement is the
  // Title III order, the strictest applicable instrument.
  const auto d = engine.evaluate(Scenario{}
                                     .named("full packet capture at ISP")
                                     .acquiring(DataKind::kContent)
                                     .located(DataState::kInTransit)
                                     .when(Timing::kRealTime));
  EXPECT_EQ(d.required_process, ProcessKind::kWiretapOrder);
  EXPECT_EQ(d.required_proof, StandardOfProof::kProbableCausePlus);
}

TEST(EngineTest, SubscriberRecordsNeedOnlySubpoena) {
  const auto d = engine.evaluate(Scenario{}
                                     .acquiring(DataKind::kSubscriberRecords)
                                     .located(DataState::kStoredAtProvider)
                                     .when(Timing::kStored)
                                     .at_provider(ProviderClass::kEcs));
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, ProcessKind::kSubpoena);
  EXPECT_EQ(d.required_proof, StandardOfProof::kMereSuspicion);
}

TEST(EngineTest, StoredContentAtPublicProviderNeedsWarrant) {
  const auto d = engine.evaluate(Scenario{}
                                     .acquiring(DataKind::kContent)
                                     .located(DataState::kStoredAtProvider)
                                     .when(Timing::kStored)
                                     .at_provider(ProviderClass::kRcs));
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
}

TEST(EngineTest, DeterminationReportContainsVerdictAndCitations) {
  const auto d = engine.evaluate(Scenario{}
                                     .named("device search")
                                     .acquiring(DataKind::kContent)
                                     .located(DataState::kOnDevice)
                                     .when(Timing::kStored));
  const std::string report = d.report();
  EXPECT_NE(report.find("device search"), std::string::npos);
  EXPECT_NE(report.find("Need"), std::string::npos);
  EXPECT_NE(report.find("Citations"), std::string::npos);
}

TEST(EngineTest, VerdictStringMatchesNeedsProcess) {
  const auto need = engine.evaluate(
      Scenario{}.acquiring(DataKind::kContent).located(DataState::kOnDevice));
  EXPECT_EQ(need.verdict(), "Need");
  const auto no_need = engine.evaluate(Scenario{}
                                           .acquiring(DataKind::kContent)
                                           .located(DataState::kPublicVenue)
                                           .exposed_publicly());
  EXPECT_EQ(no_need.verdict(), "No need");
}

TEST(EngineTest, EvaluationIsDeterministic) {
  const Scenario s = Scenario{}
                         .acquiring(DataKind::kAddressing)
                         .located(DataState::kInTransit)
                         .when(Timing::kRealTime);
  const auto a = engine.evaluate(s);
  const auto b = engine.evaluate(s);
  EXPECT_EQ(a.needs_process, b.needs_process);
  EXPECT_EQ(a.required_process, b.required_process);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_EQ(a.citations, b.citations);
}

TEST(EngineTest, CitationsAreDeduplicated) {
  const auto d = engine.evaluate(Scenario{}
                                     .acquiring(DataKind::kAddressing)
                                     .located(DataState::kInTransit)
                                     .when(Timing::kRealTime));
  for (std::size_t i = 0; i < d.citations.size(); ++i) {
    for (std::size_t j = i + 1; j < d.citations.size(); ++j) {
      EXPECT_NE(d.citations[i], d.citations[j]);
    }
  }
}

// Property sweep: adding an excusing circumstance can only weaken (or
// keep) the required process, never strengthen it.
class MonotonicityTest
    : public ::testing::TestWithParam<std::tuple<DataKind, DataState, Timing>> {};

TEST_P(MonotonicityTest, ConsentNeverIncreasesRequiredProcess) {
  const auto [kind, state, timing] = GetParam();
  Scenario base = Scenario{}.acquiring(kind).located(state).when(timing);
  if (state == DataState::kStoredAtProvider) {
    base.at_provider(ProviderClass::kEcs);
  }
  const auto without = engine.evaluate(base);

  Scenario with = base;
  with.with_consent(ConsentKind::kPolicyBanner);
  const auto d = engine.evaluate(with);

  EXPECT_LE(static_cast<int>(d.required_process),
            static_cast<int>(without.required_process))
      << "kind=" << to_string(kind) << " state=" << to_string(state)
      << " timing=" << to_string(timing);
}

TEST_P(MonotonicityTest, PublicExposureNeverIncreasesRequiredProcess) {
  const auto [kind, state, timing] = GetParam();
  Scenario base = Scenario{}.acquiring(kind).located(state).when(timing);
  if (state == DataState::kStoredAtProvider) {
    base.at_provider(ProviderClass::kEcs);
  }
  const auto without = engine.evaluate(base);

  Scenario with = base;
  with.exposed_publicly().publicly_accessible();
  const auto d = engine.evaluate(with);

  EXPECT_LE(static_cast<int>(d.required_process),
            static_cast<int>(without.required_process));
}

TEST_P(MonotonicityTest, PrivateActorNeverNeedsMoreThanGovernment) {
  const auto [kind, state, timing] = GetParam();
  Scenario gov = Scenario{}.acquiring(kind).located(state).when(timing);
  if (state == DataState::kStoredAtProvider) gov.at_provider(ProviderClass::kEcs);
  Scenario priv = gov;
  priv.by(ActorKind::kProviderAdmin);

  const auto dg = engine.evaluate(gov);
  const auto dp = engine.evaluate(priv);
  EXPECT_LE(static_cast<int>(dp.required_process),
            static_cast<int>(dg.required_process));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MonotonicityTest,
    ::testing::Combine(
        ::testing::Values(DataKind::kContent, DataKind::kAddressing,
                          DataKind::kSubscriberRecords,
                          DataKind::kTransactionalRecords),
        ::testing::Values(DataState::kInTransit, DataState::kStoredAtProvider,
                          DataState::kOnDevice, DataState::kPublicVenue),
        ::testing::Values(Timing::kRealTime, Timing::kStored)));

}  // namespace
}  // namespace lexfor::legal
