#include "legal/scenario_library.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "legal/engine.h"

namespace lexfor::legal {
namespace {

ComplianceEngine engine;

TEST(LibraryTest, ThermalImagingOfHomeNeedsWarrant) {
  const auto d = engine.evaluate(library::thermal_imaging_of_home());
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
  // The Kyllo citation must appear.
  const bool cites_kyllo =
      std::find(d.citations.begin(), d.citations.end(), "kyllo-2001") !=
      d.citations.end();
  EXPECT_TRUE(cites_kyllo);
}

TEST(LibraryTest, PublicTechThermalImagingIsProcessFree) {
  const auto d = engine.evaluate(library::thermal_imaging_public_tech());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, GarbagePullIsProcessFree) {
  const auto d = engine.evaluate(library::curbside_garbage_pull());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, UndercoverChatFederalIsProcessFree) {
  const auto d = engine.evaluate(library::undercover_chat_recording());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, UndercoverChatAllPartyStateNeedsProcess) {
  const auto d =
      engine.evaluate(library::undercover_chat_recording_all_party_state());
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kWiretapOrder);
}

TEST(LibraryTest, PlantedTrackerNeedsWarrant) {
  const auto d = engine.evaluate(library::planted_tracker_on_vehicle());
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
}

TEST(LibraryTest, RepairShopDiscoveryIsPrivateSearch) {
  const auto d = engine.evaluate(library::repair_shop_discovery());
  EXPECT_FALSE(d.needs_process) << d.report();
  const bool private_search =
      std::find(d.exceptions_applied.begin(), d.exceptions_applied.end(),
                ExceptionKind::kPrivateSearch) != d.exceptions_applied.end();
  EXPECT_TRUE(private_search);
}

TEST(LibraryTest, PlainViewDuringLawfulSearchIsProcessFree) {
  const auto d = engine.evaluate(library::plain_view_during_lawful_search());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, ParoleeSearchIsProcessFree) {
  const auto d = engine.evaluate(library::parolee_laptop_search());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, AbandonedHotelDeviceIsProcessFree) {
  const auto d = engine.evaluate(library::hotel_abandoned_device());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, CloudSubscriberRecordsNeedOnlySubpoena) {
  // SCA §2703(c)(2): basic subscriber records held by an RCS provider
  // sit at the bottom of the process ladder.
  const auto d = engine.evaluate(library::cloud_storage_subscriber_subpoena());
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kSubpoena);
}

TEST(LibraryTest, CloudStoredContentNeedsSearchWarrant) {
  const auto d = engine.evaluate(library::cloud_storage_content_demand());
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kSearchWarrant);
}

TEST(LibraryTest, FederalConsentIspTapIsProcessFree) {
  // One party to the communication consents: 18 U.S.C. §2511(2)(c)
  // excuses the pen/trap order the tap would otherwise need.
  const auto d = engine.evaluate(library::isp_tap_with_consent_federal());
  EXPECT_FALSE(d.needs_process) << d.report();
}

TEST(LibraryTest, CrossBorderAllPartyTapNeedsCourtOrder) {
  // Same tap under an all-party-consent regime: the consent exception
  // fails and the pen/trap court order requirement comes back.
  const auto d = engine.evaluate(library::isp_tap_cross_border_all_party());
  EXPECT_TRUE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, ProcessKind::kCourtOrder);
}

TEST(LibraryTest, EveryLibraryScenarioHasAName) {
  // The descriptor table is the complete roster: every scene builds to a
  // uniquely named scenario.
  std::set<std::string> names;
  for (const auto& scene : library::scenes()) {
    const Scenario s = scene.build();
    EXPECT_FALSE(s.name.empty()) << scene.id;
    EXPECT_TRUE(names.insert(s.name).second)
        << "duplicate display name: " << s.name;
  }
  EXPECT_EQ(names.size(), library::kSceneCount);
}

}  // namespace
}  // namespace lexfor::legal
