// Exhaustive property sweep of the compliance engine over the scenario
// input space.  These are the invariants a downstream user relies on:
// totality (no crash, coherent output on every input), internal
// consistency, and doctrinal monotonicity.

#include <gtest/gtest.h>

#include "legal/engine.h"

namespace lexfor::legal {
namespace {

// Enumerates a representative cross-product of the scenario space.
std::vector<Scenario> scenario_space() {
  std::vector<Scenario> out;
  for (const auto actor : {ActorKind::kLawEnforcement, ActorKind::kProviderAdmin,
                           ActorKind::kPrivateParty}) {
    for (const auto data :
         {DataKind::kContent, DataKind::kAddressing,
          DataKind::kSubscriberRecords, DataKind::kTransactionalRecords}) {
      for (const auto state :
           {DataState::kInTransit, DataState::kStoredAtProvider,
            DataState::kOnDevice, DataState::kPublicVenue}) {
        for (const auto timing : {Timing::kRealTime, Timing::kStored}) {
          for (const auto provider :
               {ProviderClass::kNotAProvider, ProviderClass::kEcs,
                ProviderClass::kNonPublic}) {
            for (const auto consent :
                 {ConsentKind::kNone, ConsentKind::kOwnerConsent,
                  ConsentKind::kOnePartyToComm, ConsentKind::kVictimOfAttack,
                  ConsentKind::kPolicyBanner}) {
              for (const bool exposed : {false, true}) {
                Scenario s;
                s.actor = actor;
                s.data = data;
                s.state = state;
                s.timing = timing;
                s.provider = provider;
                s.consent = consent;
                s.knowingly_exposed_to_public = exposed;
                out.push_back(s);
              }
            }
          }
        }
      }
    }
  }
  return out;  // 3*4*4*2*3*5*2 = 2880 scenarios
}

TEST(EnginePropertyTest, TotalityAndCoherenceOverTheInputSpace) {
  ComplianceEngine engine;
  const auto space = scenario_space();
  ASSERT_EQ(space.size(), 2880u);
  for (const auto& s : space) {
    const auto d = engine.evaluate(s);
    // needs_process and required_process agree.
    EXPECT_EQ(d.needs_process, d.required_process != ProcessKind::kNone);
    // required standard matches the ladder.
    EXPECT_EQ(d.required_proof, required_standard(d.required_process));
    // rationale is never empty.
    EXPECT_FALSE(d.rationale.empty());
    // no duplicate citations.
    for (std::size_t i = 0; i < d.citations.size(); ++i) {
      for (std::size_t j = i + 1; j < d.citations.size(); ++j) {
        EXPECT_NE(d.citations[i], d.citations[j]);
      }
    }
  }
}

TEST(EnginePropertyTest, PrivateActorNeverStricterThanLawEnforcement) {
  ComplianceEngine engine;
  for (auto s : scenario_space()) {
    if (s.actor != ActorKind::kLawEnforcement) continue;
    const auto gov = engine.evaluate(s);
    s.actor = ActorKind::kPrivateParty;
    const auto priv = engine.evaluate(s);
    EXPECT_LE(static_cast<int>(priv.required_process),
              static_cast<int>(gov.required_process));
  }
}

TEST(EnginePropertyTest, ExposureNeverStrengthensTheRequirement) {
  ComplianceEngine engine;
  for (auto s : scenario_space()) {
    if (s.knowingly_exposed_to_public) continue;
    const auto covered = engine.evaluate(s);
    s.knowingly_exposed_to_public = true;
    const auto exposed = engine.evaluate(s);
    EXPECT_LE(static_cast<int>(exposed.required_process),
              static_cast<int>(covered.required_process));
  }
}

TEST(EnginePropertyTest, ExigencyNeverStrengthensTheRequirement) {
  ComplianceEngine engine;
  for (auto s : scenario_space()) {
    const auto base = engine.evaluate(s);
    s.exigent_circumstances = true;
    const auto exigent = engine.evaluate(s);
    EXPECT_LE(static_cast<int>(exigent.required_process),
              static_cast<int>(base.required_process));
  }
}

TEST(EnginePropertyTest, ContentNeverCheaperThanAddressing) {
  // For government acquisition with no excusing circumstances, content
  // is always at least as protected as addressing in the same posture.
  ComplianceEngine engine;
  for (auto s : scenario_space()) {
    if (s.actor != ActorKind::kLawEnforcement) continue;
    if (s.consent != ConsentKind::kNone) continue;
    if (s.knowingly_exposed_to_public) continue;
    if (s.data != DataKind::kAddressing) continue;
    const auto addressing = engine.evaluate(s);
    s.data = DataKind::kContent;
    const auto content = engine.evaluate(s);
    EXPECT_GE(static_cast<int>(content.required_process),
              static_cast<int>(addressing.required_process));
  }
}

TEST(EnginePropertyTest, GovernanceListMatchesFlags) {
  ComplianceEngine engine;
  for (const auto& s : scenario_space()) {
    const auto d = engine.evaluate(s);
    // Wiretap can only govern real-time in-transit content.
    const bool wiretap_listed =
        std::find(d.governing_statutes.begin(), d.governing_statutes.end(),
                  Statute::kWiretapAct) != d.governing_statutes.end();
    if (wiretap_listed) {
      EXPECT_EQ(s.data, DataKind::kContent);
      EXPECT_EQ(s.timing, Timing::kRealTime);
      EXPECT_EQ(s.state, DataState::kInTransit);
    }
    // SCA can only govern data stored at a provider.
    const bool sca_listed =
        std::find(d.governing_statutes.begin(), d.governing_statutes.end(),
                  Statute::kStoredCommunicationsAct) !=
        d.governing_statutes.end();
    if (sca_listed) {
      EXPECT_EQ(s.state, DataState::kStoredAtProvider);
    }
  }
}

}  // namespace
}  // namespace lexfor::legal
