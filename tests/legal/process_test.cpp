#include "legal/process.h"

#include <gtest/gtest.h>

namespace lexfor::legal {
namespace {

LegalProcess make_warrant() {
  LegalProcess p;
  p.id = ProcessId{1};
  p.kind = ProcessKind::kSearchWarrant;
  p.scope.data_kinds = {DataKind::kContent};
  p.scope.locations = {"suspect-laptop"};
  p.scope.crime = "distribution of contraband images";
  p.issued_at = SimTime::zero();
  p.supported_by = StandardOfProof::kProbableCause;
  return p;
}

TEST(ProcessTest, AuthorizesWithinScope) {
  const auto w = make_warrant();
  EXPECT_TRUE(w.authorizes(DataKind::kContent, "suspect-laptop",
                           SimTime::from_sec(3600))
                  .ok());
}

TEST(ProcessTest, RejectsWrongDataKind) {
  const auto w = make_warrant();
  const auto s =
      w.authorizes(DataKind::kAddressing, "suspect-laptop", SimTime::zero());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST(ProcessTest, RejectsWrongLocation) {
  const auto w = make_warrant();
  const auto s =
      w.authorizes(DataKind::kContent, "other-machine", SimTime::zero());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(s.message().find("multiple warrants"), std::string::npos);
}

TEST(ProcessTest, ExpiresAfterValidityWindow) {
  auto w = make_warrant();
  w.validity = SimDuration::from_sec(100.0);
  EXPECT_FALSE(w.expired_at(SimTime::from_sec(99.0)));
  EXPECT_TRUE(w.expired_at(SimTime::from_sec(101.0)));
  const auto s =
      w.authorizes(DataKind::kContent, "suspect-laptop", SimTime::from_sec(200));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ProcessTest, DefaultValidityIsFourteenDays) {
  const LegalProcess p;
  EXPECT_DOUBLE_EQ(p.validity.seconds(), 14 * 24 * 3600.0);
}

TEST(ProcessTest, EmptyScopeAxesAreUnrestricted) {
  LegalProcess p;
  p.id = ProcessId{2};
  p.kind = ProcessKind::kWiretapOrder;
  p.issued_at = SimTime::zero();
  EXPECT_TRUE(p.authorizes(DataKind::kContent, "anywhere", SimTime::zero()).ok());
  EXPECT_TRUE(
      p.authorizes(DataKind::kAddressing, "elsewhere", SimTime::zero()).ok());
}

TEST(ProcessTest, NoProcessNeverAuthorizes) {
  const LegalProcess p;  // kind == kNone
  EXPECT_EQ(p.authorizes(DataKind::kContent, "x", SimTime::zero()).code(),
            StatusCode::kPermissionDenied);
}

TEST(ApplicationTest, StandardMustMeetRequirement) {
  ProcessScope scope;
  scope.locations = {"somewhere"};
  scope.crime = "fraud";
  EXPECT_TRUE(validate_application(ProcessKind::kSubpoena,
                                   StandardOfProof::kMereSuspicion, scope)
                  .ok());
  EXPECT_EQ(validate_application(ProcessKind::kSearchWarrant,
                                 StandardOfProof::kMereSuspicion, scope)
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(validate_application(ProcessKind::kSearchWarrant,
                                   StandardOfProof::kProbableCause, scope)
                  .ok());
}

TEST(ApplicationTest, StrongerStandardSatisfiesWeakerRequirement) {
  ProcessScope scope;
  EXPECT_TRUE(validate_application(ProcessKind::kSubpoena,
                                   StandardOfProof::kProbableCause, scope)
                  .ok());
}

TEST(ApplicationTest, WarrantNeedsParticularity) {
  ProcessScope no_location;
  no_location.crime = "fraud";
  EXPECT_EQ(validate_application(ProcessKind::kSearchWarrant,
                                 StandardOfProof::kProbableCause, no_location)
                .code(),
            StatusCode::kInvalidArgument);

  ProcessScope no_crime;
  no_crime.locations = {"office"};
  EXPECT_EQ(validate_application(ProcessKind::kSearchWarrant,
                                 StandardOfProof::kProbableCause, no_crime)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ApplicationTest, SubpoenaNeedsNoParticularity) {
  EXPECT_TRUE(validate_application(ProcessKind::kSubpoena,
                                   StandardOfProof::kMereSuspicion, {})
                  .ok());
}

TEST(ApplicationTest, CannotApplyForNoProcess) {
  EXPECT_EQ(validate_application(ProcessKind::kNone, StandardOfProof::kProbableCause,
                                 {})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(TypesTest, ProcessLadderOrdering) {
  EXPECT_TRUE(satisfies(ProcessKind::kSearchWarrant, ProcessKind::kSubpoena));
  EXPECT_TRUE(satisfies(ProcessKind::kWiretapOrder, ProcessKind::kSearchWarrant));
  EXPECT_FALSE(satisfies(ProcessKind::kSubpoena, ProcessKind::kCourtOrder));
  EXPECT_EQ(stricter(ProcessKind::kSubpoena, ProcessKind::kSearchWarrant),
            ProcessKind::kSearchWarrant);
}

TEST(TypesTest, RequiredStandardLadder) {
  EXPECT_EQ(required_standard(ProcessKind::kSubpoena),
            StandardOfProof::kMereSuspicion);
  EXPECT_EQ(required_standard(ProcessKind::kCourtOrder),
            StandardOfProof::kArticulableFacts);
  EXPECT_EQ(required_standard(ProcessKind::kSearchWarrant),
            StandardOfProof::kProbableCause);
  EXPECT_EQ(required_standard(ProcessKind::kWiretapOrder),
            StandardOfProof::kProbableCausePlus);
}

}  // namespace
}  // namespace lexfor::legal
