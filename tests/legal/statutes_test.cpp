#include "legal/statutes.h"

#include <gtest/gtest.h>

namespace lexfor::legal {
namespace {

StatuteAnalysis analyze(const Scenario& s) {
  return analyze_statutes(s, analyze_rep(s));
}

TEST(StatutesTest, RealTimeContentInTransitIsWiretap) {
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kInTransit)
                             .when(Timing::kRealTime));
  EXPECT_TRUE(a.wiretap_act);
  EXPECT_FALSE(a.pen_trap);
  EXPECT_FALSE(a.sca);
}

TEST(StatutesTest, RealTimeAddressingIsPenTrap) {
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kAddressing)
                             .located(DataState::kInTransit)
                             .when(Timing::kRealTime));
  EXPECT_TRUE(a.pen_trap);
  EXPECT_FALSE(a.wiretap_act);
}

TEST(StatutesTest, StoredContentIsNeverAnInterception) {
  // Steve Jackson Games / Konop: contemporaneity is required.
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kStoredAtProvider)
                             .when(Timing::kStored)
                             .at_provider(ProviderClass::kEcs));
  EXPECT_FALSE(a.wiretap_act);
  EXPECT_TRUE(a.sca);
}

TEST(StatutesTest, EcsAndRcsProvidersAreScaCovered) {
  for (const auto p : {ProviderClass::kEcs, ProviderClass::kRcs}) {
    const auto a = analyze(Scenario{}
                               .acquiring(DataKind::kContent)
                               .located(DataState::kStoredAtProvider)
                               .when(Timing::kStored)
                               .at_provider(p));
    EXPECT_TRUE(a.sca) << to_string(p);
  }
}

TEST(StatutesTest, OpenedMailOnNonPublicProviderDropsOutOfSca) {
  // The paper's Alice example: once Alice opens the email on the
  // university server, that server is neither ECS nor RCS for it.
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kStoredAtProvider)
                             .when(Timing::kStored)
                             .at_provider(ProviderClass::kNonPublic)
                             .opened());
  EXPECT_FALSE(a.sca);
  EXPECT_TRUE(a.fourth_amendment);  // only the Fourth Amendment governs
}

TEST(StatutesTest, UnopenedMailOnNonPublicProviderIsStillEcsStorage) {
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kStoredAtProvider)
                             .when(Timing::kStored)
                             .at_provider(ProviderClass::kNonPublic));
  EXPECT_TRUE(a.sca);
}

TEST(StatutesTest, NonProviderCustodianIsFourthAmendmentOnly) {
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kStoredAtProvider)
                             .when(Timing::kStored)
                             .at_provider(ProviderClass::kNotAProvider));
  EXPECT_FALSE(a.sca);
  EXPECT_TRUE(a.fourth_amendment);
}

TEST(StatutesTest, FourthAmendmentOnlyBindsGovernmentActors) {
  const auto a = analyze(Scenario{}
                             .by(ActorKind::kPrivateParty)
                             .acquiring(DataKind::kContent)
                             .located(DataState::kOnDevice)
                             .when(Timing::kStored));
  EXPECT_FALSE(a.fourth_amendment);
}

TEST(StatutesTest, FourthAmendmentNeedsSurvivingRep) {
  const auto a = analyze(Scenario{}
                             .acquiring(DataKind::kContent)
                             .located(DataState::kPublicVenue)
                             .exposed_publicly());
  EXPECT_FALSE(a.fourth_amendment);
}

TEST(StatutesTest, ColorOfLawMakesPrivatePartyGovernmental) {
  const auto a = analyze(Scenario{}
                             .by(ActorKind::kPrivateParty)
                             .under_color_of_law()
                             .acquiring(DataKind::kContent)
                             .located(DataState::kOnDevice)
                             .when(Timing::kStored));
  EXPECT_TRUE(a.fourth_amendment);
}

TEST(ScaLadderTest, SubscriberRecordsNeedOnlySubpoena) {
  EXPECT_EQ(sca_required_process(DataKind::kSubscriberRecords),
            ProcessKind::kSubpoena);
}

TEST(ScaLadderTest, TransactionalRecordsNeedCourtOrder) {
  EXPECT_EQ(sca_required_process(DataKind::kTransactionalRecords),
            ProcessKind::kCourtOrder);
}

TEST(ScaLadderTest, ContentNeedsSearchWarrant) {
  EXPECT_EQ(sca_required_process(DataKind::kContent),
            ProcessKind::kSearchWarrant);
}

TEST(ScaLadderTest, LadderIsMonotoneInSensitivity) {
  EXPECT_TRUE(satisfies(sca_required_process(DataKind::kContent),
                        sca_required_process(DataKind::kTransactionalRecords)));
  EXPECT_TRUE(satisfies(sca_required_process(DataKind::kTransactionalRecords),
                        sca_required_process(DataKind::kSubscriberRecords)));
}

}  // namespace
}  // namespace lexfor::legal
