#include "legal/analysis.h"

#include <gtest/gtest.h>

#include "legal/table1.h"

namespace lexfor::legal {
namespace {

FeasibilityAnalyzer analyzer;

// The paper's §IV.A technique: probe an anonymous P2P overlay.
Technique p2p_technique() {
  Technique t;
  t.name = "anonymous P2P timing attack";
  t.steps.push_back({"join overlay and issue queries",
                     table1::scene(10).scenario});
  t.steps.push_back({"measure response delays of replies received",
                     Scenario{}
                         .acquiring(DataKind::kContent)
                         .located(DataState::kPublicVenue)
                         .when(Timing::kStored)
                         .exposed_publicly()
                         .delivered()});
  return t;
}

// The paper's §IV.B technique: DSSS watermark traceback.
Technique watermark_technique() {
  Technique t;
  t.name = "PN-code DSSS watermark traceback";
  t.steps.push_back({"modulate seized server's transmission rate",
                     Scenario{}
                         .acquiring(DataKind::kContent)
                         .located(DataState::kOnDevice)
                         .when(Timing::kStored)
                         .with_consent(ConsentKind::kOwnerConsent)});
  t.steps.push_back({"collect per-flow rates at the suspect's ISP",
                     Scenario{}
                         .acquiring(DataKind::kAddressing)
                         .located(DataState::kInTransit)
                         .when(Timing::kRealTime)});
  return t;
}

// A naive technique that intercepts full content.
Technique naive_technique() {
  Technique t;
  t.name = "full-content interception";
  t.steps.push_back({"sniff entire packets at the ISP",
                     Scenario{}
                         .acquiring(DataKind::kContent)
                         .located(DataState::kInTransit)
                         .when(Timing::kRealTime)});
  return t;
}

TEST(AnalysisTest, P2pTechniqueWorkableWithoutProcess) {
  // §IV.A: "such kinds of attack can be directly used in criminal
  // investigations ahead of a warrant/court order/subpoena."
  const auto report = analyzer.analyze(p2p_technique());
  EXPECT_EQ(report.feasibility, Feasibility::kWorkableWithoutProcess)
      << report.summary();
  EXPECT_EQ(report.bottleneck, ProcessKind::kNone);
}

TEST(AnalysisTest, WatermarkTechniqueWorkableWithCourtOrder) {
  // §IV.B: "workable and legal ... a court order should be good enough."
  const auto report = analyzer.analyze(watermark_technique());
  EXPECT_EQ(report.feasibility, Feasibility::kWorkableWithProcess)
      << report.summary();
  EXPECT_EQ(report.bottleneck, ProcessKind::kCourtOrder);
  EXPECT_EQ(report.bottleneck_step, "collect per-flow rates at the suspect's ISP");
}

TEST(AnalysisTest, FullContentInterceptionIsImpractical) {
  const auto report = analyzer.analyze(naive_technique());
  EXPECT_EQ(report.feasibility, Feasibility::kImpractical);
  EXPECT_EQ(report.bottleneck, ProcessKind::kWiretapOrder);
}

TEST(AnalysisTest, WiretapBoundStepGetsRedesignGuidance) {
  const auto report = analyzer.analyze(naive_technique());
  bool has_pivot_advice = false;
  for (const auto& r : report.recommendations) {
    has_pivot_advice =
        has_pivot_advice || r.find("addressing/size") != std::string::npos;
  }
  EXPECT_TRUE(has_pivot_advice) << report.summary();
}

TEST(AnalysisTest, StepsAreAnalyzedInOrderWithDeterminations) {
  const auto report = analyzer.analyze(watermark_technique());
  ASSERT_EQ(report.steps.size(), 2u);
  EXPECT_EQ(report.steps[0].step_name,
            "modulate seized server's transmission rate");
  EXPECT_FALSE(report.steps[0].determination.needs_process);
  EXPECT_TRUE(report.steps[1].determination.needs_process);
}

TEST(AnalysisTest, EmptyTechniqueIsTriviallyProcessFree) {
  const auto report = analyzer.analyze(Technique{"noop", {}});
  EXPECT_EQ(report.feasibility, Feasibility::kWorkableWithoutProcess);
  EXPECT_TRUE(report.steps.empty());
}

TEST(AnalysisTest, SummaryContainsVerdictsAndBottleneck) {
  const auto report = analyzer.analyze(watermark_technique());
  const auto s = report.summary();
  EXPECT_NE(s.find("workable with warrant/court order/subpoena"),
            std::string::npos);
  EXPECT_NE(s.find("court order"), std::string::npos);
  EXPECT_NE(s.find("No need"), std::string::npos);
}

TEST(AnalysisTest, BottleneckIsMaxAcrossSteps) {
  Technique t;
  t.name = "mixed";
  t.steps.push_back({"free", table1::scene(10).scenario});
  t.steps.push_back({"subpoena-bound",
                     Scenario{}
                         .acquiring(DataKind::kSubscriberRecords)
                         .located(DataState::kStoredAtProvider)
                         .when(Timing::kStored)
                         .at_provider(ProviderClass::kEcs)});
  t.steps.push_back({"warrant-bound",
                     Scenario{}
                         .acquiring(DataKind::kContent)
                         .located(DataState::kOnDevice)
                         .when(Timing::kStored)});
  const auto report = analyzer.analyze(t);
  EXPECT_EQ(report.bottleneck, ProcessKind::kSearchWarrant);
  EXPECT_EQ(report.bottleneck_step, "warrant-bound");
  EXPECT_EQ(report.feasibility, Feasibility::kWorkableWithProcess);
}

}  // namespace
}  // namespace lexfor::legal
