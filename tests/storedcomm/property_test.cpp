// Property sweeps over the stored-communications provider: randomized
// mail corpora, invariants the SCA model must keep regardless of
// workload shape.

#include <gtest/gtest.h>

#include "storedcomm/provider.h"
#include "util/rng.h"

namespace lexfor::storedcomm {
namespace {

using legal::GrantedAuthority;
using legal::LegalProcess;
using legal::ProcessKind;

GrantedAuthority auth(ProcessKind kind) {
  LegalProcess p;
  p.id = ProcessId{1};
  p.kind = kind;
  p.issued_at = SimTime::zero();
  return GrantedAuthority{p};
}

struct Corpus {
  Provider provider;
  AccountId account;
  std::vector<MessageId> messages;

  Corpus(ProviderPublicity publicity, std::uint64_t seed, std::size_t n)
      : provider("prov", publicity),
        account(provider.create_account("u@prov", {"U", "addr", "pay"})) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = provider
                          .deliver("u@prov", "peer", "m" + std::to_string(i),
                                   Bytes(rng.uniform(200), 0x42),
                                   SimTime::from_sec(static_cast<double>(i)))
                          .value();
      messages.push_back(id);
      if (rng.bernoulli(0.5)) {
        (void)provider.open_message(id, SimTime::from_sec(1000.0 + i));
      }
      if (rng.bernoulli(0.2)) {
        (void)provider.delete_message(id, SimTime::from_sec(2000.0 + i));
      }
    }
  }
};

class ProviderPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ProviderPropertyTest, ClassificationIsTotalAndLawful) {
  const auto [publicity_idx, seed] = GetParam();
  const auto publicity = publicity_idx == 0 ? ProviderPublicity::kPublic
                                            : ProviderPublicity::kNonPublic;
  Corpus c(publicity, static_cast<std::uint64_t>(seed), 40);

  for (const auto id : c.messages) {
    const auto cls = c.provider.classify(id);
    const auto* m = c.provider.find_message(id);
    ASSERT_NE(m, nullptr);
    switch (m->state) {
      case MessageState::kAwaitingRetrieval:
        EXPECT_EQ(cls, legal::ProviderClass::kEcs);
        break;
      case MessageState::kOpened:
        EXPECT_EQ(cls, publicity == ProviderPublicity::kPublic
                           ? legal::ProviderClass::kRcs
                           : legal::ProviderClass::kNonPublic);
        break;
      case MessageState::kDeleted:
        EXPECT_EQ(cls, legal::ProviderClass::kNotAProvider);
        break;
    }
  }
}

TEST_P(ProviderPropertyTest, ContentAlwaysNeedsAtLeastAWarrant) {
  const auto [publicity_idx, seed] = GetParam();
  const auto publicity = publicity_idx == 0 ? ProviderPublicity::kPublic
                                            : ProviderPublicity::kNonPublic;
  Corpus c(publicity, static_cast<std::uint64_t>(seed), 25);
  for (const auto id : c.messages) {
    const auto det = c.provider.required_process(DisclosureKind::kContent, id);
    EXPECT_TRUE(legal::satisfies(det.required_process,
                                 legal::ProcessKind::kSearchWarrant));
  }
}

TEST_P(ProviderPropertyTest, DisclosureMonotoneInAuthority) {
  // If a weaker instrument compels a disclosure kind, every stronger
  // instrument does too.
  const auto [publicity_idx, seed] = GetParam();
  const auto publicity = publicity_idx == 0 ? ProviderPublicity::kPublic
                                            : ProviderPublicity::kNonPublic;
  Corpus c(publicity, static_cast<std::uint64_t>(seed), 10);

  const ProcessKind ladder[] = {ProcessKind::kSubpoena, ProcessKind::kCourtOrder,
                                ProcessKind::kSearchWarrant,
                                ProcessKind::kWiretapOrder};
  for (const auto kind :
       {DisclosureKind::kBasicSubscriber, DisclosureKind::kTransactionalRecords,
        DisclosureKind::kContent}) {
    bool previously_ok = false;
    for (const auto held : ladder) {
      const bool ok =
          c.provider.compelled_disclosure(kind, c.account, auth(held),
                                          SimTime::from_sec(5000))
              .ok();
      EXPECT_TRUE(!previously_ok || ok)
          << "disclosure became unavailable with a stronger instrument";
      previously_ok = ok;
    }
    // The top of the ladder always compels.
    EXPECT_TRUE(previously_ok);
  }
}

TEST_P(ProviderPropertyTest, MailboxNeverShowsDeletedMessages) {
  const auto [publicity_idx, seed] = GetParam();
  const auto publicity = publicity_idx == 0 ? ProviderPublicity::kPublic
                                            : ProviderPublicity::kNonPublic;
  Corpus c(publicity, static_cast<std::uint64_t>(seed), 40);
  for (const auto id : c.provider.mailbox(c.account)) {
    const auto* m = c.provider.find_message(id);
    ASSERT_NE(m, nullptr);
    EXPECT_NE(m->state, MessageState::kDeleted);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, ProviderPropertyTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace lexfor::storedcomm
