#include "storedcomm/provider.h"

#include <gtest/gtest.h>

namespace lexfor::storedcomm {
namespace {

using legal::GrantedAuthority;
using legal::LegalProcess;
using legal::ProcessKind;
using legal::ProviderClass;

GrantedAuthority authority(ProcessKind kind) {
  LegalProcess p;
  p.id = ProcessId{9};
  p.kind = kind;
  p.issued_at = SimTime::zero();
  return GrantedAuthority{p};
}

struct MailFixture {
  Provider gmail{"gmail", ProviderPublicity::kPublic};
  Provider university{"cs.charlie.edu", ProviderPublicity::kNonPublic};
  AccountId bob = gmail.create_account(
      "bob@gmail.com", {"Bob B.", "1 Main St", "visa-1234"});
  AccountId alice = university.create_account(
      "alice@cs.charlie.edu", {"Alice A.", "2 Campus Way", "payroll"});
};

TEST(ProviderTest, DeliveryCreatesAwaitingMessage) {
  MailFixture f;
  const auto id = f.gmail
                      .deliver("bob@gmail.com", "alice@cs.charlie.edu",
                               "hello", to_bytes("hi bob"), SimTime::zero())
                      .value();
  const auto* m = f.gmail.find_message(id);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->state, MessageState::kAwaitingRetrieval);
  EXPECT_EQ(f.gmail.mailbox(f.bob).size(), 1u);
}

TEST(ProviderTest, DeliveryToUnknownAddressFails) {
  MailFixture f;
  EXPECT_EQ(f.gmail
                .deliver("nobody@gmail.com", "x", "s", {}, SimTime::zero())
                .status()
                .code(),
            StatusCode::kNotFound);
}

// The paper's Alice/Bob classification walk-through, mechanized.
TEST(ScaLifecycleTest, UnretrievedMailIsEcsEverywhere) {
  MailFixture f;
  const auto at_gmail = f.gmail
                            .deliver("bob@gmail.com", "alice", "s",
                                     to_bytes("b"), SimTime::zero())
                            .value();
  const auto at_univ = f.university
                           .deliver("alice@cs.charlie.edu", "bob", "re",
                                    to_bytes("a"), SimTime::zero())
                           .value();
  EXPECT_EQ(f.gmail.classify(at_gmail), ProviderClass::kEcs);
  EXPECT_EQ(f.university.classify(at_univ), ProviderClass::kEcs);
}

TEST(ScaLifecycleTest, OpenedMailAtPublicProviderBecomesRcs) {
  MailFixture f;
  const auto id = f.gmail
                      .deliver("bob@gmail.com", "alice", "s", to_bytes("b"),
                               SimTime::zero())
                      .value();
  ASSERT_TRUE(f.gmail.open_message(id, SimTime::from_sec(60)).ok());
  EXPECT_EQ(f.gmail.classify(id), ProviderClass::kRcs);
}

TEST(ScaLifecycleTest, OpenedMailAtNonPublicProviderIsNeither) {
  MailFixture f;
  const auto id = f.university
                      .deliver("alice@cs.charlie.edu", "bob", "re",
                               to_bytes("a"), SimTime::zero())
                      .value();
  ASSERT_TRUE(f.university.open_message(id, SimTime::from_sec(60)).ok());
  EXPECT_EQ(f.university.classify(id), ProviderClass::kNonPublic);
  // And the required process falls to the Fourth Amendment: warrant, with
  // the SCA no longer in the statute list.
  const auto det =
      f.university.required_process(DisclosureKind::kContent, id);
  EXPECT_EQ(det.required_process, ProcessKind::kSearchWarrant);
  const auto& statutes = det.governing_statutes;
  EXPECT_EQ(std::count(statutes.begin(), statutes.end(),
                       legal::Statute::kStoredCommunicationsAct),
            0);
}

TEST(ScaLifecycleTest, ContentAlwaysRequiresWarrant) {
  MailFixture f;
  const auto id = f.gmail
                      .deliver("bob@gmail.com", "alice", "s", to_bytes("b"),
                               SimTime::zero())
                      .value();
  const auto det = f.gmail.required_process(DisclosureKind::kContent, id);
  EXPECT_EQ(det.required_process, ProcessKind::kSearchWarrant);
}

TEST(ScaLadderTest, SubscriberRecordsCompelledBySubpoena) {
  MailFixture f;
  const auto r = f.gmail.compelled_disclosure(
      DisclosureKind::kBasicSubscriber, f.bob,
      authority(ProcessKind::kSubpoena), SimTime::zero());
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r.value().subscriber.has_value());
  EXPECT_EQ(r.value().subscriber->name, "Bob B.");
}

TEST(ScaLadderTest, SubscriberRecordsRefusedWithoutProcess) {
  MailFixture f;
  const auto r = f.gmail.compelled_disclosure(
      DisclosureKind::kBasicSubscriber, f.bob, GrantedAuthority{},
      SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(ScaLadderTest, TransactionalRecordsNeedCourtOrder) {
  MailFixture f;
  f.gmail.log_transaction(f.bob, "login from 10.0.0.1");
  const auto denied = f.gmail.compelled_disclosure(
      DisclosureKind::kTransactionalRecords, f.bob,
      authority(ProcessKind::kSubpoena), SimTime::zero());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  const auto granted = f.gmail.compelled_disclosure(
      DisclosureKind::kTransactionalRecords, f.bob,
      authority(ProcessKind::kCourtOrder), SimTime::zero());
  ASSERT_TRUE(granted.ok());
  ASSERT_EQ(granted.value().transaction_log.size(), 1u);
}

TEST(ScaLadderTest, ContentNeedsWarrantNotCourtOrder) {
  MailFixture f;
  (void)f.gmail
      .deliver("bob@gmail.com", "alice", "s", to_bytes("body"), SimTime::zero())
      .value();
  const auto denied = f.gmail.compelled_disclosure(
      DisclosureKind::kContent, f.bob, authority(ProcessKind::kCourtOrder),
      SimTime::zero());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  const auto granted = f.gmail.compelled_disclosure(
      DisclosureKind::kContent, f.bob, authority(ProcessKind::kSearchWarrant),
      SimTime::zero());
  ASSERT_TRUE(granted.ok());
  ASSERT_EQ(granted.value().messages.size(), 1u);
  EXPECT_EQ(to_string(granted.value().messages[0].body), "body");
}

TEST(VoluntaryDisclosureTest, PublicProviderMayNotVolunteerToGovernment) {
  MailFixture f;
  const auto r = f.gmail.voluntary_disclosure_to_government(
      DisclosureKind::kContent, f.bob, /*emergency=*/false,
      /*user_consent=*/false);
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(VoluntaryDisclosureTest, EmergencyUnlocksVoluntaryDisclosure) {
  MailFixture f;
  EXPECT_TRUE(f.gmail
                  .voluntary_disclosure_to_government(
                      DisclosureKind::kContent, f.bob, /*emergency=*/true,
                      /*user_consent=*/false)
                  .ok());
}

TEST(VoluntaryDisclosureTest, ConsentUnlocksVoluntaryDisclosure) {
  MailFixture f;
  EXPECT_TRUE(f.gmail
                  .voluntary_disclosure_to_government(
                      DisclosureKind::kBasicSubscriber, f.bob,
                      /*emergency=*/false, /*user_consent=*/true)
                  .ok());
}

TEST(VoluntaryDisclosureTest, NonPublicProviderDisclosesFreely) {
  MailFixture f;
  EXPECT_TRUE(f.university
                  .voluntary_disclosure_to_government(
                      DisclosureKind::kContent, f.alice, /*emergency=*/false,
                      /*user_consent=*/false)
                  .ok());
}

TEST(ProviderTest, DeletedMessagesLeaveTheMailbox) {
  MailFixture f;
  const auto id = f.gmail
                      .deliver("bob@gmail.com", "a", "s", to_bytes("x"),
                               SimTime::zero())
                      .value();
  ASSERT_TRUE(f.gmail.delete_message(id).ok());
  EXPECT_TRUE(f.gmail.mailbox(f.bob).empty());
  EXPECT_EQ(f.gmail.open_message(id, SimTime::zero()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProviderTest, StrongerProcessSatisfiesWeakerRequirement) {
  MailFixture f;
  EXPECT_TRUE(f.gmail
                  .compelled_disclosure(DisclosureKind::kBasicSubscriber,
                                        f.bob,
                                        authority(ProcessKind::kSearchWarrant),
                                        SimTime::zero())
                  .ok());
}

}  // namespace
}  // namespace lexfor::storedcomm

// --- § 2703(f) preservation requests ----------------------------------

namespace lexfor::storedcomm {
namespace {

TEST(PreservationTest, RequestNeedsKnownAccount) {
  MailFixture f;
  EXPECT_EQ(f.gmail.preservation_request(AccountId{99}, SimTime::zero()).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(f.gmail.preservation_request(f.bob, SimTime::zero()).ok());
}

TEST(PreservationTest, HoldExpiresAfterDuration) {
  MailFixture f;
  ASSERT_TRUE(f.gmail
                  .preservation_request(f.bob, SimTime::zero(),
                                        SimDuration::from_sec(100.0))
                  .ok());
  EXPECT_TRUE(f.gmail.preservation_active(f.bob, SimTime::from_sec(50)));
  EXPECT_FALSE(f.gmail.preservation_active(f.bob, SimTime::from_sec(101)));
}

TEST(PreservationTest, DeletionUnderHoldRetainsForDisclosure) {
  MailFixture f;
  const auto msg = f.gmail
                       .deliver("bob@gmail.com", "a", "s", to_bytes("keep me"),
                                SimTime::zero())
                       .value();
  ASSERT_TRUE(f.gmail.preservation_request(f.bob, SimTime::from_sec(10)).ok());
  ASSERT_TRUE(f.gmail.delete_message(msg, SimTime::from_sec(20)).ok());

  // Gone from the user's mailbox...
  EXPECT_TRUE(f.gmail.mailbox(f.bob).empty());
  // ...but produced under a warrant.
  const auto r = f.gmail.compelled_disclosure(
      DisclosureKind::kContent, f.bob, authority(ProcessKind::kSearchWarrant),
      SimTime::from_sec(30));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().messages.size(), 1u);
  EXPECT_TRUE(r.value().messages[0].retained_under_hold);
}

TEST(PreservationTest, DeletionWithoutHoldIsGoneForGood) {
  MailFixture f;
  const auto msg = f.gmail
                       .deliver("bob@gmail.com", "a", "s", to_bytes("lost"),
                                SimTime::zero())
                       .value();
  ASSERT_TRUE(f.gmail.delete_message(msg, SimTime::from_sec(20)).ok());
  const auto r = f.gmail.compelled_disclosure(
      DisclosureKind::kContent, f.bob, authority(ProcessKind::kSearchWarrant),
      SimTime::from_sec(30));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().messages.empty());
}

TEST(PreservationTest, DeletionAfterHoldExpiryIsNotRetained) {
  MailFixture f;
  const auto msg = f.gmail
                       .deliver("bob@gmail.com", "a", "s", to_bytes("late"),
                                SimTime::zero())
                       .value();
  ASSERT_TRUE(f.gmail
                  .preservation_request(f.bob, SimTime::zero(),
                                        SimDuration::from_sec(100.0))
                  .ok());
  ASSERT_TRUE(f.gmail.delete_message(msg, SimTime::from_sec(500)).ok());
  const auto r = f.gmail.compelled_disclosure(
      DisclosureKind::kContent, f.bob, authority(ProcessKind::kSearchWarrant),
      SimTime::from_sec(600));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().messages.empty());
}

}  // namespace
}  // namespace lexfor::storedcomm
