#include "crypto/crc32.h"

#include <gtest/gtest.h>

namespace lexfor::crypto {
namespace {

TEST(Crc32Test, StandardCheckValue) {
  // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
  const Bytes msg = to_bytes("123456789");
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) {
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("packet payload for checksumming");
  std::uint32_t state = crc32_init();
  state = crc32_update(state, msg.data(), 10);
  state = crc32_update(state, msg.data() + 10, msg.size() - 10);
  EXPECT_EQ(crc32_final(state), crc32(msg));
}

TEST(Crc32Test, SingleBitChangeChangesCrc) {
  Bytes a = to_bytes("evidence");
  Bytes b = a;
  b[0] ^= 0x01;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32Test, KnownVectorHello) {
  EXPECT_EQ(crc32(to_bytes("hello")), 0x3610A686u);
}

}  // namespace
}  // namespace lexfor::crypto
