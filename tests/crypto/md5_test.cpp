#include "crypto/md5.h"

#include <gtest/gtest.h>

namespace lexfor::crypto {
namespace {

// RFC 1321 appendix test suite.
TEST(Md5Test, EmptyString) {
  EXPECT_EQ(Md5::hex(""), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5Test, A) {
  EXPECT_EQ(Md5::hex("a"), "0cc175b9c0f1b6a831c399e269772661");
}

TEST(Md5Test, Abc) {
  EXPECT_EQ(Md5::hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, MessageDigest) {
  EXPECT_EQ(Md5::hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5Test, Alphabet) {
  EXPECT_EQ(Md5::hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5Test, AlphaNumeric) {
  EXPECT_EQ(
      Md5::hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5Test, Digits) {
  EXPECT_EQ(Md5::hex("1234567890123456789012345678901234567890123456789012345"
                     "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, StreamingEqualsOneShot) {
  const std::string msg(300, 'q');
  Md5 streaming;
  for (std::size_t i = 0; i < msg.size(); i += 11) {
    streaming.update(msg.substr(i, 11));
  }
  const auto a = streaming.finish();
  const auto b = Md5::hash(Bytes(msg.begin(), msg.end()));
  EXPECT_EQ(a, b);
}

TEST(Md5Test, ResetAllowsReuse) {
  Md5 h;
  h.update("something else entirely");
  (void)h.finish();
  h.reset();
  h.update("abc");
  const auto d = h.finish();
  EXPECT_EQ(to_hex(d.data(), d.size()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, ExactBlockBoundary) {
  const std::string msg(64, 'b');
  Md5 a;
  a.update(msg);
  Md5 b;
  b.update(msg.substr(0, 32));
  b.update(msg.substr(32));
  EXPECT_EQ(a.finish(), b.finish());
}

}  // namespace
}  // namespace lexfor::crypto
