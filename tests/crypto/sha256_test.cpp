#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace lexfor::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactlyOneBlock) {
  // 64 bytes: exercises the padding path that adds a full extra block.
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  const auto d = h.finish();
  Sha256 h2;
  for (char c : msg) h2.update(std::string(1, c));
  const auto d2 = h2.finish();
  EXPECT_EQ(d, d2);
}

TEST(Sha256Test, StreamingEqualsOneShot) {
  const std::string msg =
      "The right of the people to be secure in their persons, houses, "
      "papers, and effects, against unreasonable searches and seizures, "
      "shall not be violated";
  Sha256 streaming;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    streaming.update(msg.substr(i, 7));
  }
  const auto a = streaming.finish();
  const auto b = Sha256::hash(msg);
  EXPECT_EQ(a, b);
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.update("first");
  (void)h.finish();
  h.reset();
  h.update("abc");
  const auto d = h.finish();
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::hash("evidence-a"), Sha256::hash("evidence-b"));
}

TEST(Sha256Test, BytesOverloadMatchesStringOverload) {
  const std::string s = "chain of custody";
  EXPECT_EQ(Sha256::hash(s), Sha256::hash(to_bytes(s)));
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256Test, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  const auto d = hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  const auto d = hmac_sha256(key, msg);
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const auto d = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(d.data(), d.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, KeySensitivity) {
  const Bytes m = to_bytes("custody record");
  EXPECT_NE(hmac_sha256(to_bytes("key-1"), m), hmac_sha256(to_bytes("key-2"), m));
}

}  // namespace
}  // namespace lexfor::crypto
