#include "tornet/traceback.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

namespace lexfor::tornet {
namespace {

TracebackConfig easy_config() {
  TracebackConfig cfg;
  cfg.pn_degree = 9;          // 511 chips
  cfg.chip_ms = 400.0;
  cfg.depth = 0.35;
  cfg.base_rate_pps = 120.0;
  cfg.num_decoys = 6;
  cfg.seed = 101;
  return cfg;
}

TEST(TracebackTest, CollectionScenarioNeedsOnlyCourtOrder) {
  // §IV.B: rate collection at the ISP is non-content — a court order,
  // not a wiretap order.
  const auto d = legal::ComplianceEngine{}.evaluate(collection_scenario());
  EXPECT_TRUE(d.needs_process);
  EXPECT_EQ(d.required_process, legal::ProcessKind::kCourtOrder) << d.report();
}

TEST(TracebackTest, SuspectDetectedDecoysClean) {
  const auto r = run_traceback(easy_config());
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& result = r.value();
  EXPECT_TRUE(result.suspect_detected)
      << "suspect corr=" << result.suspect_correlation;
  EXPECT_EQ(result.decoys_flagged, 0u)
      << "max decoy corr=" << result.max_decoy_correlation;
  EXPECT_GT(result.suspect_correlation, result.max_decoy_correlation);
}

TEST(TracebackTest, ResultContainsAllFlows) {
  auto cfg = easy_config();
  cfg.num_decoys = 4;
  const auto result = run_traceback(cfg).value();
  ASSERT_EQ(result.flows.size(), 5u);
  EXPECT_TRUE(result.flows[0].is_suspect);
  for (std::size_t i = 1; i < result.flows.size(); ++i) {
    EXPECT_FALSE(result.flows[i].is_suspect);
  }
}

TEST(TracebackTest, LegalityDeterminationIsEmbedded) {
  const auto result = run_traceback(easy_config()).value();
  EXPECT_TRUE(result.collection_legality.needs_process);
  EXPECT_EQ(result.collection_legality.required_process,
            legal::ProcessKind::kCourtOrder);
}

TEST(TracebackTest, DeterministicForFixedSeed) {
  const auto a = run_traceback(easy_config()).value();
  const auto b = run_traceback(easy_config()).value();
  EXPECT_DOUBLE_EQ(a.suspect_correlation, b.suspect_correlation);
  EXPECT_EQ(a.decoys_flagged, b.decoys_flagged);
}

TEST(TracebackTest, DetectThreadCountDoesNotChangeResults) {
  // The despread fan-out merges in input order; any pool size must
  // yield bit-identical verdicts.
  auto serial = easy_config();
  serial.detect_threads = 1;
  auto fanned = easy_config();
  fanned.detect_threads = 4;
  const auto a = run_traceback(serial).value();
  const auto b = run_traceback(fanned).value();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].detection.correlation,
                     b.flows[i].detection.correlation);
    EXPECT_EQ(a.flows[i].detection.detected, b.flows[i].detection.detected);
  }
  EXPECT_EQ(a.decoys_flagged, b.decoys_flagged);
}

TEST(TracebackTest, HigherDepthRaisesCorrelation) {
  auto weak = easy_config();
  weak.depth = 0.1;
  weak.num_decoys = 0;
  auto strong = easy_config();
  strong.depth = 0.5;
  strong.num_decoys = 0;
  const auto r_weak = run_traceback(weak).value();
  const auto r_strong = run_traceback(strong).value();
  EXPECT_GT(r_strong.suspect_correlation, r_weak.suspect_correlation);
}

TEST(TracebackTest, InvalidPnDegreeFails) {
  auto cfg = easy_config();
  cfg.pn_degree = 99;
  EXPECT_FALSE(run_traceback(cfg).ok());
}

TEST(TracebackTest, HeavyJitterDegradesButLongCodeRecovers) {
  // Ablation in miniature: crank relay jitter; a short code fails more
  // often than a long one.
  auto shorter = easy_config();
  shorter.pn_degree = 5;  // 31 chips
  shorter.network.relay_jitter_ms = 150.0;
  shorter.num_decoys = 0;
  auto longer = shorter;
  longer.pn_degree = 10;  // 1023 chips

  const auto r_short = run_traceback(shorter).value();
  const auto r_long = run_traceback(longer).value();
  EXPECT_GE(r_long.suspect_correlation / r_long.flows[0].detection.threshold,
            r_short.suspect_correlation / r_short.flows[0].detection.threshold);
}

TEST(TracebackTest, StreamingTracebackIsBitIdenticalToBatch) {
  // The streaming variant consumes the SAME simulated bins one at a
  // time through stream::OnlineDespreader; every per-flow correlation
  // and threshold must match the batch oracle bit for bit.
  auto cfg = easy_config();
  cfg.pn_degree = 7;
  cfg.num_decoys = 4;
  const auto batch = run_traceback(cfg).value();
  const auto streaming = run_streaming_traceback(cfg).value();

  ASSERT_EQ(streaming.flows.size(), batch.flows.size());
  for (std::size_t i = 0; i < batch.flows.size(); ++i) {
    EXPECT_EQ(streaming.flows[i].is_suspect, batch.flows[i].is_suspect);
    EXPECT_EQ(streaming.flows[i].detection.detected,
              batch.flows[i].detection.detected);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  streaming.flows[i].detection.correlation),
              std::bit_cast<std::uint64_t>(batch.flows[i].detection.correlation))
        << "flow " << i;
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(streaming.flows[i].detection.threshold),
        std::bit_cast<std::uint64_t>(batch.flows[i].detection.threshold));
  }
  EXPECT_EQ(streaming.suspect_detected, batch.suspect_detected);
  EXPECT_EQ(streaming.decoys_flagged, batch.decoys_flagged);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(streaming.suspect_correlation),
            std::bit_cast<std::uint64_t>(batch.suspect_correlation));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(streaming.max_decoy_correlation),
            std::bit_cast<std::uint64_t>(batch.max_decoy_correlation));
}

TEST(TracebackTest, SinglePassMatchesPerSuspectResimulation) {
  // The tentpole claim: tapping every candidate during ONE simulation
  // pass (TapRegistry fan-out) returns exactly what re-simulating per
  // suspect returns — for every detect thread count — while doing a
  // constant number of passes.
  for (const unsigned threads : {0u, 1u, 2u, 4u}) {
    auto cfg = easy_config();
    cfg.pn_degree = 7;
    cfg.num_decoys = 5;
    cfg.detect_threads = threads;
    const auto single = run_streaming_traceback(cfg).value();
    auto ref_cfg = cfg;
    ref_cfg.resimulate_per_suspect = true;
    const auto reference = run_streaming_traceback(ref_cfg).value();

    EXPECT_EQ(single.sim_passes, 1u);
    EXPECT_EQ(reference.sim_passes, 1 + cfg.num_decoys);
    EXPECT_EQ(single.flows_simulated, reference.flows_simulated);
    ASSERT_EQ(single.flows.size(), reference.flows.size());
    for (std::size_t i = 0; i < single.flows.size(); ++i) {
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(single.flows[i].detection.correlation),
          std::bit_cast<std::uint64_t>(
              reference.flows[i].detection.correlation))
          << "flow " << i << " threads " << threads;
      EXPECT_EQ(single.flows[i].detection.detected,
                reference.flows[i].detection.detected);
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(single.suspect_correlation),
              std::bit_cast<std::uint64_t>(reference.suspect_correlation));
    EXPECT_EQ(single.decoys_flagged, reference.decoys_flagged);
  }
}

TEST(TracebackTest, SimPassCountIsIndependentOfSuspectCount) {
  // The acceptance gate in its simplest form: more candidates must not
  // mean more simulation passes.
  for (const std::size_t decoys : {std::size_t{2}, std::size_t{8}}) {
    auto cfg = easy_config();
    cfg.pn_degree = 7;
    cfg.num_decoys = decoys;
    const auto r = run_streaming_traceback(cfg).value();
    EXPECT_EQ(r.sim_passes, 1u) << decoys << " decoys";
    EXPECT_EQ(r.flows_simulated, 1 + decoys);
  }
}

TEST(TracebackTest, PerFlowSubStreamsAreIndependentOfFlowCount) {
  // Each flow draws from Rng::sub_stream(seed, flow), so adding decoys
  // must not perturb the flows that already existed.  (This is what
  // makes the sub-stream reseeding an improvement, not just a change —
  // see EXPERIMENTS.md.)
  auto small = easy_config();
  small.pn_degree = 7;
  small.num_decoys = 2;
  auto large = small;
  large.num_decoys = 6;

  const auto a = run_traceback(small).value();
  const auto b = run_traceback(large).value();
  ASSERT_EQ(a.flows.size(), 3u);
  ASSERT_EQ(b.flows.size(), 7u);
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.flows[i].detection.correlation),
              std::bit_cast<std::uint64_t>(b.flows[i].detection.correlation))
        << "flow " << i;
  }
}

}  // namespace
}  // namespace lexfor::tornet
