// Multi-flow (Gold-code) traceback: many accounts marked concurrently,
// one observed client identified by which code despreads.

#include <gtest/gtest.h>

#include "tornet/traceback.h"

namespace lexfor::tornet {
namespace {

MultiflowConfig easy() {
  MultiflowConfig cfg;
  cfg.gold_degree = 9;
  cfg.num_accounts = 8;
  cfg.true_account = 3;
  cfg.chip_ms = 400.0;
  cfg.depth = 0.35;
  cfg.base_rate_pps = 120.0;
  cfg.seed = 11;
  return cfg;
}

TEST(MultiflowTest, IdentifiesTheTrueAccount) {
  const auto r = run_multiflow_traceback(easy()).value();
  EXPECT_TRUE(r.correct) << "identified " << r.identified_account;
  EXPECT_TRUE(r.above_threshold);
  EXPECT_GT(r.margin, 0.2);
}

TEST(MultiflowTest, AllAccountCorrelationsReported) {
  const auto r = run_multiflow_traceback(easy()).value();
  ASSERT_EQ(r.correlations.size(), 8u);
  // The winner dominates every other account's despread.
  for (std::size_t a = 0; a < r.correlations.size(); ++a) {
    if (a == r.identified_account) continue;
    EXPECT_LT(r.correlations[a], r.correlations[r.identified_account]);
  }
}

TEST(MultiflowTest, WorksForEveryTrueAccount) {
  for (std::size_t target = 0; target < 8; ++target) {
    auto cfg = easy();
    cfg.true_account = target;
    cfg.seed = 100 + target;
    const auto r = run_multiflow_traceback(cfg).value();
    EXPECT_TRUE(r.correct) << "target " << target << " identified as "
                           << r.identified_account;
  }
}

TEST(MultiflowTest, RejectsOutOfRangeTarget) {
  auto cfg = easy();
  cfg.true_account = 99;
  EXPECT_FALSE(run_multiflow_traceback(cfg).ok());
}

TEST(MultiflowTest, RejectsUnsupportedGoldDegree) {
  auto cfg = easy();
  cfg.gold_degree = 8;  // no preferred pair
  EXPECT_FALSE(run_multiflow_traceback(cfg).ok());
}

TEST(MultiflowTest, ScalesToManyAccounts) {
  auto cfg = easy();
  cfg.num_accounts = 64;
  cfg.true_account = 41;
  cfg.seed = 21;
  const auto r = run_multiflow_traceback(cfg).value();
  EXPECT_TRUE(r.correct);
  EXPECT_TRUE(r.above_threshold);
}

TEST(MultiflowTest, DeterministicForSeed) {
  const auto a = run_multiflow_traceback(easy()).value();
  const auto b = run_multiflow_traceback(easy()).value();
  EXPECT_EQ(a.identified_account, b.identified_account);
  EXPECT_EQ(a.correlations, b.correlations);
}

TEST(MultiflowTest, DetectThreadCountDoesNotChangeResults) {
  // The per-account despread fan-out merges in account order: the
  // correlation vector — and therefore the argmax — is bit-identical
  // for any pool size.
  auto serial = easy();
  serial.detect_threads = 1;
  auto fanned = easy();
  fanned.detect_threads = 4;
  const auto a = run_multiflow_traceback(serial).value();
  const auto b = run_multiflow_traceback(fanned).value();
  EXPECT_EQ(a.correlations, b.correlations);
  EXPECT_EQ(a.identified_account, b.identified_account);
  EXPECT_DOUBLE_EQ(a.margin, b.margin);
}

TEST(MultiflowTest, HeavyJitterErodesMarginButNotCorrectness) {
  auto calm = easy();
  auto stormy = easy();
  stormy.network.relay_jitter_ms = 150.0;
  const auto r_calm = run_multiflow_traceback(calm).value();
  const auto r_stormy = run_multiflow_traceback(stormy).value();
  EXPECT_TRUE(r_calm.correct);
  EXPECT_TRUE(r_stormy.correct);
  EXPECT_GT(r_calm.margin, r_stormy.margin);
}

}  // namespace
}  // namespace lexfor::tornet
