#include "tornet/baseline.h"

#include <gtest/gtest.h>

namespace lexfor::tornet {
namespace {

PassiveConfig calm() {
  PassiveConfig cfg;
  cfg.window_sec = 0.5;
  cfg.observe_sec = 120.0;
  cfg.base_rate_pps = 120.0;
  cfg.num_decoys = 5;
  cfg.network.relay_jitter_ms = 20.0;
  cfg.seed = 3;
  return cfg;
}

TEST(PassiveTest, RejectsBadWindows) {
  auto cfg = calm();
  cfg.window_sec = 0.0;
  EXPECT_FALSE(run_passive_correlation(cfg).ok());
  cfg = calm();
  cfg.observe_sec = cfg.window_sec / 2;
  EXPECT_FALSE(run_passive_correlation(cfg).ok());
}

TEST(PassiveTest, SuspectCorrelatesAboveDecoysUnderLightJitter) {
  const auto r = run_passive_correlation(calm()).value();
  ASSERT_EQ(r.correlations.size(), 6u);
  EXPECT_TRUE(r.identified_correctly);
  EXPECT_GT(r.correlations[0], 0.3);
  EXPECT_GT(r.margin, 0.1);
}

TEST(PassiveTest, DecoyCorrelationsNearZero) {
  const auto r = run_passive_correlation(calm()).value();
  for (std::size_t i = 1; i < r.correlations.size(); ++i) {
    EXPECT_LT(std::abs(r.correlations[i]), 0.3) << "decoy " << i;
  }
}

TEST(PassiveTest, HeavyJitterErodesCorrelation) {
  auto heavy = calm();
  heavy.network.relay_jitter_ms = 600.0;  // >> window
  heavy.network.relay_batch_ms = 400.0;
  const auto r_calm = run_passive_correlation(calm()).value();
  const auto r_heavy = run_passive_correlation(heavy).value();
  EXPECT_LT(r_heavy.correlations[0], r_calm.correlations[0]);
}

TEST(PassiveTest, DeterministicForSeed) {
  const auto a = run_passive_correlation(calm()).value();
  const auto b = run_passive_correlation(calm()).value();
  EXPECT_EQ(a.correlations, b.correlations);
}

TEST(ComparisonTest, RejectsZeroTrials) {
  EXPECT_FALSE(run_baseline_comparison(TracebackConfig{}, 0).ok());
}

TEST(ComparisonTest, BothTechniquesSucceedInCalmConditions) {
  TracebackConfig cfg;
  cfg.pn_degree = 8;
  cfg.chip_ms = 400.0;
  cfg.depth = 0.35;
  cfg.num_decoys = 4;
  cfg.network.relay_jitter_ms = 20.0;
  cfg.seed = 5;
  const auto r = run_baseline_comparison(cfg, 4).value();
  EXPECT_GE(r.watermark_success_rate, 0.75);
  EXPECT_GE(r.passive_success_rate, 0.75);
  EXPECT_NEAR(r.observation_sec, 255 * 0.4, 1e-9);
}

TEST(ComparisonTest, WatermarkBeatsPassiveUnderHeavyMixing) {
  // The paper's claim: the active method is "more effective than other
  // methods".  Under batching/jitter comparable to the sampling window,
  // natural-fluctuation correlation collapses while the designed mark
  // survives.
  TracebackConfig cfg;
  cfg.pn_degree = 9;
  cfg.chip_ms = 400.0;
  cfg.depth = 0.35;
  cfg.num_decoys = 6;
  cfg.network.relay_jitter_ms = 500.0;
  cfg.network.relay_batch_ms = 300.0;
  cfg.seed = 9;
  const auto r = run_baseline_comparison(cfg, 5).value();
  EXPECT_GT(r.watermark_success_rate, r.passive_success_rate);
  EXPECT_GE(r.watermark_success_rate, 0.8);
}

}  // namespace
}  // namespace lexfor::tornet
