#include "tornet/anonymity_network.h"

#include <gtest/gtest.h>

#include <set>

namespace lexfor::tornet {
namespace {

TEST(CircuitTest, BuildsDistinctRelays) {
  TorConfig cfg;
  cfg.num_relays = 10;
  cfg.circuit_length = 3;
  AnonymityNetwork net(cfg);
  Rng rng{1};
  const auto c = net.build_circuit(rng).value();
  EXPECT_EQ(c.relays.size(), 3u);
  const std::set<std::size_t> unique(c.relays.begin(), c.relays.end());
  EXPECT_EQ(unique.size(), 3u);
  for (const auto r : c.relays) EXPECT_LT(r, 10u);
}

TEST(CircuitTest, RejectsCircuitLongerThanRelayPool) {
  TorConfig cfg;
  cfg.num_relays = 2;
  cfg.circuit_length = 3;
  AnonymityNetwork net(cfg);
  Rng rng{1};
  EXPECT_EQ(net.build_circuit(rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CircuitTest, CircuitIdsAreUnique) {
  AnonymityNetwork net(TorConfig{});
  Rng rng{2};
  const auto a = net.build_circuit(rng).value();
  const auto b = net.build_circuit(rng).value();
  EXPECT_NE(a.id, b.id);
}

TEST(TransitTest, DelaysAreAtLeastBaseLatency) {
  TorConfig cfg;
  cfg.circuit_length = 3;
  cfg.hop_latency_ms = 25.0;
  AnonymityNetwork net(cfg);
  Rng rng{3};
  const auto c = net.build_circuit(rng).value();
  const std::vector<double> sends{0.0, 0.5, 1.0};
  const auto arrivals = net.transit(c, sends, rng);
  ASSERT_EQ(arrivals.size(), 3u);
  // Minimum added delay: 3 hops x 25 ms.
  EXPECT_GE(arrivals[0], 0.075);
}

TEST(TransitTest, OutputIsSorted) {
  AnonymityNetwork net(TorConfig{});
  Rng rng{4};
  const auto c = net.build_circuit(rng).value();
  std::vector<double> sends;
  for (int i = 0; i < 200; ++i) sends.push_back(i * 0.01);
  const auto arrivals = net.transit(c, sends, rng);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_EQ(arrivals.size(), sends.size());
}

TEST(TransitTest, RateEnvelopeSurvivesTheCircuit) {
  // The property §IV.B depends on: coarse rate structure persists through
  // relay jitter.  Send a burst then silence; the far side must show the
  // same epoch structure.
  AnonymityNetwork net(TorConfig{});
  Rng rng{5};
  const auto c = net.build_circuit(rng).value();
  std::vector<double> sends;
  for (int i = 0; i < 500; ++i) sends.push_back(i * 0.002);       // 0-1s busy
  for (int i = 0; i < 50; ++i) sends.push_back(2.0 + i * 0.02);   // 2-3s sparse
  const auto arrivals = net.transit(c, sends, rng);
  const auto bins = bin_arrivals(arrivals, 0.0, 0.5, 8);
  // Bins covering the busy second greatly exceed the sparse second.
  const auto busy = bins[0] + bins[1] + bins[2];
  const auto sparse = bins[4] + bins[5] + bins[6] + bins[7];
  EXPECT_GT(busy, sparse * 3);
}

TEST(PoissonTest, HomogeneousRateMatches) {
  Rng rng{6};
  const auto times = generate_modulated_poisson(200.0, 10.0, 1.0, nullptr, rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 2000.0, 200.0);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 10.0);
  }
}

TEST(PoissonTest, ModulationShapesTheRate) {
  Rng rng{7};
  // Rate doubles in the second half.
  const auto mult = [](double t) { return t < 5.0 ? 0.5 : 1.0; };
  const auto times = generate_modulated_poisson(200.0, 10.0, 1.0, mult, rng);
  std::size_t first_half = 0;
  for (const double t : times) first_half += t < 5.0;
  const std::size_t second_half = times.size() - first_half;
  EXPECT_NEAR(static_cast<double>(second_half) /
                  static_cast<double>(first_half),
              2.0, 0.4);
}

TEST(PoissonTest, DegenerateInputsYieldEmpty) {
  Rng rng{8};
  EXPECT_TRUE(generate_modulated_poisson(0.0, 10.0, 1.0, nullptr, rng).empty());
  EXPECT_TRUE(generate_modulated_poisson(10.0, 0.0, 1.0, nullptr, rng).empty());
}

TEST(BinArrivalsTest, CountsFallIntoCorrectWindows) {
  const std::vector<double> arrivals{0.1, 0.2, 1.1, 2.9, 5.0};
  const auto bins = bin_arrivals(arrivals, 0.0, 1.0, 4);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 1u);
  EXPECT_EQ(bins[2], 1u);
  EXPECT_EQ(bins[3], 0u);  // 5.0 is beyond the window
}

TEST(BinArrivalsTest, StartOffsetShiftsBins) {
  const std::vector<double> arrivals{1.1, 1.6};
  const auto bins = bin_arrivals(arrivals, 1.0, 0.5, 2);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[1], 1u);
  // Arrivals before the start are ignored.
  const auto bins2 = bin_arrivals({0.5}, 1.0, 0.5, 2);
  EXPECT_EQ(bins2[0] + bins2[1], 0u);
}

}  // namespace
}  // namespace lexfor::tornet
