// Three-way classification: source / trusted proxy / distant peer.

#include <gtest/gtest.h>

#include "anonp2p/investigator.h"

namespace lexfor::anonp2p {
namespace {

OverlayConfig separated() {
  OverlayConfig cfg;
  cfg.num_peers = 100;
  cfg.trusted_degree = 4;
  cfg.file_popularity = 0.15;
  cfg.local_lookup_ms = 15.0;
  cfg.hop_delay_ms = 150.0;  // class centers far apart
  cfg.max_forward_hops = 3;
  cfg.seed = 8;
  return cfg;
}

std::vector<PeerId> all_peers(const Overlay& overlay) {
  std::vector<PeerId> out;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) out.emplace_back(i);
  return out;
}

TEST(MulticlassTest, ThresholdsFollowDelayAnatomy) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{1};
  const auto report = inv.run_multiclass(30, rng);
  EXPECT_DOUBLE_EQ(report.source_threshold_ms, 15.0 + 150.0);
  EXPECT_DOUBLE_EQ(report.proxy_threshold_ms, 15.0 + 3 * 150.0);
  EXPECT_LT(report.source_threshold_ms, report.proxy_threshold_ms);
}

TEST(MulticlassTest, GroundTruthMatchesHopDistance) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{2};
  const auto report = inv.run_multiclass(10, rng);
  for (const auto& f : report.findings) {
    const auto hops = overlay.hops_to_nearest_holder(f.peer);
    if (hops.has_value() && *hops == 0) {
      EXPECT_EQ(f.truth, PeerRole::kSource);
    } else if (hops.has_value() && *hops == 1) {
      EXPECT_EQ(f.truth, PeerRole::kTrustedProxy);
    } else {
      EXPECT_EQ(f.truth, PeerRole::kDistant);
    }
  }
}

TEST(MulticlassTest, HighAccuracyWithSeparatedClasses) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{3};
  const auto report = inv.run_multiclass(40, rng);
  EXPECT_GT(report.accuracy, 0.85);
}

TEST(MulticlassTest, AllThreeClassesAppearInTheOverlay) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{4};
  const auto report = inv.run_multiclass(20, rng);
  int sources = 0, proxies = 0, distant = 0;
  for (const auto& f : report.findings) {
    sources += f.truth == PeerRole::kSource;
    proxies += f.truth == PeerRole::kTrustedProxy;
    distant += f.truth == PeerRole::kDistant;
  }
  EXPECT_GT(sources, 0);
  EXPECT_GT(proxies, 0);
  EXPECT_GT(distant, 0);
}

TEST(MulticlassTest, EmptyProbeSetYieldsZeroAccuracy) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, {});
  Rng rng{5};
  const auto report = inv.run_multiclass(10, rng);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_DOUBLE_EQ(report.accuracy, 0.0);
}

TEST(MulticlassTest, SourcesClassifiedBelowSourceThreshold) {
  Overlay overlay(separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{6};
  const auto report = inv.run_multiclass(40, rng);
  for (const auto& f : report.findings) {
    if (f.truth == PeerRole::kSource) {
      EXPECT_LE(f.median_delay_ms, report.source_threshold_ms)
          << "source peer " << f.peer.value();
    }
  }
}

}  // namespace
}  // namespace lexfor::anonp2p
