// Message-level query-flooding protocol.

#include <gtest/gtest.h>

#include "anonp2p/protocol.h"

namespace lexfor::anonp2p {
namespace {

OverlayConfig small_overlay() {
  OverlayConfig cfg;
  cfg.num_peers = 40;
  cfg.trusted_degree = 3;
  cfg.file_popularity = 0.2;
  cfg.local_lookup_ms = 10.0;
  cfg.hop_delay_ms = 30.0;
  cfg.seed = 14;
  return cfg;
}

TEST(FloodTest, QueryReachesHoldersAndReturnsResponse) {
  Overlay overlay(small_overlay());
  FloodSimulation sim(overlay, FloodConfig{});
  Rng rng{1};
  const auto outcome = sim.run_query(PeerId{0}, rng);
  EXPECT_TRUE(outcome.first_response_ms.has_value());
  EXPECT_GT(outcome.responders, 0u);
  EXPECT_GT(outcome.stats.queries_forwarded, 0u);
}

TEST(FloodTest, InvalidOriginYieldsEmptyOutcome) {
  Overlay overlay(small_overlay());
  FloodSimulation sim(overlay, FloodConfig{});
  Rng rng{2};
  const auto outcome = sim.run_query(PeerId{9999}, rng);
  EXPECT_FALSE(outcome.first_response_ms.has_value());
  EXPECT_EQ(outcome.responders, 0u);
}

TEST(FloodTest, ZeroTtlReachesOnlyTheOrigin) {
  OverlayConfig cfg = small_overlay();
  cfg.file_popularity = 0.0;  // one forced holder somewhere
  Overlay overlay(cfg);
  FloodConfig flood;
  flood.ttl = 0;
  FloodSimulation sim(overlay, flood);
  Rng rng{3};
  // Pick an origin that is not the holder.
  PeerId origin;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) {
    if (!overlay.holds_file(PeerId{i})) {
      origin = PeerId{i};
      break;
    }
  }
  const auto outcome = sim.run_query(origin, rng);
  EXPECT_EQ(outcome.stats.queries_forwarded, 0u);
  EXPECT_FALSE(outcome.first_response_ms.has_value());
}

TEST(FloodTest, LargerTtlFindsMoreResponders) {
  Overlay overlay(small_overlay());
  Rng rng1{4}, rng2{4};
  FloodConfig shallow;
  shallow.ttl = 1;
  FloodConfig deep;
  deep.ttl = 4;
  const auto near = FloodSimulation(overlay, shallow).run_query(PeerId{0}, rng1);
  const auto far = FloodSimulation(overlay, deep).run_query(PeerId{0}, rng2);
  EXPECT_GE(far.responders, near.responders);
  EXPECT_GT(far.stats.queries_forwarded, near.stats.queries_forwarded);
}

TEST(FloodTest, DuplicateSuppressionBoundsWork) {
  Overlay overlay(small_overlay());
  FloodSimulation sim(overlay, FloodConfig{});
  Rng rng{5};
  const auto outcome = sim.run_query(PeerId{0}, rng);
  // Every peer processes the query at most once: at most num_peers
  // non-duplicate handlings; the rest are suppressed.
  std::uint64_t handled_queries = 0;
  for (const auto c : outcome.stats.per_peer_messages) handled_queries += c;
  EXPECT_GT(outcome.stats.duplicates_dropped, 0u);
  EXPECT_GE(handled_queries, outcome.stats.duplicates_dropped);
}

TEST(FloodTest, MessageOverheadGrowsWithDegree) {
  OverlayConfig sparse = small_overlay();
  sparse.trusted_degree = 2;
  OverlayConfig dense = small_overlay();
  dense.trusted_degree = 8;
  Rng rng1{6}, rng2{6};
  const auto low =
      FloodSimulation(Overlay(sparse), FloodConfig{}).run_query(PeerId{0}, rng1);
  const auto high =
      FloodSimulation(Overlay(dense), FloodConfig{}).run_query(PeerId{0}, rng2);
  EXPECT_GT(high.stats.queries_forwarded, low.stats.queries_forwarded);
}

TEST(FloodTest, FirstResponseFasterWhenNeighborHolds) {
  // A origin whose direct neighbor holds the file answers much faster
  // than one whose nearest holder is far.
  OverlayConfig cfg = small_overlay();
  cfg.file_popularity = 0.25;
  Overlay overlay(cfg);
  Rng rng{7};
  FloodSimulation sim(overlay, FloodConfig{});

  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) {
    const PeerId p{i};
    const auto hops = overlay.hops_to_nearest_holder(p);
    if (!hops.has_value() || *hops == 0) continue;
    const auto outcome = sim.run_query(p, rng);
    if (!outcome.first_response_ms.has_value()) continue;
    if (*hops == 1) {
      near_sum += *outcome.first_response_ms;
      ++near_n;
    } else if (*hops >= 2) {
      far_sum += *outcome.first_response_ms;
      ++far_n;
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_LT(near_sum / near_n, far_sum / far_n);
}

TEST(FloodTest, DeterministicGivenRngState) {
  Overlay overlay(small_overlay());
  FloodSimulation sim(overlay, FloodConfig{});
  Rng rng1{8}, rng2{8};
  const auto a = sim.run_query(PeerId{3}, rng1);
  const auto b = sim.run_query(PeerId{3}, rng2);
  EXPECT_EQ(a.first_response_ms, b.first_response_ms);
  EXPECT_EQ(a.stats.queries_forwarded, b.stats.queries_forwarded);
}

}  // namespace
}  // namespace lexfor::anonp2p
