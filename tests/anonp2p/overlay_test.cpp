#include "anonp2p/overlay.h"

#include <gtest/gtest.h>

namespace lexfor::anonp2p {
namespace {

TEST(OverlayTest, BuildsRequestedSize) {
  OverlayConfig cfg;
  cfg.num_peers = 40;
  Overlay overlay(cfg);
  EXPECT_EQ(overlay.peer_count(), 40u);
}

TEST(OverlayTest, GraphIsConnectedViaRingBackbone) {
  OverlayConfig cfg;
  cfg.num_peers = 30;
  cfg.trusted_degree = 2;
  Overlay overlay(cfg);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_GE(overlay.neighbors(PeerId{i}).size(), 2u) << "peer " << i;
  }
}

TEST(OverlayTest, DegreeApproximatesTarget) {
  OverlayConfig cfg;
  cfg.num_peers = 100;
  cfg.trusted_degree = 6;
  Overlay overlay(cfg);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(overlay.neighbors(PeerId{i}).size(), 6u);
  }
}

TEST(OverlayTest, AtLeastOneHolderAlways) {
  OverlayConfig cfg;
  cfg.num_peers = 20;
  cfg.file_popularity = 0.0;  // would otherwise produce zero holders
  Overlay overlay(cfg);
  EXPECT_GE(overlay.holder_count(), 1u);
}

TEST(OverlayTest, PopularityControlsHolderCount) {
  OverlayConfig cfg;
  cfg.num_peers = 400;
  cfg.file_popularity = 0.25;
  Overlay overlay(cfg);
  const double frac =
      static_cast<double>(overlay.holder_count()) / 400.0;
  EXPECT_NEAR(frac, 0.25, 0.08);
}

TEST(OverlayTest, HopsToHolderIsZeroForHolders) {
  OverlayConfig cfg;
  cfg.num_peers = 30;
  Overlay overlay(cfg);
  for (std::size_t i = 0; i < 30; ++i) {
    if (overlay.holds_file(PeerId{i})) {
      EXPECT_EQ(overlay.hops_to_nearest_holder(PeerId{i}).value_or(-1), 0);
    }
  }
}

TEST(OverlayTest, TtlBoundsHopDistance) {
  OverlayConfig cfg;
  cfg.num_peers = 50;
  cfg.max_forward_hops = 2;
  Overlay overlay(cfg);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto hops = overlay.hops_to_nearest_holder(PeerId{i});
    if (hops.has_value()) {
      EXPECT_LE(*hops, 2);
    }
  }
}

TEST(OverlayTest, SourceQueriesAreFasterThanProxyQueries) {
  OverlayConfig cfg;
  cfg.num_peers = 120;
  cfg.file_popularity = 0.2;
  cfg.local_lookup_ms = 20.0;
  cfg.hop_delay_ms = 80.0;
  Overlay overlay(cfg);
  Rng rng{31};

  double source_sum = 0, proxy_sum = 0;
  int source_n = 0, proxy_n = 0;
  constexpr int kProbes = 50;
  for (std::size_t i = 0; i < 120; ++i) {
    const PeerId p{i};
    for (int k = 0; k < kProbes; ++k) {
      const auto d = overlay.query_delay_ms(p, rng);
      if (!d.has_value()) continue;
      if (overlay.holds_file(p)) {
        source_sum += *d;
        ++source_n;
      } else {
        proxy_sum += *d;
        ++proxy_n;
      }
    }
  }
  ASSERT_GT(source_n, 0);
  ASSERT_GT(proxy_n, 0);
  const double source_mean = source_sum / source_n;
  const double proxy_mean = proxy_sum / proxy_n;
  // Proxies carry at least one round trip of forwarding on top.
  EXPECT_GT(proxy_mean, source_mean + cfg.hop_delay_ms);
}

TEST(OverlayTest, QueryDelayIsNulloptBeyondTtl) {
  OverlayConfig cfg;
  cfg.num_peers = 60;
  cfg.trusted_degree = 2;
  cfg.file_popularity = 0.0;  // exactly one forced holder
  cfg.max_forward_hops = 1;
  Overlay overlay(cfg);
  Rng rng{37};
  // Most ring peers are >1 hop from the single holder: they time out.
  int timeouts = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    if (!overlay.query_delay_ms(PeerId{i}, rng).has_value()) ++timeouts;
  }
  EXPECT_GT(timeouts, 40);
}

TEST(OverlayTest, InvalidPeerHandledGracefully) {
  Overlay overlay(OverlayConfig{});
  Rng rng{1};
  EXPECT_TRUE(overlay.neighbors(PeerId{}).empty());
  EXPECT_FALSE(overlay.holds_file(PeerId{9999}));
  EXPECT_FALSE(overlay.query_delay_ms(PeerId{9999}, rng).has_value());
}

TEST(OverlayTest, SameSeedSameTopology) {
  OverlayConfig cfg;
  cfg.seed = 77;
  Overlay a(cfg), b(cfg);
  ASSERT_EQ(a.peer_count(), b.peer_count());
  for (std::size_t i = 0; i < a.peer_count(); ++i) {
    EXPECT_EQ(a.neighbors(PeerId{i}).size(), b.neighbors(PeerId{i}).size());
    EXPECT_EQ(a.holds_file(PeerId{i}), b.holds_file(PeerId{i}));
  }
}

}  // namespace
}  // namespace lexfor::anonp2p
