#include "anonp2p/investigator.h"

#include <gtest/gtest.h>

namespace lexfor::anonp2p {
namespace {

OverlayConfig well_separated() {
  OverlayConfig cfg;
  cfg.num_peers = 80;
  cfg.trusted_degree = 4;
  cfg.file_popularity = 0.3;
  cfg.local_lookup_ms = 15.0;
  cfg.hop_delay_ms = 120.0;  // large gap: easy classification
  cfg.seed = 5;
  return cfg;
}

std::vector<PeerId> all_peers(const Overlay& overlay) {
  std::vector<PeerId> out;
  for (std::size_t i = 0; i < overlay.peer_count(); ++i) out.emplace_back(i);
  return out;
}

TEST(InvestigatorTest, LegalScenarioNeedsNoProcess) {
  // The paper's §IV.A conclusion: "such kinds of attack can be directly
  // used in criminal investigations ahead of a warrant/court
  // order/subpoena."
  const auto d = legal::ComplianceEngine{}.evaluate(
      TimingInvestigator::legal_scenario());
  EXPECT_FALSE(d.needs_process) << d.report();
  EXPECT_EQ(d.required_process, legal::ProcessKind::kNone);
}

TEST(InvestigatorTest, HighAccuracyWithWellSeparatedDelays) {
  Overlay overlay(well_separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{11};
  const auto report = inv.run(/*probes_per_neighbor=*/40, rng);
  EXPECT_GT(report.accuracy, 0.9) << "threshold=" << report.threshold_ms;
  EXPECT_GT(report.true_positive_rate, 0.9);
  EXPECT_LT(report.false_positive_rate, 0.1);
}

TEST(InvestigatorTest, GroundTruthIsCarriedThrough) {
  Overlay overlay(well_separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{13};
  const auto report = inv.run(20, rng);
  for (const auto& c : report.neighbors) {
    EXPECT_EQ(c.truly_source, overlay.holds_file(c.peer));
  }
}

TEST(InvestigatorTest, ReportCarriesLegalityDetermination) {
  Overlay overlay(well_separated());
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{17};
  const auto report = inv.run(10, rng);
  EXPECT_FALSE(report.legality.needs_process);
  EXPECT_FALSE(report.legality.rationale.empty());
}

TEST(InvestigatorTest, ExplicitThresholdIsUsedVerbatim) {
  Overlay overlay(well_separated());
  TimingInvestigator inv(overlay, all_peers(overlay), /*threshold_ms=*/55.0);
  Rng rng{19};
  const auto report = inv.run(20, rng);
  EXPECT_DOUBLE_EQ(report.threshold_ms, 55.0);
}

TEST(InvestigatorTest, MoreProbesImproveOrMaintainAccuracy) {
  OverlayConfig cfg = well_separated();
  cfg.hop_delay_ms = 40.0;  // harder problem: overlapping tails
  Overlay overlay(cfg);
  TimingInvestigator inv(overlay, all_peers(overlay));

  Rng rng_few{23};
  Rng rng_many{23};
  const auto few = inv.run(2, rng_few);
  const auto many = inv.run(80, rng_many);
  EXPECT_GE(many.accuracy + 0.05, few.accuracy);  // allow small noise
  EXPECT_GT(many.accuracy, 0.75);
}

TEST(InvestigatorTest, TimeoutsAreCountedNotCrashed) {
  OverlayConfig cfg;
  cfg.num_peers = 40;
  cfg.trusted_degree = 2;
  cfg.file_popularity = 0.0;  // single holder
  cfg.max_forward_hops = 1;
  cfg.seed = 3;
  Overlay overlay(cfg);
  TimingInvestigator inv(overlay, all_peers(overlay));
  Rng rng{29};
  const auto report = inv.run(5, rng);
  std::size_t total_timeouts = 0;
  for (const auto& c : report.neighbors) total_timeouts += c.timeouts;
  EXPECT_GT(total_timeouts, 0u);
}

TEST(InvestigatorTest, SubsetProbingOnlyClassifiesSubset) {
  Overlay overlay(well_separated());
  const std::vector<PeerId> subset{PeerId{0}, PeerId{1}, PeerId{2}};
  TimingInvestigator inv(overlay, subset);
  Rng rng{31};
  const auto report = inv.run(10, rng);
  EXPECT_EQ(report.neighbors.size(), 3u);
}

}  // namespace
}  // namespace lexfor::anonp2p
