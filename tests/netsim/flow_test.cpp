#include "netsim/flow.h"

#include <gtest/gtest.h>

namespace lexfor::netsim {
namespace {

struct FlowFixture {
  Network net{5};
  NodeId src = net.add_node("src");
  NodeId dst = net.add_node("dst");
  FlowFixture() {
    LinkConfig cfg;
    cfg.latency = SimDuration::from_ms(1);
    (void)net.connect(src, dst, cfg).value();
  }
  FlowConfig config(double rate, double stop_sec) {
    FlowConfig c;
    c.id = FlowId{1};
    c.src = src;
    c.dst = dst;
    c.packets_per_sec = rate;
    c.stop = SimTime::from_sec(stop_sec);
    return c;
  }
};

TEST(FlowTest, ConstantRateEmitsExpectedCount) {
  FlowFixture f;
  FlowSource flow(f.net, f.config(100.0, 2.0), ArrivalProcess::kConstant, 1);
  flow.start();
  f.net.run();
  // 100 pps for 2 seconds: ~200 packets (first at t=0).
  EXPECT_NEAR(static_cast<double>(flow.emitted()), 200.0, 2.0);
}

TEST(FlowTest, PoissonRateApproximatesExpectedCount) {
  FlowFixture f;
  FlowSource flow(f.net, f.config(200.0, 5.0), ArrivalProcess::kPoisson, 2);
  flow.start();
  f.net.run();
  // 200 pps over 5 s: ~1000 expected, sd ~ sqrt(1000) ~ 32.
  EXPECT_NEAR(static_cast<double>(flow.emitted()), 1000.0, 150.0);
}

TEST(FlowTest, RateMultiplierScalesEmission) {
  FlowFixture f;
  FlowSource slow(f.net, f.config(100.0, 2.0), ArrivalProcess::kConstant, 3,
                  [](SimTime) { return 0.5; });
  slow.start();
  f.net.run();
  EXPECT_NEAR(static_cast<double>(slow.emitted()), 100.0, 3.0);
}

TEST(FlowTest, StopTimeIsRespected) {
  FlowFixture f;
  FlowSource flow(f.net, f.config(1000.0, 0.5), ArrivalProcess::kConstant, 4);
  flow.start();
  f.net.run();
  EXPECT_LE(f.net.now().seconds(), 0.6);
  EXPECT_NEAR(static_cast<double>(flow.emitted()), 500.0, 3.0);
}

TEST(FlowTest, RejectedSendsCountAsErrorsNotEmissions) {
  // Pre-ISSUE-8, FlowSource::emit incremented emitted_ even when
  // Network::send refused the packet, so a flow on a partitioned
  // topology reported phantom traffic.
  Network net{5};
  const NodeId src = net.add_node("src");
  const NodeId island = net.add_node("island");  // no links at all
  FlowConfig c;
  c.id = FlowId{1};
  c.src = src;
  c.dst = island;
  c.packets_per_sec = 100.0;
  c.stop = SimTime::from_sec(1.0);
  FlowSource flow(net, c, ArrivalProcess::kConstant, 1);
  flow.start();
  net.run();
  EXPECT_EQ(flow.emitted(), 0u);
  EXPECT_EQ(flow.errors(), 100u);
  EXPECT_EQ(net.packets_sent(), 0u);
}

TEST(FlowTest, EmittedMatchesNetworkAcceptedSends) {
  FlowFixture f;
  FlowSource flow(f.net, f.config(200.0, 1.0), ArrivalProcess::kPoisson, 9);
  flow.start();
  f.net.run();
  EXPECT_EQ(flow.emitted(), f.net.packets_sent());
  EXPECT_EQ(flow.errors(), 0u);
}

TEST(RateRecorderTest, BinsObservationsByWindow) {
  RateRecorder rec(SimDuration::from_ms(100));
  rec.observe(SimTime::from_ms(10));
  rec.observe(SimTime::from_ms(50));
  rec.observe(SimTime::from_ms(150));
  rec.observe(SimTime::from_ms(250));
  ASSERT_EQ(rec.bins().size(), 3u);
  EXPECT_EQ(rec.bins()[0], 2u);
  EXPECT_EQ(rec.bins()[1], 1u);
  EXPECT_EQ(rec.bins()[2], 1u);
}

TEST(RateRecorderTest, RatesNormalizeByBinWidth) {
  RateRecorder rec(SimDuration::from_ms(500));
  for (int i = 0; i < 10; ++i) rec.observe(SimTime::from_ms(i * 40));
  const auto rates = rec.rates();
  ASSERT_FALSE(rates.empty());
  // 10 packets in the first 500 ms bin: 20 packets/sec.
  EXPECT_NEAR(rates[0], 20.0, 1e-9);
}

TEST(RateRecorderTest, ZeroBinWidthClampsToClockResolution) {
  // Division by a zero-width bin was possible pre-ISSUE-8; the width is
  // now clamped to the 1us clock resolution.
  RateRecorder rec{SimDuration::from_us(0)};
  EXPECT_EQ(rec.bin_width(), SimDuration::from_us(1));
  rec.observe(SimTime::from_us(3));
  ASSERT_EQ(rec.bins().size(), 4u);
  EXPECT_EQ(rec.bins()[3], 1u);
}

TEST(RateRecorderTest, NegativeBinWidthClampsToClockResolution) {
  RateRecorder rec{SimDuration::from_us(-5)};
  EXPECT_EQ(rec.bin_width(), SimDuration::from_us(1));
}

TEST(RateRecorderTest, NegativeTimestampsAreRejectedNotResized) {
  // A negative timestamp used to cast to a huge size_t bin index and
  // drive an unbounded vector resize.
  RateRecorder rec{SimDuration::from_ms(1)};
  rec.observe(SimTime::from_us(-1));
  rec.observe(SimTime::from_sec(-100.0));
  EXPECT_TRUE(rec.bins().empty());
  EXPECT_EQ(rec.rejected(), 2u);
  rec.observe(SimTime::from_us(500));
  ASSERT_EQ(rec.bins().size(), 1u);
  EXPECT_EQ(rec.bins()[0], 1u);
  EXPECT_EQ(rec.rejected(), 2u);
}

TEST(FlowIntegrationTest, RecorderAtTapMatchesEmittedRate) {
  FlowFixture f;
  RateRecorder rec(SimDuration::from_ms(200));
  ASSERT_TRUE(f.net
                  .add_node_tap(f.dst, [&](const TapEvent& ev) {
                    if (ev.to == f.dst) rec.observe(ev.at);
                  })
                  .ok());
  FlowSource flow(f.net, f.config(50.0, 4.0), ArrivalProcess::kConstant, 6);
  flow.start();
  f.net.run();
  const auto rates = rec.rates();
  ASSERT_GE(rates.size(), 10u);
  // Interior bins should all be close to 50 pps.
  for (std::size_t i = 1; i + 1 < rates.size(); ++i) {
    EXPECT_NEAR(rates[i], 50.0, 10.0) << "bin " << i;
  }
}

}  // namespace
}  // namespace lexfor::netsim
