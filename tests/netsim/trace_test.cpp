#include "netsim/trace.h"

#include <gtest/gtest.h>

#include "crypto/crc32.h"

namespace lexfor::netsim {
namespace {

TraceRecord record(std::int64_t us, std::uint64_t src, std::uint64_t dst,
                   std::optional<Bytes> payload = std::nullopt) {
  TraceRecord r;
  r.at = SimTime::from_us(us);
  r.header.src = NodeId{src};
  r.header.dst = NodeId{dst};
  r.header.src_port = 1234;
  r.header.dst_port = 80;
  r.header.protocol = Protocol::kTcp;
  r.header.payload_size =
      payload ? static_cast<std::uint32_t>(payload->size()) : 0;
  r.payload = std::move(payload);
  return r;
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  Trace t;
  const auto data = t.serialize();
  const auto back = Trace::deserialize(data);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back.value().empty());
}

TEST(TraceTest, FullContentRoundTrip) {
  Trace t;
  t.add(record(1000, 1, 2, to_bytes("hello")));
  t.add(record(2000, 2, 1, to_bytes("response payload")));
  const auto back = Trace::deserialize(t.serialize());
  ASSERT_TRUE(back.ok());
  const auto& records = back.value().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at, SimTime::from_us(1000));
  EXPECT_EQ(records[0].header.src, NodeId{1});
  EXPECT_EQ(records[0].header.dst, NodeId{2});
  ASSERT_TRUE(records[1].payload.has_value());
  EXPECT_EQ(to_string(*records[1].payload), "response payload");
}

TEST(TraceTest, HeaderOnlyRecordsRoundTrip) {
  Trace t;
  t.add(record(500, 7, 8));  // pen/trap style: no payload
  const auto back = Trace::deserialize(t.serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_FALSE(back.value().records()[0].payload.has_value());
  EXPECT_EQ(back.value().payload_bytes(), 0u);
}

TEST(TraceTest, PayloadBytesAccumulates) {
  Trace t;
  t.add(record(1, 1, 2, Bytes(10, 0)));
  t.add(record(2, 1, 2, Bytes(20, 0)));
  t.add(record(3, 1, 2));
  EXPECT_EQ(t.payload_bytes(), 30u);
}

TEST(TraceTest, CorruptionIsDetectedByCrc) {
  Trace t;
  t.add(record(1000, 1, 2, to_bytes("evidence")));
  auto data = t.serialize();
  data[12] ^= 0xFF;  // flip a byte in the body
  const auto back = Trace::deserialize(data);
  EXPECT_EQ(back.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TraceTest, TruncationIsRejected) {
  Trace t;
  t.add(record(1000, 1, 2, to_bytes("evidence")));
  auto data = t.serialize();
  data.resize(data.size() / 2);
  EXPECT_FALSE(Trace::deserialize(data).ok());
}

TEST(TraceTest, BadMagicIsRejected) {
  Trace t;
  auto data = t.serialize();
  // Rewrite the magic and fix up the CRC so only the magic is wrong.
  data[0] ^= 0x01;
  Bytes body(data.begin(), data.end() - 4);
  const std::uint32_t crc = crypto::crc32(body);
  data[data.size() - 4] = static_cast<std::uint8_t>(crc);
  data[data.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
  data[data.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
  data[data.size() - 1] = static_cast<std::uint8_t>(crc >> 24);
  const auto back = Trace::deserialize(data);
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceTest, ManyRecordsRoundTrip) {
  Trace t;
  for (int i = 0; i < 1000; ++i) {
    t.add(record(i, static_cast<std::uint64_t>(i % 5),
                 static_cast<std::uint64_t>(i % 7),
                 i % 3 == 0 ? std::optional<Bytes>(Bytes(
                                  static_cast<std::size_t>(i % 50), 0xCC))
                            : std::nullopt));
  }
  const auto back = Trace::deserialize(t.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 1000u);
  EXPECT_EQ(back.value().payload_bytes(), t.payload_bytes());
}

}  // namespace
}  // namespace lexfor::netsim
