#include "netsim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "netsim/heap_event_queue.h"
#include "util/rng.h"

namespace lexfor::netsim {
namespace {

TEST(EventQueueTest, EventsFireInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  q.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  q.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::from_ms(42), [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, SimTime::from_ms(42));
  EXPECT_EQ(q.now(), SimTime::from_ms(42));
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  SimTime first, second;
  q.schedule_at(SimTime::from_ms(10), [&] {
    first = q.now();
    q.schedule_in(SimDuration::from_ms(5), [&] { second = q.now(); });
  });
  q.run();
  EXPECT_EQ(first, SimTime::from_ms(10));
  EXPECT_EQ(second, SimTime::from_ms(15));
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(SimTime::from_ms(100), [&] {
    q.schedule_at(SimTime::from_ms(1), [&] {
      fired = true;
      EXPECT_EQ(q.now(), SimTime::from_ms(100));  // not time travel
    });
  });
  q.run();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  q.schedule_at(SimTime::from_ms(20), [&] { ++fired; });
  q.schedule_at(SimTime::from_ms(30), [&] { ++fired; });
  q.run_until(SimTime::from_ms(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), SimTime::from_ms(20));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenQueueDrains) {
  EventQueue q;
  q.run_until(SimTime::from_sec(5));
  EXPECT_EQ(q.now(), SimTime::from_sec(5));
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ProcessedCountsEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_in(SimDuration::from_ms(i), [] {});
  q.run();
  EXPECT_EQ(q.processed(), 5u);
}

TEST(EventQueueTest, RunWithLimitStopsEarly) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule_in(SimDuration::from_ms(i), [&] { ++fired; });
  }
  q.run(3);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

TEST(EventQueueTest, WheelGrowsAndShrinksWithLoad) {
  EventQueue q;
  // Spread times so every event gets its own window: occupancy drives
  // the wheel up, then the drain shrinks it back down.
  for (int i = 0; i < 4096; ++i) {
    q.schedule_at(SimTime::from_us(i * 100), [] {});
  }
  const std::size_t grown = q.bucket_count();
  EXPECT_GT(grown, 16u);
  q.run();
  EXPECT_LT(q.bucket_count(), grown);
  EXPECT_EQ(q.processed(), 4096u);
}

// ---- property tests: the calendar queue against the heap oracle ------
//
// HeapEventQueue is the pre-ISSUE-8 implementation, retained verbatim.
// Any observable divergence — firing order, clock, pending counts — is
// a bug in the calendar queue, so the oracle replays identical scripts.

// Replays `n_roots` randomized schedules; root events with id % 5 == 0
// spawn two children from inside their callback, one of them in the
// past (to cross the clamp rule).  Child ids come from a counter, so
// they are assigned in firing order — a queue that fires out of oracle
// order diverges in the trace immediately.
template <typename Queue>
std::vector<std::pair<int, std::int64_t>> trace_random_run(std::uint64_t seed,
                                                           int n_roots,
                                                           std::int64_t span) {
  constexpr int kChildBase = 1'000'000'000;
  Queue q;
  std::vector<std::pair<int, std::int64_t>> trace;
  Rng rng{seed};
  int next_child = kChildBase;
  std::function<void(int)> fire = [&](int id) {
    trace.emplace_back(id, q.now().us);
    if (id % 5 == 0 && id < kChildBase) {  // roots only
      const int a = next_child++;
      const int b = next_child++;
      q.schedule_at(q.now() + SimDuration::from_us(id % 17),
                    [&fire, a] { fire(a); });
      q.schedule_at(SimTime::from_us(q.now().us - 3), [&fire, b] { fire(b); });
    }
  };
  for (int i = 0; i < n_roots; ++i) {
    q.schedule_at(
        SimTime::from_us(static_cast<std::int64_t>(
            rng.uniform(static_cast<std::uint64_t>(span)))),
        [&fire, i] { fire(i); });
  }
  q.run();
  return trace;
}

TEST(EventQueueOracleTest, RandomScheduleFiresInOracleOrder) {
  for (const std::uint64_t seed : {2ull, 99ull, 4242ull}) {
    const auto expected = trace_random_run<HeapEventQueue>(seed, 500, 10'000);
    const auto actual = trace_random_run<EventQueue>(seed, 500, 10'000);
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(EventQueueOracleTest, DenseCollisionsFireInOracleOrder) {
  // Few distinct timestamps, many events: maximal bucket collision.
  const auto expected = trace_random_run<HeapEventQueue>(7, 2'000, 13);
  const auto actual = trace_random_run<EventQueue>(7, 2'000, 13);
  EXPECT_EQ(actual, expected);
}

TEST(EventQueueOracleTest, SparseFarFutureFiresInOracleOrder) {
  // Wide span, few events: the cursor must revolve or jump, never skip.
  const auto expected =
      trace_random_run<HeapEventQueue>(13, 64, 50'000'000);
  const auto actual = trace_random_run<EventQueue>(13, 64, 50'000'000);
  EXPECT_EQ(actual, expected);
}

TEST(EventQueueOracleTest, ResizeCrossingKeepsOrder) {
  // Enough load to force several grow rehashes on the way up and shrink
  // rehashes on the way down; order must be oracle-identical throughout.
  const auto expected = trace_random_run<HeapEventQueue>(21, 5'000, 500'000);
  const auto actual = trace_random_run<EventQueue>(21, 5'000, 500'000);
  EXPECT_EQ(actual, expected);
}

template <typename Queue>
std::pair<std::vector<int>, std::int64_t> run_until_script(std::int64_t stop_us) {
  Queue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.schedule_at(SimTime::from_us(i * 10), [&order, i] { order.push_back(i); });
  }
  q.run_until(SimTime::from_us(stop_us));
  return {order, q.now().us};
}

TEST(EventQueueOracleTest, RunUntilMatchesOracleAtEveryBoundary) {
  for (const std::int64_t stop : {0L, 5L, 10L, 245L, 490L, 1'000L}) {
    const auto expected = run_until_script<HeapEventQueue>(stop);
    const auto actual = run_until_script<EventQueue>(stop);
    EXPECT_EQ(actual.first, expected.first) << "stop=" << stop;
    EXPECT_EQ(actual.second, expected.second) << "stop=" << stop;
  }
}

TEST(EventQueueOracleTest, RunLimitMatchesOracleStepForStep) {
  HeapEventQueue oracle;
  EventQueue q;
  std::vector<int> oracle_order;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t at = (i * 37) % 50;  // collisions included
    oracle.schedule_at(SimTime::from_us(at),
                       [&oracle_order, i] { oracle_order.push_back(i); });
    q.schedule_at(SimTime::from_us(at), [&order, i] { order.push_back(i); });
  }
  while (!oracle.empty()) {
    oracle.run(7);
    q.run(7);
    ASSERT_EQ(q.pending(), oracle.pending());
    ASSERT_EQ(q.processed(), oracle.processed());
    ASSERT_EQ(order, oracle_order);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace lexfor::netsim
