#include "netsim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace lexfor::netsim {
namespace {

TEST(EventQueueTest, EventsFireInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::from_ms(30), [&] { order.push_back(3); });
  q.schedule_at(SimTime::from_ms(10), [&] { order.push_back(1); });
  q.schedule_at(SimTime::from_ms(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::from_ms(42), [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, SimTime::from_ms(42));
  EXPECT_EQ(q.now(), SimTime::from_ms(42));
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  SimTime first, second;
  q.schedule_at(SimTime::from_ms(10), [&] {
    first = q.now();
    q.schedule_in(SimDuration::from_ms(5), [&] { second = q.now(); });
  });
  q.run();
  EXPECT_EQ(first, SimTime::from_ms(10));
  EXPECT_EQ(second, SimTime::from_ms(15));
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(SimTime::from_ms(100), [&] {
    q.schedule_at(SimTime::from_ms(1), [&] {
      fired = true;
      EXPECT_EQ(q.now(), SimTime::from_ms(100));  // not time travel
    });
  });
  q.run();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  q.schedule_at(SimTime::from_ms(20), [&] { ++fired; });
  q.schedule_at(SimTime::from_ms(30), [&] { ++fired; });
  q.run_until(SimTime::from_ms(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), SimTime::from_ms(20));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenQueueDrains) {
  EventQueue q;
  q.run_until(SimTime::from_sec(5));
  EXPECT_EQ(q.now(), SimTime::from_sec(5));
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ProcessedCountsEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_in(SimDuration::from_ms(i), [] {});
  q.run();
  EXPECT_EQ(q.processed(), 5u);
}

TEST(EventQueueTest, RunWithLimitStopsEarly) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule_in(SimDuration::from_ms(i), [&] { ++fired; });
  }
  q.run(3);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

}  // namespace
}  // namespace lexfor::netsim
