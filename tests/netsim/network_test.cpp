#include "netsim/network.h"

#include <gtest/gtest.h>

namespace lexfor::netsim {
namespace {

// A linear topology: client -- isp -- server.
struct LineFixture {
  Network net{123};
  NodeId client = net.add_node("client");
  NodeId isp = net.add_node("isp");
  NodeId server = net.add_node("server");
  LineFixture() {
    LinkConfig cfg;
    cfg.latency = SimDuration::from_ms(10);
    (void)net.connect(client, isp, cfg).value();
    (void)net.connect(isp, server, cfg).value();
  }
};

TEST(NetworkTest, ConnectRejectsUnknownNodes) {
  Network net;
  const NodeId a = net.add_node("a");
  EXPECT_EQ(net.connect(a, NodeId{99}).status().code(), StatusCode::kNotFound);
}

TEST(NetworkTest, ConnectRejectsSelfLoop) {
  Network net;
  const NodeId a = net.add_node("a");
  EXPECT_EQ(net.connect(a, a).status().code(), StatusCode::kInvalidArgument);
}

TEST(NetworkTest, ConnectRejectsDuplicateLink) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  EXPECT_TRUE(net.connect(a, b).ok());
  EXPECT_EQ(net.connect(a, b).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(net.connect(b, a).status().code(), StatusCode::kAlreadyExists);
}

TEST(NetworkTest, ShortestPathOnLine) {
  LineFixture f;
  const auto path = f.net.shortest_path(f.client, f.server);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], f.client);
  EXPECT_EQ(path[1], f.isp);
  EXPECT_EQ(path[2], f.server);
}

TEST(NetworkTest, ShortestPathPrefersFewerHops) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  const NodeId d = net.add_node("d");
  (void)net.connect(a, b).value();
  (void)net.connect(b, c).value();
  (void)net.connect(c, d).value();
  (void)net.connect(a, d).value();  // shortcut
  const auto path = net.shortest_path(a, d);
  EXPECT_EQ(path.size(), 2u);
}

TEST(NetworkTest, NoRouteReturnsEmptyPathAndSendFails) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");  // isolated
  EXPECT_TRUE(net.shortest_path(a, b).empty());
  PacketHeader h;
  h.src = a;
  h.dst = b;
  EXPECT_EQ(net.send(FlowId{1}, h, {}).status().code(), StatusCode::kNotFound);
}

TEST(NetworkTest, PacketDeliveredWithAccumulatedLatency) {
  LineFixture f;
  SimTime arrival;
  bool got = false;
  (void)f.net.set_receive_handler(f.server,
                                  [&](const Packet&, SimTime at) {
                                    arrival = at;
                                    got = true;
                                  });
  PacketHeader h;
  h.src = f.client;
  h.dst = f.server;
  ASSERT_TRUE(f.net.send(FlowId{1}, h, to_bytes("hello server")).ok());
  f.net.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(arrival, SimTime::from_ms(20));  // two 10ms hops
  EXPECT_EQ(f.net.packets_delivered(), 1u);
}

TEST(NetworkTest, PayloadArrivesIntactWithSizeInHeader) {
  LineFixture f;
  Bytes received;
  std::uint32_t header_size = 0;
  (void)f.net.set_receive_handler(f.server, [&](const Packet& p, SimTime) {
    received = p.payload;
    header_size = p.header.payload_size;
  });
  PacketHeader h;
  h.src = f.client;
  h.dst = f.server;
  const Bytes payload = to_bytes("incriminating content");
  ASSERT_TRUE(f.net.send(FlowId{1}, h, payload).ok());
  f.net.run();
  EXPECT_EQ(received, payload);
  EXPECT_EQ(header_size, payload.size());
}

TEST(NetworkTest, LinkTapSeesTraversals) {
  LineFixture f;
  int tap_count = 0;
  // Tap every link at the ISP.
  ASSERT_TRUE(f.net
                  .add_node_tap(f.isp,
                                [&](const TapEvent& ev) {
                                  ++tap_count;
                                  EXPECT_TRUE(ev.from == f.isp ||
                                              ev.to == f.isp);
                                })
                  .ok());
  PacketHeader h;
  h.src = f.client;
  h.dst = f.server;
  ASSERT_TRUE(f.net.send(FlowId{1}, h, to_bytes("x")).ok());
  f.net.run();
  // The packet traverses client->isp and isp->server: both tapped.
  EXPECT_EQ(tap_count, 2);
}

TEST(NetworkTest, DropProbabilityLosesPackets) {
  Network net{7};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.drop_probability = 0.5;
  (void)net.connect(a, b, cfg).value();
  int received = 0;
  (void)net.set_receive_handler(b, [&](const Packet&, SimTime) { ++received; });
  PacketHeader h;
  h.src = a;
  h.dst = b;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(net.send(FlowId{1}, h, {}).ok());
  }
  net.run();
  EXPECT_GT(received, 150);
  EXPECT_LT(received, 350);
  EXPECT_EQ(net.packets_dropped() + net.packets_delivered(), 500u);
}

TEST(NetworkTest, BandwidthAddsSerializationDelay) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(0);
  cfg.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  (void)net.connect(a, b, cfg).value();
  SimTime arrival;
  (void)net.set_receive_handler(b, [&](const Packet&, SimTime at) { arrival = at; });
  PacketHeader h;
  h.src = a;
  h.dst = b;
  ASSERT_TRUE(net.send(FlowId{1}, h, Bytes(960, 0)).ok());  // +40 hdr = 1000B
  net.run();
  EXPECT_NEAR(arrival.seconds(), 1.0, 0.01);
}

TEST(NetworkTest, JitterIsBoundedAndDeterministic) {
  auto run_once = [] {
    Network net{99};
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    LinkConfig cfg;
    cfg.latency = SimDuration::from_ms(10);
    cfg.jitter = SimDuration::from_ms(5);
    (void)net.connect(a, b, cfg).value();
    std::vector<double> arrivals;
    (void)net.set_receive_handler(b, [&](const Packet&, SimTime at) {
      arrivals.push_back(at.millis());
    });
    PacketHeader h;
    h.src = a;
    h.dst = b;
    for (int i = 0; i < 50; ++i) (void)net.send(FlowId{1}, h, {});
    net.run();
    return arrivals;
  };
  const auto a1 = run_once();
  const auto a2 = run_once();
  EXPECT_EQ(a1, a2);  // same seed, same timing
  for (const double ms : a1) {
    EXPECT_GE(ms, 10.0);
    EXPECT_LT(ms, 15.0);
  }
}

TEST(NetworkTest, NodeTapRequiresLinks) {
  Network net;
  const NodeId lonely = net.add_node("lonely");
  EXPECT_EQ(net.add_node_tap(lonely, [](const TapEvent&) {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(NetworkTest, NodeNamesResolve) {
  Network net;
  const NodeId a = net.add_node("alpha");
  EXPECT_EQ(net.node_name(a).value_or(""), "alpha");
  EXPECT_FALSE(net.node_name(NodeId{42}).has_value());
}

}  // namespace
}  // namespace lexfor::netsim

// --- FIFO queueing on bandwidth-limited links ----------------------------

namespace lexfor::netsim {
namespace {

TEST(QueueingTest, SimultaneousPacketsSerializeOnTheLink) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(0);
  cfg.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  (void)net.connect(a, b, cfg).value();

  std::vector<double> arrivals;
  (void)net.set_receive_handler(b, [&](const Packet&, SimTime at) {
    arrivals.push_back(at.seconds());
  });
  PacketHeader h;
  h.src = a;
  h.dst = b;
  // Three packets of 1000 wire bytes each, sent at the same instant.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net.send(FlowId{1}, h, Bytes(960, 0)).ok());
  }
  net.run();
  ASSERT_EQ(arrivals.size(), 3u);
  std::sort(arrivals.begin(), arrivals.end());
  // First finishes at ~1s, second ~2s, third ~3s: the link is a FIFO
  // transmitter, not three parallel pipes.
  EXPECT_NEAR(arrivals[0], 1.0, 0.02);
  EXPECT_NEAR(arrivals[1], 2.0, 0.02);
  EXPECT_NEAR(arrivals[2], 3.0, 0.02);
}

TEST(QueueingTest, IdleLinkAddsNoQueueingDelay) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(5);
  cfg.bandwidth_bytes_per_sec = 1e6;
  (void)net.connect(a, b, cfg).value();
  SimTime arrival;
  (void)net.set_receive_handler(b, [&](const Packet&, SimTime at) { arrival = at; });
  PacketHeader h;
  h.src = a;
  h.dst = b;
  ASSERT_TRUE(net.send(FlowId{1}, h, Bytes(960, 0)).ok());
  net.run();
  // 5ms latency + 1ms tx.
  EXPECT_NEAR(arrival.millis(), 6.0, 0.2);
}

TEST(QueueingTest, UnlimitedLinksDoNotQueue) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(10);  // bandwidth 0 = infinite
  (void)net.connect(a, b, cfg).value();
  std::vector<double> arrivals;
  (void)net.set_receive_handler(b, [&](const Packet&, SimTime at) {
    arrivals.push_back(at.millis());
  });
  PacketHeader h;
  h.src = a;
  h.dst = b;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(net.send(FlowId{1}, h, Bytes(500, 0)).ok());
  net.run();
  ASSERT_EQ(arrivals.size(), 5u);
  for (const double ms : arrivals) EXPECT_NEAR(ms, 10.0, 1e-6);
}

TEST(NetworkTest, DisconnectRejectsUnknownAndDoubleRemoval) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const LinkId link = net.connect(a, b).value();
  EXPECT_EQ(net.disconnect(LinkId{99}).code(), StatusCode::kNotFound);
  EXPECT_TRUE(net.disconnect(link).ok());
  EXPECT_EQ(net.disconnect(link).code(), StatusCode::kFailedPrecondition);
  // Routing no longer sees the removed link.
  EXPECT_TRUE(net.shortest_path(a, b).empty());
}

TEST(NetworkTest, MidFlightLinkRemovalCountsAsDrop) {
  LineFixture f;  // client -- isp -- server, 10ms per hop
  const LinkId last_hop = LinkId{1};  // isp--server, second link created
  PacketHeader h;
  h.src = f.client;
  h.dst = f.server;
  ASSERT_TRUE(f.net.send(FlowId{1}, h, to_bytes("doomed")).ok());
  // Sever the second link while the packet is still crossing the first
  // hop: the relay's next-hop lookup at t=10ms must find it gone.
  f.net.run_until(SimTime::from_ms(5));
  ASSERT_TRUE(f.net.disconnect(last_hop).ok());
  f.net.run();
  EXPECT_EQ(f.net.packets_sent(), 1u);
  EXPECT_EQ(f.net.packets_delivered(), 0u);
  EXPECT_EQ(f.net.packets_dropped(), 1u);
}

TEST(NetworkTest, AccountingInvariantHoldsOnLossyTopologyWithLinkRemoval) {
  // sent == delivered + dropped must survive the combination of random
  // loss and a link removed while traffic is in flight.
  Network net{11};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  LinkConfig lossy;
  lossy.latency = SimDuration::from_ms(10);
  lossy.drop_probability = 0.3;
  (void)net.connect(a, b, lossy).value();
  const LinkId bc = net.connect(b, c, lossy).value();
  PacketHeader h;
  h.src = a;
  h.dst = c;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(net.send(FlowId{1}, h, to_bytes("x")).ok());
  }
  // Remove the b--c link while the burst is still on the first hop:
  // every survivor of a--b then reaches a vanished link at t=10ms and
  // must be counted.
  net.run_until(SimTime::from_ms(5));
  ASSERT_TRUE(net.disconnect(bc).ok());
  net.run();
  EXPECT_EQ(net.packets_sent(), 200u);
  EXPECT_GT(net.packets_dropped(), 0u);
  EXPECT_EQ(net.packets_delivered() + net.packets_dropped(),
            net.packets_sent());
  // Nothing can have been delivered: the only path to c was severed
  // before any packet could complete the second 10ms hop.
  EXPECT_EQ(net.packets_delivered(), 0u);
}

TEST(NetworkTest, ChurnHoldsPerLinkStateFlat) {
  // Pre-ISSUE-8, link_busy_until_ and link_taps_ were never erased on
  // disconnect: a churn loop leaked one map entry per removed link.
  Network net{3};
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.latency = SimDuration::from_ms(1);
  cfg.bandwidth_bytes_per_sec = 1e6;  // populates the busy map
  PacketHeader h;
  h.src = a;
  h.dst = b;
  for (int round = 0; round < 100; ++round) {
    const LinkId link = net.connect(a, b, cfg).value();
    ASSERT_TRUE(net.add_link_tap(link, [](const TapEvent&) {}).ok());
    ASSERT_TRUE(net.send(FlowId{1}, h, to_bytes("x")).ok());
    net.run();
    ASSERT_TRUE(net.disconnect(link).ok());
    ASSERT_LE(net.busy_link_entries(), 1u) << "round " << round;
    ASSERT_LE(net.link_tap_entries(), 1u) << "round " << round;
  }
  EXPECT_EQ(net.busy_link_entries(), 0u);
  EXPECT_EQ(net.link_tap_entries(), 0u);
  EXPECT_EQ(net.packets_delivered(), 100u);
}

TEST(NetworkTest, TapOnReconnectedLinkFiresExactlyOnce) {
  // A stale tap entry from a removed link must not double-fire when a
  // new link between the same nodes is tapped again.
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const LinkId first = net.connect(a, b).value();
  int fires = 0;
  ASSERT_TRUE(net.add_link_tap(first, [&](const TapEvent&) { ++fires; }).ok());
  ASSERT_TRUE(net.disconnect(first).ok());
  const LinkId second = net.connect(a, b).value();
  ASSERT_TRUE(net.add_link_tap(second, [&](const TapEvent&) { ++fires; }).ok());
  PacketHeader h;
  h.src = a;
  h.dst = b;
  ASSERT_TRUE(net.send(FlowId{1}, h, to_bytes("once")).ok());
  net.run();
  EXPECT_EQ(fires, 1);
}

TEST(NetworkTest, RouteCacheMemoizesAndInvalidates) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  const NodeId c = net.add_node("c");
  (void)net.connect(a, b).value();
  const LinkId bc = net.connect(b, c).value();
  PacketHeader h;
  h.src = a;
  h.dst = c;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(FlowId{1}, h, to_bytes("x")).ok());
  }
  net.run();
  // One BFS serves all 50 packets on the same (src, dst) pair.
  EXPECT_EQ(net.route_cache().bfs_runs(), 1u);
  EXPECT_EQ(net.route_cache().cached_pairs(), 1u);

  // Topology change invalidates; the next send reroutes from scratch.
  ASSERT_TRUE(net.disconnect(bc).ok());
  EXPECT_EQ(net.route_cache().cached_pairs(), 0u);
  (void)net.connect(a, c).value();
  ASSERT_TRUE(net.send(FlowId{1}, h, to_bytes("y")).ok());
  net.run();
  EXPECT_EQ(net.packets_delivered(), 51u);
  EXPECT_EQ(net.route_cache().bfs_runs(), 2u);
}

TEST(NetworkTest, UnreachabilityIsMemoizedWithoutLeaking) {
  Network net;
  const NodeId a = net.add_node("a");
  const NodeId island = net.add_node("island");
  PacketHeader h;
  h.src = a;
  h.dst = island;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(net.send(FlowId{1}, h, to_bytes("no")).ok());
  }
  // The no-route answer is cached (one BFS), and refused sends pin no
  // packet slots or path records.
  EXPECT_EQ(net.route_cache().bfs_runs(), 1u);
  EXPECT_EQ(net.route_cache().live_paths(), 0u);
  EXPECT_EQ(net.packet_store().live(), 0u);
  EXPECT_EQ(net.packets_sent(), 0u);
}

TEST(NetworkTest, PacketSlotsRecycleAcrossBursts) {
  LineFixture f;
  PacketHeader h;
  h.src = f.client;
  h.dst = f.server;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(f.net.send(FlowId{1}, h, to_bytes("burst")).ok());
    }
    f.net.run();
  }
  // All 80 packets flowed through at most 8 concurrently-live slots.
  EXPECT_EQ(f.net.packets_delivered(), 80u);
  EXPECT_EQ(f.net.packet_store().live(), 0u);
  EXPECT_LE(f.net.packet_store().capacity(), 8u);
}

}  // namespace
}  // namespace lexfor::netsim
