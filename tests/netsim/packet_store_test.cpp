#include "netsim/packet_store.h"

#include <gtest/gtest.h>

#include <utility>

namespace lexfor::netsim {
namespace {

PacketStore::Ref make_packet(PacketStore& store, std::uint64_t id,
                             std::size_t payload_bytes) {
  const PacketStore::Ref r = store.acquire();
  PacketStore::Meta& m = store.meta(r);
  m.id = PacketId{id};
  m.flow = FlowId{1};
  m.header = PacketHeader{};
  m.header.payload_size = static_cast<std::uint32_t>(payload_bytes);
  m.created_at = SimTime::from_us(static_cast<std::int64_t>(id));
  store.payload(r) = Bytes(payload_bytes, static_cast<std::uint8_t>(id));
  return r;
}

TEST(PacketStoreTest, AcquireFillReadBack) {
  PacketStore store;
  const auto r = make_packet(store, 7, 100);
  EXPECT_EQ(store.meta(r).id, PacketId{7});
  EXPECT_EQ(store.payload(r).size(), 100u);
  EXPECT_EQ(store.meta(r).wire_size(), 140u);  // 100 + 40 header overhead
  EXPECT_EQ(store.live(), 1u);
}

TEST(PacketStoreTest, ReleaseRecyclesSlotAndKeepsBufferCapacity) {
  PacketStore store;
  const auto r = make_packet(store, 1, 4096);
  store.release(r);
  EXPECT_EQ(store.live(), 0u);
  // LIFO recycle: same slot, and its payload buffer kept its capacity.
  const auto r2 = store.acquire();
  EXPECT_EQ(r2, r);
  EXPECT_TRUE(store.payload(r2).empty());
  EXPECT_GE(store.payload(r2).capacity(), 4096u);
  EXPECT_EQ(store.capacity(), 1u);
}

TEST(PacketStoreTest, WithPacketAssemblesViewWithoutLosingPayload) {
  PacketStore store;
  const auto r = make_packet(store, 9, 64);
  bool called = false;
  store.with_packet(r, [&](const Packet& p) {
    called = true;
    EXPECT_EQ(p.id, PacketId{9});
    EXPECT_EQ(p.header.payload_size, 64u);
    EXPECT_EQ(p.payload.size(), 64u);
    EXPECT_EQ(p.payload[0], std::uint8_t{9});
  });
  EXPECT_TRUE(called);
  // Payload moved back after the call.
  EXPECT_EQ(store.payload(r).size(), 64u);
  EXPECT_EQ(store.payload(r)[0], std::uint8_t{9});
}

TEST(PacketStoreTest, WithPacketSurvivesReentrantAcquire) {
  PacketStore store;
  const auto r = make_packet(store, 3, 32);
  // A handler that acquires new slots mid-callback (a receive handler
  // sending a reply) can grow the payload array; the original slot's
  // payload must still be restored afterwards.
  store.with_packet(r, [&](const Packet& p) {
    EXPECT_EQ(p.payload.size(), 32u);
    for (std::uint64_t i = 10; i < 20; ++i) (void)make_packet(store, i, 16);
  });
  EXPECT_EQ(store.payload(r).size(), 32u);
  EXPECT_EQ(store.payload(r)[0], std::uint8_t{3});
  EXPECT_EQ(store.live(), 11u);
}

TEST(PacketStoreTest, ManySlotsStayIndependent) {
  PacketStore store;
  std::vector<PacketStore::Ref> refs;
  for (std::uint64_t i = 0; i < 200; ++i) {
    refs.push_back(make_packet(store, i, 8 + (i % 16)));
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto r = refs[static_cast<std::size_t>(i)];
    ASSERT_EQ(store.meta(r).id, PacketId{i});
    ASSERT_EQ(store.payload(r).size(), 8 + (i % 16));
  }
  for (const auto r : refs) store.release(r);
  EXPECT_EQ(store.live(), 0u);
  EXPECT_EQ(store.capacity(), 200u);
}

}  // namespace
}  // namespace lexfor::netsim
