#include "netsim/topology.h"

#include <gtest/gtest.h>

namespace lexfor::netsim {
namespace {

TEST(CampusTest, StructureIsCorrect) {
  Network net;
  const auto campus = make_campus(net, 10);
  EXPECT_EQ(net.node_count(), 13u);          // internet + isp + gw + 10
  EXPECT_EQ(net.link_count(), 12u);          // 2 backbone + 10 access
  EXPECT_EQ(campus.hosts.size(), 10u);
  // Every host routes to the internet through the gateway and ISP.
  for (const auto h : campus.hosts) {
    const auto path = net.shortest_path(h, campus.internet);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[1], campus.gateway);
    EXPECT_EQ(path[2], campus.isp);
  }
}

TEST(CampusTest, GatewayTapSeesAllHostTraffic) {
  Network net;
  const auto campus = make_campus(net, 4);
  int tapped = 0;
  ASSERT_TRUE(net.add_node_tap(campus.gateway,
                               [&](const TapEvent&) { ++tapped; })
                  .ok());
  PacketHeader h;
  h.src = campus.hosts[0];
  h.dst = campus.internet;
  ASSERT_TRUE(net.send(FlowId{1}, h, {}).ok());
  net.run();
  // host->gw and gw->isp traversals both touch gateway links.
  EXPECT_EQ(tapped, 2);
}

TEST(StarTest, HubConnectsAllLeaves) {
  Network net;
  const auto star = make_star(net, 7);
  EXPECT_EQ(net.node_count(), 8u);
  EXPECT_EQ(net.link_count(), 7u);
  for (const auto leaf : star.leaves) {
    const auto path = net.shortest_path(leaf, star.hub);
    EXPECT_EQ(path.size(), 2u);
  }
  // Leaf-to-leaf goes through the hub.
  const auto path = net.shortest_path(star.leaves[0], star.leaves[6]);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], star.hub);
}

TEST(TreeTest, NodeCountMatchesGeometry) {
  Network net;
  const auto nodes = make_tree(net, 2, 3);  // 1 + 2 + 4 + 8 = 15
  EXPECT_EQ(nodes.size(), 15u);
  EXPECT_EQ(net.link_count(), 14u);  // tree: n-1 edges
}

TEST(TreeTest, LeafToLeafPathGoesThroughRoot) {
  Network net;
  const auto nodes = make_tree(net, 2, 2);  // root, 2 mid, 4 leaves
  // The leaves under different mid nodes route via the root.
  const auto path = net.shortest_path(nodes[3], nodes[6]);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path[path.size() / 2], nodes[0]);
}

TEST(RandomTest, AlwaysConnected) {
  Network net;
  const auto nodes = make_random(net, 40, 0.0, 11);  // chain only
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_FALSE(net.shortest_path(nodes[0], nodes[i]).empty());
  }
}

TEST(RandomTest, EdgeProbabilityAddsChords) {
  Network sparse_net, dense_net;
  (void)make_random(sparse_net, 40, 0.0, 11);
  (void)make_random(dense_net, 40, 0.3, 11);
  EXPECT_GT(dense_net.link_count(), sparse_net.link_count());
}

TEST(RandomTest, DeterministicForSeed) {
  Network a, b;
  (void)make_random(a, 30, 0.2, 5);
  (void)make_random(b, 30, 0.2, 5);
  EXPECT_EQ(a.link_count(), b.link_count());
}

}  // namespace
}  // namespace lexfor::netsim
