// The paper's §IV.B "situation one" as one continuous case, asserting
// the interlocking behaviour of court, engine, traceback experiment,
// evidence locker and case report.

#include <gtest/gtest.h>

#include "evidence/locker.h"
#include "investigation/report.h"
#include "tornet/traceback.h"

namespace lexfor {
namespace {

using investigation::Court;
using investigation::Investigation;

TEST(FullCaseTest, WatermarkTracebackCaseEndToEnd) {
  Court court;
  Investigation inv(CaseId{100}, "hidden-service traceback",
                    legal::CrimeCategory::kChildExploitation, court);

  // 1. Facts from the seized server.
  inv.add_fact({legal::FactKind::kContrabandObserved, 2.0,
                "contraband hosted on the seized server"});
  inv.add_fact({legal::FactKind::kAccountLinked, 2.0,
                "target account fetches through an anonymity network"});
  ASSERT_EQ(inv.current_standard().standard,
            legal::StandardOfProof::kProbableCause);

  // 2. The collection step needs a court order (engine), and the court
  //    grants one on these facts.
  const auto determination =
      legal::ComplianceEngine{}.evaluate(tornet::collection_scenario());
  ASSERT_EQ(determination.required_process, legal::ProcessKind::kCourtOrder);

  legal::ProcessScope scope;
  scope.data_kinds = {legal::DataKind::kAddressing};
  scope.locations = {"suspect-isp"};
  scope.crime = "receipt of child pornography";
  const auto order =
      inv.apply_for(legal::ProcessKind::kCourtOrder, scope, SimTime::zero());
  ASSERT_TRUE(order.ok()) << order.status();

  // 3. Run the experiment.
  tornet::TracebackConfig cfg;
  cfg.pn_degree = 9;
  cfg.num_decoys = 5;
  cfg.seed = 777;
  const auto result = tornet::run_traceback(cfg).value();
  ASSERT_TRUE(result.suspect_detected);
  ASSERT_EQ(result.decoys_flagged, 0u);

  // 4. The rate series goes into the evidence locker, custody-chained.
  evidence::EvidenceLocker locker(to_bytes("case-100-key"));
  Bytes series;
  for (const auto& flow : result.flows) {
    series.push_back(flow.detection.detected ? 1 : 0);
  }
  const auto item = locker.deposit("despread verdicts per candidate flow",
                                   series, "Agent T", SimTime::from_sec(10));
  ASSERT_TRUE(locker.all_verify());
  EXPECT_EQ(locker.find(item)->chain().size(), 1u);

  // 5. Record the acquisition; audit; report.
  const auto acq = inv.acquire(tornet::collection_scenario(),
                               "per-flow rate collection at the ISP",
                               inv.authority(order.value()));
  EXPECT_TRUE(acq.lawful);

  const auto audit = inv.admissibility_audit();
  EXPECT_EQ(audit.suppressed_count, 0u);

  const auto report = investigation::case_report(inv);
  EXPECT_NE(report.find("hidden-service traceback"), std::string::npos);
  EXPECT_NE(report.find("GRANTED"), std::string::npos);
  EXPECT_NE(report.find("per-flow rate collection"), std::string::npos);
  EXPECT_NE(report.find("admissible: 1"), std::string::npos);
}

TEST(FullCaseTest, SameCaseWithoutTheOrderCollapsesAtAudit) {
  Court court;
  Investigation inv(CaseId{101}, "the shortcut that fails",
                    legal::CrimeCategory::kChildExploitation, court);

  // Skip the court entirely; collect anyway; derive a search from it.
  const auto rates = inv.acquire(tornet::collection_scenario(),
                                 "rate collection, no process",
                                 legal::GrantedAuthority{});
  EXPECT_FALSE(rates.lawful);

  inv.add_fact({legal::FactKind::kIpAddressLinked, 0.0,
                "suspect identified from the (unlawful) collection"});
  inv.add_fact({legal::FactKind::kSubscriberIdentified, 0.0, "ISP return"});
  legal::ProcessScope scope;
  scope.locations = {"suspect-home"};
  scope.crime = "receipt of child pornography";
  const auto warrant = inv.apply_for(legal::ProcessKind::kSearchWarrant, scope,
                                     SimTime::from_sec(100));
  ASSERT_TRUE(warrant.ok());  // the court doesn't know the taint...

  const auto device = inv.acquire(
      legal::Scenario{}
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "home search derived from tainted lead",
      inv.authority(warrant.value()), {rates.evidence});

  // ...but the suppression audit does: the derived search falls as fruit.
  const auto audit = inv.admissibility_audit();
  EXPECT_TRUE(audit.is_suppressed(rates.evidence));
  EXPECT_TRUE(audit.is_suppressed(device.evidence));
  EXPECT_EQ(audit.suppressed_count, 2u);
}

}  // namespace
}  // namespace lexfor
