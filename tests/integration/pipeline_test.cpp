// Cross-module integration: the full acquisition pipeline.
//
//   network traffic -> authority-scoped capture -> serialized trace ->
//   evidence locker (hashed, custody-chained) -> investigation record ->
//   admissibility audit.
//
// Two runs: one lawful (court order held for a pen/trap), one unlawful
// (full content captured under... nothing), verifying the evidence flows
// through identically but the audit separates them.

#include <gtest/gtest.h>

#include "capture/capture.h"
#include "evidence/locker.h"
#include "investigation/investigation.h"
#include "netsim/flow.h"
#include "netsim/topology.h"
#include "netsim/trace.h"

namespace lexfor {
namespace {

using capture::CaptureDevice;
using capture::CaptureMode;

legal::GrantedAuthority make_authority(legal::ProcessKind kind) {
  legal::LegalProcess p;
  p.id = ProcessId{1};
  p.kind = kind;
  p.issued_at = SimTime::zero();
  return legal::GrantedAuthority{p};
}

// Drives traffic from a campus host to the internet past an ISP tap.
netsim::Trace capture_trace(CaptureMode mode, legal::ProcessKind held) {
  netsim::Network net{31337};
  const auto campus = netsim::make_campus(net, 3);

  auto device = CaptureDevice::create(mode, make_authority(held),
                                      capture::minimum_process(mode),
                                      campus.isp, "isp", SimTime::zero())
                    .value();
  EXPECT_TRUE(device.attach(net).ok());

  netsim::FlowConfig flow;
  flow.id = FlowId{1};
  flow.src = campus.hosts[0];
  flow.dst = campus.internet;
  flow.packets_per_sec = 200.0;
  flow.stop = SimTime::from_sec(2.0);
  netsim::FlowSource source(net, flow, netsim::ArrivalProcess::kPoisson, 3);
  source.start();
  net.run();

  netsim::Trace trace;
  for (const auto& rec : device.records()) {
    trace.add(netsim::TraceRecord{rec.at, rec.header, rec.payload});
  }
  return trace;
}

TEST(PipelineTest, PenTrapTraceCarriesNoPayloadEndToEnd) {
  const auto trace =
      capture_trace(CaptureMode::kPenTrap, legal::ProcessKind::kCourtOrder);
  ASSERT_GT(trace.size(), 100u);
  EXPECT_EQ(trace.payload_bytes(), 0u);

  // Serialize, store as evidence, re-read: still no payload.
  const Bytes wire = trace.serialize();
  evidence::EvidenceLocker locker(to_bytes("case-key"));
  const auto id = locker.deposit("pen/trap trace", wire, "Agent P",
                                 SimTime::from_sec(10));
  ASSERT_TRUE(locker.all_verify());

  const auto reread =
      netsim::Trace::deserialize(locker.find(id)->content()).value();
  EXPECT_EQ(reread.size(), trace.size());
  EXPECT_EQ(reread.payload_bytes(), 0u);
}

TEST(PipelineTest, FullContentTraceRoundTripsThroughEvidence) {
  const auto trace = capture_trace(CaptureMode::kFullContent,
                                   legal::ProcessKind::kWiretapOrder);
  ASSERT_GT(trace.size(), 100u);
  EXPECT_GT(trace.payload_bytes(), 0u);

  evidence::EvidenceLocker locker(to_bytes("case-key"));
  const auto id = locker.deposit("Title III capture", trace.serialize(),
                                 "Agent Q", SimTime::from_sec(10));
  const auto copy = locker.image(id, "Analyst R", SimTime::from_sec(20)).value();
  ASSERT_TRUE(locker.all_verify());

  const auto reread =
      netsim::Trace::deserialize(locker.find(copy)->content()).value();
  EXPECT_EQ(reread.payload_bytes(), trace.payload_bytes());
}

TEST(PipelineTest, TamperedEvidenceFailsBeforeItReachesCourt) {
  const auto trace =
      capture_trace(CaptureMode::kPenTrap, legal::ProcessKind::kCourtOrder);
  evidence::EvidenceLocker locker(to_bytes("case-key"));
  const auto id = locker.deposit("trace", trace.serialize(), "Agent P",
                                 SimTime::zero());
  locker.mutable_item_for_test(id)->tamper_with_content_for_test(20, 0xFF);

  // Both integrity layers catch it: the custody hash and the trace CRC.
  EXPECT_FALSE(locker.all_verify());
  EXPECT_FALSE(netsim::Trace::deserialize(locker.find(id)->content()).ok());
}

TEST(PipelineTest, AuditSeparatesLawfulFromUnlawfulCollections) {
  investigation::Court court;
  investigation::Investigation inv(CaseId{9}, "pipeline case",
                                   legal::CrimeCategory::kIntrusion, court);

  // Lawful: pen/trap collection under a court order.
  inv.add_fact({legal::FactKind::kWitnessStatement, 1.0, "victim report"});
  inv.add_fact({legal::FactKind::kIpAddressLinked, 1.0, "attack source IP"});
  const auto order =
      inv.apply_for(legal::ProcessKind::kCourtOrder, {}, SimTime::zero())
          .value();
  const auto lawful = inv.acquire(
      legal::Scenario{}
          .named("pen/trap at ISP")
          .acquiring(legal::DataKind::kAddressing)
          .located(legal::DataState::kInTransit)
          .when(legal::Timing::kRealTime),
      "header trace", inv.authority(order));

  // Unlawful: full content with no order at all.
  const auto unlawful = inv.acquire(
      legal::Scenario{}
          .named("full capture, no process")
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kInTransit)
          .when(legal::Timing::kRealTime),
      "payload trace", legal::GrantedAuthority{});

  const auto audit = inv.admissibility_audit();
  EXPECT_FALSE(audit.is_suppressed(lawful.evidence));
  EXPECT_TRUE(audit.is_suppressed(unlawful.evidence));
}

}  // namespace
}  // namespace lexfor
