#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "check/differential.h"
#include "obs/flight.h"

namespace lexfor::check {
namespace {

// check::report_to_flight bridges fuzz violations into the obs flight
// recorder; a real violation cannot be forced (the oracles agree), so
// these tests route synthetic ones.
TEST(CheckFlightRoutingTest, DisarmedRecorderIgnoresViolations) {
  obs::flight_recorder().disarm();
  const std::uint64_t before = obs::flight_recorder().dumps();
  report_to_flight(Violation{"synthetic-rule", "detail", "row", 1, 2});
  EXPECT_EQ(obs::flight_recorder().dumps(), before);
}

TEST(CheckFlightRoutingTest, ArmedRecorderDumpsWithRuleInReason) {
  const std::string path =
      ::testing::TempDir() + "lexfor_check_flight.jsonl";
  std::remove(path.c_str());
  obs::FlightRecorderConfig cfg;
  cfg.path = path;
  cfg.dump_on_error = false;
  obs::flight_recorder().configure(cfg);
  const std::uint64_t before = obs::flight_recorder().dumps();

  report_to_flight(Violation{"lint-agreement", "synthetic disagreement",
                             "scene-row", 7, 3});
  obs::flight_recorder().disarm();

#if LEXFOR_OBS
  EXPECT_EQ(obs::flight_recorder().dumps(), before + 1);
  std::ifstream is(path);
  std::string first_line;
  ASSERT_TRUE(std::getline(is, first_line));
  EXPECT_NE(
      first_line.find("\"reason\":\"check-violation:lint-agreement\""),
      std::string::npos);
#else
  EXPECT_EQ(obs::flight_recorder().dumps(), before);
#endif
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lexfor::check
