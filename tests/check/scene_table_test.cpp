// Generated per-scene expectations: every row of LEXFOR_SCENE_LIST is
// checked against the engine and the linter.  A wrong expected verdict
// in the table fails here by scene id — no hand-written test per scene.

#include "legal/scene_table.h"

#include <gtest/gtest.h>

#include "check/differential.h"
#include "legal/engine.h"
#include "lint/linter.h"
#include "lint/passes.h"

namespace lexfor::legal::library {
namespace {

TEST(SceneTableTest, TableIsTheCompleteRoster) {
  EXPECT_EQ(scenes().size(), kSceneCount);
  EXPECT_GE(kSceneCount, 40u);
}

TEST(SceneTableTest, EngineDerivesEveryExpectedVerdict) {
  const ComplianceEngine engine;
  for (const auto& scene : scenes()) {
    const Determination d = engine.evaluate(scene.build());
    EXPECT_EQ(d.needs_process, scene.expects_process())
        << scene.id << ": " << d.report();
    EXPECT_EQ(d.required_process, scene.expected_process)
        << scene.id << ": " << d.report();
  }
}

TEST(SceneTableTest, ProcesslessPlanLintsDirtyExactlyWhenProcessIsExpected) {
  const lint::PlanLinter linter;
  for (const auto& scene : scenes()) {
    const lint::LintReport report = linter.lint(
        check::single_step_plan(scene.build(), ProcessKind::kNone));
    EXPECT_EQ(report.count(lint::kRuleMissingProcess),
              scene.expects_process() ? 1u : 0u)
        << scene.id;
  }
}

TEST(SceneTableTest, PlanHoldingTheExpectedInstrumentNeverLacksProcess) {
  const lint::PlanLinter linter;
  for (const auto& scene : scenes()) {
    if (!scene.expects_process()) continue;
    const lint::LintReport report = linter.lint(
        check::single_step_plan(scene.build(), scene.expected_process));
    EXPECT_EQ(report.count(lint::kRuleMissingProcess), 0u) << scene.id;
    EXPECT_EQ(report.count(lint::kRuleExpiredAuthority), 0u) << scene.id;
  }
}

TEST(SceneTableTest, FindSceneResolvesEveryIdAndRejectsUnknowns) {
  for (const auto& scene : scenes()) {
    const SceneDescriptor* found = find_scene(scene.id);
    ASSERT_NE(found, nullptr) << scene.id;
    EXPECT_EQ(found, &scene);
  }
  EXPECT_EQ(find_scene("no_such_scene"), nullptr);
}

TEST(SceneTableTest, MarkdownTableListsEveryScene) {
  const std::string table = scene_table_markdown();
  for (const auto& scene : scenes()) {
    EXPECT_NE(table.find("`" + std::string(scene.id) + "`"), std::string::npos)
        << scene.id;
    EXPECT_NE(table.find(scene.summary), std::string::npos) << scene.id;
  }
  // One header, one separator, one row per scene.
  std::size_t rows = 0;
  for (const char c : table) rows += (c == '\n');
  EXPECT_EQ(rows, kSceneCount + 2);
}

TEST(SceneTableTest, BuildersProduceTheirOwnDescriptorNames) {
  // Display names are free-form, but every builder must produce a named,
  // self-describing scenario distinct from its neighbors'.
  for (const auto& scene : scenes()) {
    const Scenario s = scene.build();
    EXPECT_FALSE(s.name.empty()) << scene.id;
  }
}

}  // namespace
}  // namespace lexfor::legal::library
