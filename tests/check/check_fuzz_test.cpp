// The tier-1 consistency gate: the differential checker and the
// metamorphic rules must find ZERO disagreements across the library
// corpus plus at least 10k seeded random scenarios.  The trial count is
// tunable via LEXFOR_CHECK_TRIALS (tools/run_static_analysis.sh raises
// it for the sanitizer sweep); any failure prints the offending
// scenario as a scene-table row that replays the exact trial.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "check/rules.h"
#include "legal/scene_table.h"

namespace lexfor::check {
namespace {

std::size_t trials_from_env(std::size_t fallback) {
  const char* env = std::getenv("LEXFOR_CHECK_TRIALS");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? fallback : static_cast<std::size_t>(parsed);
}

TEST(CheckFuzzTest, DifferentialSweepFindsNoDisagreements) {
  CheckOptions options;
  options.trials = trials_from_env(10'000);
  const CheckReport report = run_differential(options);

  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.trials, options.trials);
  // Every trial walks 1 + walk_steps scenarios, on top of the library
  // corpus.
  EXPECT_EQ(report.scenarios_checked,
            options.trials * (1 + options.walk_steps) +
                legal::library::kSceneCount);
  EXPECT_GT(report.comparisons, report.scenarios_checked);
}

TEST(CheckFuzzTest, MetamorphicRulesHoldAcrossTheDoctrineSpace) {
  CheckOptions options;
  // The rules re-derive several verdict/lint/suppression comparisons
  // per scenario, so the sweep is bounded tighter than the differential
  // walk; the static-analysis harness raises both.
  options.trials = trials_from_env(10'000) / 10;
  const CheckReport report = run_rules(options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckFuzzTest, SweepIsDeterministicForAFixedSeed) {
  CheckOptions options;
  options.trials = 50;
  const CheckReport a = run_all(options);
  const CheckReport b = run_all(options);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.scenarios_checked, b.scenarios_checked);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(CheckFuzzTest, DifferentSeedsStillAgree) {
  // The invariants are doctrine facts, not seed accidents.
  for (const std::uint64_t seed : {1ULL, 0xdecafULL, 0xffff0000ULL}) {
    CheckOptions options;
    options.seed = seed;
    options.trials = 200;
    const CheckReport report = run_all(options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.summary();
  }
}

}  // namespace
}  // namespace lexfor::check
