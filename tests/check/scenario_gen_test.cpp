#include "check/scenario_gen.h"

#include <gtest/gtest.h>

#include "legal/batch.h"

namespace lexfor::check {
namespace {

TEST(ScenarioGenTest, SameStreamReproducesTheSameScenario) {
  Rng a = Rng::sub_stream(42, 7);
  Rng b = Rng::sub_stream(42, 7);
  const legal::Scenario sa = ScenarioGen(a).generate("s");
  const legal::Scenario sb = ScenarioGen(b).generate("s");
  EXPECT_EQ(describe_scenario(sa), describe_scenario(sb));
  EXPECT_EQ(legal::fingerprint(sa), legal::fingerprint(sb));
}

TEST(ScenarioGenTest, DistinctStreamsDiverge) {
  // Not guaranteed for any single pair, but across 32 streams at least
  // two must differ unless the generator is broken.
  Rng base = Rng::sub_stream(42, 0);
  const std::string first = describe_scenario(ScenarioGen(base).generate("s"));
  bool diverged = false;
  for (std::uint64_t stream = 1; stream < 32 && !diverged; ++stream) {
    Rng rng = Rng::sub_stream(42, stream);
    diverged = describe_scenario(ScenarioGen(rng).generate("s")) != first;
  }
  EXPECT_TRUE(diverged);
}

TEST(ScenarioGenTest, MutateReportsWhetherTheScenarioChanged) {
  Rng rng = Rng::sub_stream(1, 1);
  ScenarioGen gen(rng);
  legal::Scenario s = gen.generate("walk");
  for (int step = 0; step < 200; ++step) {
    const std::string before = describe_scenario(s);
    const legal::ScenarioFingerprint fp = legal::fingerprint(s);
    const bool changed = gen.mutate(s);
    if (changed) {
      EXPECT_NE(legal::fingerprint(s), fp) << "step " << step;
    } else {
      EXPECT_EQ(describe_scenario(s), before) << "step " << step;
    }
  }
}

TEST(ScenarioGenTest, DescribeRendersOnlyNonDefaultFields) {
  const legal::Scenario def = legal::Scenario{}.named("blank");
  EXPECT_EQ(describe_scenario(def), "Scenario{}.named(\"blank\")");

  legal::Scenario s = legal::Scenario{}
                          .named("tap")
                          .acquiring(legal::DataKind::kAddressing)
                          .exigent()
                          .in_jurisdiction("CA");
  const std::string row = describe_scenario(s);
  EXPECT_NE(row.find(".exigent()"), std::string::npos);
  EXPECT_NE(row.find("\"CA\""), std::string::npos);
  EXPECT_EQ(row.find(".shared()"), std::string::npos);
}

TEST(ScenarioGenTest, GeneratorCoversUnknownJurisdictions) {
  // The pool includes codes outside the statute database; over enough
  // draws both a known and an unknown code must appear.
  bool saw_known = false;
  bool saw_unknown = false;
  for (std::uint64_t t = 0; t < 200 && !(saw_known && saw_unknown); ++t) {
    Rng rng = Rng::sub_stream(9, t);
    const legal::Scenario s = ScenarioGen(rng).generate("j");
    if (s.jurisdiction == "XX" || s.jurisdiction == "ZZ") saw_unknown = true;
    if (s.jurisdiction == "US" || s.jurisdiction == "CA") saw_known = true;
  }
  EXPECT_TRUE(saw_known);
  EXPECT_TRUE(saw_unknown);
}

}  // namespace
}  // namespace lexfor::check
