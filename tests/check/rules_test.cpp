#include "check/rules.h"

#include <gtest/gtest.h>

#include <set>

#include "check/scenario_gen.h"
#include "legal/scenario_library.h"

namespace lexfor::check {
namespace {

TEST(RulesTest, DefaultRegistryCarriesTheFiveInvariantsUniquelyNamed) {
  const auto rules = default_rules();
  ASSERT_EQ(rules.size(), 5u);
  std::set<std::string_view> names;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule->name().empty());
    EXPECT_TRUE(names.insert(rule->name()).second)
        << "duplicate rule name: " << rule->name();
  }
  EXPECT_TRUE(names.count("process-monotonicity"));
  EXPECT_TRUE(names.count("taint-monotonicity"));
}

TEST(RulesTest, SweepOverLibraryAndRandomScenariosIsCleanAndDeterministic) {
  CheckOptions options;
  options.trials = 25;
  const CheckReport a = run_rules(options);
  EXPECT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.trials, options.trials);
  EXPECT_EQ(a.scenarios_checked,
            options.trials + legal::library::kSceneCount);
  EXPECT_GT(a.comparisons, 0u);

  const CheckReport b = run_rules(options);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(RulesTest, InjectedViolationsPropagateWithSeedAndTrialStamped) {
  class AlwaysFires final : public Rule {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "always-fires";
    }
    void check(const legal::Scenario& base, const legal::BatchEvaluator&,
               Rng&, CheckReport& report) const override {
      ++report.comparisons;
      report.violations.push_back(
          Violation{"always-fires", "synthetic", describe_scenario(base)});
    }
  };

  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<AlwaysFires>());
  CheckOptions options;
  options.seed = 77;
  options.trials = 4;
  options.max_violations = 0;  // collect everything
  const CheckReport report = run_rules(rules, options);

  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(),
            options.trials + legal::library::kSceneCount);
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.rule, "always-fires");
    EXPECT_EQ(v.seed, 77u);
    EXPECT_FALSE(v.scenario_row.empty());
  }
  // The summary names the rule and carries the repro row.
  EXPECT_NE(report.summary().find("always-fires"), std::string::npos);
  EXPECT_NE(report.summary().find("Scenario{}"), std::string::npos);
}

TEST(RulesTest, MaxViolationsBoundsTheSweep) {
  class AlwaysFires final : public Rule {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "always-fires";
    }
    void check(const legal::Scenario& base, const legal::BatchEvaluator&,
               Rng&, CheckReport& report) const override {
      report.violations.push_back(
          Violation{"always-fires", "synthetic", describe_scenario(base)});
    }
  };

  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<AlwaysFires>());
  CheckOptions options;
  options.trials = 1000;
  options.max_violations = 3;
  const CheckReport report = run_rules(rules, options);
  EXPECT_EQ(report.violations.size(), options.max_violations);
}

TEST(RulesTest, ReportMergeAccumulates) {
  CheckReport a;
  a.trials = 2;
  a.scenarios_checked = 3;
  a.comparisons = 5;
  a.violations.push_back(Violation{"r", "d", "row"});
  CheckReport b;
  b.trials = 1;
  b.comparisons = 7;
  b.merge(a);
  EXPECT_EQ(b.trials, 3u);
  EXPECT_EQ(b.scenarios_checked, 3u);
  EXPECT_EQ(b.comparisons, 12u);
  ASSERT_EQ(b.violations.size(), 1u);
  EXPECT_FALSE(b.ok());
}

}  // namespace
}  // namespace lexfor::check
