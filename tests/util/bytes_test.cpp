#include "util/bytes.h"

#include <gtest/gtest.h>

namespace lexfor {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "deadbeef007f");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, FromHexAcceptsUppercase) {
  const auto b = from_hex("DEADBEEF");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(to_hex(*b), "deadbeef");
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(BytesTest, FromHexRejectsNonHexChars) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(BytesTest, EmptyHexIsEmptyBytes) {
  const auto b = from_hex("");
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->empty());
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(BytesTest, StringRoundTrip) {
  const std::string s = "forensic evidence";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(BytesTest, IntegerAppendReadRoundTrip) {
  Bytes buf;
  append_u16(buf, 0x1234);
  append_u32(buf, 0xDEADBEEF);
  append_u64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf.size(), 14u);
  EXPECT_EQ(read_u16(buf, 0), 0x1234);
  EXPECT_EQ(read_u32(buf, 2), 0xDEADBEEFu);
  EXPECT_EQ(read_u64(buf, 6), 0x0123456789ABCDEFULL);
}

TEST(BytesTest, IntegersAreLittleEndian) {
  Bytes buf;
  append_u32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(BytesTest, FixedEndianLoadsReadBothByteOrders) {
  const std::uint8_t raw[8] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(load_le32(raw), 0x04030201u);
  EXPECT_EQ(load_be32(raw), 0x01020304u);
  EXPECT_EQ(load_le64(raw), 0x0807060504030201ULL);
  EXPECT_EQ(load_be64(raw), 0x0102030405060708ULL);
}

TEST(BytesTest, FixedEndianLoadsWorkAtUnalignedOffsets) {
  std::uint8_t raw[9] = {0xFF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  // +1 is misaligned for a uint32_t*; the memcpy idiom must not care.
  EXPECT_EQ(load_le32(raw + 1), 0x04030201u);
  EXPECT_EQ(load_be64(raw + 1), 0x0102030405060708ULL);
}

TEST(BytesTest, FixedEndianStoresRoundTripThroughLoads) {
  std::uint8_t out[4];
  store_le32(out, 0xDEADBEEFu);
  EXPECT_EQ(load_le32(out), 0xDEADBEEFu);
  EXPECT_EQ(out[0], 0xEF);
  store_be32(out, 0xDEADBEEFu);
  EXPECT_EQ(load_be32(out), 0xDEADBEEFu);
  EXPECT_EQ(out[0], 0xDE);
}

}  // namespace
}  // namespace lexfor
