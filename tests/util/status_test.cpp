#include "util/status.h"

#include <gtest/gtest.h>

namespace lexfor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status s = PermissionDenied("needs a warrant");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "needs a warrant");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(to_string(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_EQ(to_string(StatusCode::kPermissionDenied), "PERMISSION_DENIED");
  EXPECT_EQ(to_string(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(to_string(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_EQ(to_string(StatusCode::kInternal), "INTERNAL");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusTest, ResourceExhaustedHelper) {
  const Status s = ResourceExhausted("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "queue full");
}

TEST(StatusTest, StreamOperatorIncludesCodeAndMessage) {
  std::ostringstream os;
  os << NotFound("missing thing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good = 7;
  Result<int> bad = NotFound("nope");
  EXPECT_EQ(good.value_or(0), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace lexfor
