#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace lexfor {
namespace {

TEST(SimTimeTest, ConversionsAreConsistent) {
  const SimTime t = SimTime::from_ms(1500);
  EXPECT_EQ(t.us, 1500000);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.millis(), 1500.0);
}

TEST(SimTimeTest, FromSecRoundsToMicros) {
  const SimTime t = SimTime::from_sec(0.000001);
  EXPECT_EQ(t.us, 1);
}

TEST(SimTimeTest, ComparisonOperators) {
  const SimTime a = SimTime::from_us(10);
  const SimTime b = SimTime::from_us(20);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, SimTime::from_us(10));
}

TEST(SimTimeTest, ArithmeticWithDurations) {
  const SimTime t = SimTime::from_ms(100);
  const SimDuration d = SimDuration::from_ms(25);
  EXPECT_EQ((t + d).us, 125000);
  EXPECT_EQ((t - d).us, 75000);
  const SimDuration diff = (t + d) - t;
  EXPECT_EQ(diff.us, d.us);
}

TEST(SimTimeTest, DurationArithmetic) {
  const SimDuration a = SimDuration::from_ms(10);
  const SimDuration b = SimDuration::from_ms(5);
  EXPECT_EQ((a + b).us, 15000);
  EXPECT_EQ((a * 3).us, 30000);
  EXPECT_LT(b, a);
}

TEST(SimTimeTest, ZeroIsOrigin) {
  EXPECT_EQ(SimTime::zero().us, 0);
  EXPECT_DOUBLE_EQ(SimTime::zero().seconds(), 0.0);
}

}  // namespace
}  // namespace lexfor
