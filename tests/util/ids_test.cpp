#include "util/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lexfor {
namespace {

TEST(IdsTest, DefaultConstructedIdIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
}

TEST(IdsTest, ExplicitIdIsValid) {
  NodeId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(IdsTest, EqualityComparesValues) {
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
}

TEST(IdsTest, OrderingComparesValues) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_FALSE(NodeId{2} < NodeId{1});
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<EvidenceId, ProcessId>);
}

TEST(IdsTest, GeneratorIssuesMonotonicIds) {
  IdGenerator<PacketId> gen;
  const auto a = gen.next();
  const auto b = gen.next();
  const auto c = gen.next();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(gen.issued(), 3u);
}

TEST(IdsTest, GeneratorStartsAtGivenValue) {
  IdGenerator<PacketId> gen{100};
  EXPECT_EQ(gen.next().value(), 100u);
  EXPECT_EQ(gen.next().value(), 101u);
}

TEST(IdsTest, IdsHashIntoUnorderedContainers) {
  std::unordered_set<EvidenceId> set;
  set.insert(EvidenceId{1});
  set.insert(EvidenceId{2});
  set.insert(EvidenceId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(EvidenceId{1}));
  EXPECT_FALSE(set.count(EvidenceId{3}));
}

TEST(IdsTest, StreamOperatorPrintsValue) {
  std::ostringstream os;
  os << NodeId{5};
  EXPECT_EQ(os.str(), "#5");
}

}  // namespace
}  // namespace lexfor
