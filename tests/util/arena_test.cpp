#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace lexfor::util {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    void* p = arena.allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(ArenaTest, OverAlignedAllocationsAreAddressAligned) {
  // The SIMD despread lane allocates 64-byte (cache-line) buffers: the
  // ADDRESS must be aligned even when the chunk base is only 16-byte
  // aligned, and even mid-chunk after odd-sized neighbours.
  Arena arena;
  for (int i = 0; i < 200; ++i) {
    (void)arena.allocate(static_cast<std::size_t>(1 + i % 7), 1);
    for (std::size_t align : {32u, 64u, 128u}) {
      void* p = arena.allocate_aligned(24, align);
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align << " iteration=" << i;
    }
  }
}

TEST(ArenaTest, AlignedArraysSpanChunkBoundaries) {
  // Force chunk turnover with large aligned arrays: every array must be
  // aligned and fully writable wherever it lands.
  Arena arena(4096);
  for (int i = 0; i < 32; ++i) {
    double* lane = arena.alloc_array_aligned<double>(300, 64);
    ASSERT_NE(lane, nullptr);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(lane) % 64, 0u);
    for (int j = 0; j < 300; ++j) lane[j] = i * 1000.0 + j;
    for (int j = 0; j < 300; ++j) ASSERT_EQ(lane[j], i * 1000.0 + j);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(ArenaTest, AlignedAllocationSurvivesReset) {
  Arena arena;
  (void)arena.allocate(13, 1);  // leave the bump offset unaligned
  void* first = arena.allocate_aligned(512, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first) % 64, 0u);
  arena.reset();
  (void)arena.allocate(5, 1);
  void* again = arena.allocate_aligned(512, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(again) % 64, 0u);
}

TEST(ArenaTest, AllocArrayIsWritable) {
  Arena arena;
  constexpr std::size_t kN = 1000;
  std::uint32_t* a = arena.alloc_array<std::uint32_t>(kN);
  for (std::size_t i = 0; i < kN; ++i) a[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], static_cast<std::uint32_t>(i));
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena;
  std::vector<std::uint8_t*> blocks;
  for (int i = 0; i < 100; ++i) {
    auto* b = arena.alloc_array<std::uint8_t>(17);
    std::fill(b, b + 17, static_cast<std::uint8_t>(i));
    blocks.push_back(b);
  }
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_EQ(blocks[static_cast<std::size_t>(i)][j],
                static_cast<std::uint8_t>(i));
    }
  }
}

TEST(ArenaTest, GrowsBeyondOneChunk) {
  Arena arena;
  // Allocate well past the default chunk size.
  for (int i = 0; i < 64; ++i) {
    ASSERT_NE(arena.alloc_array<std::uint8_t>(8192), nullptr);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnChunk) {
  Arena arena;
  auto* big = arena.alloc_array<std::uint8_t>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[(1 << 20) - 1], 2);
}

TEST(ArenaTest, ResetRetainsReservedMemory) {
  Arena arena;
  for (int i = 0; i < 64; ++i) (void)arena.alloc_array<std::uint64_t>(1024);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
  // Memory is reusable after reset.
  auto* p = arena.alloc_array<std::uint64_t>(1024);
  ASSERT_NE(p, nullptr);
  p[0] = 42;
  EXPECT_EQ(p[0], 42u);
}

TEST(PoolTest, AcquireReturnsDistinctHandles) {
  Pool<int> pool;
  std::set<Pool<int>::Handle> handles;
  for (int i = 0; i < 100; ++i) {
    const auto h = pool.acquire();
    ASSERT_NE(h, Pool<int>::kNull);
    EXPECT_TRUE(handles.insert(h).second) << "duplicate live handle";
    pool[h] = i;
  }
  EXPECT_EQ(pool.live(), 100u);
}

TEST(PoolTest, ReleaseRecyclesSlots) {
  Pool<int> pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  // LIFO freelist: the released slot comes back first; capacity is flat.
  const auto c = pool.acquire();
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolTest, HandlesStayValidAcrossGrowth) {
  Pool<std::uint64_t> pool;
  std::vector<Pool<std::uint64_t>::Handle> handles;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto h = pool.acquire();
    pool[h] = i * i;
    handles.push_back(h);
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(pool[handles[static_cast<std::size_t>(i)]], i * i);
  }
}

TEST(PoolTest, SlotsHonourOverAlignedTypes) {
  // The documented alignment guarantee: slots of an over-aligned T all
  // sit on alignof(T) boundaries, across growth.
  struct alignas(64) Lane {
    double acc[8];
  };
  Pool<Lane> pool;
  std::vector<Pool<Lane>::Handle> handles;
  for (int i = 0; i < 257; ++i) handles.push_back(pool.acquire());
  for (const auto h : handles) {
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(&pool[h]) % alignof(Lane), 0u);
  }
}

TEST(PoolTest, ChurnHoldsCapacityFlat) {
  Pool<int> pool;
  std::vector<Pool<int>::Handle> live;
  for (int i = 0; i < 16; ++i) live.push_back(pool.acquire());
  const std::size_t cap = pool.capacity();
  for (int round = 0; round < 1000; ++round) {
    pool.release(live.back());
    live.pop_back();
    live.push_back(pool.acquire());
  }
  EXPECT_EQ(pool.capacity(), cap);
}

}  // namespace
}  // namespace lexfor::util
