#include "util/small_fn.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

namespace lexfor::util {
namespace {

TEST(SmallFnTest, DefaultIsEmpty) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, InvokesInlineCallable) {
  int calls = 0;
  SmallFn fn = [&calls] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFnTest, MoveTransfersOwnership) {
  int calls = 0;
  SmallFn a = [&calls] { ++calls; };
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFnTest, MoveAssignReplacesExisting) {
  int first = 0;
  int second = 0;
  SmallFn fn = [&first] { ++first; };
  fn = SmallFn{[&second] { ++second; }};
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(SmallFnTest, HoldsMoveOnlyCallable) {
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  SmallFn fn = [p = std::move(owned), &seen] { seen = *p; };
  fn();
  EXPECT_EQ(seen, 7);
}

// A callable that counts its live instances, to prove SmallFn destroys
// exactly what it constructs — across moves and heap fallback alike.
struct Counted {
  static int live;
  Counted() { ++live; }
  Counted(const Counted&) { ++live; }
  Counted(Counted&&) noexcept { ++live; }
  ~Counted() { --live; }
  void operator()() const {}
};
int Counted::live = 0;

TEST(SmallFnTest, DestroysInlineCallable) {
  ASSERT_EQ(Counted::live, 0);
  {
    SmallFn fn = Counted{};
    EXPECT_EQ(Counted::live, 1);
    SmallFn moved = std::move(fn);
    EXPECT_EQ(Counted::live, 1);
    moved();
  }
  EXPECT_EQ(Counted::live, 0);
}

// Padded past kInlineBytes so the callable takes the heap path.
struct BigCounted : Counted {
  std::array<std::byte, SmallFn::kInlineBytes + 16> pad{};
};

TEST(SmallFnTest, HeapFallbackForLargeCallable) {
  static_assert(sizeof(BigCounted) > SmallFn::kInlineBytes);
  ASSERT_EQ(Counted::live, 0);
  {
    SmallFn fn = BigCounted{};
    EXPECT_EQ(Counted::live, 1);
    // Heap path moves by pointer swap: still exactly one live instance.
    SmallFn moved = std::move(fn);
    EXPECT_EQ(Counted::live, 1);
    moved();
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(SmallFnTest, LargeCaptureStateSurvivesMoves) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes: heap fallback
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3;
  std::uint64_t sum = 0;
  SmallFn fn = [big, &sum] {
    for (const auto v : big) sum += v;
  };
  SmallFn moved = std::move(fn);
  SmallFn again;
  again = std::move(moved);
  again();
  EXPECT_EQ(sum, 360u);
}

// Trivially copyable captures ride the memcpy relocation path; this is
// the calendar queue's hot case, exercised here across a vector
// reallocation storm.
TEST(SmallFnTest, TriviallyRelocatableSurvivesVectorGrowth) {
  std::vector<SmallFn> fns;
  static int total;
  total = 0;
  for (int i = 0; i < 1000; ++i) {
    fns.emplace_back([i] { total += i; });
  }
  for (auto& fn : fns) fn();
  EXPECT_EQ(total, 999 * 1000 / 2);
}

}  // namespace
}  // namespace lexfor::util
