#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace lexfor::util {
namespace {

TEST(LruCacheTest, GetReturnsPutValue) {
  ShardedLruCache<int, std::string> cache{8, 2};
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "one");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  ShardedLruCache<int, std::string> cache{8, 1};
  cache.put(1, "one");
  cache.put(1, "uno");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(1), "uno");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so eviction order is fully deterministic.
  ShardedLruCache<int, int> cache{3, 1};
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  // Touch 1 so 2 becomes the LRU entry.
  EXPECT_TRUE(cache.get(1).has_value());
  cache.put(4, 40);
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCacheTest, CapacitySplitsAcrossShards) {
  ShardedLruCache<int, int> cache{64, 16};
  EXPECT_EQ(cache.shard_count(), 16u);
  for (int i = 0; i < 1000; ++i) cache.put(i, i);
  // Each of the 16 shards holds at most 4 entries.
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(LruCacheTest, ClearEmptiesEveryShard) {
  ShardedLruCache<int, int> cache{32, 4};
  for (int i = 0; i < 20; ++i) cache.put(i, i);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(3).has_value());
}

TEST(LruCacheTest, ConcurrentMixedAccessIsSafe) {
  ShardedLruCache<int, int> cache{256, 8};
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 37 + i) % 128;
        cache.put(key, key * 2);
        const auto hit = cache.get(key);
        if (hit.has_value()) {
          // Values are a pure function of the key, so any hit must be
          // coherent even under concurrent eviction.
          EXPECT_EQ(*hit, key * 2);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 256u);
}

}  // namespace
}  // namespace lexfor::util
