#include "util/string_util.h"

#include <gtest/gtest.h>

namespace lexfor {
namespace {

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitOfEmptyStringIsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "x:y:z";
  EXPECT_EQ(join(split(s, ':'), ":"), s);
}

TEST(StringUtilTest, TrimRemovesEdgesOnly) {
  EXPECT_EQ(trim("  hello world \t\n"), "hello world");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("warrant", "warr"));
  EXPECT_FALSE(starts_with("warrant", "court"));
  EXPECT_TRUE(ends_with("subpoena", "poena"));
  EXPECT_FALSE(ends_with("subpoena", "warrant"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(to_lower("Fourth AMENDMENT"), "fourth amendment");
  EXPECT_EQ(to_lower("123!?"), "123!?");
}

}  // namespace
}  // namespace lexfor
