#include "util/stats.h"

#include <gtest/gtest.h>

namespace lexfor {
namespace {

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MinMaxTracked) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(PercentileTest, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 9.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Sorted: 10, 20. p50 -> 15.
  EXPECT_DOUBLE_EQ(percentile({20, 10}, 50), 15.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsYieldZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(pearson({1, 2}, {1}), 0.0);           // length mismatch
  EXPECT_DOUBLE_EQ(pearson({1}, {1}), 0.0);              // too short
}

}  // namespace
}  // namespace lexfor
