#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

namespace lexfor {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng{9};
  std::array<int, 8> hits{};
  for (int i = 0; i < 8000; ++i) ++hits[rng.uniform(8)];
  for (int h : hits) EXPECT_GT(h, 800);  // ~1000 expected each
}

TEST(RngTest, UniformInIsInclusive) {
  Rng rng{11};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng{17};
  int heads = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) heads += rng.bernoulli(0.3);
  const double rate = static_cast<double>(heads) / kN;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng{19};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng{23};
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng{29};
  double sum = 0, sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng{31};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, PoissonHasRequestedMean) {
  Rng rng{37};
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(RngTest, GeometricMeanApproximatelyCorrect) {
  Rng rng{41};
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent{55};
  Rng child = parent.split();
  // Child stream differs from a freshly advanced parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng p1{99}, p2{99};
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1(), c2());
}

TEST(RngTest, ShufflePermutesAllElements) {
  Rng rng{61};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesSmallContainers) {
  Rng rng{67};
  std::vector<int> empty;
  std::vector<int> one{5};
  rng.shuffle(empty);
  rng.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, std::vector<int>{5});
}

}  // namespace
}  // namespace lexfor
