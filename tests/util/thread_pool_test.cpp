#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

namespace lexfor::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.size(), 2u);
  // Counter and notify both under the lock: the waiter can only see
  // ran == 32 after the final worker is done touching cv, so returning
  // (and destroying cv) is safe.
  int ran = 0;
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      const std::scoped_lock lock(mu);
      if (++ran == 32) cv.notify_one();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ran == 32; });
  EXPECT_EQ(ran, 32);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // join: every submitted task must have run
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleChunk) {
  ThreadPool pool{2};
  int calls = 0;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain runs inline as one chunk.
  std::vector<int> hit(5, 0);
  pool.parallel_for(hit.size(), 100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hit[i] = 1;
  });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 5);
}

TEST(ThreadPoolTest, QueueObserverSeesDepthChanges) {
  ThreadPool pool{1};
  std::atomic<std::size_t> max_depth{0};
  std::atomic<bool> saw_zero{false};
  pool.set_queue_observer([&](std::size_t depth) {
    std::size_t cur = max_depth.load();
    while (depth > cur && !max_depth.compare_exchange_weak(cur, depth)) {
    }
    if (depth == 0) saw_zero.store(true);
  });
  std::vector<std::atomic<int>> touched(64);
  pool.parallel_for(touched.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  EXPECT_GT(max_depth.load(), 0u);
  EXPECT_TRUE(saw_zero.load());
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace lexfor::util
