#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

namespace lexfor::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.size(), 2u);
  // Counter and notify both under the lock: the waiter can only see
  // ran == 32 after the final worker is done touching cv, so returning
  // (and destroying cv) is safe.
  int ran = 0;
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      const std::scoped_lock lock(mu);
      if (++ran == 32) cv.notify_one();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ran == 32; });
  EXPECT_EQ(ran, 32);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // join: every submitted task must have run
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleChunk) {
  ThreadPool pool{2};
  int calls = 0;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain runs inline as one chunk.
  std::vector<int> hit(5, 0);
  pool.parallel_for(hit.size(), 100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hit[i] = 1;
  });
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 5);
}

TEST(ThreadPoolTest, QueueObserverSeesDepthChanges) {
  ThreadPool pool{1};
  std::atomic<std::size_t> max_depth{0};
  std::atomic<bool> saw_zero{false};
  pool.set_queue_observer([&](std::size_t depth) {
    std::size_t cur = max_depth.load();
    while (depth > cur && !max_depth.compare_exchange_weak(cur, depth)) {
    }
    if (depth == 0) saw_zero.store(true);
  });
  std::vector<std::atomic<int>> touched(64);
  pool.parallel_for(touched.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  EXPECT_GT(max_depth.load(), 0u);
  EXPECT_TRUE(saw_zero.load());
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, TrySubmitAcceptsBelowTheBound) {
  ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::function<void()> task = [&] { ran.fetch_add(1); };
  EXPECT_TRUE(pool.try_submit(task, 8).ok());
  // The accepted task was moved out of the caller's slot and runs.
  while (ran.load() == 0) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, TrySubmitRefusesPastTheBoundAndKeepsTheTask) {
  ThreadPool pool{1};
  // Park the single worker so queued tasks stay queued.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool open = false;
  pool.submit([&] {
    std::unique_lock lock(gate_mu);
    gate_cv.wait(lock, [&] { return open; });
  });
  // Give the worker time to take the blocker off the queue.
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::function<void()> task = [&] { ran.fetch_add(1); };
  EXPECT_TRUE(pool.try_submit(task, 2).ok());
  task = [&] { ran.fetch_add(1); };
  EXPECT_TRUE(pool.try_submit(task, 2).ok());

  // Queue is at the bound: the third submit must refuse WITHOUT
  // consuming the task, so the caller can run it inline.
  task = [&] { ran.fetch_add(10); };
  const Status st = pool.try_submit(task, 2);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(static_cast<bool>(task));  // caller-runs degradation
  task();
  EXPECT_GE(ran.load(), 10);

  {
    const std::scoped_lock lock(gate_mu);
    open = true;
  }
  gate_cv.notify_one();
}

TEST(ThreadPoolTest, TrySubmitZeroDepthAlwaysRefuses) {
  ThreadPool pool{2};
  std::function<void()> task = [] {};
  EXPECT_EQ(pool.try_submit(task, 0).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(static_cast<bool>(task));
}

TEST(ThreadPoolTest, TrySubmitNotifiesTheQueueObserver) {
  ThreadPool pool{1};
  // Park the worker so the observed depth is deterministic.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool open = false;
  pool.submit([&] {
    std::unique_lock lock(gate_mu);
    gate_cv.wait(lock, [&] { return open; });
  });
  while (pool.queue_depth() != 0) std::this_thread::yield();

  std::atomic<std::size_t> last_depth{0};
  pool.set_queue_observer([&](std::size_t d) { last_depth.store(d); });
  std::function<void()> task = [] {};
  EXPECT_TRUE(pool.try_submit(task, 4).ok());
  EXPECT_EQ(last_depth.load(), 1u);

  {
    const std::scoped_lock lock(gate_mu);
    open = true;
  }
  gate_cv.notify_one();
}

}  // namespace
}  // namespace lexfor::util
