// serve::VerdictServer — admission accounting, verdict parity with the
// direct evaluator, overload shedding, and steady-state allocation
// behaviour.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "legal/scene_table.h"
#include "legal/table1.h"
#include "serve/fleet.h"

namespace lexfor::serve {
namespace {

[[nodiscard]] std::vector<std::uint8_t> frames_for(
    const std::vector<legal::Scenario>& scenarios) {
  std::vector<std::uint8_t> buf;
  std::uint64_t id = 1;
  for (const auto& s : scenarios) wire::encode_request(s, id++, buf);
  return buf;
}

[[nodiscard]] std::vector<wire::Response> decode_all(
    std::span<const std::uint8_t> buf) {
  std::vector<wire::Response> out;
  while (!buf.empty()) {
    const auto info = wire::peek_frame(buf);
    EXPECT_TRUE(info.ok());
    if (!info.ok()) break;
    wire::Response r;
    EXPECT_TRUE(
        wire::decode_response(buf.subspan(0, info.value().frame_len), r).ok());
    out.push_back(r);
    buf = buf.subspan(info.value().frame_len);
  }
  return out;
}

TEST(VerdictServerTest, AnswersEveryLibrarySceneLikeTheEvaluator) {
  ServerOptions opts;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  std::vector<legal::Scenario> scenarios;
  for (const auto& d : legal::library::scenes()) scenarios.push_back(d.build());
  for (const auto& scene : legal::table1::all_scenes()) {
    scenarios.push_back(scene.scenario);
  }

  const ServeStats stats = server.serve(conn, frames_for(scenarios));
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, scenarios.size());
  EXPECT_EQ(stats.accepted, scenarios.size());
  EXPECT_EQ(stats.responses, scenarios.size());
  EXPECT_EQ(stats.shed_queue_full, 0u);

  const auto responses = decode_all(conn.responses());
  ASSERT_EQ(responses.size(), scenarios.size());
  legal::BatchEvaluator direct(legal::BatchOptions{.use_shared_cache = false});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const legal::Determination d = direct.evaluate(scenarios[i]);
    EXPECT_EQ(responses[i].request_id, i + 1);
    EXPECT_EQ(responses[i].needs_process, d.needs_process) << i;
    EXPECT_EQ(responses[i].required_process, d.required_process) << i;
    EXPECT_EQ(responses[i].required_proof, d.required_proof) << i;
    EXPECT_EQ(responses[i].status, StatusCode::kOk);
  }
}

TEST(VerdictServerTest, ResponsesComeBackInRequestOrderAcrossWorkerCounts) {
  FleetOptions fopts;
  fopts.fleet_size = 512;
  const SyntheticFleet fleet(fopts);
  std::vector<std::uint8_t> wave;
  fleet.generate_wave(1, wave);

  for (const unsigned workers : {1u, 2u, 4u}) {
    ServerOptions opts;
    opts.workers = workers;
    opts.grain = 64;
    opts.batch.use_shared_cache = false;
    VerdictServer server(opts);
    Connection conn = server.connect();
    const ServeStats stats = server.serve(conn, wave);
    EXPECT_TRUE(stats.balanced());
    EXPECT_EQ(stats.accepted, fopts.fleet_size);

    const auto responses = decode_all(conn.responses());
    ASSERT_EQ(responses.size(), fopts.fleet_size);
    for (std::size_t c = 0; c < responses.size(); ++c) {
      EXPECT_EQ(responses[c].request_id, SyntheticFleet::request_id(1, c));
    }
  }
}

TEST(VerdictServerTest, VerdictsAreIdenticalAcrossWorkerCounts) {
  FleetOptions fopts;
  fopts.fleet_size = 256;
  const SyntheticFleet fleet(fopts);
  std::vector<std::uint8_t> wave;
  fleet.generate_wave(2, wave);

  std::vector<std::vector<wire::Response>> per_worker;
  for (const unsigned workers : {1u, 3u}) {
    ServerOptions opts;
    opts.workers = workers;
    opts.grain = 32;
    opts.batch.use_shared_cache = false;
    VerdictServer server(opts);
    Connection conn = server.connect();
    server.serve(conn, wave);
    per_worker.push_back(decode_all(conn.responses()));
  }
  ASSERT_EQ(per_worker[0].size(), per_worker[1].size());
  for (std::size_t i = 0; i < per_worker[0].size(); ++i) {
    EXPECT_EQ(per_worker[0][i].request_id, per_worker[1][i].request_id);
    EXPECT_EQ(per_worker[0][i].needs_process, per_worker[1][i].needs_process);
    EXPECT_EQ(per_worker[0][i].required_process,
              per_worker[1][i].required_process);
    EXPECT_EQ(per_worker[0][i].required_proof,
              per_worker[1][i].required_proof);
  }
}

TEST(VerdictServerTest, OverloadShedsExactlyAndStillAnswersAccepted) {
  ServerOptions opts;
  opts.queue_capacity = 10;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  std::vector<legal::Scenario> scenarios(40,
                                         legal::table1::scene(1).scenario);
  const ServeStats stats = server.serve(conn, frames_for(scenarios));
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, 40u);
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.shed_queue_full, 30u);
  EXPECT_EQ(stats.responses, 10u);
  EXPECT_EQ(decode_all(conn.responses()).size(), 10u);
}

TEST(VerdictServerTest, ClassifiesGarbageDuringOverload) {
  ServerOptions opts;
  opts.queue_capacity = 2;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  // 2 good (accepted) + 1 good (shed) + 1 version-skewed + 1 malformed,
  // all past the admission bound except the first two.
  std::vector<std::uint8_t> buf;
  const legal::Scenario s = legal::table1::scene(2).scenario;
  wire::encode_request(s, 1, buf);
  wire::encode_request(s, 2, buf);
  wire::encode_request(s, 3, buf);

  std::size_t at = buf.size();
  wire::encode_request(s, 4, buf);
  buf[at + 4] = wire::kWireVersion + 3;  // version skew

  at = buf.size();
  wire::encode_request(s, 5, buf);
  buf[at + 6] = 1;  // reserved byte -> malformed payload

  const ServeStats stats = server.serve(conn, buf);
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, 5u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.rejected_version, 1u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
}

TEST(VerdictServerTest, LostFramingChargesOneMalformedAndStops) {
  VerdictServer server;
  Connection conn = server.connect();

  std::vector<std::uint8_t> buf;
  wire::encode_request(legal::table1::scene(1).scenario, 1, buf);
  buf.push_back(0xDE);  // trailing garbage: not a navigable header
  buf.push_back(0xAD);

  const ServeStats stats = server.serve(conn, buf);
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
}

TEST(VerdictServerTest, VersionSkewMidStreamIsSkippedNotFatal) {
  VerdictServer server;
  Connection conn = server.connect();

  std::vector<std::uint8_t> buf;
  const legal::Scenario s = legal::table1::scene(4).scenario;
  wire::encode_request(s, 1, buf);
  const std::size_t at = buf.size();
  wire::encode_request(s, 2, buf);
  buf[at + 4] = wire::kWireVersion + 1;
  wire::encode_request(s, 3, buf);

  const ServeStats stats = server.serve(conn, buf);
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_version, 1u);
  const auto responses = decode_all(conn.responses());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(responses[1].request_id, 3u);
}

TEST(VerdictServerTest, SteadyStateKeepsConnectionFootprintFlat) {
  ServerOptions opts;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  FleetOptions fopts;
  fopts.fleet_size = 200;
  const SyntheticFleet fleet(fopts);
  std::vector<std::uint8_t> wave;
  fleet.generate_wave(0, wave);

  // Warm-up batch grows slots/responses/arena to their high-water mark.
  server.serve(conn, wave);
  const std::size_t chunks = conn.arena().chunk_count();
  const std::size_t reserved = conn.arena().bytes_reserved();
  const std::size_t slot_cap = conn.slot_capacity();
  const std::size_t resp_cap = conn.response_capacity();

  for (int i = 0; i < 8; ++i) {
    const ServeStats stats = server.serve(conn, wave);
    EXPECT_EQ(stats.accepted, fopts.fleet_size);
  }
  EXPECT_EQ(conn.arena().chunk_count(), chunks);
  EXPECT_EQ(conn.arena().bytes_reserved(), reserved);
  EXPECT_EQ(conn.slot_capacity(), slot_cap);
  EXPECT_EQ(conn.response_capacity(), resp_cap);
  EXPECT_EQ(conn.batches_served(), 9u);
}

TEST(VerdictServerTest, SecondWaveHitsTheCompactVerdictTable) {
  ServerOptions opts;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  std::vector<legal::Scenario> scenarios;
  for (const auto& d : legal::library::scenes()) scenarios.push_back(d.build());
  const auto buf = frames_for(scenarios);

  const ServeStats cold = server.serve(conn, buf);
  EXPECT_EQ(cold.cache_misses, scenarios.size());
  const ServeStats warm = server.serve(conn, buf);
  EXPECT_EQ(warm.cache_hits, scenarios.size());
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST(VerdictServerTest, CumulativeStatsSumBatches) {
  ServerOptions opts;
  opts.queue_capacity = 5;
  opts.batch.use_shared_cache = false;
  VerdictServer server(opts);
  Connection conn = server.connect();

  std::vector<legal::Scenario> scenarios(8, legal::table1::scene(1).scenario);
  const auto buf = frames_for(scenarios);
  server.serve(conn, buf);
  server.serve(conn, buf);

  const ServeStats total = server.stats();
  EXPECT_TRUE(total.balanced());
  EXPECT_EQ(total.offered, 16u);
  EXPECT_EQ(total.accepted, 10u);
  EXPECT_EQ(total.shed_queue_full, 6u);
  EXPECT_EQ(total.batches, 2u);
}

TEST(VerdictServerTest, EmptyBatchIsANoOp) {
  VerdictServer server;
  Connection conn = server.connect();
  const ServeStats stats = server.serve(conn, {});
  EXPECT_TRUE(stats.balanced());
  EXPECT_EQ(stats.offered, 0u);
  EXPECT_TRUE(conn.responses().empty());
}

}  // namespace
}  // namespace lexfor::serve
