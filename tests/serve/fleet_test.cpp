// serve::SyntheticFleet — deterministic, order-independent workload
// generation.

#include "serve/fleet.h"

#include <gtest/gtest.h>

#include <vector>

#include "legal/batch.h"
#include "serve/wire.h"

namespace lexfor::serve {
namespace {

TEST(SyntheticFleetTest, MixCoversTable1AndLibrary) {
  const SyntheticFleet fleet;
  EXPECT_EQ(fleet.mix_size(), 66u);  // 20 Table-1 rows + 46 library scenes
}

TEST(SyntheticFleetTest, WavesAreDeterministic) {
  FleetOptions opts;
  opts.fleet_size = 300;
  const SyntheticFleet a(opts);
  const SyntheticFleet b(opts);
  std::vector<std::uint8_t> wa, wb;
  a.generate_wave(5, wa);
  b.generate_wave(5, wb);
  EXPECT_EQ(wa, wb);
}

TEST(SyntheticFleetTest, RangesComposeOrderIndependently) {
  FleetOptions opts;
  opts.fleet_size = 100;
  opts.requests_per_client = 2;
  const SyntheticFleet fleet(opts);

  std::vector<std::uint8_t> whole;
  fleet.generate_wave(3, whole);

  // The same wave assembled from ranges generated back to front.
  std::vector<std::uint8_t> back, front;
  fleet.generate(3, 60, 40, back);
  fleet.generate(3, 0, 60, front);
  front.insert(front.end(), back.begin(), back.end());
  EXPECT_EQ(front, whole);
}

TEST(SyntheticFleetTest, DifferentWavesAndSeedsDiffer) {
  FleetOptions opts;
  opts.fleet_size = 200;
  const SyntheticFleet fleet(opts);
  std::vector<std::uint8_t> w0, w1;
  fleet.generate_wave(0, w0);
  fleet.generate_wave(1, w1);
  EXPECT_NE(w0, w1);

  FleetOptions other = opts;
  other.seed ^= 0xDEADBEEF;
  std::vector<std::uint8_t> alt;
  SyntheticFleet(other).generate_wave(0, alt);
  EXPECT_NE(w0, alt);
}

TEST(SyntheticFleetTest, FramesDecodeAndMatchTheOracle) {
  FleetOptions opts;
  opts.fleet_size = 50;
  opts.requests_per_client = 3;
  const SyntheticFleet fleet(opts);

  std::vector<std::uint8_t> buf;
  fleet.generate_wave(7, buf);

  std::span<const std::uint8_t> rest = buf;
  for (std::uint64_t c = 0; c < opts.fleet_size; ++c) {
    for (std::uint32_t k = 0; k < opts.requests_per_client; ++k) {
      const auto info = wire::peek_frame(rest);
      ASSERT_TRUE(info.ok());
      wire::Request req;
      ASSERT_TRUE(
          wire::decode_request(rest.subspan(0, info.value().frame_len), req)
              .ok());
      rest = rest.subspan(info.value().frame_len);
      EXPECT_EQ(req.request_id, SyntheticFleet::request_id(7, c));
      // The decoded scenario is exactly what the oracle says client c
      // asked: same fingerprint, so same verdict-cache key.
      EXPECT_EQ(legal::fingerprint(req.scenario),
                legal::fingerprint(fleet.scenario_for(7, c, k)));
    }
  }
  EXPECT_TRUE(rest.empty());
}

TEST(SyntheticFleetTest, RequestIdPacksWaveAndClient) {
  EXPECT_EQ(SyntheticFleet::request_id(0, 0), 0u);
  EXPECT_EQ(SyntheticFleet::request_id(2, 3),
            (std::uint64_t{2} << 48) | 3u);
  // Client bits never bleed into the wave field.
  EXPECT_EQ(SyntheticFleet::request_id(1, 0xFFFFFFFFFFFFULL) >> 48, 1u);
}

TEST(SyntheticFleetTest, MaxBytesPerClientBoundsGeneration) {
  FleetOptions opts;
  opts.fleet_size = 64;
  opts.requests_per_client = 2;
  const SyntheticFleet fleet(opts);
  std::vector<std::uint8_t> buf;
  fleet.generate_wave(0, buf);
  EXPECT_LE(buf.size(), fleet.max_bytes_per_client() * opts.fleet_size);
}

}  // namespace
}  // namespace lexfor::serve
