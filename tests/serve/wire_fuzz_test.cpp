// Wire-format fuzz gate (ISSUE 10 satellite): deterministic seeded
// byte mutations against the strict decoder.
//
// Three properties, over every library scene and Table-1 row:
//
//   1. the decoder NEVER crashes, whatever the bytes;
//   2. any frame the decoder accepts re-encodes BYTE-IDENTICAL —
//      i.e. the decoder only ever accepts the one canonical encoding
//      of a scenario (a mutated frame that still decodes must be a
//      no-op mutation);
//   3. encode -> decode -> encode is byte-identical for all pristine
//      frames (canonical round trip).
//
// Mutations come from Rng::sub_stream so every trial is reproducible
// from (kSeed, trial) alone, and validate_request must agree with
// decode_request on every mutant (the server's shed path classifies
// with validate; a disagreement would let overload reclassify traffic).

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "legal/scene_table.h"
#include "legal/table1.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace lexfor::serve::wire {
namespace {

constexpr std::uint64_t kSeed = 0xF0221EA51ULL;

[[nodiscard]] std::vector<std::vector<std::uint8_t>> pristine_frames() {
  std::vector<std::vector<std::uint8_t>> frames;
  std::uint64_t id = 1;
  for (const auto& d : legal::library::scenes()) {
    std::vector<std::uint8_t> f;
    encode_request(d.build(), id++, f);
    frames.push_back(std::move(f));
  }
  for (const auto& scene : legal::table1::all_scenes()) {
    std::vector<std::uint8_t> f;
    encode_request(scene.scenario, id++, f);
    frames.push_back(std::move(f));
  }
  return frames;
}

// Property 2 + validate/decode agreement, for one candidate buffer.
void check_mutant(const std::vector<std::uint8_t>& mutant) {
  Request req;
  const Status decoded = decode_request(mutant, req);
  const Status validated = validate_request(mutant);
  ASSERT_EQ(decoded.code(), validated.code())
      << "validate and decode disagree";
  if (!decoded.ok()) return;
  std::vector<std::uint8_t> again;
  encode_request(req.scenario, req.request_id, again);
  ASSERT_EQ(again, mutant)
      << "decoder accepted a non-canonical frame";
}

TEST(WireFuzzTest, PristineFramesRoundTripCanonically) {
  for (const auto& frame : pristine_frames()) {
    Request req;
    ASSERT_TRUE(decode_request(frame, req).ok());
    std::vector<std::uint8_t> again;
    encode_request(req.scenario, req.request_id, again);
    ASSERT_EQ(again, frame);
  }
}

TEST(WireFuzzTest, TruncationNeverCrashesOrPasses) {
  for (const auto& frame : pristine_frames()) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      std::vector<std::uint8_t> mutant(frame.begin(),
                                       frame.begin() + cut);
      Request req;
      // A strict decoder cannot accept a strict prefix: frame_len no
      // longer matches.
      ASSERT_FALSE(decode_request(mutant, req).ok()) << "cut=" << cut;
      ASSERT_FALSE(validate_request(mutant).ok());
    }
  }
}

TEST(WireFuzzTest, SingleBitFlipsAreRejectedOrNoOps) {
  const auto frames = pristine_frames();
  std::uint64_t trial = 0;
  for (const auto& frame : frames) {
    // Every byte position, one seeded bit each, keeps the sweep
    // exhaustive in position while staying fast.
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      Rng rng = Rng::sub_stream(kSeed, trial++);
      auto mutant = frame;
      mutant[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      check_mutant(mutant);
    }
  }
}

TEST(WireFuzzTest, RandomByteStormsNeverCrash) {
  const auto frames = pristine_frames();
  for (std::uint64_t trial = 0; trial < 2000; ++trial) {
    Rng rng = Rng::sub_stream(kSeed ^ 0xB10B, trial);
    auto mutant = frames[rng.uniform(frames.size())];
    const std::uint64_t flips = 1 + rng.uniform(16);
    for (std::uint64_t i = 0; i < flips; ++i) {
      mutant[rng.uniform(mutant.size())] =
          static_cast<std::uint8_t>(rng.uniform(256));
    }
    check_mutant(mutant);
  }
}

TEST(WireFuzzTest, VersionSkewIsAlwaysFailedPrecondition) {
  for (const auto& frame : pristine_frames()) {
    for (std::uint32_t v = 0; v < 256; ++v) {
      if (v == kWireVersion) continue;
      auto mutant = frame;
      mutant[4] = static_cast<std::uint8_t>(v);
      Request req;
      EXPECT_EQ(decode_request(mutant, req).code(),
                StatusCode::kFailedPrecondition);
      // peek must still navigate the frame (version-invariant header).
      const auto info = peek_frame(mutant);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info.value().frame_len, mutant.size());
    }
  }
}

TEST(WireFuzzTest, PureNoiseNeverCrashes) {
  for (std::uint64_t trial = 0; trial < 2000; ++trial) {
    Rng rng = Rng::sub_stream(kSeed ^ 0x4015E, trial);
    std::vector<std::uint8_t> noise(rng.uniform(200));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
    Request req;
    (void)decode_request(noise, req);
    (void)validate_request(noise);
    (void)peek_frame(noise);
    Response resp;
    (void)decode_response(noise, resp);
  }
}

}  // namespace
}  // namespace lexfor::serve::wire
