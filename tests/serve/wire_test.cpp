// serve::wire — framing, strict decoding and the canonical-encoding
// guarantees the server and fuzz gate build on.

#include "serve/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "legal/batch.h"
#include "legal/scene_table.h"
#include "legal/table1.h"

namespace lexfor::serve::wire {
namespace {

using legal::Scenario;

[[nodiscard]] Scenario sample_scenario() {
  return legal::library::scenes()[0].build();
}

[[nodiscard]] std::vector<std::uint8_t> encode_one(const Scenario& s,
                                                   std::uint64_t id) {
  std::vector<std::uint8_t> out;
  encode_request(s, id, out);
  return out;
}

TEST(WireTest, RequestRoundTripsEveryLibraryScene) {
  for (const auto& d : legal::library::scenes()) {
    const Scenario s = d.build();
    const auto frame = encode_one(s, 42);
    Request req;
    ASSERT_TRUE(decode_request(frame, req).ok()) << d.id;
    EXPECT_EQ(req.request_id, 42u);
    EXPECT_EQ(req.scenario.name, s.name);
    EXPECT_EQ(req.scenario.jurisdiction, s.jurisdiction);
    // Re-encode must reproduce the frame byte for byte: the encoding
    // is canonical.
    std::vector<std::uint8_t> again;
    encode_request(req.scenario, req.request_id, again);
    EXPECT_EQ(again, frame) << d.id;
  }
}

TEST(WireTest, RequestRoundTripsEveryTable1Row) {
  for (const auto& scene : legal::table1::all_scenes()) {
    const auto frame = encode_one(scene.scenario, 7);
    Request req;
    ASSERT_TRUE(decode_request(frame, req).ok()) << scene.number;
    std::vector<std::uint8_t> again;
    encode_request(req.scenario, req.request_id, again);
    EXPECT_EQ(again, frame) << scene.number;
  }
}

// The wire payload order IS the canonical fingerprint order: a decoded
// request must hash to the same verdict-cache key the client's
// scenario did, or the server cache splits per connection.
TEST(WireTest, RoundTripPreservesFingerprint) {
  for (const auto& d : legal::library::scenes()) {
    const Scenario s = d.build();
    Request req;
    ASSERT_TRUE(decode_request(encode_one(s, 1), req).ok());
    EXPECT_EQ(legal::fingerprint(req.scenario), legal::fingerprint(s))
        << d.id;
  }
}

TEST(WireTest, PeekReportsHeaderFields) {
  const auto frame = encode_one(sample_scenario(), 0xABCDEF);
  const auto info = peek_frame(frame);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, kWireVersion);
  EXPECT_EQ(info.value().kind, FrameKind::kRequest);
  EXPECT_EQ(info.value().request_id, 0xABCDEFu);
  EXPECT_EQ(info.value().frame_len, frame.size());
}

TEST(WireTest, PeekWalksConcatenatedFrames) {
  std::vector<std::uint8_t> buf;
  encode_request(sample_scenario(), 1, buf);
  const std::size_t first_len = buf.size();
  encode_request(legal::table1::scene(3).scenario, 2, buf);

  const auto a = peek_frame(buf);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().frame_len, first_len);
  const auto b = peek_frame(
      std::span<const std::uint8_t>(buf).subspan(a.value().frame_len));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().request_id, 2u);
}

// peek is version-invariant: an unknown version must still navigate
// (so a server can skip and count it), while decode refuses it.
TEST(WireTest, VersionSkewNavigatesButDoesNotDecode) {
  auto frame = encode_one(sample_scenario(), 9);
  frame[4] = kWireVersion + 1;
  const auto info = peek_frame(frame);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, kWireVersion + 1);

  Request req;
  const Status st = decode_request(frame, req);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(validate_request(frame).code(), StatusCode::kFailedPrecondition);
}

TEST(WireTest, TruncatedFramesAreMalformed) {
  const auto frame = encode_one(sample_scenario(), 1);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{5}, kHeaderBytes - 1, kHeaderBytes,
        frame.size() - 1}) {
    Request req;
    const Status st = decode_request(
        std::span<const std::uint8_t>(frame).subspan(0, cut), req);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "cut=" << cut;
  }
}

TEST(WireTest, RejectsOverlongAndLengthLies) {
  auto frame = encode_one(sample_scenario(), 1);
  // An extra trailing byte: the header's frame_len no longer matches.
  auto longer = frame;
  longer.push_back(0);
  Request req;
  EXPECT_EQ(decode_request(longer, req).code(), StatusCode::kInvalidArgument);

  // Patch frame_len to cover the extra byte: the payload walk must now
  // land short of the declared end ("overlong").
  const std::uint32_t lie = static_cast<std::uint32_t>(longer.size());
  std::memcpy(longer.data() + 8, &lie, sizeof(lie));
  EXPECT_EQ(decode_request(longer, req).code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, RejectsBadMagicKindReservedEnumsAndFlags) {
  const auto pristine = encode_one(sample_scenario(), 1);
  Request req;

  auto f = pristine;
  f[0] ^= 0xFF;  // magic
  EXPECT_EQ(decode_request(f, req).code(), StatusCode::kInvalidArgument);

  f = pristine;
  f[5] = 0x7F;  // kind
  EXPECT_EQ(decode_request(f, req).code(), StatusCode::kInvalidArgument);

  f = pristine;
  f[6] = 1;  // reserved
  EXPECT_EQ(decode_request(f, req).code(), StatusCode::kInvalidArgument);

  // Enum bytes sit right after the name.  Blow each one past its range.
  std::uint32_t name_len;
  std::memcpy(&name_len, pristine.data() + kHeaderBytes, sizeof(name_len));
  const std::size_t enums_at = kHeaderBytes + 4 + name_len;
  for (std::size_t i = 0; i < 6; ++i) {
    f = pristine;
    f[enums_at + i] = 0xEE;
    EXPECT_EQ(decode_request(f, req).code(), StatusCode::kInvalidArgument)
        << "enum byte " << i;
  }

  // A flag bit above kScenarioBoolCount must be zero.
  f = pristine;
  f[enums_at + 6 + 3] |= 0x80;  // top bit of the flags u32
  EXPECT_EQ(decode_request(f, req).code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, FailedDecodeLeavesOutputUntouched) {
  Request req;
  req.request_id = 77;
  req.scenario.name = "sentinel";
  auto frame = encode_one(sample_scenario(), 1);
  frame[6] = 9;  // reserved byte -> malformed
  ASSERT_FALSE(decode_request(frame, req).ok());
  EXPECT_EQ(req.request_id, 77u);
  EXPECT_EQ(req.scenario.name, "sentinel");
}

TEST(WireTest, ValidateAgreesWithDecodeOnValidFrames) {
  for (const auto& d : legal::library::scenes()) {
    const auto frame = encode_one(d.build(), 5);
    EXPECT_TRUE(validate_request(frame).ok()) << d.id;
  }
}

TEST(WireTest, ResponseRoundTrips) {
  Response r;
  r.request_id = 0x123456789ABCDEFull;
  r.status = StatusCode::kOk;
  r.needs_process = true;
  r.cache_hit = true;
  r.required_process = legal::ProcessKind::kSearchWarrant;
  r.required_proof = legal::StandardOfProof::kProbableCause;
  r.server_ns = 1234;

  std::vector<std::uint8_t> buf;
  encode_response(r, buf);
  ASSERT_EQ(buf.size(), kResponseFrameBytes);

  Response back;
  ASSERT_TRUE(decode_response(buf, back).ok());
  EXPECT_EQ(back.request_id, r.request_id);
  EXPECT_EQ(back.needs_process, r.needs_process);
  EXPECT_EQ(back.cache_hit, r.cache_hit);
  EXPECT_EQ(back.required_process, r.required_process);
  EXPECT_EQ(back.required_proof, r.required_proof);
  EXPECT_EQ(back.server_ns, r.server_ns);
}

TEST(WireTest, ResponseDecodeIsStrict) {
  Response r;
  std::vector<std::uint8_t> buf;
  encode_response(r, buf);

  auto f = buf;
  f[kHeaderBytes + 1] = 0xF0;  // undefined flag bits
  Response back;
  EXPECT_EQ(decode_response(f, back).code(), StatusCode::kInvalidArgument);

  f = buf;
  f[kHeaderBytes + 2] = 0xEE;  // process out of range
  EXPECT_EQ(decode_response(f, back).code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, MakeResponseCarriesTheDetermination) {
  legal::BatchEvaluator eval;
  const Scenario s = legal::table1::scene(1).scenario;
  const legal::Determination d = eval.evaluate(s);
  const Response r = make_response(31, d, /*cache_hit=*/false, 99);
  EXPECT_EQ(r.request_id, 31u);
  EXPECT_EQ(r.needs_process, d.needs_process);
  EXPECT_EQ(r.required_process, d.required_process);
  EXPECT_EQ(r.required_proof, d.required_proof);
  EXPECT_EQ(r.server_ns, 99u);
}

}  // namespace
}  // namespace lexfor::serve::wire
