#include "investigation/court.h"

#include <gtest/gtest.h>

namespace lexfor::investigation {
namespace {

using legal::CrimeCategory;
using legal::Fact;
using legal::FactKind;
using legal::ProcessKind;
using legal::StandardOfProof;

Application warrant_application(std::vector<Fact> facts) {
  Application app;
  app.requested = ProcessKind::kSearchWarrant;
  app.facts = std::move(facts);
  app.category = CrimeCategory::kChildExploitation;
  app.scope.locations = {"suspect-home"};
  app.scope.crime = "distribution of contraband";
  return app;
}

TEST(CourtTest, GrantsWarrantOnProbableCause) {
  Court court;
  const auto ruling = court.adjudicate(
      warrant_application({{FactKind::kIpAddressLinked, 5.0, "ip"},
                           {FactKind::kSubscriberIdentified, 2.0, "isp"}}),
      SimTime::zero());
  EXPECT_TRUE(ruling.granted) << ruling.explanation;
  EXPECT_EQ(ruling.process.kind, ProcessKind::kSearchWarrant);
  EXPECT_EQ(ruling.assessment.standard, StandardOfProof::kProbableCause);
  EXPECT_TRUE(ruling.process.id.valid());
}

TEST(CourtTest, DeniesWarrantOnMereSuspicion) {
  Court court;
  const auto ruling = court.adjudicate(
      warrant_application({{FactKind::kAnonymousTip, 1.0, "tip"}}),
      SimTime::zero());
  EXPECT_FALSE(ruling.granted);
  EXPECT_NE(ruling.explanation.find("denied"), std::string::npos);
}

TEST(CourtTest, GrantsSubpoenaOnMereSuspicion) {
  Court court;
  Application app;
  app.requested = ProcessKind::kSubpoena;
  app.facts = {{FactKind::kAnonymousTip, 1.0, "tip"}};
  const auto ruling = court.adjudicate(app, SimTime::zero());
  EXPECT_TRUE(ruling.granted) << ruling.explanation;
}

TEST(CourtTest, DeniesOverbroadWarrant) {
  Court court;
  Application app = warrant_application(
      {{FactKind::kContrabandObserved, 0.0, "seen directly"}});
  app.scope.crime.clear();  // no particularity
  const auto ruling = court.adjudicate(app, SimTime::zero());
  EXPECT_FALSE(ruling.granted);
}

TEST(CourtTest, MembershipAloneCannotGetWarrant) {
  Court court;
  const auto ruling = court.adjudicate(
      warrant_application({{FactKind::kMembershipOnly, 1.0, "member list"}}),
      SimTime::zero());
  EXPECT_FALSE(ruling.granted);
}

TEST(CourtTest, StaleFactsDefeatTheApplicationForGeneralCrimes) {
  Court court;
  Application app = warrant_application(
      {{FactKind::kIpAddressLinked, 400.0, "old"},
       {FactKind::kSubscriberIdentified, 400.0, "old"}});
  app.category = CrimeCategory::kFraud;  // staleness applies
  const auto ruling = court.adjudicate(app, SimTime::zero());
  EXPECT_FALSE(ruling.granted);
}

TEST(CourtTest, SameFactsNotStaleForChildExploitation) {
  Court court;
  const auto ruling = court.adjudicate(
      warrant_application({{FactKind::kIpAddressLinked, 400.0, "old"},
                           {FactKind::kSubscriberIdentified, 400.0, "old"}}),
      SimTime::zero());
  EXPECT_TRUE(ruling.granted) << ruling.explanation;
}

TEST(CourtTest, IssuedProcessCarriesTimestampAndIds) {
  Court court;
  const auto r1 = court.adjudicate(
      warrant_application({{FactKind::kContrabandObserved, 0.0, "x"}}),
      SimTime::from_sec(100));
  const auto r2 = court.adjudicate(
      warrant_application({{FactKind::kContrabandObserved, 0.0, "x"}}),
      SimTime::from_sec(200));
  ASSERT_TRUE(r1.granted);
  ASSERT_TRUE(r2.granted);
  EXPECT_EQ(r1.process.issued_at, SimTime::from_sec(100));
  EXPECT_NE(r1.process.id, r2.process.id);
}

TEST(CourtTest, CountsApplicationsAndIssuances) {
  Court court;
  (void)court.adjudicate(
      warrant_application({{FactKind::kAnonymousTip, 1.0, "weak"}}),
      SimTime::zero());
  (void)court.adjudicate(
      warrant_application({{FactKind::kContrabandObserved, 0.0, "strong"}}),
      SimTime::zero());
  EXPECT_EQ(court.applications_heard(), 2u);
  EXPECT_EQ(court.processes_issued(), 1u);
}

}  // namespace
}  // namespace lexfor::investigation
