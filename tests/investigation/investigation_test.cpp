#include "investigation/investigation.h"

#include <gtest/gtest.h>

#include "legal/table1.h"

namespace lexfor::investigation {
namespace {

using legal::CrimeCategory;
using legal::Fact;
using legal::FactKind;
using legal::ProcessKind;
using legal::Scenario;

struct CaseFixture {
  Court court;
  Investigation inv{CaseId{1}, "op lexfor", CrimeCategory::kChildExploitation,
                    court};

  void add_probable_cause() {
    inv.add_fact({FactKind::kIpAddressLinked, 3.0, "IP in server logs"});
    inv.add_fact({FactKind::kSubscriberIdentified, 1.0, "ISP subpoena return"});
  }

  legal::ProcessScope home_scope() {
    legal::ProcessScope s;
    s.locations = {"suspect-home"};
    s.crime = "distribution of contraband";
    return s;
  }
};

TEST(InvestigationTest, StandardRisesWithFacts) {
  CaseFixture f;
  EXPECT_EQ(f.inv.current_standard().standard, legal::StandardOfProof::kNone);
  f.inv.add_fact({FactKind::kAnonymousTip, 0.0, "tip"});
  EXPECT_EQ(f.inv.current_standard().standard,
            legal::StandardOfProof::kMereSuspicion);
  f.add_probable_cause();
  EXPECT_EQ(f.inv.current_standard().standard,
            legal::StandardOfProof::kProbableCause);
}

TEST(InvestigationTest, ApplyDeniedWithoutFacts) {
  CaseFixture f;
  const auto r =
      f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(), SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(f.inv.rulings().size(), 1u);
  EXPECT_FALSE(f.inv.rulings()[0].granted);
}

TEST(InvestigationTest, ApplyGrantedWithProbableCause) {
  CaseFixture f;
  f.add_probable_cause();
  const auto r =
      f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(), SimTime::zero());
  ASSERT_TRUE(r.ok()) << r.status();
  const auto* proc = f.inv.process(r.value());
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->kind, ProcessKind::kSearchWarrant);
}

TEST(InvestigationTest, AuthorityResolvesHeldProcess) {
  CaseFixture f;
  f.add_probable_cause();
  const auto id =
      f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(), SimTime::zero())
          .value();
  EXPECT_EQ(f.inv.authority(id).kind(), ProcessKind::kSearchWarrant);
  EXPECT_EQ(f.inv.authority(ProcessId{999}).kind(), ProcessKind::kNone);
}

TEST(InvestigationTest, BestAuthorityPicksStrongestInstrument) {
  CaseFixture f;
  f.add_probable_cause();
  (void)f.inv.apply_for(ProcessKind::kSubpoena, {}, SimTime::zero()).value();
  (void)f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(), SimTime::zero())
      .value();
  EXPECT_EQ(f.inv.best_authority().kind(), ProcessKind::kSearchWarrant);
}

TEST(InvestigationTest, BestAuthorityEmptyWhenNothingHeld) {
  CaseFixture f;
  EXPECT_EQ(f.inv.best_authority().kind(), ProcessKind::kNone);
}

TEST(InvestigationTest, LawfulAcquisitionRecordedAsAdmissible) {
  CaseFixture f;
  f.add_probable_cause();
  const auto pid =
      f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(), SimTime::zero())
          .value();

  // Searching the suspect's device with the warrant.
  const auto outcome = f.inv.acquire(
      Scenario{}
          .named("device search")
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "laptop contents", f.inv.authority(pid));
  EXPECT_TRUE(outcome.lawful);

  const auto audit = f.inv.admissibility_audit();
  EXPECT_EQ(audit.suppressed_count, 0u);
  EXPECT_FALSE(audit.is_suppressed(outcome.evidence));
}

TEST(InvestigationTest, WarrantlessDeviceSearchGetsSuppressed) {
  CaseFixture f;
  const auto outcome = f.inv.acquire(
      Scenario{}
          .named("warrantless device search")
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "laptop contents", legal::GrantedAuthority{});
  EXPECT_FALSE(outcome.lawful);
  EXPECT_TRUE(f.inv.admissibility_audit().is_suppressed(outcome.evidence));
}

TEST(InvestigationTest, FruitOfPoisonousTreeFlowsThroughDerivedEvidence) {
  CaseFixture f;
  // Unlawful root.
  const auto root = f.inv.acquire(
      Scenario{}
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice),
      "warrantless image", legal::GrantedAuthority{});
  // Lawful in itself, but derived from the root.
  const auto derived = f.inv.acquire(
      Scenario{}
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kPublicVenue)
          .exposed_publicly(),
      "public records matched against the image", legal::GrantedAuthority{},
      {root.evidence});
  const auto audit = f.inv.admissibility_audit();
  EXPECT_TRUE(audit.is_suppressed(root.evidence));
  EXPECT_TRUE(audit.is_suppressed(derived.evidence));
}

TEST(InvestigationTest, ProcessFreeAcquisitionIsAlwaysLawful) {
  CaseFixture f;
  const auto outcome = f.inv.acquire(
      legal::table1::scene(10).scenario,  // anonymous P2P public info
      "P2P timing observations", legal::GrantedAuthority{});
  EXPECT_TRUE(outcome.lawful);
  EXPECT_FALSE(f.inv.admissibility_audit().is_suppressed(outcome.evidence));
}

// End-to-end: the paper's §IV.A investigation pattern — process-free
// observation produces facts; facts support a warrant; the warrant makes
// the device search admissible.
TEST(InvestigationIntegrationTest, ObserveThenWarrantThenSearch) {
  CaseFixture f;

  // Step 1: process-free P2P observation.
  const auto p2p = f.inv.acquire(legal::table1::scene(10).scenario,
                                 "timing probes identify source IP",
                                 legal::GrantedAuthority{});
  ASSERT_TRUE(p2p.lawful);
  f.inv.add_fact({FactKind::kIpAddressLinked, 0.0, "source IP from probes"});

  // Step 2: subpoena the ISP for the subscriber.
  const auto sub_id =
      f.inv.apply_for(ProcessKind::kSubpoena, {}, SimTime::zero()).value();
  const auto subscriber = f.inv.acquire(
      Scenario{}
          .named("subscriber records")
          .acquiring(legal::DataKind::kSubscriberRecords)
          .located(legal::DataState::kStoredAtProvider)
          .when(legal::Timing::kStored)
          .at_provider(legal::ProviderClass::kEcs),
      "ISP subscriber return", f.inv.authority(sub_id), {p2p.evidence});
  ASSERT_TRUE(subscriber.lawful);
  f.inv.add_fact({FactKind::kSubscriberIdentified, 0.0, "ISP return"});

  // Step 3: warrant for the home search.
  const auto warrant_id =
      f.inv.apply_for(ProcessKind::kSearchWarrant, f.home_scope(),
                      SimTime::from_sec(3600))
          .value();
  const auto device = f.inv.acquire(
      Scenario{}
          .named("home computer search")
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "laptop search", f.inv.authority(warrant_id),
      {p2p.evidence, subscriber.evidence});
  ASSERT_TRUE(device.lawful);

  const auto audit = f.inv.admissibility_audit();
  EXPECT_EQ(audit.suppressed_count, 0u);
  EXPECT_EQ(audit.admissible_count, 3u);
}

}  // namespace
}  // namespace lexfor::investigation

// --- standing-aware motions -----------------------------------------------

namespace lexfor::investigation {
namespace {

TEST(MotionTest, MotionRespectsStanding) {
  Court court;
  Investigation inv(CaseId{55}, "two-defendant case",
                    legal::CrimeCategory::kFraud, court);

  // Unlawful search of ALICE's office produces evidence against both.
  const auto alice_docs = inv.acquire(
      legal::Scenario{}
          .acquiring(legal::DataKind::kContent)
          .located(legal::DataState::kOnDevice)
          .when(legal::Timing::kStored),
      "warrantless search of Alice's office", legal::GrantedAuthority{},
      /*derived_from=*/{}, /*aggrieved_party=*/"alice");

  // Alice suppresses it; Bob cannot.
  EXPECT_TRUE(inv.motion_to_suppress("alice").is_suppressed(alice_docs.evidence));
  EXPECT_FALSE(inv.motion_to_suppress("bob").is_suppressed(alice_docs.evidence));
  // The general audit (no movant) still shows the violation.
  EXPECT_TRUE(inv.admissibility_audit().is_suppressed(alice_docs.evidence));
}

}  // namespace
}  // namespace lexfor::investigation
