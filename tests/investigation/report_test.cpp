#include "investigation/report.h"

#include <gtest/gtest.h>

namespace lexfor::investigation {
namespace {

using legal::CrimeCategory;
using legal::FactKind;
using legal::ProcessKind;
using legal::Scenario;

struct ReportFixture {
  Court court;
  Investigation inv{CaseId{42}, "operation paper trail",
                    CrimeCategory::kFraud, court};
};

TEST(ReportTest, EmptyCaseReportsPlaceholders) {
  ReportFixture f;
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("operation paper trail"), std::string::npos);
  EXPECT_NE(report.find("(no facts on record)"), std::string::npos);
  EXPECT_NE(report.find("## Process applications"), std::string::npos);
}

TEST(ReportTest, FactsAndStandardAppear) {
  ReportFixture f;
  f.inv.add_fact({FactKind::kWitnessStatement, 3.0, "teller statement"});
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("teller statement"), std::string::npos);
  EXPECT_NE(report.find("mere suspicion"), std::string::npos);
}

TEST(ReportTest, DeniedApplicationsAreShown) {
  ReportFixture f;
  legal::ProcessScope scope;
  scope.locations = {"office"};
  scope.crime = "fraud";
  (void)f.inv.apply_for(ProcessKind::kSearchWarrant, scope, SimTime::zero());
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("DENIED"), std::string::npos);
}

TEST(ReportTest, GrantedProcessAndAcquisitionsAppear) {
  ReportFixture f;
  f.inv.add_fact({FactKind::kContrabandObserved, 0.0, "ledger in plain sight"});
  legal::ProcessScope scope;
  scope.locations = {"office"};
  scope.crime = "fraud";
  const auto id =
      f.inv.apply_for(ProcessKind::kSearchWarrant, scope, SimTime::zero())
          .value();
  (void)f.inv.acquire(Scenario{}
                          .acquiring(legal::DataKind::kContent)
                          .located(legal::DataState::kOnDevice),
                      "office workstation image", f.inv.authority(id));
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("GRANTED"), std::string::npos);
  EXPECT_NE(report.find("office workstation image"), std::string::npos);
  EXPECT_NE(report.find("(lawful)"), std::string::npos);
}

TEST(ReportTest, UnlawfulAcquisitionsAreFlagged) {
  ReportFixture f;
  (void)f.inv.acquire(Scenario{}
                          .acquiring(legal::DataKind::kContent)
                          .located(legal::DataState::kOnDevice),
                      "warrantless grab", legal::GrantedAuthority{});
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("UNLAWFUL"), std::string::npos);
  EXPECT_NE(report.find("SUPPRESSED"), std::string::npos);
}

TEST(ReportTest, DerivationEdgesAreListed) {
  ReportFixture f;
  const auto root = f.inv.acquire(Scenario{}
                                      .acquiring(legal::DataKind::kContent)
                                      .located(legal::DataState::kPublicVenue)
                                      .exposed_publicly(),
                                  "public post", legal::GrantedAuthority{});
  (void)f.inv.acquire(Scenario{}
                          .acquiring(legal::DataKind::kContent)
                          .located(legal::DataState::kPublicVenue)
                          .exposed_publicly(),
                      "follow-up", legal::GrantedAuthority{},
                      {root.evidence});
  const auto report = case_report(f.inv);
  EXPECT_NE(report.find("derived from #1"), std::string::npos);
}

TEST(ReportTest, SuppressionReportIsSubsetOfCaseReport) {
  ReportFixture f;
  (void)f.inv.acquire(Scenario{}
                          .acquiring(legal::DataKind::kContent)
                          .located(legal::DataState::kOnDevice),
                      "grab", legal::GrantedAuthority{});
  const auto sub = suppression_report(f.inv);
  const auto full = case_report(f.inv);
  EXPECT_NE(full.find(sub), std::string::npos);
}

}  // namespace
}  // namespace lexfor::investigation
