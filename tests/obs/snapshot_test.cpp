#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

namespace lexfor::obs {
namespace {

// Minimal structural JSON check shared with sink_test: quotes-aware
// bracket/brace balance.
bool json_balanced(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

// Parses Prometheus text exposition back into (sample name -> value)
// and (family -> type).  Sample names keep their label braces.
struct PromDoc {
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;
};

// Parses `name{labels} value` / `name value` sample lines and `# TYPE`
// comments; the value is everything after the last space (labels never
// contain spaces here).  gtest ASSERT_* needs a void-returning context,
// hence the inner lambda.
PromDoc must_parse(const std::string& text) {
  PromDoc doc;
  [&] {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream fields(line.substr(7));
        std::string family;
        std::string kind;
        fields >> family >> kind;
        doc.types[family] = kind;
        continue;
      }
      ASSERT_NE(line.front(), '#') << "unknown comment line: " << line;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      doc.samples[line.substr(0, space)] =
          std::stod(line.substr(space + 1));
    }
  }();
  return doc;
}

MetricsRegistry& populated_registry(MetricsRegistry& reg) {
  reg.counter("legal.evaluations").add(42);
  reg.counter("obs.ring.dropped{shard=\"0\"}").add(3);
  reg.counter("obs.ring.dropped{shard=\"1\"}").add(5);
  reg.gauge("netsim.queue_depth").set(-7);
  Histogram& h = reg.histogram("eval.latency_us", {10, 100, 1000});
  h.record(4);
  h.record(40);
  h.record(400);
  h.record(4000);  // overflow bucket
  return reg;
}

TEST(ObsSnapshotTest, CaptureCopiesEveryInstrument) {
  MetricsRegistry reg;
  populated_registry(reg);
  const Snapshot snap = Snapshot::capture(reg);
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "legal.evaluations");
  EXPECT_EQ(snap.counters[0].value, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSample& h = snap.histograms[0];
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 4444);
  EXPECT_EQ(h.min, 4);
  EXPECT_EQ(h.max, 4000);
  ASSERT_EQ(h.buckets.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(h.buckets[3], 1u);
  // The copy is detached: the live registry moving on does not change it.
  reg.counter("legal.evaluations").add(1);
  EXPECT_EQ(snap.counters[0].value, 42u);
}

TEST(ObsSnapshotTest, SampledPercentileMatchesLiveHistogram) {
  MetricsRegistry reg;
  populated_registry(reg);
  const Snapshot snap = Snapshot::capture(reg);
  const Histogram& live = reg.histogram("eval.latency_us");
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(snap.histograms[0].percentile(p), live.percentile(p));
  }
}

TEST(ObsSnapshotTest, SinceComputesCounterDeltasAndKeepsGaugesCurrent) {
  MetricsRegistry reg;
  reg.counter("c").add(10);
  reg.gauge("g").set(5);
  const Snapshot before = Snapshot::capture(reg);
  reg.counter("c").add(7);
  reg.gauge("g").set(9);
  const Snapshot after = Snapshot::capture(reg);
  const Snapshot delta = after.since(before);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].value, 7u);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_EQ(delta.gauges[0].value, 9);  // level, not rate
}

TEST(ObsSnapshotTest, SinceGuardsAgainstResets) {
  MetricsRegistry reg;
  reg.counter("c").add(100);
  const Snapshot before = Snapshot::capture(reg);
  reg.reset();
  reg.counter("c").add(2);
  const Snapshot after = Snapshot::capture(reg);
  const Snapshot delta = after.since(before);
  ASSERT_EQ(delta.counters.size(), 1u);
  // Counter went backwards: report the full current value, never wrap.
  EXPECT_EQ(delta.counters[0].value, 2u);
}

TEST(ObsSnapshotTest, SinceDeltasHistogramsBucketwise) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {10, 100});
  h.record(5);
  h.record(50);
  const Snapshot before = Snapshot::capture(reg);
  h.record(50);
  h.record(500);
  const Snapshot after = Snapshot::capture(reg);
  const Snapshot delta = after.since(before);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramSample& d = delta.histograms[0];
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 550);
  ASSERT_EQ(d.buckets.size(), 3u);
  EXPECT_EQ(d.buckets[0], 0u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 1u);
}

TEST(ObsSnapshotTest, SinceIncludesInstrumentsAbsentFromPrev) {
  MetricsRegistry reg;
  reg.counter("old").add(1);
  const Snapshot before = Snapshot::capture(reg);
  reg.counter("brand.new").add(9);
  const Snapshot delta = Snapshot::capture(reg).since(before);
  bool found = false;
  for (const CounterSample& c : delta.counters) {
    if (c.name == "brand.new") {
      found = true;
      EXPECT_EQ(c.value, 9u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsSnapshotTest, PrometheusRoundTripMatchesRegistryState) {
  MetricsRegistry reg;
  populated_registry(reg);
  std::ostringstream os;
  Snapshot::capture(reg).to_prometheus(os);
  const PromDoc doc = must_parse(os.str());

  // Counters: dotted names sanitized, label braces passed through.
  EXPECT_EQ(doc.types.at("legal_evaluations"), "counter");
  EXPECT_DOUBLE_EQ(doc.samples.at("legal_evaluations"), 42.0);
  EXPECT_EQ(doc.types.at("obs_ring_dropped"), "counter");
  EXPECT_DOUBLE_EQ(doc.samples.at("obs_ring_dropped{shard=\"0\"}"), 3.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("obs_ring_dropped{shard=\"1\"}"), 5.0);

  // Gauges keep sign.
  EXPECT_EQ(doc.types.at("netsim_queue_depth"), "gauge");
  EXPECT_DOUBLE_EQ(doc.samples.at("netsim_queue_depth"), -7.0);

  // Histogram: cumulative buckets, +Inf == count, sum and count match.
  EXPECT_EQ(doc.types.at("eval_latency_us"), "histogram");
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_bucket{le=\"10\"}"), 1.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_bucket{le=\"100\"}"), 2.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_bucket{le=\"1000\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_bucket{le=\"+Inf\"}"),
                   4.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_sum"), 4444.0);
  EXPECT_DOUBLE_EQ(doc.samples.at("eval_latency_us_count"), 4.0);
}

TEST(ObsSnapshotTest, PrometheusExportsProfilerSites) {
  MetricsRegistry reg;
  ProfileRegistry prof;
  prof.site("legal.engine.evaluate").record(120);
  prof.site("legal.engine.evaluate").record(80);
  std::ostringstream os;
  Snapshot::capture(reg, &prof).to_prometheus(os);
  const PromDoc doc = must_parse(os.str());
  EXPECT_EQ(doc.types.at("lexfor_profile_hits"), "counter");
  EXPECT_DOUBLE_EQ(
      doc.samples.at("lexfor_profile_hits{site=\"legal.engine.evaluate\"}"),
      2.0);
  EXPECT_DOUBLE_EQ(
      doc.samples.at(
          "lexfor_profile_ns_total{site=\"legal.engine.evaluate\"}"),
      200.0);
  EXPECT_DOUBLE_EQ(
      doc.samples.at(
          "lexfor_profile_min_ns{site=\"legal.engine.evaluate\"}"),
      80.0);
  EXPECT_DOUBLE_EQ(
      doc.samples.at(
          "lexfor_profile_max_ns{site=\"legal.engine.evaluate\"}"),
      120.0);
}

TEST(ObsSnapshotTest, JsonIsBalancedAndCoversEverySection) {
  MetricsRegistry reg;
  ProfileRegistry prof;
  populated_registry(reg);
  prof.site("site.a").record(10);
  std::ostringstream os;
  Snapshot::capture(reg, &prof).to_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"profile\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ring\":["), std::string::npos);
  EXPECT_NE(json.find("\"legal.evaluations\":42"), std::string::npos);
  EXPECT_NE(json.find("\"site.a\""), std::string::npos);
}

TEST(ObsSnapshotTest, GlobalCaptureIncludesRingStats) {
  const Snapshot snap = Snapshot::capture();
  // The exhaustive invariant holds for whatever shards exist.
  for (const RingShardStats& r : snap.ring) {
    EXPECT_EQ(r.pushed, r.drained + r.dropped + r.size);
  }
  std::ostringstream os;
  snap.to_json(os);
  EXPECT_TRUE(json_balanced(os.str()));
}

}  // namespace
}  // namespace lexfor::obs
