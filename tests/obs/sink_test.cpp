#include "obs/sink.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace lexfor::obs {
namespace {

// Minimal structural JSON check: quotes-aware bracket/brace balance.
// Catches unterminated arrays, unbalanced objects and broken escaping —
// the failure modes a hand-rolled serializer can have.
bool json_balanced(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(ObsSinkTest, JsonEscaping) {
  std::string out;
  append_json_escaped(out, "a\"b\\c\nd\te");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te");
}

TEST(ObsSinkTest, ArgsToJsonExpandsPairs) {
  EXPECT_EQ(args_to_json("k=v"), "\"k\":\"v\"");
  EXPECT_EQ(args_to_json("a=1,b=two"), "\"a\":\"1\",\"b\":\"two\"");
  EXPECT_EQ(args_to_json("bare"), "\"note\":\"bare\"");
  EXPECT_EQ(args_to_json(""), "");
}

TEST(ObsSinkTest, TextSinkRendersPhasesAndClocks) {
  std::ostringstream os;
  TextSink sink(os);
  Tracer t;
  t.add_sink(&sink);
  t.set_level(Level::kDebug);
  t.instant(Level::kInfo, "legal", "verdict", "scenario=wiretap",
            SimTime::from_ms(5));
  t.counter(Level::kDebug, "netsim", "depth", 9);
  const std::string text = os.str();
  EXPECT_NE(text.find("legal/verdict"), std::string::npos);
  EXPECT_NE(text.find("sim"), std::string::npos);
  EXPECT_NE(text.find("{scenario=wiretap}"), std::string::npos);
  EXPECT_NE(text.find("netsim/depth = 9"), std::string::npos);
}

TEST(ObsSinkTest, JsonlSinkWritesOneValidObjectPerLine) {
  std::ostringstream os;
  JsonlSink sink(os);
  Tracer t;
  t.add_sink(&sink);
  t.set_level(Level::kDebug);
  t.instant(Level::kInfo, "legal", "verdict", "scenario=email");
  t.instant(Level::kDebug, "netsim", "delivered", "", SimTime::from_us(7));

  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 2);
  EXPECT_NE(os.str().find("\"sim_us\":7"), std::string::npos);
}

TEST(ObsSinkTest, ChromeTraceIsValidJsonDocument) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    Tracer t;
    t.add_sink(&sink);
    t.set_level(Level::kDebug);
    {
      const Span s =
          t.span(Level::kInfo, "legal", "evaluate", "scenario=pen_trap");
      t.instant(Level::kAudit, "court", "process_issued", "kind=warrant",
                SimTime::from_ms(3));
    }
    sink.finish();
  }
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.front(), '[');
  // Required trace_event fields are present.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"legal\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"sim_us\":3000"), std::string::npos);
}

TEST(ObsSinkTest, ChromeTraceEmptyAndFinishIdempotent) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.finish();
  sink.finish();
  EXPECT_TRUE(json_balanced(os.str()));
  EXPECT_EQ(os.str(), "[]\n");
}

TEST(ObsSinkTest, ChromeTraceSimTimebaseCarriesForward) {
  std::ostringstream os;
  ChromeTraceSink sink(os, ChromeTraceSink::TimeBase::kSim);
  TraceEvent with_sim;
  with_sim.category = "evidence";
  with_sim.name = "custody";
  with_sim.sim_us = 1500;
  TraceEvent without_sim;
  without_sim.category = "legal";
  without_sim.name = "verdict";
  sink.write(with_sim);
  sink.write(without_sim);  // inherits ts=1500 from the last sim event
  sink.finish();
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  const auto first = json.find("\"ts\":1500.000");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500.000", first + 1), std::string::npos);
}

}  // namespace
}  // namespace lexfor::obs
