#include "obs/ring.h"

#include <gtest/gtest.h>

namespace lexfor::obs {
namespace {

TraceEvent make_event(std::uint64_t n) {
  TraceEvent ev;
  ev.wall_ns = n;
  ev.name = "e" + std::to_string(n);
  ev.category = "test";
  return ev;
}

TEST(ObsRingTest, StartsEmpty) {
  EventRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(ObsRingTest, RetainsInsertionOrderBelowCapacity) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_event(i));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].wall_ns, i);
    EXPECT_EQ(events[i].name, "e" + std::to_string(i));
  }
}

TEST(ObsRingTest, WraparoundKeepsNewestCapacityEvents) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.pushed(), 11u);
  EXPECT_EQ(ring.size(), 4u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: 7, 8, 9, 10.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].wall_ns, 7u + i);
  }
}

TEST(ObsRingTest, ClearResets) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) ring.push(make_event(i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.push(make_event(42));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].wall_ns, 42u);
}

TEST(ObsRingTest, ZeroCapacityIsClampedToOne) {
  EventRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(make_event(1));
  ring.push(make_event(2));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].wall_ns, 2u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(ObsRingTest, DisposalAccountingIsExhaustive) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) ring.push(make_event(i));
  // Every pushed event is retained, drained, or dropped — no fourth
  // fate (v1 silently overwrote; the dropped counter is the fix).
  EXPECT_EQ(ring.pushed(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  EXPECT_EQ(ring.drained(), 0u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped() + ring.size());
}

TEST(ObsRingTest, DrainConsumesOldestToNewest) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) ring.push(make_event(i));
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain(out), 4u);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].wall_ns, 2u + i);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped());
  // drain() appends: a second pass after more pushes extends `out`.
  ring.push(make_event(40));
  EXPECT_EQ(ring.drain(out), 1u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.back().wall_ns, 40u);
}

TEST(ObsRingTest, SnapshotDoesNotConsume) {
  EventRing ring(4);
  ring.push(make_event(1));
  EXPECT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.drained(), 0u);
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace lexfor::obs
