#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace lexfor::obs {
namespace {

TEST(ObsTracerTest, DefaultLevelIsOff) {
  Tracer t;
  EXPECT_EQ(t.level(), Level::kOff);
  EXPECT_FALSE(t.enabled(Level::kAudit));
  t.instant(Level::kAudit, "test", "dropped");
  EXPECT_EQ(t.events_emitted(), 0u);
  EXPECT_EQ(t.ring().size(), 0u);
}

TEST(ObsTracerTest, LevelFilterIsOrdered) {
  Tracer t;
  t.set_level(Level::kInfo);
  EXPECT_TRUE(t.enabled(Level::kAudit));
  EXPECT_TRUE(t.enabled(Level::kInfo));
  EXPECT_FALSE(t.enabled(Level::kDebug));

  t.instant(Level::kDebug, "test", "filtered");
  t.instant(Level::kInfo, "test", "kept");
  EXPECT_EQ(t.events_emitted(), 1u);
  ASSERT_EQ(t.ring().size(), 1u);
  EXPECT_EQ(t.ring().snapshot()[0].name, "kept");
}

TEST(ObsTracerTest, SpanEmitsMatchedBeginEndPair) {
  Tracer t;
  t.set_level(Level::kInfo);
  {
    const Span s = t.span(Level::kInfo, "test", "work");
    EXPECT_TRUE(s.active());
  }
  const auto events = t.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kEnd);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[1].name, "work");
  EXPECT_NE(events[0].span_id, 0u);
  EXPECT_EQ(events[0].span_id, events[1].span_id);
  // kEnd carries duration_ns in `value`; wall clocks are monotonic.
  EXPECT_GE(events[1].wall_ns, events[0].wall_ns);
  EXPECT_EQ(static_cast<std::uint64_t>(events[1].value),
            events[1].wall_ns - events[0].wall_ns);
}

TEST(ObsTracerTest, NestedSpansCloseInReverseOrder) {
  Tracer t;
  t.set_level(Level::kInfo);
  {
    const Span outer = t.span(Level::kInfo, "test", "outer");
    {
      const Span inner = t.span(Level::kInfo, "test", "inner");
    }
  }
  const auto events = t.ring().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, Phase::kEnd);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, Phase::kEnd);
  EXPECT_NE(events[0].span_id, events[1].span_id);
}

TEST(ObsTracerTest, FilteredSpanIsInactiveAndSilent) {
  Tracer t;
  t.set_level(Level::kAudit);
  {
    const Span s = t.span(Level::kInfo, "test", "invisible");
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(t.events_emitted(), 0u);
}

TEST(ObsTracerTest, MovedFromSpanDoesNotDoubleEmit) {
  Tracer t;
  t.set_level(Level::kInfo);
  {
    Span a = t.span(Level::kInfo, "test", "moved");
    const Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(b.active());
  }
  // Exactly one B and one E despite two Span objects having existed.
  EXPECT_EQ(t.events_emitted(), 2u);
}

TEST(ObsTracerTest, SimTimePropagatesIntoEvents) {
  Tracer t;
  t.set_level(Level::kDebug);
  t.instant(Level::kDebug, "test", "simful", "", SimTime::from_ms(25));
  t.instant(Level::kDebug, "test", "simless");
  const auto events = t.ring().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].has_sim_time());
  EXPECT_EQ(events[0].sim_us, 25'000);
  EXPECT_FALSE(events[1].has_sim_time());
}

TEST(ObsTracerTest, CounterEventsCarryValue) {
  Tracer t;
  t.set_level(Level::kDebug);
  t.counter(Level::kDebug, "test", "depth", 17);
  const auto events = t.ring().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, Phase::kCounter);
  EXPECT_EQ(events[0].value, 17);
}

TEST(ObsTracerTest, SinksReceiveEveryAcceptedEvent) {
  class CountingSink final : public TraceSink {
   public:
    void write(const TraceEvent&) override { ++writes; }
    int writes = 0;
  };
  Tracer t;
  CountingSink sink;
  t.add_sink(&sink);
  t.set_level(Level::kInfo);
  t.instant(Level::kInfo, "test", "one");
  t.instant(Level::kDebug, "test", "filtered");
  t.instant(Level::kAudit, "test", "two");
  EXPECT_EQ(sink.writes, 2);
  t.clear_sinks();
  t.instant(Level::kInfo, "test", "three");
  EXPECT_EQ(sink.writes, 2);
  EXPECT_EQ(t.events_emitted(), 3u);
}

TEST(ObsTracerTest, GlobalTracerDefaultsOffSoMacrosAreNoOps) {
  // The process-wide tracer must be dormant unless a caller opts in;
  // instrumented library code runs under this default in every test.
  ASSERT_EQ(tracer().level(), Level::kOff);
  const std::uint64_t before = tracer().events_emitted();
  LEXFOR_OBS_EVENT(Level::kAudit, "test", "ignored", "", no_sim_time());
  LEXFOR_OBS_SPAN(Level::kInfo, "test", "ignored", "", no_sim_time());
  EXPECT_EQ(tracer().events_emitted(), before);
}

}  // namespace
}  // namespace lexfor::obs
