#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lexfor::obs {
namespace {

// Thread-safety stress tests.  These are the targets of the
// ThreadSanitizer stage in tools/run_static_analysis.sh: every
// operation below must be data-race-free, and totals must be exact
// (no lost updates) because counters/histograms use atomics, not
// locked read-modify-write.

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20'000;

TEST(ObsMetricsThreadTest, ConcurrentCounterAddsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stress.hits");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kOpsPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsMetricsThreadTest, ConcurrentHistogramRecordsAreExact) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("stress.lat", {10, 100, 1000});
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Spread across all buckets; value range [1, 2000].
        h.record(1 + (t * kOpsPerThread + i) % 2000);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), total);
  std::uint64_t bucket_sum = 0;
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    bucket_sum += h.bucket_count(b);
  }
  EXPECT_EQ(bucket_sum, total);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 2000);
}

TEST(ObsMetricsThreadTest, ConcurrentRegistryLookupsYieldOneInstrument) {
  MetricsRegistry reg;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &seen, t] {
      Counter& c = reg.counter("stress.shared");
      seen[static_cast<std::size_t>(t)] = &c;
      for (int i = 0; i < 1'000; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_EQ(reg.counter("stress.shared").value(),
            static_cast<std::uint64_t>(kThreads) * 1'000);
}

TEST(ObsMetricsThreadTest, MixedGaugeWritesLandOnAWrittenValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("stress.depth");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < kOpsPerThread; ++i) g.set(t);
    });
  }
  for (auto& w : workers) w.join();
  // Last write wins; it must be one of the values actually written.
  const std::int64_t v = g.value();
  EXPECT_GE(v, 0);
  EXPECT_LT(v, kThreads);
}

}  // namespace
}  // namespace lexfor::obs
