#include "obs/profile.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.h"

namespace lexfor::obs {
namespace {

// Tests that flip the global profiler switch restore it, mirroring the
// level save/restore discipline the tracer tests use.
class EnabledGuard {
 public:
  EnabledGuard() : was_(profiler().enabled()) {}
  ~EnabledGuard() { profiler().set_enabled(was_); }

 private:
  bool was_;
};

TEST(ObsProfileTest, SiteAggregatesCountTotalMinMax) {
  ProfileSite site("unit");
  site.record(30);
  site.record(10);
  site.record(20);
  EXPECT_EQ(site.count(), 3u);
  EXPECT_EQ(site.total_ns(), 60u);
  EXPECT_EQ(site.min_ns(), 10u);
  EXPECT_EQ(site.max_ns(), 30u);
}

TEST(ObsProfileTest, EmptySiteReportsZeroesNotSentinels) {
  ProfileSite site("empty");
  EXPECT_EQ(site.count(), 0u);
  EXPECT_EQ(site.min_ns(), 0u);  // UINT64_MAX seed must not leak
  EXPECT_EQ(site.max_ns(), 0u);
}

TEST(ObsProfileTest, RegistryLookupReturnsStableReference) {
  ProfileRegistry reg;
  ProfileSite& a = reg.site("x");
  ProfileSite& again = reg.site("x");
  EXPECT_EQ(&a, &again);
  a.record(5);
  const auto samples = reg.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_EQ(samples[0].count, 1u);
  EXPECT_EQ(samples[0].total_ns, 5u);
}

TEST(ObsProfileTest, SamplesAreSortedByName) {
  ProfileRegistry reg;
  (void)reg.site("zeta");
  (void)reg.site("alpha");
  (void)reg.site("mid");
  const auto samples = reg.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
}

TEST(ObsProfileTest, ScopeIsInertWhileProfilerDisabled) {
  const EnabledGuard guard;
  profiler().set_enabled(false);
  ProfileSite site("disabled-scope");
  { const ProfileScope scope(site); }
  EXPECT_EQ(site.count(), 0u);
}

TEST(ObsProfileTest, ScopeRecordsWhenEnabled) {
  const EnabledGuard guard;
  profiler().set_enabled(true);
  ProfileSite site("enabled-scope");
  { const ProfileScope scope(site); }
  { const ProfileScope scope(site); }
  EXPECT_EQ(site.count(), 2u);
  EXPECT_GE(site.max_ns(), site.min_ns());
}

TEST(ObsProfileTest, MacroResolvesSiteOnceAndAggregates) {
  const EnabledGuard guard;
  profiler().set_enabled(true);
  const auto hit = [] { LEXFOR_OBS_PROFILE("test.profile.macro_site"); };
  hit();
  hit();
  hit();
  bool found = false;
  for (const ProfileSample& s : profiler().samples()) {
    if (s.name != "test.profile.macro_site") continue;
    found = true;
    EXPECT_GE(s.count, 3u);
    EXPECT_GE(s.max_ns, s.min_ns);
  }
#if LEXFOR_OBS
  EXPECT_TRUE(found);
#else
  EXPECT_FALSE(found);
#endif
}

TEST(ObsProfileTest, EightThreadRecordStressLosesNothing) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  ProfileSite site("stress");
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&site] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) site.record(i);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(site.count(), kThreads * kPerThread);
  EXPECT_EQ(site.total_ns(),
            kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(site.min_ns(), 1u);
  EXPECT_EQ(site.max_ns(), kPerThread);
}

TEST(ObsProfileTest, ResetZeroesAggregatesButKeepsSites) {
  ProfileRegistry reg;
  ProfileSite& site = reg.site("resettable");
  site.record(7);
  reg.reset();
  EXPECT_EQ(site.count(), 0u);
  EXPECT_EQ(site.min_ns(), 0u);
  EXPECT_EQ(&reg.site("resettable"), &site);
  site.record(3);
  EXPECT_EQ(site.min_ns(), 3u);
}

TEST(ObsProfileTest, GlobalProfilerDefaultsOff) {
  EXPECT_FALSE(profiler().enabled());
}

}  // namespace
}  // namespace lexfor::obs
