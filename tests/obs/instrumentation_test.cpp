// End-to-end checks that the instrumented library modules actually emit
// trace events and metrics through the process-wide tracer/registry when
// the runtime level is raised.  gtest_discover_tests runs each test in
// its own process, so flipping the global level here cannot leak into
// other tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "evidence/custody.h"
#include "legal/engine.h"
#include "obs/obs.h"

namespace lexfor {
namespace {

std::vector<obs::TraceEvent> events_named(std::string_view category,
                                          std::string_view name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& ev : obs::tracer().ring().snapshot()) {
    if (ev.category == category && ev.name == name) out.push_back(ev);
  }
  return out;
}

TEST(ObsInstrumentationTest, EngineEvaluateEmitsAuditVerdict) {
  obs::tracer().set_level(obs::Level::kAudit);
  obs::tracer().ring().clear();
  const std::uint64_t evals_before =
      obs::metrics().counter("legal.evaluations").value();

  legal::ComplianceEngine engine;
  const auto d = engine.evaluate(legal::Scenario{}
                                     .named("obs wiretap probe")
                                     .acquiring(legal::DataKind::kContent)
                                     .located(legal::DataState::kInTransit)
                                     .when(legal::Timing::kRealTime));
  ASSERT_TRUE(d.needs_process);

  const auto verdicts = events_named("legal", "verdict");
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].level, obs::Level::kAudit);
  EXPECT_NE(verdicts[0].args.find("scenario=obs wiretap probe"),
            std::string::npos);
  EXPECT_EQ(obs::metrics().counter("legal.evaluations").value(),
            evals_before + 1);
  // kAudit admits only legally-meaningful events: the kInfo evaluate
  // span must have been filtered out.
  EXPECT_TRUE(events_named("legal", "evaluate").empty());
}

TEST(ObsInstrumentationTest, CustodyRecordsBecomeAuditEvents) {
  obs::tracer().set_level(obs::Level::kAudit);
  obs::tracer().ring().clear();

  const Bytes case_key = to_bytes("obs-case-key");
  evidence::EvidenceItem item(EvidenceId{1}, "seized laptop image",
                              to_bytes("disk contents"), "agent-smith",
                              SimTime::from_ms(10), case_key);
  item.record(evidence::CustodyAction::kImaged, "lab-tech", "dd image",
              SimTime::from_ms(20), case_key);
  item.record(evidence::CustodyAction::kExamined, "examiner", "keyword scan",
              SimTime::from_ms(30), case_key);

  // Seizure + two transfers = three chain entries, three audit events.
  const auto custody = events_named("evidence", "custody");
  ASSERT_EQ(custody.size(), 3u);
  EXPECT_EQ(custody[0].sim_us, 10'000);
  EXPECT_NE(custody[1].args.find("action=imaged"), std::string::npos);
  EXPECT_NE(custody[2].args.find("custodian=examiner"), std::string::npos);
  EXPECT_EQ(item.chain().size(), 3u);
}

TEST(ObsInstrumentationTest, OffLevelSuppressesInstrumentationEvents) {
  obs::tracer().set_level(obs::Level::kOff);
  obs::tracer().ring().clear();

  legal::ComplianceEngine engine;
  (void)engine.evaluate(legal::Scenario{}
                            .acquiring(legal::DataKind::kContent)
                            .located(legal::DataState::kOnDevice));
  EXPECT_EQ(obs::tracer().ring().size(), 0u);
}

}  // namespace
}  // namespace lexfor
