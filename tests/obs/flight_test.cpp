#include "obs/flight.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace lexfor::obs {
namespace {

// Every flight test drives the PROCESS-WIDE recorder and tracer, so it
// must leave both exactly as found: recorder disarmed, tracer level
// restored.  The fixture also owns a unique dump file per test.
class ObsFlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "lexfor_flight_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
    saved_level_ = tracer().level();
  }

  void TearDown() override {
    flight_recorder().disarm();
    tracer().set_level(saved_level_);
    std::remove(path_.c_str());
  }

  [[nodiscard]] std::vector<std::string> dump_lines() const {
    std::ifstream is(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  std::string path_;
  Level saved_level_ = Level::kOff;
};

TEST_F(ObsFlightTest, DumpIsRefusedWhileDisarmed) {
  flight_recorder().disarm();
  EXPECT_FALSE(dump_flight_record("nobody-listening"));
  EXPECT_TRUE(dump_lines().empty());
}

TEST_F(ObsFlightTest, DumpWritesHeaderEventsAndMetricsSnapshot) {
  tracer().set_level(Level::kDebug);
  tracer().instant(Level::kInfo, "flight", "before-dump", "k=v");
  tracer().instant(Level::kDebug, "flight", "second");

  FlightRecorderConfig cfg;
  cfg.path = path_;
  cfg.dump_on_error = false;
  flight_recorder().configure(cfg);
  ASSERT_TRUE(flight_recorder().armed());
  EXPECT_EQ(flight_recorder().path(), path_);
  ASSERT_TRUE(dump_flight_record("unit-test"));

  const auto lines = dump_lines();
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines.front().find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"reason\":\"unit-test\""),
            std::string::npos);
  EXPECT_NE(lines.back().find("\"type\":\"metrics\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"snapshot\":{"), std::string::npos);
  // The two traced events appear as event lines, in order.
  std::size_t events = 0;
  bool saw_first = false;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"event\"") == std::string::npos) continue;
    ++events;
    if (line.find("before-dump") != std::string::npos) saw_first = true;
    if (line.find("\"second\"") != std::string::npos) {
      EXPECT_TRUE(saw_first) << "events out of order in dump";
    }
  }
  EXPECT_GE(events, 2u);
}

TEST_F(ObsFlightTest, ErrorLevelEventTriggersAutomaticDump) {
  FlightRecorderConfig cfg;
  cfg.path = path_;
  flight_recorder().configure(cfg);
  const std::uint64_t dumps_before = flight_recorder().dumps();

  tracer().set_level(Level::kError);
  tracer().instant(Level::kError, "flight", "boom", "what=testing");

  EXPECT_EQ(flight_recorder().dumps(), dumps_before + 1);
  const auto lines = dump_lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("\"reason\":\"error-event\""),
            std::string::npos);
  // The dump contains the error event itself.
  bool saw_error = false;
  for (const std::string& line : lines) {
    if (line.find("\"boom\"") != std::string::npos) saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

TEST_F(ObsFlightTest, ErrorEventsBelowLevelFilterDoNotDump) {
  FlightRecorderConfig cfg;
  cfg.path = path_;
  flight_recorder().configure(cfg);
  const std::uint64_t dumps_before = flight_recorder().dumps();
  tracer().set_level(Level::kOff);  // filter rejects even errors
  tracer().instant(Level::kError, "flight", "silenced");
  EXPECT_EQ(flight_recorder().dumps(), dumps_before);
}

TEST_F(ObsFlightTest, LastEventsLimitKeepsOnlyTheNewest) {
  tracer().set_level(Level::kDebug);
  for (int i = 0; i < 6; ++i) {
    tracer().instant(Level::kInfo, "flight",
                     "evt-" + std::to_string(i));
  }
  FlightRecorderConfig cfg;
  cfg.path = path_;
  cfg.last_events = 2;
  cfg.dump_on_error = false;
  flight_recorder().configure(cfg);
  ASSERT_TRUE(dump_flight_record("limited"));

  std::size_t events = 0;
  bool saw_newest = false;
  for (const std::string& line : dump_lines()) {
    if (line.find("\"type\":\"event\"") == std::string::npos) continue;
    ++events;
    if (line.find("evt-5") != std::string::npos) saw_newest = true;
    EXPECT_EQ(line.find("evt-0"), std::string::npos)
        << "oldest event leaked into a last-2 dump";
  }
  EXPECT_EQ(events, 2u);
  EXPECT_TRUE(saw_newest);
}

TEST_F(ObsFlightTest, RepeatedDumpsAppendToOneFile) {
  FlightRecorderConfig cfg;
  cfg.path = path_;
  cfg.dump_on_error = false;
  flight_recorder().configure(cfg);
  ASSERT_TRUE(dump_flight_record("first"));
  ASSERT_TRUE(dump_flight_record("second"));
  std::size_t headers = 0;
  for (const std::string& line : dump_lines()) {
    if (line.find("\"type\":\"flight\"") != std::string::npos) ++headers;
  }
  EXPECT_EQ(headers, 2u);
}

}  // namespace
}  // namespace lexfor::obs
