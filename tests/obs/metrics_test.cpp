#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace lexfor::obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.hits");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("test.hits"), &c);
  EXPECT_NE(&reg.counter("test.other"), &c);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsMetricsTest, HistogramTracksCountSumMinMax) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.lat", {10, 100, 1000});
  for (const std::int64_t v : {3, 42, 42, 950, 5000}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 3 + 42 + 42 + 950 + 5000);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 5000);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 5.0);
  // Bucket layout: (-inf,10], (10,100], (100,1000], overflow.
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(ObsMetricsTest, EmptyHistogramReportsZeroes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.empty", {1, 2});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

// Regression: an unrecorded histogram used to surface its INT64_MAX /
// INT64_MIN seed sentinels through min()/max().  While empty the
// accessors must report 0 and the renderers must omit the stats.
TEST(ObsMetricsTest, EmptyHistogramDoesNotLeakSentinels) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.empty", {10, 100});
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);

  std::ostringstream text;
  reg.to_text(text);
  // 9223372036854775807 == INT64_MAX, the old leaked sentinel.
  EXPECT_EQ(text.str().find("9223372036854775807"), std::string::npos);
  EXPECT_NE(text.str().find("histogram test.empty count=0"),
            std::string::npos);

  std::ostringstream json;
  reg.to_json(json);
  EXPECT_NE(json.str().find("\"test.empty\":{\"count\":0}"),
            std::string::npos);

  // reset() re-seeds the sentinels; the empty-state reporting must
  // survive a record/reset cycle.
  h.record(42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  h.reset();
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

// Percentile estimates interpolate within a bucket, so the error is
// bounded by the width of the bucket containing the percentile.  Check
// p50/p95/p99 against an exact sorted-sample reference.
TEST(ObsMetricsTest, PercentilesTrackSortedReferenceWithinBucketWidth) {
  MetricsRegistry reg;
  // 1-2-5 ladder over [1, 5e6]; samples drawn log-uniformly in [1, 1e6).
  Histogram& h = reg.histogram("test.p");
  Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    const double log_span = 6.0 * rng.uniform01();
    const auto v = static_cast<std::int64_t>(std::pow(10.0, log_span));
    samples.push_back(static_cast<double>(v));
    h.record(v);
  }
  for (const double p : {50.0, 95.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double estimate = h.percentile(p);
    // Containing bucket in a 1-2-5 ladder is at most 2.5x wide; the
    // estimate must land within that bucket's span of the exact value.
    EXPECT_GE(estimate, exact / 2.5) << "p" << p;
    EXPECT_LE(estimate, exact * 2.5) << "p" << p;
  }
  // Extremes clamp to observed samples.
  EXPECT_DOUBLE_EQ(h.percentile(0), static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(h.percentile(100), static_cast<double>(h.max()));
}

TEST(ObsMetricsTest, PercentileExactForSingleValue) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.single", {10, 100});
  for (int i = 0; i < 50; ++i) h.record(42);
  // All mass in one bucket clamped by observed min=max=42.
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
}

// Regression (ISSUE 7 satellite): the overflow bucket has no declared
// upper bound, so its interpolation endpoint must be the observed max —
// a percentile estimate may never exceed the largest recorded value.
TEST(ObsMetricsTest, OverflowBucketPercentilesClampToObservedMax) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.overflow", {10, 100});
  // 90% of the mass lands past the last bound.
  for (int i = 0; i < 10; ++i) h.record(5);
  for (int i = 0; i < 90; ++i) h.record(150);
  for (const double p : {50.0, 95.0, 99.0, 100.0}) {
    EXPECT_LE(h.percentile(p), static_cast<double>(h.max())) << "p" << p;
    EXPECT_GE(h.percentile(p), static_cast<double>(h.min())) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(100), 150.0);
}

TEST(ObsMetricsTest, SingleOverflowSampleReportsItsOwnValue) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.overflow1", {10});
  h.record(7'000'000);  // alone in the overflow bucket
  EXPECT_DOUBLE_EQ(h.percentile(50), 7'000'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 7'000'000.0);
}

TEST(ObsMetricsTest, AllMassInOverflowInterpolatesWithinObservedRange) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.overflow_all", {10});
  h.record(1'000);
  h.record(2'000);
  h.record(3'000);
  for (const double p : {1.0, 50.0, 99.0}) {
    EXPECT_GE(h.percentile(p), 1'000.0) << "p" << p;
    EXPECT_LE(h.percentile(p), 3'000.0) << "p" << p;
  }
}

TEST(ObsMetricsTest, SampleAccessorsMirrorLiveInstruments) {
  MetricsRegistry reg;
  reg.counter("b.counter").add(3);
  reg.counter("a.counter").add(1);
  reg.gauge("g").set(-4);
  Histogram& h = reg.histogram("h", {10});
  h.record(5);
  h.record(500);

  const auto counters = reg.counter_samples();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a.counter");  // sorted by name
  EXPECT_EQ(counters[1].value, 3u);
  const auto gauges = reg.gauge_samples();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].value, -4);
  const auto hists = reg.histogram_samples();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, 2u);
  EXPECT_EQ(hists[0].sum, 505);
  ASSERT_EQ(hists[0].buckets.size(), 2u);
  EXPECT_EQ(hists[0].buckets[0], 1u);
  EXPECT_EQ(hists[0].buckets[1], 1u);
  EXPECT_DOUBLE_EQ(hists[0].percentile(99), h.percentile(99));
}

TEST(ObsMetricsTest, TextRenderingListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("depth").set(3);
  reg.histogram("lat", {10}).record(5);
  std::ostringstream os;
  reg.to_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("counter   a.count = 1"), std::string::npos);
  EXPECT_NE(text.find("counter   b.count = 2"), std::string::npos);
  EXPECT_NE(text.find("gauge     depth = 3"), std::string::npos);
  EXPECT_NE(text.find("histogram lat count=1"), std::string::npos);
  // Sorted by name: a.count before b.count.
  EXPECT_LT(text.find("a.count"), text.find("b.count"));
}

TEST(ObsMetricsTest, JsonRenderingIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("hits").add(7);
  reg.gauge("depth").set(-2);
  reg.histogram("lat", {10, 100}).record(42);
  std::ostringstream os;
  reg.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\":{\"hits\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"depth\":-2}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":1"), std::string::npos);
  // Balanced braces (no nested strings contain braces here).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsMetricsTest, ResetZeroesValuesButKeepsInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Gauge& g = reg.gauge("depth");
  Histogram& h = reg.histogram("lat", {10});
  c.add(5);
  g.set(5);
  h.record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // Cached references stay valid and usable after reset.
  c.add(1);
  EXPECT_EQ(reg.counter("hits").value(), 1u);
}

}  // namespace
}  // namespace lexfor::obs
