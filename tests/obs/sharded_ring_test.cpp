#include "obs/sharded_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace lexfor::obs {
namespace {

TraceEvent make_event(std::uint64_t wall_ns, std::string name = {}) {
  TraceEvent ev;
  ev.wall_ns = wall_ns;
  ev.name = name.empty() ? "e" + std::to_string(wall_ns) : std::move(name);
  ev.category = "test";
  return ev;
}

bool is_time_ordered(const std::vector<TraceEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i - 1].wall_ns > events[i].wall_ns) return false;
    if (events[i - 1].wall_ns == events[i].wall_ns &&
        events[i - 1].seq >= events[i].seq) {
      return false;
    }
  }
  return true;
}

TEST(ObsShardedRingTest, StartsEmptyWithNoShards) {
  ShardedEventRing ring(8);
  EXPECT_EQ(ring.shard_count(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(ObsShardedRingTest, SingleThreadKeepsOrderAndStampsSeq) {
  ShardedEventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_event(100 + i));
  EXPECT_EQ(ring.shard_count(), 1u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].wall_ns, 100 + i);
    EXPECT_EQ(events[i].seq, i + 1);  // 1-based claim order
  }
}

TEST(ObsShardedRingTest, SeqBreaksWallClockTies) {
  ShardedEventRing ring(8);
  ring.push(make_event(7, "first"));
  ring.push(make_event(7, "second"));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[1].name, "second");
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(ObsShardedRingTest, DrainConsumesAndBalancesAccounting) {
  ShardedEventRing ring(8);
  for (std::uint64_t i = 0; i < 6; ++i) ring.push(make_event(i));
  const auto events = ring.drain();
  EXPECT_EQ(events.size(), 6u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped());
  // A second drain returns nothing new.
  EXPECT_TRUE(ring.drain().empty());
  // Post-drain pushes keep the sequence monotonic.
  ring.push(make_event(99));
  const auto more = ring.drain();
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].seq, 7u);
}

TEST(ObsShardedRingTest, WraparoundDropsAreCountedExhaustively) {
  ShardedEventRing ring(4);
  for (std::uint64_t i = 0; i < 11; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.pushed(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped() + ring.size());
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].wall_ns, 7u + i);
  // The satellite invariant: after the final drain every pushed event
  // is accounted for as drained or dropped.
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped());
}

TEST(ObsShardedRingTest, ClearEmptiesButKeepsSeqMonotonic) {
  ShardedEventRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.push(make_event(i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.shard_count(), 1u);  // registration survives clear
  ring.push(make_event(50));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GT(events[0].seq, 3u);  // global sequence did not rewind
}

TEST(ObsShardedRingTest, TwoRingsOnOneThreadStayIsolated) {
  ShardedEventRing a(8);
  ShardedEventRing b(8);
  a.push(make_event(1, "into-a"));
  b.push(make_event(2, "into-b"));
  const auto from_a = a.snapshot();
  const auto from_b = b.snapshot();
  ASSERT_EQ(from_a.size(), 1u);
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_a[0].name, "into-a");
  EXPECT_EQ(from_b[0].name, "into-b");
}

TEST(ObsShardedRingTest, EightThreadStressMergesWithoutLossOrDisorder) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 2'000;
  // Shard capacity >= per-thread volume: nothing may drop.
  ShardedEventRing ring(kPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.wall_ns = i;  // heavy cross-thread ties; seq must break them
        ev.tid = static_cast<std::uint32_t>(t);
        ev.value = static_cast<std::int64_t>(i);
        ev.category = "stress";
        ev.name = "s";
        ring.push(std::move(ev));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(ring.shard_count(), kThreads);
  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), 0u);

  const auto events = ring.drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_TRUE(is_time_ordered(events));

  // Every seq is unique and every per-thread stream arrived complete
  // and in emission order.
  std::set<std::uint64_t> seqs;
  std::vector<std::int64_t> last_value(kThreads, -1);
  for (const TraceEvent& ev : events) {
    EXPECT_TRUE(seqs.insert(ev.seq).second) << "duplicate seq " << ev.seq;
    ASSERT_LT(ev.tid, kThreads);
    EXPECT_EQ(ev.value, last_value[ev.tid] + 1)
        << "thread " << ev.tid << " stream reordered or lossy";
    last_value[ev.tid] = ev.value;
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(last_value[t], static_cast<std::int64_t>(kPerThread) - 1);
  }
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped());
}

TEST(ObsShardedRingTest, EightThreadOverflowKeepsAccountingExhaustive) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 1'000;
  ShardedEventRing ring(64);  // tiny shards: most events must drop
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ring] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(make_event(i));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  EXPECT_GT(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped() + ring.size());
  for (std::size_t i = 0; i < ring.shard_count(); ++i) {
    const EventRing& shard = ring.shard(i);
    EXPECT_EQ(shard.pushed(),
              shard.drained() + shard.dropped() + shard.size());
  }
  const auto events = ring.drain();
  EXPECT_EQ(events.size(), kThreads * 64u);
  EXPECT_TRUE(is_time_ordered(events));
  EXPECT_EQ(ring.pushed(), ring.drained() + ring.dropped());
}

TEST(ObsShardedRingTest, TracerPublishesPerShardDropCounters) {
  Tracer t(/*ring_capacity=*/4);
  t.set_level(Level::kDebug);
  const std::uint64_t before =
      metrics().counter("obs.ring.dropped{shard=\"0\"}").value();
  for (int i = 0; i < 10; ++i) {
    t.instant(Level::kInfo, "test", "overflow");
  }
  const auto events = t.drain();  // drains + publishes drop metrics
  EXPECT_EQ(events.size(), 4u);
  const std::uint64_t after =
      metrics().counter("obs.ring.dropped{shard=\"0\"}").value();
  EXPECT_EQ(after - before, 6u);
  // Repeat publication without new drops adds nothing (delta-based).
  t.publish_ring_metrics();
  EXPECT_EQ(metrics().counter("obs.ring.dropped{shard=\"0\"}").value(),
            after);
}

TEST(ObsShardedRingTest, TracerDrainMergesAndEmptiesRing) {
  Tracer t;
  t.set_level(Level::kDebug);
  t.instant(Level::kInfo, "test", "one");
  t.instant(Level::kInfo, "test", "two");
  const auto events = t.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(is_time_ordered(events));
  EXPECT_EQ(t.ring().size(), 0u);
  EXPECT_EQ(t.ring().pushed(), t.ring().drained() + t.ring().dropped());
}

}  // namespace
}  // namespace lexfor::obs
