// TapRegistry: per-suspect admission before any state exists, one arena
// behind every tap, single-pass multi-suspect collection, and exact
// aggregate drop accounting under overload and mid-flight topology
// changes.

#include "stream/tap_registry.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "legal/process.h"
#include "netsim/flow.h"
#include "stream/online_despread.h"
#include "util/rng.h"
#include "watermark/pn_code.h"

namespace lexfor::stream {
namespace {

using watermark::CorrelationKernel;
using watermark::PnCode;

legal::Scenario rate_collection_scenario() {
  return legal::Scenario{}
      .named("registry non-content rate collection")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kAddressing)
      .located(legal::DataState::kInTransit)
      .when(legal::Timing::kRealTime);
}

legal::GrantedAuthority court_order_authority() {
  legal::LegalProcess order;
  order.kind = legal::ProcessKind::kCourtOrder;
  order.scope.data_kinds = {legal::DataKind::kAddressing};
  order.issued_at = SimTime::zero();
  order.validity = SimDuration::from_sec(30 * 24 * 3600.0);
  return legal::GrantedAuthority{order};
}

TapSessionConfig tap_config(NodeId target, SimDuration bin_width,
                            std::size_t capacity) {
  TapSessionConfig cfg;
  cfg.scenario = rate_collection_scenario();
  cfg.authority = court_order_authority();
  cfg.target = target;
  cfg.ring.start = SimTime::zero();
  cfg.ring.bin_width = bin_width;
  cfg.ring.capacity = capacity;
  return cfg;
}

netsim::Packet make_packet(NodeId src, NodeId dst) {
  netsim::Packet p;
  p.header.src = src;
  p.header.dst = dst;
  return p;
}

TEST(TapRegistryTest, RefusedAdmissionLeavesRegistryUntouched) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  TapRegistry registry;

  auto ok_cfg = tap_config(NodeId{1}, SimDuration::from_ms(100.0), 64);
  ASSERT_TRUE(registry.add_tap(kernel, ok_cfg).ok());
  const std::size_t bytes_after_first = registry.arena_bytes();
  EXPECT_GT(bytes_after_first, 0u);

  // A content grab under the same court order must be refused with NO
  // state: no slot, no arena growth — the tap never existed.
  auto content_cfg = tap_config(NodeId{2}, SimDuration::from_ms(100.0), 64);
  content_cfg.scenario =
      content_cfg.scenario.acquiring(legal::DataKind::kContent);
  const auto refused = registry.add_tap(kernel, content_cfg);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.refused(), 1u);
  EXPECT_EQ(registry.arena_bytes(), bytes_after_first);
}

TEST(TapRegistryTest, TapPointersStayStableAcrossGrowth) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  TapRegistry registry;
  std::vector<TapSession*> handles;
  for (std::uint32_t i = 0; i < 32; ++i) {
    auto tap = registry.add_tap(
        kernel, tap_config(NodeId{i + 1}, SimDuration::from_ms(100.0), 32));
    ASSERT_TRUE(tap.ok());
    handles.push_back(tap.value());
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i], &registry.tap(i));
  }
}

TEST(TapRegistryTest, DirectFeedMatchesStandaloneDespreader) {
  // feed_bin must drive exactly the despreader a standalone
  // OnlineDespreader over the same bins would be — bit for bit.
  const auto code = PnCode::m_sequence(6).value();
  const CorrelationKernel kernel(code);
  Rng rng{17};
  std::vector<double> bins(code.length() + 8);
  for (auto& b : bins) b = 100.0 + rng.normal(0.0, 10.0);

  TapRegistry registry;
  ASSERT_TRUE(
      registry
          .add_tap(kernel, tap_config(NodeId{1}, SimDuration::from_ms(100.0),
                                      code.length()))
          .ok());
  OnlineDespreader reference(kernel, /*max_offset=*/0);
  for (const double b : bins) {
    registry.feed_bin(0, b);
    (void)reference.push(b);
  }
  const auto& got = registry.tap(0).verdict().scan;
  const auto& want = reference.verdict().scan;
  EXPECT_EQ(got.offset, want.offset);
  EXPECT_EQ(got.best.detected, want.best.detected);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.best.correlation),
            std::bit_cast<std::uint64_t>(want.best.correlation));
  EXPECT_EQ(registry.tap(0).stats().bins_scored, bins.size());
}

TEST(TapRegistryTest, AggregateAccountingExactUnderOverload) {
  // Tiny rings, never pumped: most events overflow.  The conservation
  // invariant recorded + drops == offered must hold exactly on the
  // aggregate across every tap.
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  TapRegistry registry;
  constexpr std::size_t kTaps = 4;
  for (std::uint32_t i = 0; i < kTaps; ++i) {
    ASSERT_TRUE(registry
                    .add_tap(kernel, tap_config(NodeId{i + 1},
                                                SimDuration::from_ms(10.0), 2))
                    .ok());
  }

  // Offer every outcome class to every tap.  The tap pumps itself as
  // events arrive, so overload must come from a burst AHEAD of the
  // drain clock (bin 50 against a 2-bin ring), and lateness from an
  // event BEHIND a ring that burst pushed forward.
  std::uint64_t offered = 0;
  for (std::uint32_t t = 0; t < kTaps; ++t) {
    const NodeId target{t + 1};
    const NodeId other{100 + t};
    const auto pkt = make_packet(other, target);
    const auto offer = [&](double at_ms) {
      registry.tap(t).on_traversal(
          {pkt, LinkId{1}, other, target, SimTime::from_ms(at_ms)});
      ++offered;
    };
    offer(-5.0);  // early: before the tap's start
    offer(0.0);   // recorded into bin 0
    // Each burst event jumps >= 3 bins ahead of the base the previous
    // pump left, so every one lands beyond base + capacity: overflow.
    for (int i = 0; i < 10; ++i) offer(500.0 + 30.0 * static_cast<double>(i));
    offer(400.0);  // far behind the drained base by now: late
    offer(775.0);  // the open bin after the burst: recorded
  }

  const RateRingStats total = registry.aggregate_ring_stats();
  EXPECT_EQ(total.offered(), offered);
  EXPECT_EQ(total.recorded + total.early_drops + total.late_drops +
                total.overflow_drops,
            offered);
  EXPECT_EQ(total.early_drops, kTaps);
  EXPECT_EQ(total.late_drops, kTaps);
  EXPECT_EQ(total.overflow_drops, 10u * kTaps);
  EXPECT_EQ(total.recorded, 2u * kTaps);
}

TEST(TapRegistryTest, SinglePassMultiSuspectCollectionOverLiveNetwork) {
  // One simulation, three suspects tapped at once; every tap's
  // accounting closes and the aggregate equals the per-tap sum even
  // when a link is cut mid-observation.
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  const SimDuration chip = SimDuration::from_ms(100.0);

  netsim::Network net(29);
  const auto server = net.add_node("server");
  const auto isp = net.add_node("isp");
  ASSERT_TRUE(net.connect(server, isp).ok());
  std::vector<NodeId> suspects;
  std::vector<LinkId> access;
  for (int i = 0; i < 3; ++i) {
    suspects.push_back(net.add_node("suspect" + std::to_string(i)));
    access.push_back(net.connect(isp, suspects.back()).value());
  }

  TapRegistry registry;
  for (const auto s : suspects) {
    ASSERT_TRUE(registry.add_tap(kernel, tap_config(s, chip, 64)).ok());
  }
  ASSERT_TRUE(registry.attach_all(net).ok());

  std::vector<std::unique_ptr<netsim::FlowSource>> flows;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    netsim::FlowConfig fc;
    fc.id = FlowId{static_cast<std::uint32_t>(i + 1)};
    fc.src = server;
    fc.dst = suspects[i];
    fc.packets_per_sec = 150.0;
    fc.stop = SimTime::from_sec(3.1);
    flows.push_back(std::make_unique<netsim::FlowSource>(
        net, fc, netsim::ArrivalProcess::kPoisson, 5 + i));
    flows.back()->start();
  }
  // Cut suspect 2's access mid-flight: drops are counted, never lost.
  net.clock().schedule_at(SimTime::from_sec(1.5),
                          [&net, &access] { (void)net.disconnect(access[2]); });
  net.run();
  registry.pump_all(net.now() + chip);

  std::uint64_t packets_sum = 0, offered_sum = 0;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& tap = registry.tap(i);
    EXPECT_EQ(tap.stats().packets_seen, tap.ring().stats().offered())
        << "tap " << i;
    packets_sum += tap.stats().packets_seen;
    offered_sum += tap.ring().stats().offered();
  }
  const RateRingStats total = registry.aggregate_ring_stats();
  EXPECT_EQ(total.offered(), offered_sum);
  EXPECT_EQ(packets_sum, offered_sum);
  EXPECT_GT(total.recorded, 0u);
  EXPECT_EQ(net.packets_sent(),
            net.packets_delivered() + net.packets_dropped());
  EXPECT_GT(net.packets_dropped(), 0u);  // the cut really happened
}

}  // namespace
}  // namespace lexfor::stream
