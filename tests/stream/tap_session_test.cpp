// TapSession: legal admission gates ALL recording, the ring + online
// despreader detect a live watermark end to end, and overload /
// topology failure degrade to counted drops, never crashes.

#include "stream/tap_session.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "legal/process.h"
#include "netsim/flow.h"
#include "watermark/dsss.h"
#include "watermark/pn_code.h"

namespace lexfor::stream {
namespace {

using watermark::CorrelationKernel;
using watermark::PnCode;

// The §IV.B posture: law enforcement collecting non-content rates in
// real time.  The engine rules it Pen/Trap territory (court order).
legal::Scenario rate_collection_scenario() {
  return legal::Scenario{}
      .named("streaming non-content rate collection at the suspect's ISP")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kAddressing)
      .located(legal::DataState::kInTransit)
      .when(legal::Timing::kRealTime);
}

legal::GrantedAuthority court_order_authority() {
  legal::LegalProcess order;
  order.kind = legal::ProcessKind::kCourtOrder;
  order.scope.data_kinds = {legal::DataKind::kAddressing};
  order.issued_at = SimTime::zero();
  order.validity = SimDuration::from_sec(30 * 24 * 3600.0);
  return legal::GrantedAuthority{order};
}

TapSessionConfig base_config(NodeId target, SimDuration bin_width,
                             std::size_t capacity) {
  TapSessionConfig cfg;
  cfg.scenario = rate_collection_scenario();
  cfg.authority = court_order_authority();
  cfg.target = target;
  cfg.ring.start = SimTime::zero();
  cfg.ring.bin_width = bin_width;
  cfg.ring.capacity = capacity;
  return cfg;
}

netsim::Packet make_packet(NodeId src, NodeId dst) {
  netsim::Packet p;
  p.header.src = src;
  p.header.dst = dst;
  return p;
}

TEST(TapSessionTest, CompliantScenarioWithCourtOrderIsAdmitted) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  netsim::Network net(1);
  const auto isp = net.add_node("isp");
  const auto suspect = net.add_node("suspect");
  ASSERT_TRUE(net.connect(isp, suspect).ok());

  auto session_r = TapSession::create(
      kernel, base_config(suspect, SimDuration::from_ms(100.0), 64));
  ASSERT_TRUE(session_r.ok()) << session_r.status().message();
  auto session = std::move(session_r).value();
  EXPECT_TRUE(session.attach(net).ok());
  EXPECT_EQ(session.admission().required_process,
            legal::ProcessKind::kCourtOrder);
}

TEST(TapSessionTest, NonCompliantScenarioRecordsZeroBins) {
  // Content interception in real time needs a WIRETAP order; holding a
  // mere pen/trap court order, the tap must refuse to exist — zero bins
  // recorded is by construction, not by filtering.
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  netsim::Network net(1);
  const auto suspect = net.add_node("suspect");

  auto cfg = base_config(suspect, SimDuration::from_ms(100.0), 64);
  cfg.scenario = cfg.scenario.named("full-content intercept, court order only")
                     .acquiring(legal::DataKind::kContent);
  const auto session_r = TapSession::create(kernel, cfg);
  ASSERT_FALSE(session_r.ok());
  EXPECT_EQ(session_r.status().code(), StatusCode::kPermissionDenied);
}

TEST(TapSessionTest, NoProcessHeldIsRefused) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  netsim::Network net(1);
  const auto suspect = net.add_node("suspect");

  auto cfg = base_config(suspect, SimDuration::from_ms(100.0), 64);
  cfg.authority = legal::GrantedAuthority{};  // nothing held
  const auto session_r = TapSession::create(kernel, cfg);
  ASSERT_FALSE(session_r.ok());
  EXPECT_EQ(session_r.status().code(), StatusCode::kPermissionDenied);
}

TEST(TapSessionTest, DetectsLiveWatermarkEndToEnd) {
  // Server modulates its send rate with the PN code; the tap at the
  // suspect's access node must find the mark from live traversals.
  const auto code = PnCode::m_sequence(6).value();  // 63 chips
  const CorrelationKernel kernel(code);
  const SimDuration chip = SimDuration::from_ms(200.0);

  netsim::Network net(42);
  const auto server = net.add_node("server");
  const auto isp = net.add_node("isp");
  const auto suspect = net.add_node("suspect");
  netsim::LinkConfig fast;
  fast.latency = SimDuration::from_ms(1.0);
  ASSERT_TRUE(net.connect(server, isp, fast).ok());
  ASSERT_TRUE(net.connect(isp, suspect, fast).ok());

  watermark::EmbedParams ep;
  ep.start = SimTime::zero();
  ep.chip_duration = chip;
  ep.depth = 0.5;
  const watermark::Embedder embedder(code, ep);

  netsim::FlowConfig fc;
  fc.id = FlowId{1};
  fc.src = server;
  fc.dst = suspect;
  fc.packets_per_sec = 200.0;
  fc.start = SimTime::zero();
  fc.stop = embedder.end();
  netsim::FlowSource flow(net, fc, netsim::ArrivalProcess::kPoisson, 7,
                          [&embedder](SimTime t) {
                            return embedder.multiplier(t);
                          });

  auto session_r =
      TapSession::create(kernel, base_config(suspect, chip, code.length() + 8));
  ASSERT_TRUE(session_r.ok());
  auto session = std::move(session_r).value();
  ASSERT_TRUE(session.attach(net).ok());

  flow.start();
  net.run();
  session.pump(net.now() + chip);  // flush the final chip bin

  EXPECT_TRUE(session.verdict().complete);
  EXPECT_TRUE(session.verdict().scan.best.detected)
      << "correlation " << session.verdict().scan.best.correlation
      << " threshold " << session.verdict().scan.best.threshold;
  EXPECT_GT(session.stats().packets_seen, 1000u);
  EXPECT_EQ(session.stats().packets_seen, session.ring().stats().recorded);
  // Bounded memory: the ring never held more than its capacity.
  EXPECT_LE(session.ring().occupancy(), session.ring().capacity());
}

TEST(TapSessionTest, UnmarkedTrafficStaysBelowThreshold) {
  const auto code = PnCode::m_sequence(6).value();
  const CorrelationKernel kernel(code);
  const SimDuration chip = SimDuration::from_ms(200.0);

  netsim::Network net(42);
  const auto server = net.add_node("server");
  const auto suspect = net.add_node("suspect");
  ASSERT_TRUE(net.connect(server, suspect).ok());

  netsim::FlowConfig fc;
  fc.id = FlowId{1};
  fc.src = server;
  fc.dst = suspect;
  fc.packets_per_sec = 200.0;
  fc.stop = SimTime::from_sec(chip.seconds() *
                              static_cast<double>(code.length()));
  netsim::FlowSource flow(net, fc, netsim::ArrivalProcess::kPoisson, 7);

  auto session_r =
      TapSession::create(kernel, base_config(suspect, chip, code.length() + 8));
  ASSERT_TRUE(session_r.ok());
  auto session = std::move(session_r).value();
  ASSERT_TRUE(session.attach(net).ok());

  flow.start();
  net.run();
  session.pump(net.now() + chip);

  ASSERT_TRUE(session.verdict().complete);
  EXPECT_FALSE(session.verdict().scan.best.detected);
}

TEST(TapSessionTest, OutOfWindowTraversalsAreCountedDropsNotCrashes) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  netsim::Network net(1);
  const auto isp = net.add_node("isp");
  const auto suspect = net.add_node("suspect");
  const auto link = net.connect(isp, suspect).value();

  auto cfg = base_config(suspect, SimDuration::from_ms(100.0), 4);
  cfg.ring.start = SimTime::from_ms(500);
  auto session = TapSession::create(kernel, cfg).value();

  const auto pkt = make_packet(isp, suspect);
  // Early event (before the tap window), two normal ones, then a LATE
  // one — its bin was already drained by the auto-pump.
  session.on_traversal({pkt, link, isp, suspect, SimTime::from_ms(100)});
  session.on_traversal({pkt, link, isp, suspect, SimTime::from_ms(550)});
  session.on_traversal({pkt, link, isp, suspect, SimTime::from_ms(700)});
  session.on_traversal({pkt, link, isp, suspect, SimTime::from_ms(610)});

  const auto& rs = session.ring().stats();
  EXPECT_EQ(rs.early_drops, 1u);
  EXPECT_EQ(rs.late_drops, 1u);
  EXPECT_EQ(rs.recorded, 2u);
  EXPECT_EQ(session.stats().packets_seen, 4u);
  // Traffic in the other direction is counted separately, not binned.
  session.on_traversal({pkt, link, suspect, isp, SimTime::from_ms(800)});
  EXPECT_EQ(session.stats().foreign_packets, 1u);
  EXPECT_EQ(rs.recorded, 2u);
}

TEST(TapSessionTest, SurvivesMidFlightLinkRemoval) {
  // The suspect's access link vanishes mid-observation: in-flight
  // packets are dropped (counted by netsim), the tap keeps its
  // accounting consistent and the session simply sees fewer packets.
  const auto code = PnCode::m_sequence(5).value();  // 31 chips
  const CorrelationKernel kernel(code);
  const SimDuration chip = SimDuration::from_ms(100.0);

  netsim::Network net(13);
  const auto server = net.add_node("server");
  const auto isp = net.add_node("isp");
  const auto suspect = net.add_node("suspect");
  ASSERT_TRUE(net.connect(server, isp).ok());
  const auto access = net.connect(isp, suspect).value();

  netsim::FlowConfig fc;
  fc.id = FlowId{1};
  fc.src = server;
  fc.dst = suspect;
  fc.packets_per_sec = 300.0;
  fc.stop = SimTime::from_sec(3.1);
  netsim::FlowSource flow(net, fc, netsim::ArrivalProcess::kPoisson, 5);

  auto session =
      TapSession::create(kernel, base_config(suspect, chip, 64)).value();
  ASSERT_TRUE(session.attach(net).ok());

  flow.start();
  net.clock().schedule_at(SimTime::from_sec(1.5),
                          [&net, access] { (void)net.disconnect(access); });
  net.run();
  session.pump(net.now() + chip);

  EXPECT_EQ(net.packets_sent(),
            net.packets_delivered() + net.packets_dropped());
  EXPECT_GT(net.packets_dropped(), 0u);
  EXPECT_GT(session.stats().packets_seen, 0u);
  // No packet reaches the suspect after the cut; everything the tap saw
  // is accounted for in the ring.
  EXPECT_EQ(session.stats().packets_seen, session.ring().stats().offered());
}

}  // namespace
}  // namespace lexfor::stream
