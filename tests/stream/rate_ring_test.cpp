// RateRing: bounded-memory binning with exact drop accounting.  The
// ring must never grow, must classify every event it cannot hold, and
// must hand closed bins (including silent ones) to the consumer in
// order across arbitrary wraparounds.

#include "stream/rate_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace lexfor::stream {
namespace {

RateRingConfig config_ms(std::int64_t bin_ms, std::size_t capacity) {
  RateRingConfig c;
  c.start = SimTime::zero();
  c.bin_width = SimDuration::from_ms(static_cast<double>(bin_ms));
  c.capacity = capacity;
  return c;
}

TEST(RateRingTest, RejectsDegenerateConfig) {
  EXPECT_FALSE(RateRing::create(config_ms(10, 0)).ok());
  RateRingConfig zero_width = config_ms(0, 8);
  EXPECT_FALSE(RateRing::create(zero_width).ok());
  RateRingConfig negative = config_ms(10, 8);
  negative.bin_width = SimDuration::from_us(-5);
  EXPECT_FALSE(RateRing::create(negative).ok());
}

TEST(RateRingTest, BinsEventsAndPopsClosedWindows) {
  auto ring = RateRing::create(config_ms(100, 8)).value();
  // Two events in bin 0, one in bin 1, silence in bin 2, one in bin 3.
  EXPECT_EQ(ring.record(SimTime::from_ms(10)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.record(SimTime::from_ms(99)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.record(SimTime::from_ms(150)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.record(SimTime::from_ms(390)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.occupancy(), 4u);

  std::vector<std::uint32_t> out;
  // At t=250ms, bins 0 and 1 are closed; bin 2 is still open.
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(250), out), 2u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2, 1}));

  // Closing through bin 3 pops the SILENT bin 2 as an explicit zero.
  out.clear();
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(400), out), 2u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(ring.base_bin(), 4u);
  EXPECT_EQ(ring.occupancy(), 0u);
  EXPECT_EQ(ring.stats().recorded, 4u);
  EXPECT_EQ(ring.stats().bins_popped, 4u);
}

TEST(RateRingTest, ExactBoundaryBelongsToNextBin) {
  auto ring = RateRing::create(config_ms(100, 4)).value();
  ASSERT_EQ(ring.record(SimTime::from_ms(100)), RecordOutcome::kRecorded);
  std::vector<std::uint32_t> out;
  // now == bin 1's start: bin 0 closed (empty), bin 1 still open.
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(100), out), 1u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  out.clear();
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(200), out), 1u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(RateRingTest, WraparoundReusesSlotsWithoutBleed) {
  // Capacity 4, many pop/record rounds: bin b lives at slot b % 4, so a
  // stale count in a recycled slot would corrupt a later bin.
  auto ring = RateRing::create(config_ms(10, 4)).value();
  std::vector<std::uint32_t> all;
  for (std::uint64_t bin = 0; bin < 25; ++bin) {
    const auto t0 = SimTime::from_us(static_cast<std::int64_t>(bin) * 10000);
    // bin b gets b % 3 events.
    for (std::uint64_t e = 0; e < bin % 3; ++e) {
      ASSERT_EQ(ring.record(
                    SimTime::from_us(t0.us + 1 + static_cast<std::int64_t>(e))),
                RecordOutcome::kRecorded);
    }
    ring.pop_closed(SimTime::from_us(t0.us + 10000), all);
  }
  ASSERT_EQ(all.size(), 25u);
  for (std::uint64_t bin = 0; bin < 25; ++bin) {
    EXPECT_EQ(all[bin], bin % 3) << "bin " << bin;
  }
  EXPECT_EQ(ring.stats().overflow_drops, 0u);
}

TEST(RateRingTest, DropAccountingIsExhaustive) {
  RateRingConfig cfg = config_ms(100, 4);
  cfg.start = SimTime::from_ms(1000);
  auto ring = RateRing::create(cfg).value();

  // Early: before the tap's start.
  EXPECT_EQ(ring.record(SimTime::from_ms(999)), RecordOutcome::kEarly);

  // Overflow: bin 5 while bins [0, 4) are retained and nothing popped.
  EXPECT_EQ(ring.record(SimTime::from_ms(1000)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.record(SimTime::from_ms(1550)), RecordOutcome::kOverflow);
  // The last in-window bin still records.
  EXPECT_EQ(ring.record(SimTime::from_ms(1399)), RecordOutcome::kRecorded);

  // Late: bin 0 after it has been popped.
  std::vector<std::uint32_t> out;
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(1100), out), 1u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(ring.record(SimTime::from_ms(1050)), RecordOutcome::kLate);

  const auto& st = ring.stats();
  EXPECT_EQ(st.recorded, 2u);
  EXPECT_EQ(st.early_drops, 1u);
  EXPECT_EQ(st.late_drops, 1u);
  EXPECT_EQ(st.overflow_drops, 1u);
  EXPECT_EQ(st.offered(), 5u);

  // Capacity never grew.
  EXPECT_EQ(ring.capacity(), 4u);
}

TEST(RateRingTest, OverflowedBinsPopAsZeros) {
  // Events dropped on overflow are NOT resurrected: when the consumer
  // finally drains past them, those bins read zero and the loss stays
  // visible only in the stats.
  auto ring = RateRing::create(config_ms(10, 2)).value();
  EXPECT_EQ(ring.record(SimTime::from_ms(5)), RecordOutcome::kRecorded);
  EXPECT_EQ(ring.record(SimTime::from_ms(35)), RecordOutcome::kOverflow);
  std::vector<std::uint32_t> out;
  EXPECT_EQ(ring.pop_closed(SimTime::from_ms(40), out), 4u);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 0, 0, 0}));
  EXPECT_EQ(ring.stats().overflow_drops, 1u);
}

}  // namespace
}  // namespace lexfor::stream
