// OnlineDespreader bit-identity: streaming one bin at a time must
// reproduce the batch kernel's verdict EXACTLY — correlation,
// threshold, offset, decision — on randomized flows, codes and offsets
// (bit_cast equality, per the correlate_test pattern), while holding
// O(code length + offset window) memory regardless of stream length.

#include "stream/online_despread.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "watermark/dsss.h"
#include "watermark/pn_code.h"

namespace lexfor::stream {
namespace {

using watermark::CorrelationKernel;
using watermark::PnCode;
using watermark::ScanResult;

void expect_bit_identical(const ScanResult& online, const ScanResult& batch) {
  EXPECT_EQ(online.offset, batch.offset);
  EXPECT_EQ(online.best.detected, batch.best.detected);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(online.best.correlation),
            std::bit_cast<std::uint64_t>(batch.best.correlation))
      << "correlation " << online.best.correlation << " vs "
      << batch.best.correlation;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(online.best.threshold),
            std::bit_cast<std::uint64_t>(batch.best.threshold))
      << "threshold " << online.best.threshold << " vs "
      << batch.best.threshold;
}

std::vector<double> random_series(const PnCode& code, std::size_t offset,
                                  std::size_t tail, bool marked, double depth,
                                  double noise_sigma, Rng& rng) {
  std::vector<double> rates;
  rates.reserve(offset + code.length() + tail);
  for (std::size_t i = 0; i < offset; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  for (const auto c : code.chips()) {
    const double mark = marked ? 100.0 * depth * static_cast<double>(c) : 0.0;
    rates.push_back(100.0 + mark + rng.normal(0.0, noise_sigma));
  }
  for (std::size_t i = 0; i < tail; ++i) {
    rates.push_back(100.0 + rng.normal(0.0, noise_sigma));
  }
  return rates;
}

TEST(OnlineDespreaderTest, RandomizedStreamingMatchesBatchScanBitForBit) {
  Rng rng{20260805};
  for (int trial = 0; trial < 50; ++trial) {
    const int degree = 5 + static_cast<int>(rng.uniform(5));  // 5..9
    const auto code = PnCode::m_sequence(degree).value();
    const std::size_t embed_offset = rng.uniform(40);
    const bool marked = rng.bernoulli(0.5);
    const double sigma = 1.0 + 30.0 * rng.uniform01();
    const std::size_t max_offset = rng.uniform(64);
    const std::size_t tail = rng.uniform(30);
    const auto rates =
        random_series(code, embed_offset, tail, marked, 0.3, sigma, rng);

    const CorrelationKernel kernel(code);
    OnlineDespreader online(kernel, max_offset);
    for (const double r : rates) (void)online.push(r);

    if (rates.size() >= code.length() + max_offset) {
      ASSERT_TRUE(online.verdict().complete);
      const auto batch = kernel.scan(rates, max_offset);
      ASSERT_TRUE(batch.ok());
      expect_bit_identical(online.verdict().scan, batch.value());
    } else {
      // Not enough bins to close the window: verdict still pending,
      // exactly like batch scan would clamp to fewer offsets.
      EXPECT_FALSE(online.verdict().complete);
    }
  }
}

TEST(OnlineDespreaderTest, AlignedStreamMatchesDetectorDetectBitForBit) {
  // max_offset = 0 is the tornet posture: the online verdict must equal
  // the aligned batch Detector::detect on the same bins, bit for bit.
  Rng rng{77};
  for (int trial = 0; trial < 30; ++trial) {
    const int degree = 5 + static_cast<int>(rng.uniform(5));
    const auto code = PnCode::m_sequence(degree).value();
    const bool marked = rng.bernoulli(0.5);
    const double sigma = 1.0 + 20.0 * rng.uniform01();
    const auto rates = random_series(code, 0, 0, marked, 0.35, sigma, rng);

    const CorrelationKernel kernel(code);
    OnlineDespreader online(kernel, 0);
    for (const double r : rates) (void)online.push(r);
    ASSERT_TRUE(online.verdict().complete);

    const watermark::Detector det(code);
    const auto batch = det.detect(rates);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(online.verdict().scan.offset, 0u);
    EXPECT_EQ(online.verdict().scan.best.detected, batch.value().detected);
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(online.verdict().scan.best.correlation),
        std::bit_cast<std::uint64_t>(batch.value().correlation));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(online.verdict().scan.best.threshold),
        std::bit_cast<std::uint64_t>(batch.value().threshold));
  }
}

TEST(OnlineDespreaderTest, EmitsPerOffsetScoresInIncreasingOrderAtTheRightBin) {
  const auto code = PnCode::m_sequence(6).value();  // n = 63
  const std::size_t n = code.length();
  const CorrelationKernel kernel(code);
  const std::size_t max_offset = 5;
  OnlineDespreader online(kernel, max_offset);

  Rng rng{11};
  std::vector<double> rates;
  for (std::size_t i = 0; i < n + max_offset; ++i) {
    rates.push_back(50.0 + rng.normal(0.0, 10.0));
  }

  std::size_t expected_offset = 0;
  for (std::size_t t = 0; t < rates.size(); ++t) {
    const auto score = online.push(rates[t]);
    if (t + 1 < n) {
      EXPECT_FALSE(score.has_value()) << "bin " << t;
    } else {
      // Bin t closes the window starting at t - n + 1.
      ASSERT_TRUE(score.has_value()) << "bin " << t;
      EXPECT_EQ(score->offset, expected_offset);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(score->correlation),
                std::bit_cast<std::uint64_t>(
                    kernel.despread(rates.data() + score->offset, 0, n)));
      ++expected_offset;
    }
  }
  EXPECT_EQ(online.verdict().offsets_scored, max_offset + 1);
}

TEST(OnlineDespreaderTest, ExtraBinsAfterCompletionAreCountedAndIgnored) {
  const auto code = PnCode::m_sequence(5).value();
  const CorrelationKernel kernel(code);
  OnlineDespreader online(kernel, 2);

  Rng rng{3};
  for (std::size_t i = 0; i < code.length() + 2; ++i) {
    (void)online.push(40.0 + rng.normal(0.0, 5.0));
  }
  ASSERT_TRUE(online.verdict().complete);
  const auto frozen = online.verdict().scan;

  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(online.push(1e6).has_value());
  }
  EXPECT_EQ(online.bins_ignored(), 100u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(online.verdict().scan.best.correlation),
            std::bit_cast<std::uint64_t>(frozen.best.correlation));
  EXPECT_EQ(online.verdict().scan.offset, frozen.offset);
}

TEST(OnlineDespreaderTest, MemoryStaysConstantOverArbitrarilyLongStreams) {
  const auto code = PnCode::m_sequence(7).value();  // n = 127
  const CorrelationKernel kernel(code);
  const std::size_t max_offset = 32;
  OnlineDespreader online(kernel, max_offset);

  // One flat window: every bin a candidate offset can read, presized.
  const std::size_t expected = code.length() + max_offset;
  EXPECT_EQ(online.memory_doubles(), expected);
  Rng rng{9};
  for (std::size_t i = 0; i < 20 * code.length(); ++i) {
    (void)online.push(rng.normal(100.0, 10.0));
    ASSERT_EQ(online.memory_doubles(), expected);
  }
}

}  // namespace
}  // namespace lexfor::stream
