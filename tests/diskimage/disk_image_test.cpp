#include "diskimage/disk_image.h"

#include <gtest/gtest.h>

namespace lexfor::diskimage {
namespace {

TEST(DiskImageTest, WriteReadRoundTrip) {
  DiskImage disk;
  const Bytes content = to_bytes("hello forensic world");
  const FileId id = disk.write_file("/docs/a.txt", content);
  const auto r = disk.read_file(id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), content);
}

TEST(DiskImageTest, FindByPathAndId) {
  DiskImage disk;
  const FileId id = disk.write_file("/x", to_bytes("x"));
  ASSERT_NE(disk.find("/x"), nullptr);
  ASSERT_NE(disk.find(id), nullptr);
  EXPECT_EQ(disk.find("/x")->id, id);
  EXPECT_EQ(disk.find("/missing"), nullptr);
}

TEST(DiskImageTest, DeleteUnlinksButKeepsBytes) {
  DiskImage disk;
  const Bytes content = to_bytes("deleted but recoverable");
  const FileId id = disk.write_file("/tmp/evil.jpg", content);
  ASSERT_TRUE(disk.delete_file("/tmp/evil.jpg").ok());

  EXPECT_EQ(disk.live_file_count(), 0u);
  EXPECT_EQ(disk.deleted_file_count(), 1u);
  EXPECT_EQ(disk.read_file(id).status().code(), StatusCode::kFailedPrecondition);

  const auto recovered = disk.recover_deleted(id);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), content);
}

TEST(DiskImageTest, DeleteOfMissingFileFails) {
  DiskImage disk;
  EXPECT_EQ(disk.delete_file("/nope").code(), StatusCode::kNotFound);
}

TEST(DiskImageTest, ReuseOverwritesDeletedFile) {
  DiskImage disk(512);
  const FileId old_id = disk.write_file("/old", Bytes(400, 0xAA));
  ASSERT_TRUE(disk.delete_file("/old").ok());
  // New file fits in the freed extent and reuses it.
  const FileId new_id = disk.write_file("/new", Bytes(100, 0xBB));
  const auto* old_entry = disk.find(old_id);
  const auto* new_entry = disk.find(new_id);
  ASSERT_NE(old_entry, nullptr);
  ASSERT_NE(new_entry, nullptr);
  EXPECT_EQ(new_entry->offset, old_entry->offset);
  EXPECT_TRUE(old_entry->overwritten);
  EXPECT_EQ(disk.recover_deleted(old_id).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DiskImageTest, AppendsWhenNoFreeExtentFits) {
  DiskImage disk(512);
  const FileId small = disk.write_file("/small", Bytes(100, 1));
  ASSERT_TRUE(disk.delete_file("/small").ok());
  // Too big for the freed 1-sector extent: must append, leaving the
  // deleted file recoverable.
  (void)disk.write_file("/big", Bytes(2000, 2));
  const auto recovered = disk.recover_deleted(small);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), Bytes(100, 1));
}

TEST(DiskImageTest, RecoverRejectsLiveFile) {
  DiskImage disk;
  const FileId id = disk.write_file("/live", to_bytes("still here"));
  EXPECT_EQ(disk.recover_deleted(id).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DiskImageTest, EmptyFileOwnsASector) {
  DiskImage disk(512);
  const FileId id = disk.write_file("/empty", {});
  const auto r = disk.read_file(id);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  EXPECT_EQ(disk.raw().size(), 512u);
}

TEST(DiskImageTest, PathShadowingPrefersLiveEntry) {
  DiskImage disk;
  (void)disk.write_file("/f", to_bytes("v1"));
  ASSERT_TRUE(disk.delete_file("/f").ok());
  const FileId v2 = disk.write_file("/f", to_bytes("v2"));
  const auto* found = disk.find("/f");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, v2);
  EXPECT_FALSE(found->deleted);
}

}  // namespace
}  // namespace lexfor::diskimage

// --- file slack (zero_on_reuse = false) --------------------------------

namespace lexfor::diskimage {
namespace {

TEST(SlackTest, FreshExtentHasZeroSlack) {
  DiskImage disk(512, /*zero_on_reuse=*/false);
  const FileId id = disk.write_file("/a", Bytes(100, 0x11));
  const auto slack = disk.slack_bytes(id);
  ASSERT_TRUE(slack.ok());
  EXPECT_EQ(slack.value().size(), 412u);
  for (const auto b : slack.value()) EXPECT_EQ(b, 0);
}

TEST(SlackTest, ReuseWithoutScrubLeavesPreviousContentInSlack) {
  DiskImage disk(512, /*zero_on_reuse=*/false);
  const FileId secret = disk.write_file("/secret", Bytes(500, 0xAB));
  ASSERT_TRUE(disk.delete_file("/secret").ok());
  (void)secret;

  // A small new file reuses the extent; bytes 100..499 keep 0xAB.
  const FileId cover = disk.write_file("/cover", Bytes(100, 0xCD));
  const auto slack = disk.slack_bytes(cover).value();
  ASSERT_EQ(slack.size(), 412u);
  int remnant = 0;
  for (std::size_t i = 0; i < 400; ++i) remnant += slack[i] == 0xAB;
  EXPECT_EQ(remnant, 400);
}

TEST(SlackTest, ScrubbingModeDestroysSlack) {
  DiskImage disk(512, /*zero_on_reuse=*/true);
  (void)disk.write_file("/secret", Bytes(500, 0xAB));
  ASSERT_TRUE(disk.delete_file("/secret").ok());
  const FileId cover = disk.write_file("/cover", Bytes(100, 0xCD));
  const auto slack = disk.slack_bytes(cover).value();
  for (const auto b : slack) EXPECT_EQ(b, 0);
}

TEST(SlackTest, SlackOfUnknownOrDeletedFileFails) {
  DiskImage disk(512, false);
  EXPECT_EQ(disk.slack_bytes(FileId{77}).status().code(), StatusCode::kNotFound);
  const FileId id = disk.write_file("/x", Bytes(10, 1));
  ASSERT_TRUE(disk.delete_file("/x").ok());
  EXPECT_EQ(disk.slack_bytes(id).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lexfor::diskimage
