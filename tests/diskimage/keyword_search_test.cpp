#include "diskimage/keyword_search.h"

#include <gtest/gtest.h>

namespace lexfor::diskimage {
namespace {

legal::GrantedAuthority warrant() {
  legal::LegalProcess p;
  p.id = ProcessId{5};
  p.kind = legal::ProcessKind::kSearchWarrant;
  p.issued_at = SimTime::zero();
  return legal::GrantedAuthority{p};
}

TEST(KeywordSearchTest, RefusesWithoutRequiredProcess) {
  DiskImage disk;
  (void)disk.write_file("/a", to_bytes("meth lab instructions"));
  KeywordSearcher searcher({"meth lab"});
  const auto r =
      searcher.search(disk, legal::GrantedAuthority{},
                      legal::ProcessKind::kSearchWarrant, "drive",
                      SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(KeywordSearchTest, FindsKeywordInLiveFile) {
  DiskImage disk;
  (void)disk.write_file(
      "/docs/history.txt",
      to_bytes("searched: how to build a methamphetamine laboratory"));
  KeywordSearcher searcher({"methamphetamine"});
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].region, HitRegion::kLiveFile);
  EXPECT_EQ(hits[0].path, "/docs/history.txt");
  EXPECT_EQ(hits[0].offset, 25u);
  // Context window includes surrounding bytes.
  EXPECT_NE(to_string(hits[0].context).find("build a meth"),
            std::string::npos);
}

TEST(KeywordSearchTest, FindsKeywordInDeletedFile) {
  DiskImage disk;
  (void)disk.write_file("/tmp/evidence.txt", to_bytes("the secret ledger"));
  ASSERT_TRUE(disk.delete_file("/tmp/evidence.txt").ok());
  KeywordSearcher searcher({"secret ledger"});
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].region, HitRegion::kDeletedFile);
}

TEST(KeywordSearchTest, FindsKeywordInSlackSpace) {
  DiskImage disk(512, /*zero_on_reuse=*/false);
  Bytes secret(400, ' ');
  const std::string msg = "wire the money to account 99";
  std::copy(msg.begin(), msg.end(), secret.begin() + 200);
  (void)disk.write_file("/secret", secret);
  ASSERT_TRUE(disk.delete_file("/secret").ok());
  (void)disk.write_file("/cover", Bytes(100, 'x'));  // reuses the extent

  KeywordSearcher searcher({"wire the money"});
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].region, HitRegion::kSlack);
  EXPECT_EQ(hits[0].path, "/cover");
}

TEST(KeywordSearchTest, MultipleKeywordsAndOccurrences) {
  DiskImage disk;
  (void)disk.write_file("/x", to_bytes("abc abc xyz"));
  KeywordSearcher searcher({"abc", "xyz"});
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  EXPECT_EQ(hits.size(), 3u);
}

TEST(KeywordSearchTest, ScopePredicateLimitsThePaths) {
  // §III.A.2.a: search only records related to the crime.
  DiskImage disk;
  (void)disk.write_file("/business/fraud.xls", to_bytes("shell company"));
  (void)disk.write_file("/personal/diary.txt", to_bytes("shell company"));
  KeywordSearcher searcher({"shell company"});
  const auto hits =
      searcher
          .search(disk, warrant(), legal::ProcessKind::kSearchWarrant, "drive",
                  SimTime::zero(),
                  [](const std::string& path) {
                    return path.rfind("/business/", 0) == 0;
                  })
          .value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].path, "/business/fraud.xls");
}

TEST(KeywordSearchTest, NoProcessNeededWhenEngineExcuses) {
  DiskImage disk;
  (void)disk.write_file("/x", to_bytes("pattern"));
  KeywordSearcher searcher({"pattern"});
  // Scene-19 posture: data previously lawfully acquired.
  const auto hits = searcher
                        .search(disk, legal::GrantedAuthority{},
                                legal::ProcessKind::kNone, "database",
                                SimTime::zero())
                        .value();
  EXPECT_EQ(hits.size(), 1u);
}

TEST(KeywordSearchTest, EmptyAndOversizedKeywordsAreIgnored) {
  DiskImage disk;
  (void)disk.write_file("/x", to_bytes("tiny"));
  KeywordSearcher searcher({"", std::string(1000, 'q')});
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  EXPECT_TRUE(hits.empty());
}

}  // namespace
}  // namespace lexfor::diskimage
