#include "diskimage/hash_search.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace lexfor::diskimage {
namespace {

using legal::GrantedAuthority;
using legal::LegalProcess;
using legal::ProcessKind;

GrantedAuthority warrant() {
  LegalProcess p;
  p.id = ProcessId{3};
  p.kind = ProcessKind::kSearchWarrant;
  p.issued_at = SimTime::zero();
  return GrantedAuthority{p};
}

struct SearchFixture {
  DiskImage disk;
  Bytes contraband = to_bytes("known contraband image bytes");
  Bytes benign = to_bytes("family vacation photo");
  FileId contraband_id;
  FileId benign_id;

  SearchFixture() {
    contraband_id = disk.write_file("/pics/c.jpg", contraband);
    benign_id = disk.write_file("/pics/ok.jpg", benign);
  }

  HashSearcher searcher() const {
    return HashSearcher({crypto::Sha256::hex(contraband)});
  }
};

// Scene 18 (U.S. v. Crist): without a warrant the hash search refuses.
TEST(HashSearchTest, RefusesWithoutWarrant) {
  SearchFixture f;
  const auto r = f.searcher().search(f.disk, GrantedAuthority{},
                                     ProcessKind::kSearchWarrant,
                                     "suspect-drive", SimTime::zero());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(HashSearchTest, FindsKnownFileWithWarrant) {
  SearchFixture f;
  const auto r = f.searcher().search(f.disk, warrant(),
                                     ProcessKind::kSearchWarrant,
                                     "suspect-drive", SimTime::zero());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].path, "/pics/c.jpg");
  EXPECT_FALSE(r.value()[0].deleted);
}

// Scene 19 (State v. Sloane): previously lawfully acquired data needs
// nothing — callers pass required = kNone.
TEST(HashSearchTest, RunsFreelyWhenNoProcessRequired) {
  SearchFixture f;
  const auto r = f.searcher().search(f.disk, GrantedAuthority{},
                                     ProcessKind::kNone, "lawful-database",
                                     SimTime::zero());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
}

TEST(HashSearchTest, FindsDeletedButRecoverableFiles) {
  SearchFixture f;
  ASSERT_TRUE(f.disk.delete_file("/pics/c.jpg").ok());
  const auto r = f.searcher().search(f.disk, warrant(),
                                     ProcessKind::kSearchWarrant,
                                     "suspect-drive", SimTime::zero());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_TRUE(r.value()[0].deleted);
}

TEST(HashSearchTest, OverwrittenFilesAreGone) {
  SearchFixture f;
  ASSERT_TRUE(f.disk.delete_file("/pics/c.jpg").ok());
  // Overwrite the freed extent.
  (void)f.disk.write_file("/new", Bytes(f.contraband.size(), 0x00));
  const auto r = f.searcher().search(f.disk, warrant(),
                                     ProcessKind::kSearchWarrant,
                                     "suspect-drive", SimTime::zero());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(HashSearchTest, EmptyKnownSetMatchesNothing) {
  SearchFixture f;
  HashSearcher empty{std::unordered_set<std::string>{}};
  const auto r = empty.search(f.disk, warrant(), ProcessKind::kSearchWarrant,
                              "suspect-drive", SimTime::zero());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  EXPECT_EQ(empty.known_count(), 0u);
}

TEST(CarverTest, CarvesFilesByMagic) {
  DiskImage disk(512);
  Bytes jpeg = magic_jpeg();
  jpeg.resize(600, 0x11);  // spans two sectors
  Bytes pdf = magic_pdf();
  pdf.resize(300, 0x22);
  (void)disk.write_file("/a.jpg", jpeg);
  (void)disk.write_file("/b.pdf", pdf);

  Carver carver;
  const auto objects = carver.carve(disk);
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0].type, "jpeg");
  EXPECT_EQ(objects[1].type, "pdf");
}

TEST(CarverTest, CarvesDeletedFiles) {
  DiskImage disk(512);
  Bytes png = magic_png();
  png.resize(400, 0x33);
  (void)disk.write_file("/gone.png", png);
  ASSERT_TRUE(disk.delete_file("/gone.png").ok());

  Carver carver;
  const auto objects = carver.carve(disk);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].type, "png");
  // The carved object's prefix matches the deleted content.
  ASSERT_GE(objects[0].data.size(), png.size());
  EXPECT_TRUE(std::equal(png.begin(), png.end(), objects[0].data.begin()));
}

TEST(CarverTest, IgnoresUnstructuredData) {
  DiskImage disk(512);
  (void)disk.write_file("/noise", Bytes(1000, 0x77));
  Carver carver;
  EXPECT_TRUE(carver.carve(disk).empty());
}

}  // namespace
}  // namespace lexfor::diskimage

// --- NSRL-style hash-set loading -----------------------------------------

namespace lexfor::diskimage {
namespace {

TEST(HashSetLoaderTest, LoadsDigestsSkippingCommentsAndBlanks) {
  const std::string text =
      "# known contraband set v1\n"
      "\n" +
      crypto::Sha256::hex(to_bytes("file-a")) + "\n  " +
      crypto::Sha256::hex(to_bytes("file-b")) + "  \n";
  const auto searcher = HashSearcher::from_text(text);
  ASSERT_TRUE(searcher.ok()) << searcher.status();
  EXPECT_EQ(searcher.value().known_count(), 2u);
}

TEST(HashSetLoaderTest, NormalizesUppercaseDigests) {
  std::string digest = crypto::Sha256::hex(to_bytes("target"));
  for (auto& c : digest) c = static_cast<char>(std::toupper(c));
  const auto searcher = HashSearcher::from_text(digest + "\n").value();

  DiskImage disk;
  (void)disk.write_file("/t", to_bytes("target"));
  const auto hits = searcher
                        .search(disk, warrant(),
                                legal::ProcessKind::kSearchWarrant, "drive",
                                SimTime::zero())
                        .value();
  EXPECT_EQ(hits.size(), 1u);
}

TEST(HashSetLoaderTest, RejectsMalformedLines) {
  EXPECT_FALSE(HashSearcher::from_text("deadbeef\n").ok());          // too short
  EXPECT_FALSE(HashSearcher::from_text(std::string(64, 'z')).ok());  // non-hex
}

TEST(HashSetLoaderTest, EmptyTextIsAnEmptySet) {
  const auto searcher = HashSearcher::from_text("# nothing here\n\n");
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ(searcher.value().known_count(), 0u);
}

}  // namespace
}  // namespace lexfor::diskimage
