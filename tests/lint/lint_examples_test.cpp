// Lint regression over the shipped example plans: the quickstart plan
// must stay clean, and the deliberately defective example must keep
// demonstrating every rule.  tools/run_static_analysis.sh fails the
// build if this suite regresses.

#include <gtest/gtest.h>

#include "lint/example_plans.h"
#include "lint/linter.h"
#include "lint/passes.h"
#include "lint/render.h"

namespace lexfor::lint {
namespace {

TEST(LintExamplesTest, QuickstartPlanLintsWithZeroErrors) {
  const LintReport report = PlanLinter{}.lint(clean_quickstart_plan());
  EXPECT_EQ(report.error_count, 0u) << render_text(report);
  EXPECT_TRUE(report.clean()) << render_text(report);
}

TEST(LintExamplesTest, DefectiveExampleStillDemonstratesEveryRule) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  for (const auto rule :
       {kRuleMissingProcess, kRulePoisonousTree, kRuleExpiredAuthority,
        kRuleStandingMismatch, kRuleUnreachableStep, kRuleProofGap}) {
    EXPECT_TRUE(report.has(rule)) << "rule no longer demonstrated: " << rule;
  }
}

TEST(LintExamplesTest, EveryDiagnosticCarriesANonEmptyMessage) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  for (const auto& d : report.diagnostics) {
    EXPECT_FALSE(d.rule.empty());
    EXPECT_FALSE(d.message.empty());
    EXPECT_TRUE(d.step.valid());
  }
}

}  // namespace
}  // namespace lexfor::lint
