// Static/runtime cross-check: what the linter predicts at plan time is
// what the suppression audit does at run time.

#include <gtest/gtest.h>

#include "investigation/court.h"
#include "investigation/investigation.h"
#include "investigation/plan_runner.h"
#include "lint/example_plans.h"
#include "lint/linter.h"
#include "lint/passes.h"

namespace lexfor {
namespace {

using investigation::Court;
using investigation::Investigation;
using investigation::PlanExecution;
using investigation::execute_plan;

TEST(LintIntegrationTest, PoisonousTreePlanIsSuppressedAtRuntime) {
  const lint::InvestigationPlan plan = lint::defective_wiretap_plan();

  // Static prediction: the tap is missing-process and the transcripts
  // derived from it are fruit of the poisonous tree.
  const lint::LintReport report = lint::PlanLinter{}.lint(plan);
  const lint::Diagnostic* tap = report.first(lint::kRuleMissingProcess);
  const lint::Diagnostic* fruit = report.first(lint::kRulePoisonousTree);
  ASSERT_NE(tap, nullptr);
  ASSERT_NE(fruit, nullptr);
  ASSERT_EQ(fruit->severity, lint::Severity::kError);

  // Execute the same plan through the runtime.
  Court court;
  Investigation inv(CaseId{1}, "Operation Glass Harbor",
                    legal::CrimeCategory::kIntrusion, court);
  const PlanExecution exec = execute_plan(inv, plan);

  const EvidenceId tap_ev = exec.evidence_for(tap->step);
  const EvidenceId fruit_ev = exec.evidence_for(fruit->step);
  ASSERT_TRUE(tap_ev.valid());
  ASSERT_TRUE(fruit_ev.valid());

  // The runtime audit suppresses exactly what the linter flagged.
  const legal::SuppressionReport audit = inv.admissibility_audit();
  EXPECT_TRUE(audit.is_suppressed(tap_ev));
  EXPECT_TRUE(audit.is_suppressed(fruit_ev));
}

TEST(LintIntegrationTest, CleanPlanExecutesLawfullyEndToEnd) {
  const lint::InvestigationPlan plan = lint::clean_quickstart_plan();
  ASSERT_TRUE(lint::PlanLinter{}.lint(plan).clean());

  Court court;
  Investigation inv(CaseId{2}, "quickstart", legal::CrimeCategory::kIntrusion,
                    court);
  const PlanExecution exec = execute_plan(inv, plan);

  for (const auto& step : exec.steps) {
    if (step.kind == lint::StepKind::kApplication) {
      EXPECT_TRUE(step.granted) << step.name << ": " << step.note;
    } else {
      EXPECT_TRUE(step.lawful) << step.name;
    }
  }

  const legal::SuppressionReport audit = inv.admissibility_audit();
  EXPECT_EQ(audit.suppressed_count, 0u);
  EXPECT_EQ(audit.admissible_count, plan.steps().size() - 2);  // 2 applications
}

TEST(LintIntegrationTest, InvestigationLintPlanUsesItsOwnFacts) {
  Court court;
  Investigation inv(CaseId{3}, "lint via investigation",
                    legal::CrimeCategory::kIntrusion, court);

  // A plan whose only defect is a proof gap: the warrant application has
  // no facts behind it (the plan itself carries none).
  lint::InvestigationPlan plan("warrant plan",
                               legal::CrimeCategory::kIntrusion);
  plan.plan_application("warrant", legal::ProcessKind::kSearchWarrant,
                        SimTime::zero());

  EXPECT_EQ(inv.lint_plan(plan).count(lint::kRuleProofGap), 1u);

  // Once the investigation accumulates probable cause, the same plan
  // lints clean: lint_plan substitutes the investigation's fact set.
  inv.add_fact({legal::FactKind::kIpAddressLinked, 1.0, "IP linked"});
  inv.add_fact({legal::FactKind::kSubscriberIdentified, 1.0, "subscriber"});
  EXPECT_EQ(inv.lint_plan(plan).count(lint::kRuleProofGap), 0u);
}

TEST(LintIntegrationTest, StandingMismatchMatchesMotionToSuppress) {
  // The linter warns that Chen's rights, not Mallory's, are invaded by
  // the expired log pull; at runtime Mallory's motion to suppress that
  // item fails for lack of standing.
  const lint::InvestigationPlan plan = lint::defective_wiretap_plan();
  const lint::LintReport report = lint::PlanLinter{}.lint(plan);
  const lint::Diagnostic* standing =
      report.first(lint::kRuleStandingMismatch);
  ASSERT_NE(standing, nullptr);

  Court court;
  Investigation inv(CaseId{4}, "standing", legal::CrimeCategory::kIntrusion,
                    court);
  const PlanExecution exec = execute_plan(inv, plan);
  const EvidenceId pull_ev = exec.evidence_for(standing->step);
  ASSERT_TRUE(pull_ev.valid());

  // The pull was executed with a weaker-than-required (expired-at-plan-
  // time maps to "granted but still an SCA acquisition") instrument; the
  // general audit may or may not suppress it, but Mallory's motion
  // cannot reach a violation of Chen's rights.
  const legal::SuppressionReport mallory = inv.motion_to_suppress("Mallory");
  EXPECT_FALSE(mallory.is_suppressed(pull_ev));
}

}  // namespace
}  // namespace lexfor
