#include "lint/render.h"

#include <gtest/gtest.h>

#include "lint/example_plans.h"
#include "lint/linter.h"
#include "lint/passes.h"

namespace lexfor::lint {
namespace {

// Minimal JSON helpers for assertions: count occurrences of a key or a
// key:value pair in the (minified, deterministic) output.
std::size_t occurrences(const std::string& haystack,
                        const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(RenderTest, JsonCarriesStableRuleIds) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  const std::string json = render_json(report);

  // Every built-in rule id that fired appears verbatim; these ids are
  // the stable contract consumers key on.
  EXPECT_EQ(occurrences(json, "\"rule\":\"missing-process\""), 1u);
  EXPECT_EQ(occurrences(json, "\"rule\":\"poisonous-tree\""), 2u);
  EXPECT_EQ(occurrences(json, "\"rule\":\"expired-authority\""), 1u);
  EXPECT_EQ(occurrences(json, "\"rule\":\"standing-mismatch\""), 1u);
  EXPECT_EQ(occurrences(json, "\"rule\":\"unreachable-step\""), 1u);
  EXPECT_EQ(occurrences(json, "\"rule\":\"proof-gap\""), 2u);
}

TEST(RenderTest, JsonRoundTripsCountsAndSeverities) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  const std::string json = render_json(report);

  EXPECT_NE(json.find("\"errors\":6"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("\"notes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_EQ(occurrences(json, "\"severity\":\"error\""), 6u);
  EXPECT_EQ(occurrences(json, "\"severity\":\"warning\""), 1u);
  EXPECT_EQ(occurrences(json, "\"severity\":\"note\""), 1u);
  // One diagnostic object per report entry.
  EXPECT_EQ(occurrences(json, "\"rule\":"), report.diagnostics.size());
}

TEST(RenderTest, JsonIsDeterministicAcrossRuns) {
  const std::string a =
      render_json(PlanLinter{}.lint(defective_wiretap_plan()));
  const std::string b =
      render_json(PlanLinter{}.lint(defective_wiretap_plan()));
  EXPECT_EQ(a, b);
}

TEST(RenderTest, JsonEscapesStepNames) {
  LintReport report;
  report.plan_title = "quote \" and \\ backslash";
  Diagnostic d;
  d.severity = Severity::kError;
  d.rule = "missing-process";
  d.step = PlanStepId{1};
  d.step_name = "line\nbreak";
  d.message = "tab\there";
  report.diagnostics.push_back(d);
  report.error_count = 1;

  const std::string json = render_json(report);
  EXPECT_NE(json.find("quote \\\" and \\\\ backslash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

TEST(RenderTest, CleanReportRendersEmptyDiagnosticsArray) {
  const LintReport report = PlanLinter{}.lint(clean_quickstart_plan());
  const std::string json = render_json(report);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":[]"), std::string::npos);
}

TEST(RenderTest, TextReportExpandsCitationsAndCounts) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  const std::string text = render_text(report);

  EXPECT_NE(text.find("6 errors, 1 warning, 1 note"), std::string::npos);
  EXPECT_NE(text.find("error: missing-process"), std::string::npos);
  // Citation ids are expanded through the case-law KB.
  EXPECT_NE(text.find("Wong Sun v. United States, 371 U.S. 471 (1963)"),
            std::string::npos);
  EXPECT_NE(text.find("Rakas v. Illinois, 439 U.S. 128 (1978)"),
            std::string::npos);
}

TEST(RenderTest, TextReportSaysCleanWhenClean) {
  const std::string text =
      render_text(PlanLinter{}.lint(clean_quickstart_plan()));
  EXPECT_NE(text.find("0 errors, 0 warnings, 0 notes"), std::string::npos);
  EXPECT_NE(text.find("no defects found"), std::string::npos);
}

}  // namespace
}  // namespace lexfor::lint
