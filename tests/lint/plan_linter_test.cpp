#include "lint/linter.h"

#include <gtest/gtest.h>

#include "legal/scenario_library.h"
#include "lint/example_plans.h"
#include "lint/passes.h"

namespace lexfor::lint {
namespace {

SimTime day(double d) { return SimTime::from_sec(d * 24 * 3600.0); }
SimDuration days(double d) { return SimDuration::from_sec(d * 24 * 3600.0); }

legal::Scenario wiretap_scenario() {
  return legal::Scenario{}
      .named("full-content interception")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kContent)
      .located(legal::DataState::kInTransit)
      .when(legal::Timing::kRealTime);
}

legal::Scenario examination_scenario() {
  return legal::Scenario{}
      .named("examination of held data")
      .by(legal::ActorKind::kLawEnforcement)
      .acquiring(legal::DataKind::kContent)
      .located(legal::DataState::kOnDevice)
      .when(legal::Timing::kStored)
      .previously_acquired();
}

// Facts strong enough for any non-Title-III instrument.
void add_probable_cause(InvestigationPlan& plan) {
  plan.with_fact({legal::FactKind::kIpAddressLinked, 1.0, "IP linked"})
      .with_fact(
          {legal::FactKind::kSubscriberIdentified, 1.0, "subscriber found"});
}

TEST(PlanLinterTest, CleanPlanProducesNoDiagnostics) {
  const LintReport report = PlanLinter{}.lint(clean_quickstart_plan());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.error_count, 0u);
  EXPECT_EQ(report.warning_count, 0u);
  EXPECT_EQ(report.note_count, 0u);
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(PlanLinterTest, MissingProcessFlagsWarrantlessWiretap) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.plan_acquisition("warrantless tap", wiretap_scenario(), day(0));

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleMissingProcess), 1u);
  const Diagnostic& d = *report.first(kRuleMissingProcess);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("wiretap (Title III) order"), std::string::npos);
  EXPECT_FALSE(d.citations.empty());
}

TEST(PlanLinterTest, MissingProcessAcceptsStrongerInstrument) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  add_probable_cause(plan);
  // A Title III order where only a court order is needed: lawful.
  const PlanStepId app = plan.plan_application(
      "apply", legal::ProcessKind::kWiretapOrder, day(0));
  plan.plan_acquisition("headers",
                        legal::Scenario{}
                            .by(legal::ActorKind::kLawEnforcement)
                            .acquiring(legal::DataKind::kAddressing)
                            .located(legal::DataState::kInTransit)
                            .when(legal::Timing::kRealTime),
                        day(1))
      .using_authority(app);

  const LintReport report = PlanLinter{}.lint(plan);
  EXPECT_EQ(report.count(kRuleMissingProcess), 0u);
}

TEST(PlanLinterTest, PoisonousTreePropagatesAndIndependentSourceSaves) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  const PlanStepId tap =
      plan.plan_acquisition("tap", wiretap_scenario(), day(0));
  const PlanStepId derived = plan.plan_acquisition(
      "derived", examination_scenario(), day(1)).derived({tap});
  // Derived from the tainted chain but cleansed by inevitable discovery.
  plan.plan_acquisition("saved", examination_scenario(), day(2))
      .derived({derived})
      .inevitable_discovery();

  const LintReport report = PlanLinter{}.lint(plan);
  // The tap is missing-process; only 'derived' is a poisonous-tree error;
  // 'saved' is a note.
  ASSERT_EQ(report.count(kRulePoisonousTree), 2u);
  const Diagnostic* error = report.first(kRulePoisonousTree);
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->severity, Severity::kError);
  EXPECT_EQ(error->step_name, "derived");

  std::size_t notes = 0;
  for (const auto& d : report.diagnostics) {
    if (d.rule == kRulePoisonousTree && d.severity == Severity::kNote) {
      ++notes;
      EXPECT_EQ(d.step_name, "saved");
    }
  }
  EXPECT_EQ(notes, 1u);
}

TEST(PlanLinterTest, LawfulParentKeepsDerivedStepAdmissible) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  const PlanStepId tap =
      plan.plan_acquisition("tap", wiretap_scenario(), day(0));
  const PlanStepId lawful =
      plan.plan_acquisition("lawful", examination_scenario(), day(0));
  plan.plan_acquisition("mixed", examination_scenario(), day(1))
      .derived({tap, lawful});

  const LintReport report = PlanLinter{}.lint(plan);
  // One lawful source in: no poisonous-tree diagnostic at all.
  EXPECT_EQ(report.count(kRulePoisonousTree), 0u);
}

TEST(PlanLinterTest, ExpiredAuthorityFlagsUseOutsideWindow) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  add_probable_cause(plan);
  const PlanStepId app = plan.plan_application(
      "apply", legal::ProcessKind::kCourtOrder, day(0), days(14));
  plan.plan_acquisition("late pull",
                        legal::Scenario{}
                            .by(legal::ActorKind::kLawEnforcement)
                            .acquiring(legal::DataKind::kTransactionalRecords)
                            .located(legal::DataState::kStoredAtProvider)
                            .when(legal::Timing::kStored)
                            .at_provider(legal::ProviderClass::kEcs),
                        day(20))
      .using_authority(app);

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleExpiredAuthority), 1u);
  EXPECT_EQ(report.first(kRuleExpiredAuthority)->severity, Severity::kError);
  // Use before the application is filed is equally outside the window.
  InvestigationPlan early("p2", legal::CrimeCategory::kGeneral);
  add_probable_cause(early);
  const PlanStepId later_app = early.plan_application(
      "apply", legal::ProcessKind::kCourtOrder, day(5));
  early.plan_acquisition("too early",
                         legal::Scenario{}
                             .by(legal::ActorKind::kLawEnforcement)
                             .acquiring(legal::DataKind::kAddressing)
                             .located(legal::DataState::kInTransit)
                             .when(legal::Timing::kRealTime),
                         day(1))
      .using_authority(later_app);
  EXPECT_EQ(PlanLinter{}.lint(early).count(kRuleExpiredAuthority), 1u);
}

TEST(PlanLinterTest, StandingMismatchWarnsOnThirdPartyViolation) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.charging("Mallory");
  plan.plan_acquisition("tap Chen's line", wiretap_scenario(), day(0))
      .aggrieves("Chen");

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleStandingMismatch), 1u);
  const Diagnostic& d = *report.first(kRuleStandingMismatch);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("Chen"), std::string::npos);

  // Same violation against the charged suspect: no mismatch.
  InvestigationPlan own("p2", legal::CrimeCategory::kGeneral);
  own.charging("Mallory");
  own.plan_acquisition("tap Mallory", wiretap_scenario(), day(0))
      .aggrieves("Mallory");
  EXPECT_EQ(PlanLinter{}.lint(own).count(kRuleStandingMismatch), 0u);
}

TEST(PlanLinterTest, UnreachableStepFlagsForwardAndDanglingEdges) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  const PlanStepId late =
      plan.plan_acquisition("late", examination_scenario(), day(10));
  plan.plan_acquisition("early", examination_scenario(), day(1))
      .derived({late});
  plan.plan_acquisition("dangling", examination_scenario(), day(2))
      .derived({PlanStepId{999}});

  const LintReport report = PlanLinter{}.lint(plan);
  EXPECT_EQ(report.count(kRuleUnreachableStep), 2u);
  for (const auto& d : report.diagnostics) {
    if (d.rule == kRuleUnreachableStep) {
      EXPECT_EQ(d.severity, Severity::kError);
    }
  }
}

TEST(PlanLinterTest, ProofGapFlagsPrematureApplication) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.with_fact({legal::FactKind::kAnonymousTip, 0.0, "tip"});
  plan.plan_application("premature warrant",
                        legal::ProcessKind::kSearchWarrant, day(0));

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleProofGap), 1u);
  EXPECT_EQ(report.first(kRuleProofGap)->severity, Severity::kError);
}

TEST(PlanLinterTest, ProofGapCountsFactsFromEarlierLawfulSteps) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.with_fact({legal::FactKind::kAnonymousTip, 0.0, "tip"});
  // A lawful public observation yields the facts the warrant needs.
  plan.plan_acquisition("public observation",
                        legal::Scenario{}
                            .by(legal::ActorKind::kLawEnforcement)
                            .acquiring(legal::DataKind::kAddressing)
                            .located(legal::DataState::kPublicVenue)
                            .when(legal::Timing::kRealTime)
                            .exposed_publicly(),
                        day(0))
      .yields({legal::FactKind::kIpAddressLinked, 0.0, "IP linked"})
      .yields({legal::FactKind::kSubscriberIdentified, 0.0, "subscriber"});
  plan.plan_application("warrant", legal::ProcessKind::kSearchWarrant, day(1));

  EXPECT_EQ(PlanLinter{}.lint(plan).count(kRuleProofGap), 0u);

  // The same facts yielded by a tainted step do not count.
  InvestigationPlan fruit("p2", legal::CrimeCategory::kGeneral);
  fruit.with_fact({legal::FactKind::kAnonymousTip, 0.0, "tip"});
  fruit.plan_acquisition("tainted tap", wiretap_scenario(), day(0))
      .yields({legal::FactKind::kIpAddressLinked, 0.0, "IP linked"})
      .yields({legal::FactKind::kSubscriberIdentified, 0.0, "subscriber"});
  fruit.plan_application("warrant", legal::ProcessKind::kSearchWarrant,
                         day(1));
  EXPECT_EQ(PlanLinter{}.lint(fruit).count(kRuleProofGap), 1u);
}

TEST(PlanLinterTest, DefectiveFixtureSeedsAllSixRules) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  EXPECT_TRUE(report.has(kRuleMissingProcess));
  EXPECT_TRUE(report.has(kRulePoisonousTree));
  EXPECT_TRUE(report.has(kRuleExpiredAuthority));
  EXPECT_TRUE(report.has(kRuleStandingMismatch));
  EXPECT_TRUE(report.has(kRuleUnreachableStep));
  EXPECT_TRUE(report.has(kRuleProofGap));
  EXPECT_EQ(report.error_count, 6u);
  EXPECT_EQ(report.warning_count, 1u);
  EXPECT_EQ(report.note_count, 1u);
  EXPECT_FALSE(report.clean());
}

TEST(PlanLinterTest, DiagnosticsOrderedByStepThenSeverity) {
  const LintReport report = PlanLinter{}.lint(defective_wiretap_plan());
  ASSERT_GE(report.diagnostics.size(), 2u);

  // Step order is the scheduled order; within a step, errors precede
  // warnings precede notes.
  const auto& plan_steps = defective_wiretap_plan();
  std::vector<PlanStepId> scheduled;
  for (const auto& s : plan_steps.steps()) scheduled.push_back(s.id);

  auto position = [&](PlanStepId id) {
    // The fixture schedules steps in insertion order except the final
    // report/correlation pair; recompute by scheduled_at.
    const PlanStep* step = plan_steps.find(id);
    return step == nullptr ? SimTime{} : step->scheduled_at;
  };
  for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
    const auto& prev = report.diagnostics[i - 1];
    const auto& cur = report.diagnostics[i];
    const SimTime tp = position(prev.step);
    const SimTime tc = position(cur.step);
    EXPECT_LE(tp.us, tc.us);
    if (prev.step == cur.step) {
      EXPECT_GE(static_cast<int>(prev.severity),
                static_cast<int>(cur.severity));
    }
  }
}

TEST(PlanLinterTest, CustomPassRegistrationExtendsTheRegistry) {
  class NamingPass final : public LintPass {
   public:
    [[nodiscard]] std::string_view rule() const noexcept override {
      return "unnamed-step";
    }
    void run(const PlanContext& ctx,
             std::vector<Diagnostic>& out) const override {
      for (const auto& a : ctx.steps()) {
        if (a.step->name.empty()) {
          Diagnostic d;
          d.severity = Severity::kWarning;
          d.rule = std::string(rule());
          d.step = a.step->id;
          d.message = "step has no name";
          out.push_back(std::move(d));
        }
      }
    }
  };

  PlanLinter linter;
  ASSERT_TRUE(linter.register_pass(std::make_unique<NamingPass>()).ok());
  EXPECT_EQ(linter.passes().size(), 7u);

  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.plan_acquisition("", examination_scenario(), day(0));
  EXPECT_EQ(linter.lint(plan).count("unnamed-step"), 1u);

  // A second pass with the same rule id is rejected and the registry is
  // unchanged.
  const Status dup = linter.register_pass(std::make_unique<NamingPass>());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("unnamed-step"), std::string::npos);
  EXPECT_EQ(linter.passes().size(), 7u);
}

TEST(PlanLinterTest, RegisterPassRejectsBuiltInRuleIdsAndNullPasses) {
  class ShadowingPass final : public LintPass {
   public:
    [[nodiscard]] std::string_view rule() const noexcept override {
      return kRuleMissingProcess;  // collides with a built-in
    }
    void run(const PlanContext&, std::vector<Diagnostic>&) const override {}
  };

  PlanLinter linter;
  const std::size_t builtins = linter.passes().size();
  EXPECT_EQ(linter.register_pass(std::make_unique<ShadowingPass>()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(linter.register_pass(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(linter.passes().size(), builtins);
}

TEST(PlanContextTest, FactsBeforeExcludesFactsAtExactlyT) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.with_fact({legal::FactKind::kAnonymousTip, 0.0, "tip"});
  plan.plan_acquisition("public observation",
                        legal::Scenario{}
                            .by(legal::ActorKind::kLawEnforcement)
                            .acquiring(legal::DataKind::kAddressing)
                            .located(legal::DataState::kPublicVenue)
                            .when(legal::Timing::kRealTime)
                            .exposed_publicly(),
                        day(2))
      .yields({legal::FactKind::kIpAddressLinked, 0.0, "IP linked"});

  const legal::BatchEvaluator engine;
  const PlanContext ctx(plan, engine);

  // Strictly-before semantics: a step scheduled AT t has not yielded
  // yet; one microsecond later it has.
  EXPECT_EQ(ctx.facts_before(day(2)).size(), 1u);
  EXPECT_EQ(ctx.facts_before(SimTime{day(2).us + 1}).size(), 2u);
  // Initial facts are available from the beginning of time.
  const std::vector<legal::Fact> at_zero = ctx.facts_before(day(0));
  ASSERT_EQ(at_zero.size(), 1u);
  EXPECT_EQ(at_zero[0].kind, legal::FactKind::kAnonymousTip);
}

TEST(PlanContextTest, FactsBeforeIgnoresTaintedAndUnreachableYields) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.with_fact({legal::FactKind::kAnonymousTip, 0.0, "tip"});
  // Tainted: a warrantless wiretap's yields cannot support anything.
  plan.plan_acquisition("tainted tap", wiretap_scenario(), day(0))
      .yields({legal::FactKind::kIpAddressLinked, 0.0, "IP linked"});
  // Unreachable: derives from a step that does not exist.
  plan.plan_acquisition("dangling", examination_scenario(), day(1))
      .derived({PlanStepId{999}})
      .yields({legal::FactKind::kSubscriberIdentified, 0.0, "subscriber"});

  const legal::BatchEvaluator engine;
  const PlanContext ctx(plan, engine);

  const std::vector<legal::Fact> facts = ctx.facts_before(day(10));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].kind, legal::FactKind::kAnonymousTip);
}

TEST(PlanLinterTest, CloudSubpoenaSceneFlagsMissingSubpoena) {
  // The new library scene flows through the linter like any hand-built
  // scenario: subscriber records without ANY instrument is an error.
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.plan_acquisition("subscriber records",
                        legal::library::cloud_storage_subscriber_subpoena(),
                        day(0));

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleMissingProcess), 1u);
  const Diagnostic& d = *report.first(kRuleMissingProcess);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("subpoena"), std::string::npos);
}

TEST(PlanLinterTest, CloudSubpoenaSceneCleanWithSubpoenaApplication) {
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  add_probable_cause(plan);
  const PlanStepId app =
      plan.plan_application("subpoena", legal::ProcessKind::kSubpoena, day(0));
  plan.plan_acquisition("subscriber records",
                        legal::library::cloud_storage_subscriber_subpoena(),
                        day(1))
      .using_authority(app);

  EXPECT_EQ(PlanLinter{}.lint(plan).count(kRuleMissingProcess), 0u);
}

TEST(PlanLinterTest, FederalConsentTapSceneNeedsNoProcess) {
  // One-party consent excuses the pen/trap order, so an instrument-free
  // acquisition of this scene lints clean on the process rule...
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.plan_acquisition("consented tap",
                        legal::library::isp_tap_with_consent_federal(), day(0));
  EXPECT_EQ(PlanLinter{}.lint(plan).count(kRuleMissingProcess), 0u);
}

TEST(PlanLinterTest, CrossBorderTapSceneFlagsMissingCourtOrder) {
  // ...but the identical tap under an all-party regime does not.
  InvestigationPlan plan("p", legal::CrimeCategory::kGeneral);
  plan.plan_acquisition("cross-border tap",
                        legal::library::isp_tap_cross_border_all_party(),
                        day(0));

  const LintReport report = PlanLinter{}.lint(plan);
  ASSERT_EQ(report.count(kRuleMissingProcess), 1u);
  EXPECT_NE(report.first(kRuleMissingProcess)->message.find("court order"),
            std::string::npos);
}

}  // namespace
}  // namespace lexfor::lint
