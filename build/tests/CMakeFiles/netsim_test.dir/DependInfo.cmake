
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/event_queue_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim/event_queue_test.cpp.o.d"
  "/root/repo/tests/netsim/flow_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim/flow_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim/flow_test.cpp.o.d"
  "/root/repo/tests/netsim/network_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim/network_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim/network_test.cpp.o.d"
  "/root/repo/tests/netsim/topology_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim/topology_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim/topology_test.cpp.o.d"
  "/root/repo/tests/netsim/trace_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/lexfor_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
