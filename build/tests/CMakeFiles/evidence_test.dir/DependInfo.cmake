
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/evidence/custody_test.cpp" "tests/CMakeFiles/evidence_test.dir/evidence/custody_test.cpp.o" "gcc" "tests/CMakeFiles/evidence_test.dir/evidence/custody_test.cpp.o.d"
  "/root/repo/tests/evidence/locker_test.cpp" "tests/CMakeFiles/evidence_test.dir/evidence/locker_test.cpp.o" "gcc" "tests/CMakeFiles/evidence_test.dir/evidence/locker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evidence/CMakeFiles/lexfor_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
