file(REMOVE_RECURSE
  "CMakeFiles/storedcomm_test.dir/storedcomm/property_test.cpp.o"
  "CMakeFiles/storedcomm_test.dir/storedcomm/property_test.cpp.o.d"
  "CMakeFiles/storedcomm_test.dir/storedcomm/provider_test.cpp.o"
  "CMakeFiles/storedcomm_test.dir/storedcomm/provider_test.cpp.o.d"
  "storedcomm_test"
  "storedcomm_test.pdb"
  "storedcomm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storedcomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
