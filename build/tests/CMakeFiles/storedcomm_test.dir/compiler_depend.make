# Empty compiler generated dependencies file for storedcomm_test.
# This may be replaced when dependencies are built.
