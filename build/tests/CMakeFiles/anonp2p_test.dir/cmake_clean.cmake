file(REMOVE_RECURSE
  "CMakeFiles/anonp2p_test.dir/anonp2p/investigator_test.cpp.o"
  "CMakeFiles/anonp2p_test.dir/anonp2p/investigator_test.cpp.o.d"
  "CMakeFiles/anonp2p_test.dir/anonp2p/multiclass_test.cpp.o"
  "CMakeFiles/anonp2p_test.dir/anonp2p/multiclass_test.cpp.o.d"
  "CMakeFiles/anonp2p_test.dir/anonp2p/overlay_test.cpp.o"
  "CMakeFiles/anonp2p_test.dir/anonp2p/overlay_test.cpp.o.d"
  "CMakeFiles/anonp2p_test.dir/anonp2p/protocol_test.cpp.o"
  "CMakeFiles/anonp2p_test.dir/anonp2p/protocol_test.cpp.o.d"
  "anonp2p_test"
  "anonp2p_test.pdb"
  "anonp2p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonp2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
