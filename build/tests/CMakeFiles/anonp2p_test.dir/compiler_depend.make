# Empty compiler generated dependencies file for anonp2p_test.
# This may be replaced when dependencies are built.
