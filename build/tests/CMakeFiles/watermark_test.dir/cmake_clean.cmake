file(REMOVE_RECURSE
  "CMakeFiles/watermark_test.dir/watermark/dsss_test.cpp.o"
  "CMakeFiles/watermark_test.dir/watermark/dsss_test.cpp.o.d"
  "CMakeFiles/watermark_test.dir/watermark/gold_code_test.cpp.o"
  "CMakeFiles/watermark_test.dir/watermark/gold_code_test.cpp.o.d"
  "CMakeFiles/watermark_test.dir/watermark/multibit_test.cpp.o"
  "CMakeFiles/watermark_test.dir/watermark/multibit_test.cpp.o.d"
  "CMakeFiles/watermark_test.dir/watermark/pn_code_test.cpp.o"
  "CMakeFiles/watermark_test.dir/watermark/pn_code_test.cpp.o.d"
  "CMakeFiles/watermark_test.dir/watermark/scan_test.cpp.o"
  "CMakeFiles/watermark_test.dir/watermark/scan_test.cpp.o.d"
  "watermark_test"
  "watermark_test.pdb"
  "watermark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watermark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
