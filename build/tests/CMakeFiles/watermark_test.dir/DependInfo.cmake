
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/watermark/dsss_test.cpp" "tests/CMakeFiles/watermark_test.dir/watermark/dsss_test.cpp.o" "gcc" "tests/CMakeFiles/watermark_test.dir/watermark/dsss_test.cpp.o.d"
  "/root/repo/tests/watermark/gold_code_test.cpp" "tests/CMakeFiles/watermark_test.dir/watermark/gold_code_test.cpp.o" "gcc" "tests/CMakeFiles/watermark_test.dir/watermark/gold_code_test.cpp.o.d"
  "/root/repo/tests/watermark/multibit_test.cpp" "tests/CMakeFiles/watermark_test.dir/watermark/multibit_test.cpp.o" "gcc" "tests/CMakeFiles/watermark_test.dir/watermark/multibit_test.cpp.o.d"
  "/root/repo/tests/watermark/pn_code_test.cpp" "tests/CMakeFiles/watermark_test.dir/watermark/pn_code_test.cpp.o" "gcc" "tests/CMakeFiles/watermark_test.dir/watermark/pn_code_test.cpp.o.d"
  "/root/repo/tests/watermark/scan_test.cpp" "tests/CMakeFiles/watermark_test.dir/watermark/scan_test.cpp.o" "gcc" "tests/CMakeFiles/watermark_test.dir/watermark/scan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/watermark/CMakeFiles/lexfor_watermark.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
