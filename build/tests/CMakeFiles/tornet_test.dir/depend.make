# Empty dependencies file for tornet_test.
# This may be replaced when dependencies are built.
