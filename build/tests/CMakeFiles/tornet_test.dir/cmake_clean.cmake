file(REMOVE_RECURSE
  "CMakeFiles/tornet_test.dir/tornet/anonymity_network_test.cpp.o"
  "CMakeFiles/tornet_test.dir/tornet/anonymity_network_test.cpp.o.d"
  "CMakeFiles/tornet_test.dir/tornet/baseline_test.cpp.o"
  "CMakeFiles/tornet_test.dir/tornet/baseline_test.cpp.o.d"
  "CMakeFiles/tornet_test.dir/tornet/multiflow_test.cpp.o"
  "CMakeFiles/tornet_test.dir/tornet/multiflow_test.cpp.o.d"
  "CMakeFiles/tornet_test.dir/tornet/traceback_test.cpp.o"
  "CMakeFiles/tornet_test.dir/tornet/traceback_test.cpp.o.d"
  "tornet_test"
  "tornet_test.pdb"
  "tornet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tornet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
