file(REMOVE_RECURSE
  "CMakeFiles/diskimage_test.dir/diskimage/disk_image_test.cpp.o"
  "CMakeFiles/diskimage_test.dir/diskimage/disk_image_test.cpp.o.d"
  "CMakeFiles/diskimage_test.dir/diskimage/hash_search_test.cpp.o"
  "CMakeFiles/diskimage_test.dir/diskimage/hash_search_test.cpp.o.d"
  "CMakeFiles/diskimage_test.dir/diskimage/keyword_search_test.cpp.o"
  "CMakeFiles/diskimage_test.dir/diskimage/keyword_search_test.cpp.o.d"
  "diskimage_test"
  "diskimage_test.pdb"
  "diskimage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskimage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
