# Empty dependencies file for diskimage_test.
# This may be replaced when dependencies are built.
