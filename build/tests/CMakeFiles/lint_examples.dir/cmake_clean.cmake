file(REMOVE_RECURSE
  "CMakeFiles/lint_examples.dir/lint/lint_examples_test.cpp.o"
  "CMakeFiles/lint_examples.dir/lint/lint_examples_test.cpp.o.d"
  "lint_examples"
  "lint_examples.pdb"
  "lint_examples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
