# Empty dependencies file for lint_examples.
# This may be replaced when dependencies are built.
