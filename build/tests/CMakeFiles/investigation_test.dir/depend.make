# Empty dependencies file for investigation_test.
# This may be replaced when dependencies are built.
