file(REMOVE_RECURSE
  "CMakeFiles/investigation_test.dir/investigation/court_test.cpp.o"
  "CMakeFiles/investigation_test.dir/investigation/court_test.cpp.o.d"
  "CMakeFiles/investigation_test.dir/investigation/investigation_test.cpp.o"
  "CMakeFiles/investigation_test.dir/investigation/investigation_test.cpp.o.d"
  "CMakeFiles/investigation_test.dir/investigation/report_test.cpp.o"
  "CMakeFiles/investigation_test.dir/investigation/report_test.cpp.o.d"
  "investigation_test"
  "investigation_test.pdb"
  "investigation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
