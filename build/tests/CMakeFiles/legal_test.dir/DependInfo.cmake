
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/legal/analysis_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/analysis_test.cpp.o.d"
  "/root/repo/tests/legal/caselaw_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/caselaw_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/caselaw_test.cpp.o.d"
  "/root/repo/tests/legal/engine_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/engine_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/engine_test.cpp.o.d"
  "/root/repo/tests/legal/exceptions_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/exceptions_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/exceptions_test.cpp.o.d"
  "/root/repo/tests/legal/exigency_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/exigency_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/exigency_test.cpp.o.d"
  "/root/repo/tests/legal/export_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/export_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/export_test.cpp.o.d"
  "/root/repo/tests/legal/facts_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/facts_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/facts_test.cpp.o.d"
  "/root/repo/tests/legal/jurisdiction_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/jurisdiction_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/jurisdiction_test.cpp.o.d"
  "/root/repo/tests/legal/privacy_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/privacy_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/privacy_test.cpp.o.d"
  "/root/repo/tests/legal/process_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/process_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/process_test.cpp.o.d"
  "/root/repo/tests/legal/property_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/property_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/property_test.cpp.o.d"
  "/root/repo/tests/legal/scenario_library_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/scenario_library_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/scenario_library_test.cpp.o.d"
  "/root/repo/tests/legal/statutes_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/statutes_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/statutes_test.cpp.o.d"
  "/root/repo/tests/legal/suppression_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/suppression_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/suppression_test.cpp.o.d"
  "/root/repo/tests/legal/table1_test.cpp" "tests/CMakeFiles/legal_test.dir/legal/table1_test.cpp.o" "gcc" "tests/CMakeFiles/legal_test.dir/legal/table1_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
