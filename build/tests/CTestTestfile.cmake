# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/legal_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/storedcomm_test[1]_include.cmake")
include("/root/repo/build/tests/evidence_test[1]_include.cmake")
include("/root/repo/build/tests/diskimage_test[1]_include.cmake")
include("/root/repo/build/tests/watermark_test[1]_include.cmake")
include("/root/repo/build/tests/anonp2p_test[1]_include.cmake")
include("/root/repo/build/tests/tornet_test[1]_include.cmake")
include("/root/repo/build/tests/lint_test[1]_include.cmake")
include("/root/repo/build/tests/lint_examples[1]_include.cmake")
include("/root/repo/build/tests/investigation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
