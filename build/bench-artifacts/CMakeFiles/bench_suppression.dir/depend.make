# Empty dependencies file for bench_suppression.
# This may be replaced when dependencies are built.
