file(REMOVE_RECURSE
  "../bench/bench_suppression"
  "../bench/bench_suppression.pdb"
  "CMakeFiles/bench_suppression.dir/bench_suppression.cpp.o"
  "CMakeFiles/bench_suppression.dir/bench_suppression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
