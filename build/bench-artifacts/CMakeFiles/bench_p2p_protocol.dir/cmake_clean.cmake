file(REMOVE_RECURSE
  "../bench/bench_p2p_protocol"
  "../bench/bench_p2p_protocol.pdb"
  "CMakeFiles/bench_p2p_protocol.dir/bench_p2p_protocol.cpp.o"
  "CMakeFiles/bench_p2p_protocol.dir/bench_p2p_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
