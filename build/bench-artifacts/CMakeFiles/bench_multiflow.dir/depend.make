# Empty dependencies file for bench_multiflow.
# This may be replaced when dependencies are built.
