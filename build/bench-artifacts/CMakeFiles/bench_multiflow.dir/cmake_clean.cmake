file(REMOVE_RECURSE
  "../bench/bench_multiflow"
  "../bench/bench_multiflow.pdb"
  "CMakeFiles/bench_multiflow.dir/bench_multiflow.cpp.o"
  "CMakeFiles/bench_multiflow.dir/bench_multiflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
