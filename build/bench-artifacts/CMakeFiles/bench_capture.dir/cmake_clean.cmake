file(REMOVE_RECURSE
  "../bench/bench_capture"
  "../bench/bench_capture.pdb"
  "CMakeFiles/bench_capture.dir/bench_capture.cpp.o"
  "CMakeFiles/bench_capture.dir/bench_capture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
