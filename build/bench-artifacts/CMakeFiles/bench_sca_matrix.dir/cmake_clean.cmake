file(REMOVE_RECURSE
  "../bench/bench_sca_matrix"
  "../bench/bench_sca_matrix.pdb"
  "CMakeFiles/bench_sca_matrix.dir/bench_sca_matrix.cpp.o"
  "CMakeFiles/bench_sca_matrix.dir/bench_sca_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sca_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
