# Empty compiler generated dependencies file for bench_sca_matrix.
# This may be replaced when dependencies are built.
