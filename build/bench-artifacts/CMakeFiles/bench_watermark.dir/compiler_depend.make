# Empty compiler generated dependencies file for bench_watermark.
# This may be replaced when dependencies are built.
