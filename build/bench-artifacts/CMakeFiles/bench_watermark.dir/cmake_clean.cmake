file(REMOVE_RECURSE
  "../bench/bench_watermark"
  "../bench/bench_watermark.pdb"
  "CMakeFiles/bench_watermark.dir/bench_watermark.cpp.o"
  "CMakeFiles/bench_watermark.dir/bench_watermark.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watermark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
