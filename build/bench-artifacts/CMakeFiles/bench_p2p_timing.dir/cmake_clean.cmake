file(REMOVE_RECURSE
  "../bench/bench_p2p_timing"
  "../bench/bench_p2p_timing.pdb"
  "CMakeFiles/bench_p2p_timing.dir/bench_p2p_timing.cpp.o"
  "CMakeFiles/bench_p2p_timing.dir/bench_p2p_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
