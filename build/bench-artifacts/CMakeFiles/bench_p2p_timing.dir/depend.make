# Empty dependencies file for bench_p2p_timing.
# This may be replaced when dependencies are built.
