
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lint.cpp" "bench-artifacts/CMakeFiles/bench_lint.dir/bench_lint.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_lint.dir/bench_lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lint/CMakeFiles/lexfor_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
