file(REMOVE_RECURSE
  "../bench/bench_lint"
  "../bench/bench_lint.pdb"
  "CMakeFiles/bench_lint.dir/bench_lint.cpp.o"
  "CMakeFiles/bench_lint.dir/bench_lint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
