# Empty dependencies file for bench_lint.
# This may be replaced when dependencies are built.
