file(REMOVE_RECURSE
  "../bench/bench_netsim"
  "../bench/bench_netsim.pdb"
  "CMakeFiles/bench_netsim.dir/bench_netsim.cpp.o"
  "CMakeFiles/bench_netsim.dir/bench_netsim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
