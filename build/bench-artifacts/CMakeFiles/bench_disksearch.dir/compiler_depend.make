# Empty compiler generated dependencies file for bench_disksearch.
# This may be replaced when dependencies are built.
