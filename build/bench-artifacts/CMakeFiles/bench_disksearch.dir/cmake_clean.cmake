file(REMOVE_RECURSE
  "../bench/bench_disksearch"
  "../bench/bench_disksearch.pdb"
  "CMakeFiles/bench_disksearch.dir/bench_disksearch.cpp.o"
  "CMakeFiles/bench_disksearch.dir/bench_disksearch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disksearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
