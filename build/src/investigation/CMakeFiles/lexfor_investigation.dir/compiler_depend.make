# Empty compiler generated dependencies file for lexfor_investigation.
# This may be replaced when dependencies are built.
