
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/investigation/court.cpp" "src/investigation/CMakeFiles/lexfor_investigation.dir/court.cpp.o" "gcc" "src/investigation/CMakeFiles/lexfor_investigation.dir/court.cpp.o.d"
  "/root/repo/src/investigation/investigation.cpp" "src/investigation/CMakeFiles/lexfor_investigation.dir/investigation.cpp.o" "gcc" "src/investigation/CMakeFiles/lexfor_investigation.dir/investigation.cpp.o.d"
  "/root/repo/src/investigation/plan_runner.cpp" "src/investigation/CMakeFiles/lexfor_investigation.dir/plan_runner.cpp.o" "gcc" "src/investigation/CMakeFiles/lexfor_investigation.dir/plan_runner.cpp.o.d"
  "/root/repo/src/investigation/report.cpp" "src/investigation/CMakeFiles/lexfor_investigation.dir/report.cpp.o" "gcc" "src/investigation/CMakeFiles/lexfor_investigation.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/lint/CMakeFiles/lexfor_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
