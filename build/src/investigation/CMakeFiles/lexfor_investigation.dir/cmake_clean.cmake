file(REMOVE_RECURSE
  "CMakeFiles/lexfor_investigation.dir/court.cpp.o"
  "CMakeFiles/lexfor_investigation.dir/court.cpp.o.d"
  "CMakeFiles/lexfor_investigation.dir/investigation.cpp.o"
  "CMakeFiles/lexfor_investigation.dir/investigation.cpp.o.d"
  "CMakeFiles/lexfor_investigation.dir/plan_runner.cpp.o"
  "CMakeFiles/lexfor_investigation.dir/plan_runner.cpp.o.d"
  "CMakeFiles/lexfor_investigation.dir/report.cpp.o"
  "CMakeFiles/lexfor_investigation.dir/report.cpp.o.d"
  "liblexfor_investigation.a"
  "liblexfor_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
