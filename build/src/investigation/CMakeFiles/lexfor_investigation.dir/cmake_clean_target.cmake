file(REMOVE_RECURSE
  "liblexfor_investigation.a"
)
