file(REMOVE_RECURSE
  "CMakeFiles/lexfor_storedcomm.dir/provider.cpp.o"
  "CMakeFiles/lexfor_storedcomm.dir/provider.cpp.o.d"
  "liblexfor_storedcomm.a"
  "liblexfor_storedcomm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_storedcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
