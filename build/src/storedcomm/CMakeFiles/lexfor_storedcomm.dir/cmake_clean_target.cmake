file(REMOVE_RECURSE
  "liblexfor_storedcomm.a"
)
