# Empty compiler generated dependencies file for lexfor_storedcomm.
# This may be replaced when dependencies are built.
