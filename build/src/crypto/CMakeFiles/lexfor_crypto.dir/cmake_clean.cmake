file(REMOVE_RECURSE
  "CMakeFiles/lexfor_crypto.dir/crc32.cpp.o"
  "CMakeFiles/lexfor_crypto.dir/crc32.cpp.o.d"
  "CMakeFiles/lexfor_crypto.dir/md5.cpp.o"
  "CMakeFiles/lexfor_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/lexfor_crypto.dir/sha256.cpp.o"
  "CMakeFiles/lexfor_crypto.dir/sha256.cpp.o.d"
  "liblexfor_crypto.a"
  "liblexfor_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
