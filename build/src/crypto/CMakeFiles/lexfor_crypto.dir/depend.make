# Empty dependencies file for lexfor_crypto.
# This may be replaced when dependencies are built.
