file(REMOVE_RECURSE
  "liblexfor_crypto.a"
)
