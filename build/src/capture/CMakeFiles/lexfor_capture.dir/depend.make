# Empty dependencies file for lexfor_capture.
# This may be replaced when dependencies are built.
