file(REMOVE_RECURSE
  "liblexfor_capture.a"
)
