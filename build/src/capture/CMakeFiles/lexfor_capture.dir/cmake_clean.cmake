file(REMOVE_RECURSE
  "CMakeFiles/lexfor_capture.dir/capture.cpp.o"
  "CMakeFiles/lexfor_capture.dir/capture.cpp.o.d"
  "CMakeFiles/lexfor_capture.dir/filter.cpp.o"
  "CMakeFiles/lexfor_capture.dir/filter.cpp.o.d"
  "liblexfor_capture.a"
  "liblexfor_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
