# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("legal")
subdirs("lint")
subdirs("netsim")
subdirs("capture")
subdirs("storedcomm")
subdirs("evidence")
subdirs("diskimage")
subdirs("watermark")
subdirs("anonp2p")
subdirs("tornet")
subdirs("investigation")
