file(REMOVE_RECURSE
  "liblexfor_evidence.a"
)
