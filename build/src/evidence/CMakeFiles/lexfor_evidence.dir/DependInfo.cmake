
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evidence/custody.cpp" "src/evidence/CMakeFiles/lexfor_evidence.dir/custody.cpp.o" "gcc" "src/evidence/CMakeFiles/lexfor_evidence.dir/custody.cpp.o.d"
  "/root/repo/src/evidence/locker.cpp" "src/evidence/CMakeFiles/lexfor_evidence.dir/locker.cpp.o" "gcc" "src/evidence/CMakeFiles/lexfor_evidence.dir/locker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
