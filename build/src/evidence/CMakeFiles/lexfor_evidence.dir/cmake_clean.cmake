file(REMOVE_RECURSE
  "CMakeFiles/lexfor_evidence.dir/custody.cpp.o"
  "CMakeFiles/lexfor_evidence.dir/custody.cpp.o.d"
  "CMakeFiles/lexfor_evidence.dir/locker.cpp.o"
  "CMakeFiles/lexfor_evidence.dir/locker.cpp.o.d"
  "liblexfor_evidence.a"
  "liblexfor_evidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_evidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
