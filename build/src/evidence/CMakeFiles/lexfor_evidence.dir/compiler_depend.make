# Empty compiler generated dependencies file for lexfor_evidence.
# This may be replaced when dependencies are built.
