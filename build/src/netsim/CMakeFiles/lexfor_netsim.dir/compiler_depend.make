# Empty compiler generated dependencies file for lexfor_netsim.
# This may be replaced when dependencies are built.
