file(REMOVE_RECURSE
  "liblexfor_netsim.a"
)
