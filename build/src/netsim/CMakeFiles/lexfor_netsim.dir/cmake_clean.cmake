file(REMOVE_RECURSE
  "CMakeFiles/lexfor_netsim.dir/network.cpp.o"
  "CMakeFiles/lexfor_netsim.dir/network.cpp.o.d"
  "CMakeFiles/lexfor_netsim.dir/topology.cpp.o"
  "CMakeFiles/lexfor_netsim.dir/topology.cpp.o.d"
  "CMakeFiles/lexfor_netsim.dir/trace.cpp.o"
  "CMakeFiles/lexfor_netsim.dir/trace.cpp.o.d"
  "liblexfor_netsim.a"
  "liblexfor_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
