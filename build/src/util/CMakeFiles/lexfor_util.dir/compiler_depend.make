# Empty compiler generated dependencies file for lexfor_util.
# This may be replaced when dependencies are built.
