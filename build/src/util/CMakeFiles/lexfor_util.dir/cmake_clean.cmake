file(REMOVE_RECURSE
  "CMakeFiles/lexfor_util.dir/bytes.cpp.o"
  "CMakeFiles/lexfor_util.dir/bytes.cpp.o.d"
  "CMakeFiles/lexfor_util.dir/rng.cpp.o"
  "CMakeFiles/lexfor_util.dir/rng.cpp.o.d"
  "CMakeFiles/lexfor_util.dir/string_util.cpp.o"
  "CMakeFiles/lexfor_util.dir/string_util.cpp.o.d"
  "liblexfor_util.a"
  "liblexfor_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
