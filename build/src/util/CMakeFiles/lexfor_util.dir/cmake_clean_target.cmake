file(REMOVE_RECURSE
  "liblexfor_util.a"
)
