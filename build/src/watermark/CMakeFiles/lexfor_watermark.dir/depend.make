# Empty dependencies file for lexfor_watermark.
# This may be replaced when dependencies are built.
