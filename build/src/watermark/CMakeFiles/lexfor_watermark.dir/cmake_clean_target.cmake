file(REMOVE_RECURSE
  "liblexfor_watermark.a"
)
