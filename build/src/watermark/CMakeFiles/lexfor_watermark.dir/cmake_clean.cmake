file(REMOVE_RECURSE
  "CMakeFiles/lexfor_watermark.dir/dsss.cpp.o"
  "CMakeFiles/lexfor_watermark.dir/dsss.cpp.o.d"
  "CMakeFiles/lexfor_watermark.dir/gold_code.cpp.o"
  "CMakeFiles/lexfor_watermark.dir/gold_code.cpp.o.d"
  "CMakeFiles/lexfor_watermark.dir/multibit.cpp.o"
  "CMakeFiles/lexfor_watermark.dir/multibit.cpp.o.d"
  "CMakeFiles/lexfor_watermark.dir/pn_code.cpp.o"
  "CMakeFiles/lexfor_watermark.dir/pn_code.cpp.o.d"
  "liblexfor_watermark.a"
  "liblexfor_watermark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_watermark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
