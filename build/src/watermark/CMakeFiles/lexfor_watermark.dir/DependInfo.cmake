
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/watermark/dsss.cpp" "src/watermark/CMakeFiles/lexfor_watermark.dir/dsss.cpp.o" "gcc" "src/watermark/CMakeFiles/lexfor_watermark.dir/dsss.cpp.o.d"
  "/root/repo/src/watermark/gold_code.cpp" "src/watermark/CMakeFiles/lexfor_watermark.dir/gold_code.cpp.o" "gcc" "src/watermark/CMakeFiles/lexfor_watermark.dir/gold_code.cpp.o.d"
  "/root/repo/src/watermark/multibit.cpp" "src/watermark/CMakeFiles/lexfor_watermark.dir/multibit.cpp.o" "gcc" "src/watermark/CMakeFiles/lexfor_watermark.dir/multibit.cpp.o.d"
  "/root/repo/src/watermark/pn_code.cpp" "src/watermark/CMakeFiles/lexfor_watermark.dir/pn_code.cpp.o" "gcc" "src/watermark/CMakeFiles/lexfor_watermark.dir/pn_code.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
