# CMake generated Testfile for 
# Source directory: /root/repo/src/watermark
# Build directory: /root/repo/build/src/watermark
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
