file(REMOVE_RECURSE
  "liblexfor_tornet.a"
)
