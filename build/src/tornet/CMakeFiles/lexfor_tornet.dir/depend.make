# Empty dependencies file for lexfor_tornet.
# This may be replaced when dependencies are built.
