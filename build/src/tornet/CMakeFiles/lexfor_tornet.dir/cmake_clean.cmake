file(REMOVE_RECURSE
  "CMakeFiles/lexfor_tornet.dir/anonymity_network.cpp.o"
  "CMakeFiles/lexfor_tornet.dir/anonymity_network.cpp.o.d"
  "CMakeFiles/lexfor_tornet.dir/baseline.cpp.o"
  "CMakeFiles/lexfor_tornet.dir/baseline.cpp.o.d"
  "CMakeFiles/lexfor_tornet.dir/traceback.cpp.o"
  "CMakeFiles/lexfor_tornet.dir/traceback.cpp.o.d"
  "liblexfor_tornet.a"
  "liblexfor_tornet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_tornet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
