# CMake generated Testfile for 
# Source directory: /root/repo/src/anonp2p
# Build directory: /root/repo/build/src/anonp2p
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
