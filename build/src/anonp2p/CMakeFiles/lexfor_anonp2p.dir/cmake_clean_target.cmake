file(REMOVE_RECURSE
  "liblexfor_anonp2p.a"
)
