file(REMOVE_RECURSE
  "CMakeFiles/lexfor_anonp2p.dir/investigator.cpp.o"
  "CMakeFiles/lexfor_anonp2p.dir/investigator.cpp.o.d"
  "CMakeFiles/lexfor_anonp2p.dir/overlay.cpp.o"
  "CMakeFiles/lexfor_anonp2p.dir/overlay.cpp.o.d"
  "CMakeFiles/lexfor_anonp2p.dir/protocol.cpp.o"
  "CMakeFiles/lexfor_anonp2p.dir/protocol.cpp.o.d"
  "liblexfor_anonp2p.a"
  "liblexfor_anonp2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_anonp2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
