# Empty dependencies file for lexfor_anonp2p.
# This may be replaced when dependencies are built.
