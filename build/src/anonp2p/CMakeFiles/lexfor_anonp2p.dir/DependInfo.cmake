
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anonp2p/investigator.cpp" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/investigator.cpp.o" "gcc" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/investigator.cpp.o.d"
  "/root/repo/src/anonp2p/overlay.cpp" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/overlay.cpp.o" "gcc" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/overlay.cpp.o.d"
  "/root/repo/src/anonp2p/protocol.cpp" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/protocol.cpp.o" "gcc" "src/anonp2p/CMakeFiles/lexfor_anonp2p.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/lexfor_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
