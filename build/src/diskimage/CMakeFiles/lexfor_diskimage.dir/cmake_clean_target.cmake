file(REMOVE_RECURSE
  "liblexfor_diskimage.a"
)
