
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diskimage/disk_image.cpp" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/disk_image.cpp.o" "gcc" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/disk_image.cpp.o.d"
  "/root/repo/src/diskimage/hash_search.cpp" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/hash_search.cpp.o" "gcc" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/hash_search.cpp.o.d"
  "/root/repo/src/diskimage/keyword_search.cpp" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/keyword_search.cpp.o" "gcc" "src/diskimage/CMakeFiles/lexfor_diskimage.dir/keyword_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
