# Empty compiler generated dependencies file for lexfor_diskimage.
# This may be replaced when dependencies are built.
