file(REMOVE_RECURSE
  "CMakeFiles/lexfor_diskimage.dir/disk_image.cpp.o"
  "CMakeFiles/lexfor_diskimage.dir/disk_image.cpp.o.d"
  "CMakeFiles/lexfor_diskimage.dir/hash_search.cpp.o"
  "CMakeFiles/lexfor_diskimage.dir/hash_search.cpp.o.d"
  "CMakeFiles/lexfor_diskimage.dir/keyword_search.cpp.o"
  "CMakeFiles/lexfor_diskimage.dir/keyword_search.cpp.o.d"
  "liblexfor_diskimage.a"
  "liblexfor_diskimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_diskimage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
