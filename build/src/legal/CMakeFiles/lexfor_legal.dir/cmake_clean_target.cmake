file(REMOVE_RECURSE
  "liblexfor_legal.a"
)
