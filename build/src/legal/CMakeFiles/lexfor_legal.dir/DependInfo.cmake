
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legal/analysis.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/analysis.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/analysis.cpp.o.d"
  "/root/repo/src/legal/caselaw.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/caselaw.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/caselaw.cpp.o.d"
  "/root/repo/src/legal/engine.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/engine.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/engine.cpp.o.d"
  "/root/repo/src/legal/exceptions.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/exceptions.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/exceptions.cpp.o.d"
  "/root/repo/src/legal/exigency.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/exigency.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/exigency.cpp.o.d"
  "/root/repo/src/legal/export.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/export.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/export.cpp.o.d"
  "/root/repo/src/legal/facts.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/facts.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/facts.cpp.o.d"
  "/root/repo/src/legal/jurisdiction.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/jurisdiction.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/jurisdiction.cpp.o.d"
  "/root/repo/src/legal/privacy.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/privacy.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/privacy.cpp.o.d"
  "/root/repo/src/legal/process.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/process.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/process.cpp.o.d"
  "/root/repo/src/legal/scenario_library.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/scenario_library.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/scenario_library.cpp.o.d"
  "/root/repo/src/legal/statutes.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/statutes.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/statutes.cpp.o.d"
  "/root/repo/src/legal/suppression.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/suppression.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/suppression.cpp.o.d"
  "/root/repo/src/legal/table1.cpp" "src/legal/CMakeFiles/lexfor_legal.dir/table1.cpp.o" "gcc" "src/legal/CMakeFiles/lexfor_legal.dir/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
