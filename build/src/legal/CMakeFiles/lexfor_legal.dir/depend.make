# Empty dependencies file for lexfor_legal.
# This may be replaced when dependencies are built.
