file(REMOVE_RECURSE
  "CMakeFiles/lexfor_legal.dir/analysis.cpp.o"
  "CMakeFiles/lexfor_legal.dir/analysis.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/caselaw.cpp.o"
  "CMakeFiles/lexfor_legal.dir/caselaw.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/engine.cpp.o"
  "CMakeFiles/lexfor_legal.dir/engine.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/exceptions.cpp.o"
  "CMakeFiles/lexfor_legal.dir/exceptions.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/exigency.cpp.o"
  "CMakeFiles/lexfor_legal.dir/exigency.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/export.cpp.o"
  "CMakeFiles/lexfor_legal.dir/export.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/facts.cpp.o"
  "CMakeFiles/lexfor_legal.dir/facts.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/jurisdiction.cpp.o"
  "CMakeFiles/lexfor_legal.dir/jurisdiction.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/privacy.cpp.o"
  "CMakeFiles/lexfor_legal.dir/privacy.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/process.cpp.o"
  "CMakeFiles/lexfor_legal.dir/process.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/scenario_library.cpp.o"
  "CMakeFiles/lexfor_legal.dir/scenario_library.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/statutes.cpp.o"
  "CMakeFiles/lexfor_legal.dir/statutes.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/suppression.cpp.o"
  "CMakeFiles/lexfor_legal.dir/suppression.cpp.o.d"
  "CMakeFiles/lexfor_legal.dir/table1.cpp.o"
  "CMakeFiles/lexfor_legal.dir/table1.cpp.o.d"
  "liblexfor_legal.a"
  "liblexfor_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
