# Empty dependencies file for lexfor_lint.
# This may be replaced when dependencies are built.
