file(REMOVE_RECURSE
  "CMakeFiles/lexfor_lint.dir/example_plans.cpp.o"
  "CMakeFiles/lexfor_lint.dir/example_plans.cpp.o.d"
  "CMakeFiles/lexfor_lint.dir/linter.cpp.o"
  "CMakeFiles/lexfor_lint.dir/linter.cpp.o.d"
  "CMakeFiles/lexfor_lint.dir/passes.cpp.o"
  "CMakeFiles/lexfor_lint.dir/passes.cpp.o.d"
  "CMakeFiles/lexfor_lint.dir/plan.cpp.o"
  "CMakeFiles/lexfor_lint.dir/plan.cpp.o.d"
  "CMakeFiles/lexfor_lint.dir/render.cpp.o"
  "CMakeFiles/lexfor_lint.dir/render.cpp.o.d"
  "liblexfor_lint.a"
  "liblexfor_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexfor_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
