
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lint/example_plans.cpp" "src/lint/CMakeFiles/lexfor_lint.dir/example_plans.cpp.o" "gcc" "src/lint/CMakeFiles/lexfor_lint.dir/example_plans.cpp.o.d"
  "/root/repo/src/lint/linter.cpp" "src/lint/CMakeFiles/lexfor_lint.dir/linter.cpp.o" "gcc" "src/lint/CMakeFiles/lexfor_lint.dir/linter.cpp.o.d"
  "/root/repo/src/lint/passes.cpp" "src/lint/CMakeFiles/lexfor_lint.dir/passes.cpp.o" "gcc" "src/lint/CMakeFiles/lexfor_lint.dir/passes.cpp.o.d"
  "/root/repo/src/lint/plan.cpp" "src/lint/CMakeFiles/lexfor_lint.dir/plan.cpp.o" "gcc" "src/lint/CMakeFiles/lexfor_lint.dir/plan.cpp.o.d"
  "/root/repo/src/lint/render.cpp" "src/lint/CMakeFiles/lexfor_lint.dir/render.cpp.o" "gcc" "src/lint/CMakeFiles/lexfor_lint.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
