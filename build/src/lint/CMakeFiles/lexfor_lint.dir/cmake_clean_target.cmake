file(REMOVE_RECURSE
  "liblexfor_lint.a"
)
