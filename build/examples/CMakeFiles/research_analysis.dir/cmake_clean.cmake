file(REMOVE_RECURSE
  "CMakeFiles/research_analysis.dir/research_analysis.cpp.o"
  "CMakeFiles/research_analysis.dir/research_analysis.cpp.o.d"
  "research_analysis"
  "research_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
