# Empty compiler generated dependencies file for research_analysis.
# This may be replaced when dependencies are built.
