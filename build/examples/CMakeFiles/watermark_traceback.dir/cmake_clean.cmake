file(REMOVE_RECURSE
  "CMakeFiles/watermark_traceback.dir/watermark_traceback.cpp.o"
  "CMakeFiles/watermark_traceback.dir/watermark_traceback.cpp.o.d"
  "watermark_traceback"
  "watermark_traceback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watermark_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
