# Empty compiler generated dependencies file for watermark_traceback.
# This may be replaced when dependencies are built.
