file(REMOVE_RECURSE
  "CMakeFiles/email_sca_lifecycle.dir/email_sca_lifecycle.cpp.o"
  "CMakeFiles/email_sca_lifecycle.dir/email_sca_lifecycle.cpp.o.d"
  "email_sca_lifecycle"
  "email_sca_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_sca_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
