# Empty compiler generated dependencies file for email_sca_lifecycle.
# This may be replaced when dependencies are built.
