file(REMOVE_RECURSE
  "CMakeFiles/plan_lint.dir/plan_lint.cpp.o"
  "CMakeFiles/plan_lint.dir/plan_lint.cpp.o.d"
  "plan_lint"
  "plan_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
