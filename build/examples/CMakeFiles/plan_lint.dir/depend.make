# Empty dependencies file for plan_lint.
# This may be replaced when dependencies are built.
