file(REMOVE_RECURSE
  "CMakeFiles/p2p_investigation.dir/p2p_investigation.cpp.o"
  "CMakeFiles/p2p_investigation.dir/p2p_investigation.cpp.o.d"
  "p2p_investigation"
  "p2p_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
