# Empty compiler generated dependencies file for p2p_investigation.
# This may be replaced when dependencies are built.
