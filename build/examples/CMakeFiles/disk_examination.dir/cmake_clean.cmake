file(REMOVE_RECURSE
  "CMakeFiles/disk_examination.dir/disk_examination.cpp.o"
  "CMakeFiles/disk_examination.dir/disk_examination.cpp.o.d"
  "disk_examination"
  "disk_examination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_examination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
