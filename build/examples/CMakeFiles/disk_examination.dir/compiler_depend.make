# Empty compiler generated dependencies file for disk_examination.
# This may be replaced when dependencies are built.
