
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/disk_examination.cpp" "examples/CMakeFiles/disk_examination.dir/disk_examination.cpp.o" "gcc" "examples/CMakeFiles/disk_examination.dir/disk_examination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diskimage/CMakeFiles/lexfor_diskimage.dir/DependInfo.cmake"
  "/root/repo/build/src/evidence/CMakeFiles/lexfor_evidence.dir/DependInfo.cmake"
  "/root/repo/build/src/investigation/CMakeFiles/lexfor_investigation.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lexfor_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/lint/CMakeFiles/lexfor_lint.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/lexfor_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lexfor_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
