#include "evidence/custody.h"

#include <sstream>

#include "obs/obs.h"

namespace lexfor::evidence {
namespace {

Bytes serialize_record_fields(const CustodyRecord& rec,
                              const crypto::Sha256::Digest& content_hash) {
  Bytes buf;
  buf.push_back(static_cast<std::uint8_t>(rec.action));
  append_u64(buf, static_cast<std::uint64_t>(rec.at.us));
  append_u32(buf, static_cast<std::uint32_t>(rec.custodian.size()));
  buf.insert(buf.end(), rec.custodian.begin(), rec.custodian.end());
  append_u32(buf, static_cast<std::uint32_t>(rec.note.size()));
  buf.insert(buf.end(), rec.note.begin(), rec.note.end());
  buf.insert(buf.end(), content_hash.begin(), content_hash.end());
  return buf;
}

}  // namespace

EvidenceItem::EvidenceItem(EvidenceId id, std::string description,
                           Bytes content, std::string custodian, SimTime at,
                           const Bytes& case_key)
    : id_(id),
      description_(std::move(description)),
      content_(std::move(content)),
      content_hash_(crypto::Sha256::hash(content_)) {
  record(CustodyAction::kSeized, std::move(custodian), "initial seizure", at,
         case_key);
}

std::string EvidenceItem::content_hash_hex() const {
  return to_hex(content_hash_.data(), content_hash_.size());
}

crypto::Sha256::Digest EvidenceItem::compute_mac(
    const CustodyRecord& rec, const crypto::Sha256::Digest& prev,
    const Bytes& case_key) const {
  Bytes msg(prev.begin(), prev.end());
  const Bytes fields = serialize_record_fields(rec, content_hash_);
  msg.insert(msg.end(), fields.begin(), fields.end());
  return crypto::hmac_sha256(case_key, msg);
}

void EvidenceItem::record(CustodyAction action, std::string custodian,
                          std::string note, SimTime at, const Bytes& case_key) {
  CustodyRecord rec;
  rec.action = action;
  rec.custodian = std::move(custodian);
  rec.note = std::move(note);
  rec.at = at;
  const crypto::Sha256::Digest prev =
      chain_.empty() ? crypto::Sha256::Digest{} : chain_.back().mac;
  rec.mac = compute_mac(rec, prev, case_key);
  // Every custody-chain entry is also an audit-level trace event, so one
  // trace interleaves custody, authority and acquisition (§I: evidence
  // must be "sufficiently reliable to stand up in court").
  LEXFOR_OBS_COUNTER_ADD("evidence.custody_records", 1);
  LEXFOR_OBS_EVENT(obs::Level::kAudit, "evidence", "custody",
                   "item=" + std::to_string(id_.value()) +
                       ",action=" + std::string(to_string(action)) +
                       ",custodian=" + rec.custodian,
                   at);
  chain_.push_back(std::move(rec));
}

Status EvidenceItem::verify(const Bytes& case_key) const {
  if (crypto::Sha256::hash(content_) != content_hash_) {
    return FailedPrecondition(
        "evidence content no longer matches its seizure hash");
  }
  crypto::Sha256::Digest prev{};
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const auto expected = compute_mac(chain_[i], prev, case_key);
    if (expected != chain_[i].mac) {
      std::ostringstream os;
      os << "custody record " << i << " fails MAC verification (chain "
         << "tampered or wrong case key)";
      return FailedPrecondition(os.str());
    }
    prev = chain_[i].mac;
  }
  return Status::Ok();
}

EvidenceItem EvidenceItem::image(EvidenceId new_id, std::string custodian,
                                 SimTime at, const Bytes& case_key) {
  record(CustodyAction::kImaged, custodian,
         "forensic duplicate created as evidence item", at, case_key);
  EvidenceItem copy(new_id, description_ + " (forensic image)", content_,
                    custodian, at, case_key);
  copy.record(CustodyAction::kImaged, std::move(custodian),
              "imaged from " + std::to_string(id_.value()), at, case_key);
  return copy;
}

void EvidenceItem::tamper_with_content_for_test(std::size_t offset,
                                                std::uint8_t value) {
  if (offset < content_.size()) content_[offset] = value;
}

void EvidenceItem::tamper_with_chain_for_test(std::size_t record,
                                              std::string custodian) {
  if (record < chain_.size()) chain_[record].custodian = std::move(custodian);
}

}  // namespace lexfor::evidence
