// EvidenceLocker: the case-level registry of evidence items.
//
// A locker owns the case HMAC key, issues evidence ids, and exposes the
// custody operations (transfer, examination notes, imaging) so callers
// never touch raw keys.  `audit()` re-verifies every item's content
// hash and custody chain — the check a court would demand before
// admitting the items.

#pragma once

#include <string>
#include <vector>

#include "evidence/custody.h"
#include "util/ids.h"
#include "util/status.h"

namespace lexfor::evidence {

class EvidenceLocker {
 public:
  explicit EvidenceLocker(Bytes case_key) : case_key_(std::move(case_key)) {}

  // Seizes content into the locker; returns the new item's id.
  EvidenceId deposit(std::string description, Bytes content,
                     std::string custodian, SimTime at);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const EvidenceItem* find(EvidenceId id) const;

  // Items whose content hash (hex) matches.
  [[nodiscard]] std::vector<EvidenceId> find_by_hash(
      const std::string& sha256_hex) const;

  // Custody operations; each appends to the item's MAC chain.
  Status transfer(EvidenceId id, std::string to_custodian, std::string note,
                  SimTime at);
  Status record_examination(EvidenceId id, std::string examiner,
                            std::string note, SimTime at);

  // Forensic duplicate registered as a new item; returns its id.
  Result<EvidenceId> image(EvidenceId id, std::string custodian, SimTime at);

  struct AuditEntry {
    EvidenceId id;
    Status status;
  };
  // Verifies every item; ok() entries are court-ready.
  [[nodiscard]] std::vector<AuditEntry> audit() const;
  // True if every item verifies.
  [[nodiscard]] bool all_verify() const;

  // TESTING ONLY: direct mutable access to simulate tampering.
  EvidenceItem* mutable_item_for_test(EvidenceId id);

 private:
  Bytes case_key_;
  std::vector<EvidenceItem> items_;
  IdGenerator<EvidenceId> ids_{1};
};

}  // namespace lexfor::evidence
