// Evidence items and tamper-evident chain of custody.
//
// Computer forensics is "the science to collect, preserve, analyze and
// present evidence from computers that are sufficiently reliable to
// stand up in court" (§I).  Reliability here means integrity: every
// evidence item carries a SHA-256 of its content at seizure, and every
// custody transfer appends a record whose HMAC chains over the previous
// record — any later alteration of content or history is detectable.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::evidence {

enum class CustodyAction {
  kSeized,
  kImaged,
  kTransferred,
  kExamined,
  kReturned,
};

[[nodiscard]] constexpr std::string_view to_string(CustodyAction a) noexcept {
  switch (a) {
    case CustodyAction::kSeized: return "seized";
    case CustodyAction::kImaged: return "imaged";
    case CustodyAction::kTransferred: return "transferred";
    case CustodyAction::kExamined: return "examined";
    case CustodyAction::kReturned: return "returned";
  }
  return "?";
}

struct CustodyRecord {
  CustodyAction action;
  std::string custodian;   // who holds/handled the item
  std::string note;
  SimTime at;
  // HMAC over (previous record's mac || serialized fields || content hash),
  // keyed by the case key.  Forms the tamper-evident chain.
  crypto::Sha256::Digest mac{};
};

class EvidenceItem {
 public:
  // Seizes `content` as a new evidence item.  The content hash is fixed
  // at this moment; the first custody record is the seizure.
  EvidenceItem(EvidenceId id, std::string description, Bytes content,
               std::string custodian, SimTime at, const Bytes& case_key);

  [[nodiscard]] EvidenceId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }
  [[nodiscard]] const Bytes& content() const noexcept { return content_; }
  [[nodiscard]] const crypto::Sha256::Digest& content_hash() const noexcept {
    return content_hash_;
  }
  [[nodiscard]] std::string content_hash_hex() const;
  [[nodiscard]] const std::vector<CustodyRecord>& chain() const noexcept {
    return chain_;
  }

  // Appends a custody record, extending the MAC chain.
  void record(CustodyAction action, std::string custodian, std::string note,
              SimTime at, const Bytes& case_key);

  // Verifies (1) content still matches the seizure hash and (2) every
  // custody record's MAC chains correctly under the case key.  Returns
  // the first problem found.
  [[nodiscard]] Status verify(const Bytes& case_key) const;

  // A forensic duplicate: same content, fresh id, custody chain starting
  // with an kImaged record referencing the original.  The original also
  // gets an kImaged entry (United States v. Hay: imaging for off-site
  // examination).
  [[nodiscard]] EvidenceItem image(EvidenceId new_id, std::string custodian,
                                   SimTime at, const Bytes& case_key);

  // TESTING ONLY: corrupts content in place to exercise verify().
  void tamper_with_content_for_test(std::size_t offset, std::uint8_t value);
  void tamper_with_chain_for_test(std::size_t record, std::string custodian);

 private:
  [[nodiscard]] crypto::Sha256::Digest compute_mac(
      const CustodyRecord& rec, const crypto::Sha256::Digest& prev,
      const Bytes& case_key) const;

  EvidenceId id_;
  std::string description_;
  Bytes content_;
  crypto::Sha256::Digest content_hash_;
  std::vector<CustodyRecord> chain_;
};

// A write blocker wraps evidence content for examination: reads succeed,
// and the number of blocked write attempts is counted (a real-world
// acquisition-integrity control).
class WriteBlocker {
 public:
  explicit WriteBlocker(const EvidenceItem& item) : item_(item) {}

  [[nodiscard]] std::uint8_t read(std::size_t offset) const {
    return item_.content().at(offset);
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return item_.content().size();
  }
  // Any write attempt is refused and counted.
  Status write(std::size_t, std::uint8_t) {
    ++blocked_writes_;
    return PermissionDenied("write blocker: evidence media is read-only");
  }
  [[nodiscard]] std::uint64_t blocked_writes() const noexcept {
    return blocked_writes_;
  }

 private:
  const EvidenceItem& item_;
  std::uint64_t blocked_writes_ = 0;
};

}  // namespace lexfor::evidence
