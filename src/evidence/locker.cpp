#include "evidence/locker.h"

#include <algorithm>

#include "obs/obs.h"

namespace lexfor::evidence {

EvidenceId EvidenceLocker::deposit(std::string description, Bytes content,
                                   std::string custodian, SimTime at) {
  const EvidenceId id = ids_.next();
  LEXFOR_OBS_COUNTER_ADD("evidence.deposits", 1);
  items_.emplace_back(id, std::move(description), std::move(content),
                      std::move(custodian), at, case_key_);
  return id;
}

const EvidenceItem* EvidenceLocker::find(EvidenceId id) const {
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [&](const EvidenceItem& e) { return e.id() == id; });
  return it == items_.end() ? nullptr : &*it;
}

EvidenceItem* EvidenceLocker::mutable_item_for_test(EvidenceId id) {
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [&](const EvidenceItem& e) { return e.id() == id; });
  return it == items_.end() ? nullptr : &*it;
}

std::vector<EvidenceId> EvidenceLocker::find_by_hash(
    const std::string& sha256_hex) const {
  std::vector<EvidenceId> out;
  for (const auto& e : items_) {
    if (e.content_hash_hex() == sha256_hex) out.push_back(e.id());
  }
  return out;
}

Status EvidenceLocker::transfer(EvidenceId id, std::string to_custodian,
                                std::string note, SimTime at) {
  auto* item = mutable_item_for_test(id);
  if (item == nullptr) return NotFound("locker: unknown evidence item");
  item->record(CustodyAction::kTransferred, std::move(to_custodian),
               std::move(note), at, case_key_);
  return Status::Ok();
}

Status EvidenceLocker::record_examination(EvidenceId id, std::string examiner,
                                          std::string note, SimTime at) {
  auto* item = mutable_item_for_test(id);
  if (item == nullptr) return NotFound("locker: unknown evidence item");
  item->record(CustodyAction::kExamined, std::move(examiner), std::move(note),
               at, case_key_);
  return Status::Ok();
}

Result<EvidenceId> EvidenceLocker::image(EvidenceId id, std::string custodian,
                                         SimTime at) {
  auto* item = mutable_item_for_test(id);
  if (item == nullptr) return NotFound("locker: unknown evidence item");
  const EvidenceId copy_id = ids_.next();
  items_.push_back(item->image(copy_id, std::move(custodian), at, case_key_));
  return copy_id;
}

std::vector<EvidenceLocker::AuditEntry> EvidenceLocker::audit() const {
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "evidence", "audit",
                  "items=" + std::to_string(items_.size()),
                  obs::no_sim_time());
  std::vector<AuditEntry> out;
  out.reserve(items_.size());
  for (const auto& e : items_) {
    out.push_back(AuditEntry{e.id(), e.verify(case_key_)});
    if (!out.back().status.ok()) {
      LEXFOR_OBS_COUNTER_ADD("evidence.audit_failures", 1);
      LEXFOR_OBS_EVENT(obs::Level::kAudit, "evidence", "audit_failure",
                       "item=" + std::to_string(e.id().value()),
                       obs::no_sim_time());
    }
  }
  return out;
}

bool EvidenceLocker::all_verify() const {
  return std::all_of(items_.begin(), items_.end(), [&](const EvidenceItem& e) {
    return e.verify(case_key_).ok();
  });
}

}  // namespace lexfor::evidence
