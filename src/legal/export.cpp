#include "legal/export.h"

#include <sstream>

namespace lexfor::legal {
namespace {

void append_string_array(std::ostringstream& os,
                         const std::vector<std::string>& items) {
  os << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) os << ',';
    os << json_escape(items[i]);
  }
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string to_json(const Determination& d) {
  std::ostringstream os;
  os << '{';
  os << "\"scenario\":" << json_escape(d.scenario_name) << ',';
  os << "\"needs_process\":" << (d.needs_process ? "true" : "false") << ',';
  os << "\"required_process\":"
     << json_escape(std::string(to_string(d.required_process))) << ',';
  os << "\"required_proof\":"
     << json_escape(std::string(to_string(d.required_proof))) << ',';
  os << "\"statutes\":[";
  for (std::size_t i = 0; i < d.governing_statutes.size(); ++i) {
    if (i != 0) os << ',';
    os << json_escape(std::string(to_string(d.governing_statutes[i])));
  }
  os << "],\"exceptions\":[";
  for (std::size_t i = 0; i < d.exceptions_applied.size(); ++i) {
    if (i != 0) os << ',';
    os << json_escape(std::string(to_string(d.exceptions_applied[i])));
  }
  os << "],\"rationale\":";
  append_string_array(os, d.rationale);
  os << ",\"citations\":";
  append_string_array(os, d.citations);
  os << '}';
  return os.str();
}

std::string to_json(const SuppressionReport& r) {
  std::ostringstream os;
  os << "{\"suppressed\":" << r.suppressed_count
     << ",\"admissible\":" << r.admissible_count << ",\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    if (i != 0) os << ',';
    const auto& f = r.findings[i];
    os << "{\"id\":" << f.id.value()
       << ",\"suppressed\":" << (f.suppressed ? "true" : "false")
       << ",\"reason\":" << json_escape(f.reason) << '}';
  }
  os << "]}";
  return os.str();
}

std::string to_json(const FeasibilityReport& r) {
  std::ostringstream os;
  os << "{\"technique\":" << json_escape(r.technique_name)
     << ",\"feasibility\":"
     << json_escape(std::string(to_string(r.feasibility)))
     << ",\"bottleneck\":"
     << json_escape(std::string(to_string(r.bottleneck)))
     << ",\"bottleneck_step\":" << json_escape(r.bottleneck_step)
     << ",\"steps\":[";
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"name\":" << json_escape(r.steps[i].step_name)
       << ",\"determination\":" << to_json(r.steps[i].determination) << '}';
  }
  os << "],\"recommendations\":";
  append_string_array(os, r.recommendations);
  os << '}';
  return os.str();
}

}  // namespace lexfor::legal
