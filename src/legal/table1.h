// Table 1 of the paper: twenty digital crime scenes and the paper's
// answer to "does law enforcement need a warrant / court order /
// subpoena?".  Each row is encoded as a Scenario plus the expected
// verdict, so the compliance engine's output can be checked against the
// paper's published table row by row (this is the paper's evaluation).

#pragma once

#include <array>
#include <string>

#include "legal/scenario.h"

namespace lexfor::legal::table1 {

struct Scene {
  int number = 0;                 // 1-20, as printed in the table
  Scenario scenario;
  bool paper_says_need = false;   // the table's verdict
  bool author_judgment = false;   // rows marked (*) in the paper
  std::string summary;            // condensed row text
};

inline constexpr int kSceneCount = 20;

// Returns the encoded scene for `number` in [1, 20].  Throws
// std::out_of_range otherwise.
[[nodiscard]] const Scene& scene(int number);

// All twenty scenes in table order.
[[nodiscard]] const std::array<Scene, kSceneCount>& all_scenes();

}  // namespace lexfor::legal::table1
