// Statute applicability analysis (§II.B, §III.A.3).
//
// Determines which of the paper's four bodies of law reach a given
// acquisition.  The division of labor the paper states: "the Stored
// Communications Act regulates the data stored on the Internet while
// Pen/Trap Act and Wiretap Act regulate the real-time data transmission
// over the Internet outside a person's computer"; the Fourth Amendment
// governs the rest (and overlaps where REP exists).

#pragma once

#include <string>
#include <vector>

#include "legal/privacy.h"
#include "legal/scenario.h"
#include "legal/types.h"

namespace lexfor::legal {

struct StatuteAnalysis {
  bool wiretap_act = false;
  bool pen_trap = false;
  bool sca = false;
  bool fourth_amendment = false;
  std::vector<std::string> notes;
  std::vector<std::string> citations;

  [[nodiscard]] std::vector<Statute> applicable() const {
    std::vector<Statute> out;
    if (fourth_amendment) out.push_back(Statute::kFourthAmendment);
    if (wiretap_act) out.push_back(Statute::kWiretapAct);
    if (sca) out.push_back(Statute::kStoredCommunicationsAct);
    if (pen_trap) out.push_back(Statute::kPenTrapStatute);
    return out;
  }
};

// Maps the scenario onto the statutes, given the REP finding (the Fourth
// Amendment only applies where REP survives and the actor is governmental).
[[nodiscard]] StatuteAnalysis analyze_statutes(const Scenario& s,
                                               const RepAnalysis& rep);

// SCA compelled-disclosure ladder (18 U.S.C. § 2703): the minimum process
// needed to compel each data kind from a covered provider.
[[nodiscard]] ProcessKind sca_required_process(DataKind kind) noexcept;

}  // namespace lexfor::legal
