// Jurisdictions and consent regimes.
//
// The paper flags a trap for tool designers (§III.B.c.vi, citing the
// California recording law): federal law and most states validate an
// interception when ONE party consents, but a minority of states
// require ALL parties to consent.  A technique premised on one-party
// consent is unusable in those states.  Jurisdictions are data; the
// exception catalogue consults the scenario's jurisdiction.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lexfor::legal {

enum class ConsentRegime {
  kOneParty,  // one party's consent validates the interception
  kAllParty,  // every party must consent
};

struct Jurisdiction {
  std::string code;  // "US", "CA", "MA", ...
  std::string name;
  ConsentRegime regime = ConsentRegime::kOneParty;
};

// Federal baseline plus the classic all-party states and a sample of
// one-party states.
[[nodiscard]] const std::vector<Jurisdiction>& jurisdictions();

// Lookup by code; nullopt when unknown.
[[nodiscard]] std::optional<Jurisdiction> find_jurisdiction(
    std::string_view code);

// The regime for a code; unknown codes fall back to the federal
// one-party baseline.
[[nodiscard]] ConsentRegime consent_regime(std::string_view code);

[[nodiscard]] constexpr std::string_view to_string(ConsentRegime r) noexcept {
  switch (r) {
    case ConsentRegime::kOneParty: return "one-party consent";
    case ConsentRegime::kAllParty: return "all-party consent";
  }
  return "?";
}

}  // namespace lexfor::legal
