// Research feasibility analysis — §IV of the paper, mechanized.
//
// The paper's method for evaluating a proposed forensic technique:
// decompose it into acquisition steps, determine each step's legal
// posture, and classify the whole technique as
//   - workable WITHOUT warrant/court order/subpoena (§IV.A pattern),
//   - workable WITH process (§IV.B pattern) — with the bottleneck
//     instrument identified, or
//   - impractical (a step needs a Title III order, the instrument the
//     paper treats as effectively out of reach for routine use).
// The analyzer also emits the paper's §III design guidance when a
// redesign could lower the bottleneck (content -> non-content, etc.).

#pragma once

#include <string>
#include <vector>

#include "legal/engine.h"
#include "legal/scenario.h"

namespace lexfor::legal {

// One acquisition step of a proposed technique.
struct TechniqueStep {
  std::string name;
  Scenario scenario;
};

// A proposed forensic technique.
struct Technique {
  std::string name;
  std::vector<TechniqueStep> steps;
};

enum class Feasibility {
  kWorkableWithoutProcess,  // every step is process-free
  kWorkableWithProcess,     // bottleneck at subpoena..search warrant
  kImpractical,             // some step needs a Title III order
};

[[nodiscard]] constexpr std::string_view to_string(Feasibility f) noexcept {
  switch (f) {
    case Feasibility::kWorkableWithoutProcess:
      return "workable without warrant/court order/subpoena";
    case Feasibility::kWorkableWithProcess:
      return "workable with warrant/court order/subpoena";
    case Feasibility::kImpractical:
      return "impractical for routine law-enforcement use";
  }
  return "?";
}

struct StepAnalysis {
  std::string step_name;
  Determination determination;
};

struct FeasibilityReport {
  std::string technique_name;
  Feasibility feasibility = Feasibility::kWorkableWithoutProcess;
  // The strictest instrument any step requires.
  ProcessKind bottleneck = ProcessKind::kNone;
  std::string bottleneck_step;
  std::vector<StepAnalysis> steps;
  // §III-style redesign guidance, when applicable.
  std::vector<std::string> recommendations;

  [[nodiscard]] std::string summary() const;
};

class FeasibilityAnalyzer {
 public:
  explicit FeasibilityAnalyzer(ComplianceEngine engine = {})
      : engine_(engine) {}

  [[nodiscard]] FeasibilityReport analyze(const Technique& technique) const;

 private:
  ComplianceEngine engine_;
};

}  // namespace lexfor::legal
