// Warrant-exception catalogue (§III.B of the paper).
//
// Each exception, when applicable, excuses some or all of the process
// requirements the statutes would otherwise impose.  An ExceptionFinding
// records which regimes it excuses so the engine can compose them.

#pragma once

#include <string>
#include <vector>

#include "legal/privacy.h"
#include "legal/scenario.h"
#include "legal/statutes.h"
#include "legal/types.h"

namespace lexfor::legal {

struct ExceptionFinding {
  ExceptionKind kind;
  // Which regimes this exception excuses.
  bool excuses_fourth = false;
  bool excuses_wiretap = false;
  bool excuses_pen_trap = false;
  bool excuses_sca = false;
  std::string rationale;
  std::vector<std::string> citations;

  [[nodiscard]] bool excuses_everything() const noexcept {
    return excuses_fourth && excuses_wiretap && excuses_pen_trap && excuses_sca;
  }
};

// Evaluates the full §III.B catalogue against the scenario.
[[nodiscard]] std::vector<ExceptionFinding> applicable_exceptions(
    const Scenario& s, const RepAnalysis& rep, const StatuteAnalysis& statutes);

}  // namespace lexfor::legal
