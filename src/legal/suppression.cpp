#include "legal/suppression.h"

#include <sstream>

#include "obs/obs.h"

namespace lexfor::legal {

Status ProvenanceGraph::add(AcquisitionRecord record) {
  if (!record.id.valid()) {
    return InvalidArgument("acquisition record must carry a valid id");
  }
  if (index_.count(record.id) != 0) {
    std::ostringstream os;
    os << "evidence " << record.id << " already recorded";
    return AlreadyExists(os.str());
  }
  for (const auto parent : record.derived_from) {
    if (index_.count(parent) == 0) {
      std::ostringstream os;
      os << "evidence " << record.id << " derives from unknown item "
         << parent << "; parents must be recorded first";
      return NotFound(os.str());
    }
  }
  index_.emplace(record.id, records_.size());
  records_.push_back(std::move(record));
  return Status::Ok();
}

const AcquisitionRecord* ProvenanceGraph::find(EvidenceId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second];
}

namespace {

// Shared core: `movant` empty means "every violation counts" (the
// single-defendant analysis); otherwise only violations of the movant's
// own rights are poisonous (standing doctrine).
SuppressionReport analyze_impl(const ProvenanceGraph& graph,
                               const std::string* movant) {
  // Taint propagation is the legally-decisive closure; one span per run.
  LEXFOR_OBS_COUNTER_ADD("legal.suppression_analyses", 1);
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "suppression", "analyze",
                  "records=" + std::to_string(graph.size()) +
                      (movant == nullptr ? std::string()
                                         : ",movant=" + *movant),
                  obs::no_sim_time());
  SuppressionReport report;
  // Records are already topologically ordered (parents precede children).
  std::unordered_map<EvidenceId, bool> tainted;

  for (const auto& rec : graph.records()) {
    SuppressionFinding f;
    f.id = rec.id;

    const bool has_standing =
        movant == nullptr || rec.aggrieved_party.empty() ||
        rec.aggrieved_party == *movant;

    if (!rec.directly_lawful() && !has_standing) {
      // Unlawful as to a third party: this movant cannot suppress it.
      f.suppressed = false;
      f.reason =
          "acquired unlawfully, but the violation invaded '" +
          rec.aggrieved_party +
          "''s rights, not the movant's; no standing to suppress";
      tainted[rec.id] = false;
      ++report.admissible_count;
      report.findings.push_back(std::move(f));
      continue;
    }

    if (!rec.directly_lawful()) {
      f.suppressed = true;
      std::ostringstream os;
      os << "acquired with " << to_string(rec.held) << " where "
         << to_string(rec.required)
         << " was required; suppressed under the exclusionary rule";
      f.reason = os.str();
    } else if (!rec.derived_from.empty()) {
      bool all_parents_tainted = true;
      bool any_parent_tainted = false;
      for (const auto p : rec.derived_from) {
        const bool pt = tainted[p];
        all_parents_tainted = all_parents_tainted && pt;
        any_parent_tainted = any_parent_tainted || pt;
      }
      if (all_parents_tainted && !rec.inevitable_discovery) {
        f.suppressed = true;
        f.reason =
            "every source of this evidence is tainted; suppressed as fruit "
            "of the poisonous tree";
      } else if (any_parent_tainted && !all_parents_tainted) {
        f.suppressed = false;
        f.reason =
            "derived in part from tainted evidence but supported by an "
            "independent lawful source; admissible";
      } else if (all_parents_tainted && rec.inevitable_discovery) {
        f.suppressed = false;
        f.reason =
            "sources tainted but the item would inevitably have been "
            "discovered lawfully; admissible";
      } else {
        f.suppressed = false;
        f.reason = "lawfully acquired from lawful sources; admissible";
      }
    } else {
      f.suppressed = false;
      f.reason = rec.good_faith && !satisfies(rec.held, rec.required)
                     ? "defective process but good-faith reliance; admissible"
                     : "lawfully acquired; admissible";
    }

    tainted[rec.id] = f.suppressed;
    if (f.suppressed) {
      ++report.suppressed_count;
      LEXFOR_OBS_COUNTER_ADD("legal.evidence_suppressed", 1);
      LEXFOR_OBS_EVENT(obs::Level::kAudit, "suppression", "suppressed",
                       "evidence=" + std::to_string(rec.id.value()),
                       obs::no_sim_time());
    } else {
      ++report.admissible_count;
      LEXFOR_OBS_COUNTER_ADD("legal.evidence_admissible", 1);
    }
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace

SuppressionReport analyze_suppression(const ProvenanceGraph& graph) {
  return analyze_impl(graph, nullptr);
}

SuppressionReport analyze_suppression_for(const ProvenanceGraph& graph,
                                          const std::string& movant) {
  return analyze_impl(graph, &movant);
}

}  // namespace lexfor::legal
