// The scenario library as one declarative descriptor table.
//
// Every canonical scene the library ships is one row of the
// LEXFOR_SCENE_LIST X-macro: accessor symbol, the minimum process the
// doctrine fixes for it (kNone == the paper's "No need" column), and a
// one-line doctrinal summary.  Everything else is GENERATED from the
// table:
//
//   - the accessor declarations in this header,
//   - the SceneDescriptor registry (kSceneTable / scenes() / find_scene),
//   - the per-scene engine and lint expectation tests
//     (tests/check/scene_table_test.cpp iterates the descriptors),
//   - the differential-checker corpus (src/check walks every row), and
//   - the README doctrine table (scene_table_markdown(), printed by
//     examples/scene_table).
//
// Compile-time consistency is enforced below with static_asserts: the
// descriptor count matches the X-macro row count, accessor names are
// unique, and every expected process is a valid ProcessKind member.
// Adding a scene is ONE new row plus one builder definition in
// scenario_library.cpp; forgetting either is a compile error, and a
// wrong expected verdict fails the generated tests and the
// check_fuzz differential sweep.

#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <string>
#include <string_view>

#include "legal/scenario.h"
#include "legal/types.h"

// LEXFOR_SCENE_LIST(X): X(symbol, expected_process, "doctrinal summary")
//
// expected_process is the unqualified ProcessKind enumerator; kNone
// means the paper's "No need" verdict.  Rows are grouped by doctrine
// area; order is the order of the generated README table.
#define LEXFOR_SCENE_LIST(X)                                                   \
  /* --- Fourth Amendment heartland (§II.C) ---------------------------- */    \
  X(thermal_imaging_of_home, kSearchWarrant,                                   \
    "Kyllo: thermal imager aimed at a home, tech not in general public use")   \
  X(thermal_imaging_public_tech, kNone,                                        \
    "same imager once in general public use; ordinary exposure governs")       \
  X(curbside_garbage_pull, kNone,                                              \
    "garbage at the curb is knowingly exposed / abandoned to the public")      \
  X(planted_tracker_on_vehicle, kSearchWarrant,                                \
    "planted GPS tracker invades a possessory interest (post-Jones)")          \
  X(repair_shop_discovery, kNone,                                              \
    "private repair technician finds contraband: private search")              \
  X(plain_view_during_lawful_search, kNone,                                    \
    "incriminating file observed in plain view during a lawful search")        \
  X(parolee_laptop_search, kNone,                                              \
    "parole search on reasonable suspicion (Knights)")                         \
  X(hotel_abandoned_device, kNone,                                             \
    "device abandoned after checkout; manager's authority to consent")         \
  X(p2p_shared_folder_download, kNone,                                         \
    "files in a P2P shared folder lost their expectation of privacy")          \
  X(seized_sender_email_after_delivery, kNone,                                 \
    "sender's REP terminates on delivery to the recipient")                    \
  X(exigent_phone_seizure_destruction_risk, kNone,                             \
    "imminent destruction of evidence excuses the warrant (Mincey)")           \
  X(remining_lawfully_imaged_disk, kNone,                                      \
    "re-analysis of a lawfully acquired image is not a new search")            \
  /* --- Wiretap Act & consent regimes (§III.B.c) ---------------------- */    \
  X(wiretap_no_consent_federal, kWiretapOrder,                                 \
    "real-time content interception with no consent: Title III super-warrant") \
  X(undercover_chat_recording, kNone,                                          \
    "one-party consent under the federal baseline (2511(2)(c))")               \
  X(undercover_chat_recording_all_party_state, kWiretapOrder,                  \
    "the same recording where state law requires all-party consent")           \
  X(recorded_call_two_party_state_md, kWiretapOrder,                           \
    "one-party-consent recording on a Maryland wire: consent fails")           \
  X(recorded_call_all_party_consent_wa, kNone,                                 \
    "every party consents, so even Washington's all-party rule is met")        \
  X(consent_revoked_mid_call, kWiretapOrder,                                   \
    "consent revoked before the interception: the excuse lapses")              \
  X(public_chatroom_observation, kNone,                                        \
    "chatroom configured readily accessible to the public (2511(2)(g)(i))")    \
  /* --- Pen/Trap & FISA-adjacent postures (§II.B) --------------------- */    \
  X(pen_register_dialed_digits, kCourtOrder,                                   \
    "real-time dialed digits / addressing: the Pen/Trap ladder")               \
  X(fisa_style_foreign_intel_tap, kWiretapOrder,                               \
    "FISA-adjacent domestic wire tap modeled conservatively under Title III")  \
  X(national_security_emergency_pen_trap, kNone,                               \
    "3125(a) emergency pen/trap: install first, order within 48 hours")        \
  X(isp_tap_with_consent_federal, kNone,                                       \
    "consensual non-content tap at the suspect's ISP (federal baseline)")      \
  X(isp_tap_cross_border_all_party, kCourtOrder,                               \
    "the identical tap across an all-party-consent border")                    \
  /* --- SCA ladder & MLAT chains (§III.A) ----------------------------- */    \
  X(cloud_storage_subscriber_subpoena, kSubpoena,                              \
    "basic subscriber records at an RCS: 2703(c)(2) subpoena floor")           \
  X(cloud_storage_content_demand, kSearchWarrant,                              \
    "the stored files themselves: top rung of the 2703 ladder")                \
  X(mlat_stored_content_foreign_rcs, kSearchWarrant,                           \
    "MLAT chain for content held abroad still lands on the warrant rung")      \
  X(mlat_subscriber_identity_request, kSubpoena,                               \
    "treaty request for subscriber identity: subpoena-grade showing")          \
  X(mlat_transactional_log_chain, kCourtOrder,                                 \
    "cross-border session logs: 2703(d) articulable-facts order")              \
  X(historical_cell_site_dump, kCourtOrder,                                    \
    "historical cell-site records as 2703(d) material (paper-era posture)")    \
  X(unopened_mail_on_university_server, kSearchWarrant,                        \
    "unretrieved mail is in ECS electronic storage even on a non-public host") \
  X(opened_mail_on_university_server, kSearchWarrant,                          \
    "opened mail drops out of the SCA; the Fourth Amendment still governs")    \
  /* --- Cloud multi-tenant & provider-consent splits ------------------ */    \
  X(cloud_provider_abuse_scan_disclosure, kNone,                               \
    "provider scans its own service and voluntarily discloses the fruits")     \
  X(govt_directed_admin_search, kSearchWarrant,                                \
    "the same admin acting at the government's behest is a state actor")       \
  X(cloud_tenant_shared_workspace_consent, kNone,                              \
    "co-tenant consents to the shared workspace (Matlock)")                    \
  X(cloud_tenant_passworded_sibling_space, kSearchWarrant,                     \
    "co-tenant consent stops at another user's password-protected space")      \
  X(cloud_policy_banner_monitoring, kNone,                                     \
    "terms-of-service banner eliminates REP and authorizes monitoring")        \
  X(employer_search_of_workplace_pc, kNone,                                    \
    "private employer consents to a workplace-system search (Ziegler)")        \
  /* --- IoT & vehicle telemetry --------------------------------------- */    \
  X(vehicle_telematics_live_pings, kCourtOrder,                                \
    "live non-content location pings from a car: Pen/Trap territory")          \
  X(vehicle_edr_postcrash_download, kSearchWarrant,                            \
    "event-data-recorder download is a closed-container device search")        \
  X(infotainment_owner_consent_extraction, kNone,                              \
    "vehicle owner consents to extraction of the infotainment unit")           \
  X(smart_speaker_stored_audio_demand, kSearchWarrant,                         \
    "stored smart-speaker audio at the provider: content at the top rung")     \
  X(smart_meter_interval_records, kCourtOrder,                                 \
    "interval usage records are transactional, not content")                   \
  X(iot_open_broadcast_telemetry, kNone,                                       \
    "telemetry broadcast in the clear is readily accessible to the public")    \
  /* --- Victim-side monitoring (§III.B.c / 2511(2)(i)) ---------------- */    \
  X(honeypot_on_victim_server, kNone,                                          \
    "victim authorizes monitoring of the trespasser on the victim's system")   \
  X(counterhack_into_attacker_box, kSearchWarrant,                             \
    "victim consent never reaches into the attacker's own machine")

namespace lexfor::legal::library {

// ------------------------------------------------------------------ accessors
// Each scene is still an ordinary function returning a ready-made
// Scenario, so call sites keep reading
// `library::thermal_imaging_of_home()`.  Builder bodies live in
// scenario_library.cpp.
#define LEXFOR_SCENE_DECLARE(sym, process, doc) [[nodiscard]] Scenario sym();
LEXFOR_SCENE_LIST(LEXFOR_SCENE_DECLARE)
#undef LEXFOR_SCENE_DECLARE

// ------------------------------------------------------------------ registry
struct SceneDescriptor {
  std::string_view id;           // accessor symbol, e.g. "curbside_garbage_pull"
  Scenario (*build)();           // the builder itself
  ProcessKind expected_process;  // kNone == the paper's "No need" verdict
  std::string_view summary;      // one-line doctrinal rationale

  [[nodiscard]] constexpr bool expects_process() const noexcept {
    return expected_process != ProcessKind::kNone;
  }
  [[nodiscard]] constexpr std::string_view expected_verdict() const noexcept {
    return expects_process() ? "Need" : "No need";
  }
};

inline constexpr SceneDescriptor kSceneTable[] = {
#define LEXFOR_SCENE_DESCRIPTOR(sym, process, doc) \
  SceneDescriptor{#sym, &sym, ProcessKind::process, doc},
    LEXFOR_SCENE_LIST(LEXFOR_SCENE_DESCRIPTOR)
#undef LEXFOR_SCENE_DESCRIPTOR
};

inline constexpr std::size_t kSceneCount = std::size(kSceneTable);

// ------------------------------------------- compile-time consistency checks
namespace detail {

// Row count of the X-macro list, counted independently of the array, so
// a descriptor expansion bug cannot silently drop a scene.
inline constexpr std::size_t kSceneListLength = 0
#define LEXFOR_SCENE_PLUS_ONE(sym, process, doc) +1
    LEXFOR_SCENE_LIST(LEXFOR_SCENE_PLUS_ONE)
#undef LEXFOR_SCENE_PLUS_ONE
    ;

constexpr bool scene_ids_unique() noexcept {
  for (std::size_t i = 0; i < kSceneCount; ++i) {
    for (std::size_t j = i + 1; j < kSceneCount; ++j) {
      if (kSceneTable[i].id == kSceneTable[j].id) return false;
    }
  }
  return true;
}

constexpr bool scene_processes_valid() noexcept {
  for (const auto& d : kSceneTable) {
    // A descriptor must carry a real ProcessKind member: to_string
    // returns "?" only for out-of-range values.
    if (to_string(d.expected_process) == std::string_view("?")) return false;
    // The builder pointer is not compared here: the X-macro expansion
    // always takes &sym (so it cannot be null), and GCC rejects
    // function-pointer comparisons in constant expressions when
    // instrumented with -fsanitize.  Builders are exercised at runtime
    // by SceneTableTest.BuildersProduceTheirOwnDescriptorNames.
    if (d.id.empty() || d.summary.empty()) return false;
  }
  return true;
}

}  // namespace detail

static_assert(kSceneCount == detail::kSceneListLength,
              "scene descriptor table out of sync with LEXFOR_SCENE_LIST");
static_assert(kSceneCount >= 40,
              "the scenario library must keep covering the doctrine space "
              "(>= 40 scenes; see ROADMAP 'Scenario library at scale')");
static_assert(detail::scene_ids_unique(),
              "scene accessor names must be unique");
static_assert(detail::scene_processes_valid(),
              "every scene needs a valid expected ProcessKind and a "
              "non-empty id/summary");

// All registered scenes, in table (== README) order.
[[nodiscard]] constexpr std::span<const SceneDescriptor> scenes() noexcept {
  return {kSceneTable, kSceneCount};
}

// Looks a scene up by accessor symbol; nullptr when unknown.
[[nodiscard]] const SceneDescriptor* find_scene(std::string_view id) noexcept;

// The README doctrine table, generated from the descriptors: one
// markdown row per scene with its expected verdict / minimum process and
// summary.  examples/scene_table prints this.
[[nodiscard]] std::string scene_table_markdown();

}  // namespace lexfor::legal::library
