// Legal process instruments and their lifecycle (§III.A.2).
//
// A LegalProcess is an issued warrant / court order / subpoena with a
// scope (what data, where), an issue time and an expiry.  The paper's
// §III.A.2 cautions drive the API: searches must stay within scope
// ("The Usage Scope of Techniques"), warrants expire ("The Time
// Restriction"), and multiple locations need multiple warrants.

#pragma once

#include <string>
#include <vector>

#include "legal/types.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::legal {

// What an instrument authorizes.  Empty vectors mean "unrestricted" on
// that axis (e.g. a wiretap order covers all data kinds on the wire).
struct ProcessScope {
  std::vector<DataKind> data_kinds;   // which kinds may be acquired
  std::vector<std::string> locations; // places/systems covered
  std::string crime;                  // particularity: the crime searched for

  [[nodiscard]] bool covers_kind(DataKind k) const noexcept {
    if (data_kinds.empty()) return true;
    for (const auto d : data_kinds) {
      if (d == k) return true;
    }
    return false;
  }
  [[nodiscard]] bool covers_location(const std::string& loc) const {
    if (locations.empty()) return true;
    for (const auto& l : locations) {
      if (l == loc) return true;
    }
    return false;
  }
};

// An issued instrument.
struct LegalProcess {
  ProcessId id;
  ProcessKind kind = ProcessKind::kNone;
  ProcessScope scope;
  SimTime issued_at;
  SimDuration validity = SimDuration::from_sec(14 * 24 * 3600.0);  // Rule 41: 14 days
  StandardOfProof supported_by = StandardOfProof::kNone;

  [[nodiscard]] bool expired_at(SimTime now) const noexcept {
    return now > issued_at + validity;
  }

  // Whether this instrument authorizes acquiring `kind` at `location` at
  // time `now`.  Returns an explanatory error when it does not.
  [[nodiscard]] Status authorizes(DataKind kind, const std::string& location,
                                  SimTime now) const;
};

// Validates an application: the asserted standard of proof must meet the
// requirement for the requested instrument, and a warrant application
// must particularly describe the place and things to be seized.
[[nodiscard]] Status validate_application(ProcessKind requested,
                                          StandardOfProof supported,
                                          const ProcessScope& scope);

}  // namespace lexfor::legal
