// BatchEvaluator: cached, parallel compliance evaluation at scale.
//
// ComplianceEngine::evaluate is a pure, deterministic function of the
// Scenario, which makes verdicts ideal cache and fan-out material: a
// service answering Table-1-style questions for millions of users keeps
// re-deriving the same few thousand distinct determinations.  This
// module adds the three pieces the serial engine lacks:
//
//   1. fingerprint(): a canonical, versioned serialization of every
//      Scenario fact hashed with crypto::Sha256 — two scenarios share a
//      fingerprint iff the engine is guaranteed to produce the same
//      Determination for both.
//   2. VerdictCache: a sharded, mutex-striped LRU keyed on the
//      fingerprint (util::ShardedLruCache).  A process-wide instance
//      (shared_verdict_cache()) is reused by Investigation and the plan
//      linter so repeated lint/eval cycles stop re-deriving verdicts.
//   3. BatchEvaluator: fans a batch of scenario queries across a
//      util::ThreadPool and merges Determinations in input order,
//      bit-identical to evaluating serially.
//
// Obs wiring: legal.batch.cache_hits / legal.batch.cache_misses
// counters, legal.batch.eval_latency_us histogram (miss path), and the
// legal.batch.pool_queue_depth gauge.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "legal/engine.h"
#include "legal/scenario.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace lexfor::legal {

// A scenario's identity under the doctrine: SHA-256 over the canonical
// field serialization (see canonical_serialization in batch.cpp; bump
// kFingerprintVersion whenever a field is added or re-encoded).
using ScenarioFingerprint = crypto::Sha256::Digest;

inline constexpr std::uint8_t kFingerprintVersion = 1;

[[nodiscard]] ScenarioFingerprint fingerprint(const Scenario& s);
[[nodiscard]] std::string fingerprint_hex(const Scenario& s);

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(
      const ScenarioFingerprint& fp) const noexcept {
    // The digest is already uniform; its first 8 bytes are the hash.
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(h); ++i) {
      h |= static_cast<std::size_t>(fp[i]) << (8 * i);
    }
    return h;
  }
};

using VerdictCache =
    util::ShardedLruCache<ScenarioFingerprint, Determination, FingerprintHash>;

// The process-wide verdict cache (leaked on purpose, like
// obs::metrics()): every BatchEvaluator constructed with
// BatchOptions::use_shared_cache sees the same entries, so a verdict
// derived during plan linting is a hit when the runtime acquires.
[[nodiscard]] VerdictCache& shared_verdict_cache();

struct BatchOptions {
  // 0 = std::thread::hardware_concurrency().  The pool is created
  // lazily on the first evaluate_batch call, so single-query users
  // never pay for worker threads.
  unsigned threads = 0;
  // Entry budget / stripe count for a private cache (ignored when
  // use_shared_cache is set).
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  // Use the process-wide cache instead of a private one.
  bool use_shared_cache = true;
};

class BatchEvaluator {
 public:
  BatchEvaluator() : BatchEvaluator(BatchOptions{}) {}
  explicit BatchEvaluator(BatchOptions options);

  // Single evaluation through the verdict cache.  Thread-safe.
  [[nodiscard]] Determination evaluate(const Scenario& s) const;

  // Evaluates the whole batch, fanning chunks across the pool.
  // Results are returned in input order and are bit-identical to
  // calling ComplianceEngine::evaluate on each element serially (the
  // engine is pure, so per-element results are order- and
  // thread-independent; the cache stores and returns full value
  // copies).
  [[nodiscard]] std::vector<Determination> evaluate_batch(
      const std::vector<Scenario>& batch) const;

  [[nodiscard]] const ComplianceEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] VerdictCache& cache() const noexcept { return *cache_; }

 private:
  [[nodiscard]] util::ThreadPool& pool() const;

  ComplianceEngine engine_;
  BatchOptions options_;
  std::unique_ptr<VerdictCache> owned_cache_;  // null when shared
  VerdictCache* cache_ = nullptr;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace lexfor::legal
