// A library of canonical investigative postures beyond Table 1.
//
// Each scene is a ready-made Scenario for a situation the paper (or the
// doctrine it surveys) discusses, so tools and tests can reference
// "thermal imaging of a home" rather than re-deriving fifteen flags.
//
// The library is table-driven: legal/scene_table.h holds the single
// LEXFOR_SCENE_LIST descriptor table (accessor, expected verdict,
// doctrinal summary) from which the accessor declarations, the
// SceneDescriptor registry, the generated engine/lint expectation
// tests, the differential-checker corpus, and the README doctrine
// table all derive.  This header remains the stable include for
// callers; add scenes by adding a row there plus a builder in
// scenario_library.cpp.

#pragma once

#include "legal/scene_table.h"  // IWYU pragma: export
