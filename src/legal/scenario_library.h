// A library of canonical investigative postures beyond Table 1.
//
// Each returns a ready-made Scenario for a situation the paper (or the
// doctrine it surveys) discusses, so tools and tests can reference
// "thermal imaging of a home" rather than re-deriving fifteen flags.
// Where the doctrine fixes the answer, the expected verdict is noted in
// the comment and asserted by the scenario-library tests.

#pragma once

#include "legal/scenario.h"

namespace lexfor::legal::library {

// Kyllo v. United States: thermal imager aimed at a home, technology not
// in general public use.  => Need (search warrant).
[[nodiscard]] Scenario thermal_imaging_of_home();

// Same device once it is in general public use: the Kyllo carve-out
// lapses and ordinary exposure analysis governs.  => No need.
[[nodiscard]] Scenario thermal_imaging_public_tech();

// Garbage left at the curb: knowingly exposed / abandoned to any member
// of the public.  => No need.
[[nodiscard]] Scenario curbside_garbage_pull();

// An undercover officer chats with the suspect online and records the
// conversation (one-party consent, federal baseline).  => No need.
[[nodiscard]] Scenario undercover_chat_recording();

// The same recording in an all-party-consent state.  => Need.
[[nodiscard]] Scenario undercover_chat_recording_all_party_state();

// Real-time GPS-style location tracking of a suspect's vehicle via a
// planted device: treated as non-content but the installation invades a
// possessory interest; we model the conservative (post-Jones) answer.
// => Need.
[[nodiscard]] Scenario planted_tracker_on_vehicle();

// A private repair technician finds contraband while servicing a
// computer and reports it.  => No need (private search).
[[nodiscard]] Scenario repair_shop_discovery();

// Officers execute a valid warrant for drug records and stumble on
// child-pornography images in plain view during the lawful examination.
// => No need for the observed item (plain view); a new warrant is
// prudent for the follow-on search.
[[nodiscard]] Scenario plain_view_during_lawful_search();

// Parole officer searches a parolee's laptop on reasonable suspicion.
// => No need.
[[nodiscard]] Scenario parolee_laptop_search();

// A hotel manager consents to a search of a guest's room safe contents
// after checkout (abandonment / third-party authority).  => No need.
[[nodiscard]] Scenario hotel_abandoned_device();

// Basic subscriber records (name, billing address) for a cloud-storage
// account, demanded from the remote computing service holding them —
// § 2703(c)(2) territory.  => Need (subpoena suffices).
[[nodiscard]] Scenario cloud_storage_subscriber_subpoena();

// The same provider, but the files themselves: stored CONTENT at an RCS
// climbs the SCA ladder to its top rung.  => Need (search warrant).
[[nodiscard]] Scenario cloud_storage_content_demand();

// A §IV.B-style tap at the suspect's ISP: real-time, non-content rate
// collection, with the cooperating endpoint's one-party consent, under
// the federal baseline.  => No need (consent excuses the pen/trap
// order).
[[nodiscard]] Scenario isp_tap_with_consent_federal();

// The identical tap where the wire sits in an all-party-consent state:
// one party's consent no longer counts, so the Pen/Trap ladder governs
// again.  => Need (court order).
[[nodiscard]] Scenario isp_tap_cross_border_all_party();

}  // namespace lexfor::legal::library
