// GrantedAuthority: the bridge from legal process to technical capability.
//
// Acquisition tools (capture devices, provider-disclosure requests, disk
// examiners) take a GrantedAuthority and are *constructed* to be unable
// to exceed it — the paper's recommendation that researchers design
// tools whose reach matches what the law allows.  kNone authority still
// permits actions that need no process (public observation).

#pragma once

#include <optional>
#include <string>

#include "legal/process.h"
#include "legal/types.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace lexfor::legal {

class GrantedAuthority {
 public:
  // No process: only process-free acquisitions are permitted.
  GrantedAuthority() = default;

  explicit GrantedAuthority(LegalProcess process)
      : process_(std::move(process)) {}

  [[nodiscard]] ProcessKind kind() const noexcept {
    return process_ ? process_->kind : ProcessKind::kNone;
  }
  [[nodiscard]] const std::optional<LegalProcess>& process() const noexcept {
    return process_;
  }

  // Whether this authority permits acquiring `kind` at `location` at
  // `now`, when the compliance engine says `required` is the minimum
  // process for the acquisition.  An acquisition needing no process is
  // always permitted; otherwise the held instrument must satisfy the
  // requirement AND cover the data kind, location and time.
  [[nodiscard]] Status permits(ProcessKind required, DataKind kind,
                               const std::string& location, SimTime now) const {
    if (required == ProcessKind::kNone) return Status::Ok();
    if (!process_) {
      return PermissionDenied("acquisition requires " +
                              std::string(to_string(required)) +
                              " but no process is held");
    }
    if (!satisfies(process_->kind, required)) {
      return PermissionDenied("held " + std::string(to_string(process_->kind)) +
                              " does not satisfy required " +
                              std::string(to_string(required)));
    }
    return process_->authorizes(kind, location, now);
  }

 private:
  std::optional<LegalProcess> process_;
};

}  // namespace lexfor::legal
