// Reasonable-expectation-of-privacy (REP) analysis (§II.C of the paper).
//
// REP is the hinge of the Fourth Amendment inquiry: a person deserves
// privacy protection when (1) they actually expect privacy and (2) that
// expectation is one society recognizes as reasonable (Katz).  This
// module evaluates the exposure facts of a Scenario against the doctrine
// the paper surveys and returns the finding with reasons and citations.

#pragma once

#include <string>
#include <vector>

#include "legal/scenario.h"

namespace lexfor::legal {

struct RepAnalysis {
  // Does the person whose data is acquired retain a reasonable
  // expectation of privacy in it?
  bool has_rep = true;
  // Human-readable reasons, in the order rules fired.
  std::vector<std::string> reasons;
  // Supporting case ids (resolvable via find_case()).
  std::vector<std::string> citations;
};

// Applies the paper's REP doctrine to the scenario's exposure facts.
[[nodiscard]] RepAnalysis analyze_rep(const Scenario& s);

}  // namespace lexfor::legal
