#include "legal/caselaw.h"

#include <algorithm>

namespace lexfor::legal {

const std::vector<CaseLaw>& case_law_database() {
  static const std::vector<CaseLaw> kDb = {
      {"katz-1967", "Katz v. United States", "389 U.S. 347", 1967,
       "A person in a closed phone booth has a reasonable expectation of "
       "privacy; the Fourth Amendment protects people, not places.",
       {Doctrine::kReasonableExpectationOfPrivacy}},
      {"kyllo-2001", "Kyllo v. United States", "533 U.S. 27", 2001,
       "Using sense-enhancing technology not in general public use to "
       "learn details of a home's interior is a search requiring a warrant.",
       {Doctrine::kSenseEnhancingTech,
        Doctrine::kReasonableExpectationOfPrivacy}},
      {"smith-1979", "Smith v. Maryland", "442 U.S. 735", 1979,
       "No expectation of privacy in dialed numbers voluntarily conveyed "
       "to the phone company (third-party doctrine).",
       {Doctrine::kThirdPartyDoctrine, Doctrine::kPenTrapNonContent}},
      {"hoffa-1966", "Hoffa v. United States", "385 U.S. 293", 1966,
       "Information knowingly revealed to another carries no Fourth "
       "Amendment protection against that person's disclosure.",
       {Doctrine::kThirdPartyDoctrine, Doctrine::kPublicExposure}},
      {"couch-1973", "Couch v. United States", "409 U.S. 322", 1973,
       "Records relinquished to a third party (accountant) lose the "
       "owner's expectation of privacy.",
       {Doctrine::kThirdPartyDoctrine}},
      {"wilson-2006", "Wilson v. Moreau", "440 F. Supp. 2d 81", 2006,
       "No expectation of privacy in documents left on a public library "
       "computer.",
       {Doctrine::kPublicExposure}},
      {"gines-perez-2002", "United States v. Gines-Perez",
       "214 F. Supp. 2d 205", 2002,
       "No reasonable expectation of privacy in information placed on a "
       "publicly accessible Internet site.",
       {Doctrine::kPublicExposure}},
      {"butler-2001", "United States v. Butler", "151 F. Supp. 2d 82", 2001,
       "No expectation of privacy on a shared university computer.",
       {Doctrine::kPublicExposure}},
      {"king-2007", "United States v. King", "509 F.3d 1338", 2007,
       "Files exposed to a network via a shared folder carry no "
       "reasonable expectation of privacy.",
       {Doctrine::kSharedFolder, Doctrine::kP2pNoPrivacy}},
      {"barrows-2007", "United States v. Barrows", "481 F.3d 1246", 2007,
       "Networking a personal computer for shared use forfeits privacy in "
       "the shared material.",
       {Doctrine::kSharedFolder}},
      {"gorshkov-2001", "United States v. Gorshkov", "2001 WL 1024026", 2001,
       "Keystrokes typed on another's system exposed to that system's "
       "owner; no expectation of privacy against the owner's capture.",
       {Doctrine::kPublicExposure}},
      {"stults-2007", "United States v. Stults", "2007 WL 4284721", 2007,
       "No expectation of privacy in files shared over P2P networks.",
       {Doctrine::kP2pNoPrivacy}},
      {"villarreal-1992", "United States v. Villarreal", "963 F.2d 770", 1992,
       "Senders retain an expectation of privacy in sealed containers in "
       "transit; examination mid-transmission requires a warrant.",
       {Doctrine::kDeliveryTerminatesPrivacy,
        Doctrine::kReasonableExpectationOfPrivacy}},
      {"young-2003", "United States v. Young", "350 F.3d 1302", 2003,
       "Carrier terms of service can defeat the sender's expectation of "
       "privacy vis-a-vis the carrier.",
       {Doctrine::kThirdPartyDoctrine}},
      {"king-1995", "United States v. King", "55 F.3d 1193", 1995,
       "A sender's expectation of privacy in a letter terminates upon "
       "delivery to the recipient.",
       {Doctrine::kDeliveryTerminatesPrivacy}},
      {"meriwether-1990", "United States v. Meriwether", "917 F.2d 955", 1990,
       "A sender assumes the risk that a transmitted message is delivered "
       "to whoever controls the receiving device.",
       {Doctrine::kDeliveryTerminatesPrivacy}},
      {"charbonneau-1997", "United States v. Charbonneau",
       "979 F. Supp. 1177", 1997,
       "Statements in an online chat room are made at the risk of being "
       "relayed; diminished expectation of privacy.",
       {Doctrine::kPublicExposure, Doctrine::kDeliveryTerminatesPrivacy}},
      {"horowitz-1986", "United States v. Horowitz", "806 F.2d 1222", 1986,
       "Relinquishing control of data to a third party defeats the "
       "expectation of privacy.",
       {Doctrine::kThirdPartyDoctrine}},
      {"guest-2001", "Guest v. Leis", "255 F.3d 325", 2001,
       "No privacy interest in subscriber information communicated to a "
       "bulletin-board operator.",
       {Doctrine::kThirdPartyDoctrine, Doctrine::kClosedContainer}},
      {"runyan-2001", "United States v. Runyan", "275 F.3d 449", 2001,
       "Disks are closed containers; a private search of some files does "
       "not authorize police to search the rest.",
       {Doctrine::kClosedContainer, Doctrine::kPrivateSearch}},
      {"beusch-1979", "United States v. Beusch", "596 F.2d 871", 1979,
       "Seizure of intermingled documents is permissible within warrant "
       "scope; containers treated as units.",
       {Doctrine::kClosedContainer, Doctrine::kSearchScope}},
      {"walser-2001", "United States v. Walser", "275 F.3d 981", 2001,
       "Agents must obtain additional authority when a search reveals "
       "evidence outside the warrant's scope.",
       {Doctrine::kClosedContainer, Doctrine::kSearchScope,
        Doctrine::kPlainView}},
      {"gates-1983", "Illinois v. Gates", "462 U.S. 213", 1983,
       "Probable cause is a fair probability, judged on the totality of "
       "the circumstances.",
       {Doctrine::kProbableCauseIp, Doctrine::kProbableCauseAccount}},
      {"perez-2007", "United States v. Perez", "484 F.3d 735", 2007,
       "An IP address linked to criminal traffic supports probable cause "
       "to search the subscriber's premises, despite possible Wi-Fi use "
       "by others.",
       {Doctrine::kProbableCauseIp}},
      {"grant-2000", "United States v. Grant", "218 F.3d 72", 2000,
       "IP-based identification plus subscriber records supports a "
       "residential search warrant.",
       {Doctrine::kProbableCauseIp}},
      {"carter-2008", "United States v. Carter", "549 F. Supp. 2d 1257", 2008,
       "Open wireless networks do not defeat probable cause based on an "
       "IP address.",
       {Doctrine::kProbableCauseIp}},
      {"gourde-2006", "United States v. Gourde", "440 F.3d 1065", 2006,
       "Paid membership in a child-pornography site supports probable "
       "cause for a home-computer search.",
       {Doctrine::kProbableCauseAccount}},
      {"coreas-2005", "United States v. Coreas", "419 F.3d 151", 2005,
       "Mere responsive click joining an e-group, without more, is "
       "insufficient for probable cause.",
       {Doctrine::kMembershipInsufficient}},
      {"terry-2008", "United States v. Terry", "522 F.3d 645", 2008,
       "Account information tied to criminal use supports probable cause.",
       {Doctrine::kProbableCauseAccount}},
      {"irving-2006", "United States v. Irving", "452 F.3d 110", 2006,
       "Child-exploitation evidence years old is not stale for a warrant; "
       "collectors retain material.",
       {Doctrine::kStaleness}},
      {"paull-2009", "United States v. Paull", "551 F.3d 516", 2009,
       "Thirteen-month-old information not stale in child-pornography "
       "cases.",
       {Doctrine::kStaleness}},
      {"zimmerman-2002", "United States v. Zimmerman", "277 F.3d 426", 2002,
       "Single deleted item of adult material six months earlier was "
       "stale; staleness can defeat probable cause.",
       {Doctrine::kStaleness}},
      {"cox-2002", "United States v. Cox", "190 F. Supp. 2d 330", 2002,
       "Recovered deleted files support probable cause despite the "
       "passage of time.",
       {Doctrine::kStaleness}},
      {"mincey-1978", "Mincey v. Arizona", "437 U.S. 385", 1978,
       "Warrantless search justified only by a genuine exigency; no "
       "general murder-scene exception.",
       {Doctrine::kExigentCircumstances}},
      {"romero-garcia-1997", "United States v. Romero-Garcia",
       "991 F. Supp. 1223", 1997,
       "Imminent destruction of electronic evidence can justify a "
       "warrantless seizure.",
       {Doctrine::kExigentCircumstances}},
      {"young-2006", "United States v. Young", "2006 WL 1302667", 2006,
       "Volatile device state (incoming messages, battery) weighed in the "
       "exigency analysis.",
       {Doctrine::kExigentCircumstances}},
      {"matlock-1974", "United States v. Matlock", "415 U.S. 164", 1974,
       "A co-occupant with common authority may consent to a search of "
       "shared premises.",
       {Doctrine::kConsent}},
      {"trulock-2001", "Trulock v. Freeh", "275 F.3d 391", 2001,
       "A co-user may consent to shared files but not to another user's "
       "password-protected files.",
       {Doctrine::kConsent, Doctrine::kScopeOfConsent}},
      {"ziegler-2007", "United States v. Ziegler", "474 F.3d 1184", 2007,
       "A private employer may consent to a search of a workplace "
       "computer it owns.",
       {Doctrine::kConsent, Doctrine::kWorkplaceSearch}},
      {"oconnor-1987", "O'Connor v. Ortega", "480 U.S. 709", 1987,
       "Government-employer workplace searches are judged by "
       "reasonableness, not warrant, when work-related.",
       {Doctrine::kWorkplaceSearch}},
      {"cassiere-1993", "United States v. Cassiere", "4 F.3d 1006", 1993,
       "One-party consent validates interception unless done for a "
       "criminal or tortious purpose.",
       {Doctrine::kConsent, Doctrine::kWiretapIntercept}},
      {"megahed-2009", "United States v. Megahed", "2009 WL 722481", 2009,
       "Revoking consent does not reach a mirror image already lawfully "
       "made.",
       {Doctrine::kScopeOfConsent}},
      {"knights-2001", "United States v. Knights", "534 U.S. 112", 2001,
       "Probationers may be searched on reasonable suspicion under a "
       "probation condition.",
       {Doctrine::kProbationParole}},
      {"villanueva-1998", "United States v. Villanueva",
       "32 F. Supp. 2d 635", 1998,
       "Victims may authorize monitoring of intruders on their systems "
       "(computer-trespasser principle).",
       {Doctrine::kConsent, Doctrine::kWiretapIntercept}},
      {"steve-jackson-1994", "Steve Jackson Games v. U.S. Secret Service",
       "36 F.3d 457", 1994,
       "Acquisition of stored email is not an 'interception' under Title "
       "III; interception must be contemporaneous with transmission.",
       {Doctrine::kWiretapIntercept}},
      {"konop-2002", "Konop v. Hawaiian Airlines", "302 F.3d 868", 2002,
       "Viewing a stored website is not a Title III interception; "
       "contemporaneity is required.",
       {Doctrine::kWiretapIntercept}},
      {"steiger-2003", "United States v. Steiger", "318 F.3d 1039", 2003,
       "A hacker's retrieval of stored files is not an interception under "
       "the Wiretap Act.",
       {Doctrine::kWiretapIntercept, Doctrine::kPrivateSearch}},
      {"forrester-2008", "United States v. Forrester", "512 F.3d 500", 2008,
       "IP addresses and to/from email addresses are non-content; their "
       "collection is analogous to a pen register.",
       {Doctrine::kPenTrapNonContent}},
      {"andersen-1998", "Andersen Consulting v. UOP", "991 F. Supp. 1041",
       1998,
       "A service not offered to the public is not an RCS under the SCA.",
       {Doctrine::kScaProviderClass}},
      {"kaufman-2006", "Kaufman v. Nest Seekers", "2006 WL 2807177", 2006,
       "The host of an electronic bulletin board is an ECS provider.",
       {Doctrine::kScaProviderClass}},
      {"crist-2008", "United States v. Crist", "627 F. Supp. 2d 575", 2008,
       "Running a hash over a drive is a Fourth Amendment search; lawful "
       "custody of hardware does not authorize examining its contents.",
       {Doctrine::kHashSearchIsSearch, Doctrine::kClosedContainer}},
      {"sloane-2008", "State v. Sloane", "939 A.2d 796", 2008,
       "Analysis of data already lawfully in government hands is not a "
       "new search.",
       {Doctrine::kMiningLawfulData}},
      {"adjani-2006", "United States v. Adjani", "452 F.3d 1140", 2006,
       "Warrants should describe records by their relation to the crime; "
       "searches must stay within that scope.",
       {Doctrine::kSearchScope}},
      {"kow-1995", "United States v. Kow", "58 F.3d 423", 1995,
       "A warrant lacking particularity as to the crime is overbroad.",
       {Doctrine::kSearchScope}},
      {"hill-2006", "United States v. Hill", "459 F.3d 966", 2006,
       "Off-site examination of imaged media is permitted where on-site "
       "search is impractical, with justification.",
       {Doctrine::kOffsiteImaging}},
      {"tamura-1982", "United States v. Tamura", "694 F.2d 591", 1982,
       "Wholesale removal of intermingled documents requires "
       "justification and later return of irrelevant material.",
       {Doctrine::kOffsiteImaging, Doctrine::kSearchScope}},
      {"hay-2000", "United States v. Hay", "231 F.3d 630", 2000,
       "Imaging an entire computer system for off-site review is "
       "reasonable where justified.",
       {Doctrine::kOffsiteImaging}},
      {"long-2005", "United States v. Long", "425 F.3d 482", 2005,
       "The Fourth Amendment does not dictate the forensic technique used "
       "to examine data responsive to a warrant.",
       {Doctrine::kSearchScope}},
      {"silverthorne-1920", "Silverthorne Lumber Co. v. United States",
       "251 U.S. 385", 1920,
       "Knowledge gained by the government's own wrong cannot be used by "
       "it; the origin of the fruit-of-the-poisonous-tree doctrine.",
       {Doctrine::kExclusionaryRule}},
      {"wong-sun-1963", "Wong Sun v. United States", "371 U.S. 471", 1963,
       "Evidence derived from an unlawful search is suppressed as fruit "
       "of the poisonous tree unless obtained by means sufficiently "
       "distinguishable from the illegality.",
       {Doctrine::kExclusionaryRule}},
      {"nix-1984", "Nix v. Williams", "467 U.S. 431", 1984,
       "Unlawfully derived evidence is admissible if it inevitably would "
       "have been discovered by lawful means.",
       {Doctrine::kExclusionaryRule}},
      {"murray-1988", "Murray v. United States", "487 U.S. 533", 1988,
       "Evidence also obtained through a source genuinely independent of "
       "the illegality is admissible (independent-source doctrine).",
       {Doctrine::kExclusionaryRule}},
      {"rakas-1978", "Rakas v. Illinois", "439 U.S. 128", 1978,
       "Only a person whose own Fourth Amendment rights were violated may "
       "move to suppress; violations of third parties' rights confer no "
       "standing.",
       {Doctrine::kSuppressionStanding}},
      {"sgro-1932", "Sgro v. United States", "287 U.S. 206", 1932,
       "A search warrant must be executed within the time fixed; an "
       "expired warrant is a nullity and cannot be revived.",
       {Doctrine::kWarrantExpiry}},
      {"franks-1978", "Franks v. Delaware", "438 U.S. 154", 1978,
       "A warrant falls if its supporting affidavit cannot sustain the "
       "required showing once defective material is set aside.",
       {Doctrine::kAffidavitSufficiency}},
  };
  return kDb;
}

std::optional<CaseLaw> find_case(std::string_view id) {
  const auto& db = case_law_database();
  const auto it = std::find_if(db.begin(), db.end(),
                               [&](const CaseLaw& c) { return c.id == id; });
  if (it == db.end()) return std::nullopt;
  return *it;
}

std::vector<CaseLaw> cases_for(Doctrine doctrine) {
  std::vector<CaseLaw> out;
  for (const auto& c : case_law_database()) {
    if (std::find(c.doctrines.begin(), c.doctrines.end(), doctrine) !=
        c.doctrines.end()) {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_citation(const CaseLaw& c) {
  return c.name + ", " + c.citation + " (" + std::to_string(c.year) + ")";
}

}  // namespace lexfor::legal
