#include "legal/analysis.h"

#include <algorithm>
#include <sstream>

namespace lexfor::legal {

FeasibilityReport FeasibilityAnalyzer::analyze(const Technique& technique) const {
  FeasibilityReport report;
  report.technique_name = technique.name;

  for (const auto& step : technique.steps) {
    StepAnalysis sa;
    sa.step_name = step.name;
    sa.determination = engine_.evaluate(step.scenario);
    if (static_cast<int>(sa.determination.required_process) >
        static_cast<int>(report.bottleneck)) {
      report.bottleneck = sa.determination.required_process;
      report.bottleneck_step = step.name;
    }
    report.steps.push_back(std::move(sa));
  }

  if (report.bottleneck == ProcessKind::kNone) {
    report.feasibility = Feasibility::kWorkableWithoutProcess;
    report.recommendations.emplace_back(
        "every step is process-free: the technique can be used ahead of a "
        "warrant/court order/subpoena, the posture the paper recommends "
        "researchers target");
  } else if (report.bottleneck == ProcessKind::kWiretapOrder) {
    report.feasibility = Feasibility::kImpractical;
  } else {
    report.feasibility = Feasibility::kWorkableWithProcess;
  }

  // Redesign guidance (§III / §IV of the paper).
  for (const auto& sa : report.steps) {
    const auto& d = sa.determination;
    if (d.required_process == ProcessKind::kNone) continue;

    const bool wiretap_bound =
        std::find(d.governing_statutes.begin(), d.governing_statutes.end(),
                  Statute::kWiretapAct) != d.governing_statutes.end();
    if (wiretap_bound) {
      std::ostringstream os;
      os << "step '" << sa.step_name
         << "' intercepts content in real time (Title III); redesign to "
            "collect only addressing/size information and the requirement "
            "falls to a pen/trap court order (the paper's IV.B strategy)";
      report.recommendations.push_back(os.str());
    }
    if (d.required_process == ProcessKind::kSearchWarrant &&
        !wiretap_bound) {
      std::ostringstream os;
      os << "step '" << sa.step_name
         << "' needs a search warrant; gather the probable cause for it "
            "with earlier process-free steps (IP-address and account "
            "identification are the paper's canonical showings)";
      report.recommendations.push_back(os.str());
    }
    if (d.required_process == ProcessKind::kCourtOrder ||
        d.required_process == ProcessKind::kSubpoena) {
      std::ostringstream os;
      os << "step '" << sa.step_name << "' needs a "
         << to_string(d.required_process)
         << ", obtainable on "
         << to_string(required_standard(d.required_process))
         << "; pair it with process-free steps that supply that showing";
      report.recommendations.push_back(os.str());
    }
  }
  return report;
}

std::string FeasibilityReport::summary() const {
  std::ostringstream os;
  os << "Technique: " << technique_name << '\n';
  os << "Feasibility: " << to_string(feasibility) << '\n';
  if (bottleneck != ProcessKind::kNone) {
    os << "Bottleneck: " << to_string(bottleneck) << " (step '"
       << bottleneck_step << "')\n";
  }
  os << "Steps:\n";
  for (const auto& sa : steps) {
    os << "  - " << sa.step_name << ": " << sa.determination.verdict();
    if (sa.determination.needs_process) {
      os << " [" << to_string(sa.determination.required_process) << "]";
    }
    os << '\n';
  }
  if (!recommendations.empty()) {
    os << "Guidance:\n";
    for (const auto& r : recommendations) os << "  * " << r << '\n';
  }
  return os.str();
}

}  // namespace lexfor::legal
