#include "legal/table1.h"

#include <stdexcept>

namespace lexfor::legal::table1 {
namespace {

std::array<Scene, kSceneCount> build_scenes() {
  std::array<Scene, kSceneCount> t{};

  // 1. Campus IT logs wired traffic HEADERS on its own cables.
  t[0] = {1,
          Scenario{}
              .named("campus IT logs wired traffic headers on its own network")
              .by(ActorKind::kProviderAdmin)
              .acquiring(DataKind::kAddressing)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime)
              .provider_protecting(),
          /*need=*/false, /*starred=*/false,
          "IT on campus logs all wired traffic headers within campus"};

  // 2. Campus IT logs FULL traffic; campus policy eliminates REP.
  t[1] = {2,
          Scenario{}
              .named("campus IT logs full wired traffic under campus policy")
              .by(ActorKind::kProviderAdmin)
              .acquiring(DataKind::kContent)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime)
              .with_consent(ConsentKind::kPolicyBanner)
              .provider_protecting(),
          false, false,
          "IT on campus logs headers and content; policy eliminates REP"};

  // 3. LE outside the house logs UNENCRYPTED wireless HEADERS.
  //    (WarDriving; addressing broadcast in the clear is treated as
  //    readily accessible — the paper's starred judgment.)
  t[2] = {3,
          Scenario{}
              .named("LE logs unencrypted wireless headers outside a house")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kAddressing)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime)
              .publicly_accessible(),
          false, true,
          "LE outside a house logs unencrypted wireless traffic headers"};

  // 4. LE logs unencrypted wireless CONTENT (Google Street View).  The
  //    paper judges payload NOT readily accessible, so Title III bites.
  t[3] = {4,
          Scenario{}
              .named("LE logs unencrypted wireless payload outside a house")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kContent)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime),
          true, true,
          "LE outside a house logs unencrypted wireless traffic incl. payload"};

  // 5. Encrypted wireless HEADERS (addressing still observable).
  t[4] = {5,
          Scenario{}
              .named("LE logs encrypted wireless headers outside a house")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kAddressing)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime)
              .with_encryption()
              .publicly_accessible(),
          false, true,
          "LE outside a house logs encrypted wireless traffic headers"};

  // 6. Encrypted wireless CONTENT.
  t[5] = {6,
          Scenario{}
              .named("LE logs encrypted wireless payload outside a house")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kContent)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime)
              .with_encryption(),
          true, true,
          "LE outside a house logs encrypted wireless traffic incl. payload"};

  // 7. LE logs packet HEADERS in a public wired network (at the ISP).
  t[6] = {7,
          Scenario{}
              .named("LE logs packet headers in a public wired network")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kAddressing)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime),
          true, false,
          "LE logs headers and sizes in public wired internet (pen/trap)"};

  // 8. LE logs ENTIRE packets in a public wired network.
  t[7] = {8,
          Scenario{}
              .named("LE logs entire packets in a public wired network")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kContent)
              .located(DataState::kInTransit)
              .when(Timing::kRealTime),
          true, false,
          "LE logs headers and payload in public wired internet (wiretap)"};

  // 9. Normal P2P software; public info shown by the software.
  t[8] = {9,
          Scenario{}
              .named("LE collects public info from normal P2P software")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kContent)
              .located(DataState::kPublicVenue)
              .when(Timing::kStored)
              .exposed_publicly()
              .shared(),
          false, false,
          "LE collects user names / shared file names in a P2P network"};

  // 10. Anonymous P2P software; public info shown by the software (§IV.A).
  t[9] = {10,
          Scenario{}
              .named("LE collects public info from anonymous P2P software")
              .by(ActorKind::kLawEnforcement)
              .acquiring(DataKind::kContent)
              .located(DataState::kPublicVenue)
              .when(Timing::kStored)
              .exposed_publicly()
              .shared(),
          false, false,
          "LE collects public info shown by anonymous P2P software"};

  // 11. Public website content.
  t[10] = {11,
           Scenario{}
               .named("LE collects public website content")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kPublicVenue)
               .when(Timing::kStored)
               .exposed_publicly()
               .publicly_accessible(),
           false, false,
           "LE collects content of a website anybody can access"};

  // 12. Investigate a Tor hidden web server ("the hidden server is as an
  //     ISP"): compelled access to stored content at a provider.
  t[11] = {12,
           Scenario{}
               .named("LE investigates a Tor hidden web server (as an ISP)")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kStoredAtProvider)
               .when(Timing::kStored)
               .at_provider(ProviderClass::kEcs),
           true, false,
           "LE investigates a hidden web server at Tor (server as ISP)"};

  // 13. LE builds a Tor node and investigates traffic on it (not a
  //     private search): real-time interception of relayed content.
  t[12] = {13,
           Scenario{}
               .named("LE operates a Tor node and intercepts relayed traffic")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kInTransit)
               .when(Timing::kRealTime)
               .with_encryption(),
           true, false,
           "LE builds a Tor node and investigates on it; not a private search"};

  // 14. LE monitors an Anonymizer server (server as an ISP).
  t[13] = {14,
           Scenario{}
               .named("LE monitors an Anonymizer server (as an ISP)")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kInTransit)
               .when(Timing::kRealTime)
               .at_provider(ProviderClass::kEcs),
           true, false,
           "LE monitors the Anonymizer; the server is as an ISP"};

  // 15. Victim consents; LE monitors the victim's computer, including
  //     the attacker's activity (computer-trespasser exception).
  t[14] = {15,
           Scenario{}
               .named("LE monitors attack activity on the victim's system "
                      "with victim consent")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kInTransit)
               .when(Timing::kRealTime)
               .with_consent(ConsentKind::kVictimOfAttack)
               .on_victim_system(),
           false, false,
           "victim consents to LE monitoring attacker activity on victim's "
           "computer"};

  // 16. As 15, but LE reaches into the ATTACKER's computer.
  t[15] = {16,
           Scenario{}
               .named("LE reaches into the attacker's own computer")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kOnDevice)
               .when(Timing::kStored)
               .with_consent(ConsentKind::kVictimOfAttack)
               .on_victim_system()
               .reaching_attacker(),
           true, false,
           "with victim's consent LE tries to monitor/collect data in the "
           "attacker's computer"};

  // 17. Public chat room content (open to anybody).
  t[16] = {17,
           Scenario{}
               .named("LE collects content in a public chat room")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kPublicVenue)
               .when(Timing::kRealTime)
               .exposed_publicly()
               .publicly_accessible(),
           false, false,
           "LE collects content in a public chat room anyone can access"};

  // 18. Hash search of a lawfully-obtained hard drive (U.S. v. Crist:
  //     hashing the drive is itself a search).
  t[17] = {18,
           Scenario{}
               .named("LE hash-searches an entire lawfully-obtained drive")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kOnDevice)
               .when(Timing::kStored)
               .device_in_custody(),
           true, false,
           "LE runs a hash over an entire legally obtained hard drive to "
           "find a particular file"};

  // 19. Mining a lawfully-obtained database (State v. Sloane).
  t[18] = {19,
           Scenario{}
               .named("LE mines a lawfully-obtained database")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kOnDevice)
               .when(Timing::kStored)
               .device_in_custody()
               .previously_acquired(),
           false, false,
           "LE legally obtained a database and mines it for hidden "
           "information"};

  // 20. Post-arrest use of the defendant's credentials for remote data.
  t[19] = {20,
           Scenario{}
               .named("LE uses an arrestee's credentials to fetch remote data")
               .by(ActorKind::kLawEnforcement)
               .acquiring(DataKind::kContent)
               .located(DataState::kStoredAtProvider)
               .when(Timing::kStored)
               .at_provider(ProviderClass::kNotAProvider)
               .arrested()
               .with_credentials(),
           false, false,
           "after arrest LE uses the defendant's username/password to "
           "obtain data on a remote computer"};

  return t;
}

}  // namespace

const std::array<Scene, kSceneCount>& all_scenes() {
  static const std::array<Scene, kSceneCount> kScenes = build_scenes();
  return kScenes;
}

const Scene& scene(int number) {
  if (number < 1 || number > kSceneCount) {
    throw std::out_of_range("table1::scene: number must be in [1,20]");
  }
  return all_scenes()[static_cast<std::size_t>(number - 1)];
}

}  // namespace lexfor::legal::table1
