// ComplianceEngine: the paper's doctrine as a decision procedure.
//
// evaluate() maps a Scenario to a Determination: the minimum legal
// process required (if any), the governing statutes, the exceptions that
// fired, and a citation-backed rationale — exactly the analysis the
// paper performs by hand for each row of Table 1.

#pragma once

#include <string>
#include <vector>

#include "legal/exceptions.h"
#include "legal/privacy.h"
#include "legal/scenario.h"
#include "legal/statutes.h"
#include "legal/types.h"

namespace lexfor::legal {

struct Determination {
  std::string scenario_name;

  // Headline answer: does the acquisition need legal process, and if so
  // what is the weakest instrument that suffices?
  bool needs_process = false;
  ProcessKind required_process = ProcessKind::kNone;
  StandardOfProof required_proof = StandardOfProof::kNone;

  // Supporting analysis.
  RepAnalysis rep;
  std::vector<Statute> governing_statutes;
  std::vector<ExceptionKind> exceptions_applied;
  std::vector<std::string> rationale;
  std::vector<std::string> citations;  // case ids, deduplicated, in order

  // One-line answer matching the paper's Table-1 column.
  [[nodiscard]] std::string verdict() const {
    return needs_process ? "Need" : "No need";
  }

  // Multi-line human-readable report.
  [[nodiscard]] std::string report() const;
};

class ComplianceEngine {
 public:
  ComplianceEngine() = default;

  // Evaluates the scenario under the paper's doctrine.  Pure function of
  // the scenario; deterministic.
  [[nodiscard]] Determination evaluate(const Scenario& s) const;
};

}  // namespace lexfor::legal
