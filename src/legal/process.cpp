#include "legal/process.h"

#include <sstream>

namespace lexfor::legal {

Status LegalProcess::authorizes(DataKind data_kind, const std::string& location,
                                SimTime now) const {
  if (kind == ProcessKind::kNone) {
    return PermissionDenied("no legal process held");
  }
  if (expired_at(now)) {
    std::ostringstream os;
    os << "process " << id << " expired (issued " << issued_at.seconds()
       << "s, validity " << validity.seconds() << "s, now " << now.seconds()
       << "s)";
    return FailedPrecondition(os.str());
  }
  if (!scope.covers_kind(data_kind)) {
    std::ostringstream os;
    os << "process " << id << " does not cover data kind '"
       << to_string(data_kind) << "' (scope violation, cf. United States v. "
       << "Walser: stay within the warrant)";
    return PermissionDenied(os.str());
  }
  if (!scope.covers_location(location)) {
    std::ostringstream os;
    os << "process " << id << " does not cover location '" << location
       << "'; multiple locations need multiple warrants";
    return PermissionDenied(os.str());
  }
  return Status::Ok();
}

Status validate_application(ProcessKind requested, StandardOfProof supported,
                            const ProcessScope& scope) {
  if (requested == ProcessKind::kNone) {
    return InvalidArgument("cannot apply for 'no process'");
  }
  const StandardOfProof needed = required_standard(requested);
  if (!satisfies(supported, needed)) {
    std::ostringstream os;
    os << "application for " << to_string(requested) << " requires "
       << to_string(needed) << " but only " << to_string(supported)
       << " is supported";
    return PermissionDenied(os.str());
  }
  // Particularity: warrants must describe the place to be searched and
  // the things to be seized (Fourth Amendment text; Kow: overbroad
  // warrants are invalid).
  if (requested == ProcessKind::kSearchWarrant ||
      requested == ProcessKind::kWiretapOrder) {
    if (scope.locations.empty()) {
      return InvalidArgument(
          "a warrant application must particularly describe the place to "
          "be searched");
    }
    if (scope.crime.empty()) {
      return InvalidArgument(
          "a warrant application must identify the crime to which the "
          "records relate (cf. United States v. Kow)");
    }
  }
  return Status::Ok();
}

}  // namespace lexfor::legal
