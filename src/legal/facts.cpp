#include "legal/facts.h"

#include <algorithm>

namespace lexfor::legal {
namespace {

// Base weight of each fact kind toward probable cause.  The thresholds
// below turn the sum into a standard; the specific pairings the paper
// highlights (IP + subscriber; membership + intent) are handled as
// combination bonuses so the doctrinal outcomes are exact.
double base_weight(FactKind k) noexcept {
  switch (k) {
    case FactKind::kContrabandObserved: return 3.0;
    case FactKind::kIpAddressLinked: return 1.6;
    case FactKind::kSubscriberIdentified: return 1.4;
    case FactKind::kAccountLinked: return 1.8;
    case FactKind::kIntentEvidence: return 1.4;
    case FactKind::kDeletedFilesRecovered: return 1.6;
    case FactKind::kMembershipOnly: return 1.0;
    case FactKind::kWitnessStatement: return 1.2;
    case FactKind::kPriorConviction: return 0.5;
    case FactKind::kAnonymousTip: return 0.5;
  }
  return 0.0;
}

bool has(const std::vector<Fact>& facts, FactKind k,
         CrimeCategory cat) {
  return std::any_of(facts.begin(), facts.end(), [&](const Fact& f) {
    return f.kind == k && !is_stale(f, cat);
  });
}

}  // namespace

bool is_stale(const Fact& fact, CrimeCategory category) noexcept {
  // Child-exploitation evidence is effectively never stale (Irving:
  // years-old information still supported the warrant; Paull: 13 months).
  if (category == CrimeCategory::kChildExploitation) return false;
  // Prior convictions never stale: they are historical by nature.
  if (fact.kind == FactKind::kPriorConviction) return false;
  // Everything else decays; six months is the Zimmerman-style horizon.
  return fact.age_days > 180.0;
}

ProofAssessment assess_proof(const std::vector<Fact>& facts,
                             CrimeCategory category) {
  ProofAssessment a;
  double score = 0.0;

  for (const auto& f : facts) {
    if (is_stale(f, category)) {
      a.notes.push_back("fact discounted as stale: " + f.description);
      a.citations.emplace_back("zimmerman-2002");
      continue;
    }
    score += base_weight(f.kind);
  }

  // Doctrinal combinations from §III.A.1:
  //  (a) an IP address tied to the crime plus the subscriber behind it is
  //      "typically sufficient to obtain a search warrant".
  if (has(facts, FactKind::kIpAddressLinked, category) &&
      has(facts, FactKind::kSubscriberIdentified, category)) {
    score = std::max(score, 3.0);
    a.notes.emplace_back(
        "IP address linked to the crime and resolved to a subscriber: "
        "probable cause for a premises warrant");
    a.citations.emplace_back("perez-2007");
    a.citations.emplace_back("grant-2000");
    a.citations.emplace_back("carter-2008");
  }
  //  (b) account information tied to criminal use supports probable cause.
  if (has(facts, FactKind::kAccountLinked, category) &&
      has(facts, FactKind::kIntentEvidence, category)) {
    score = std::max(score, 3.0);
    a.notes.emplace_back(
        "account linked to criminal use together with evidence of intent: "
        "probable cause");
    a.citations.emplace_back("gourde-2006");
    a.citations.emplace_back("terry-2008");
  }
  //  (c) bare membership alone is NOT reliable probable cause (Coreas):
  //      cap it below the warrant threshold when nothing else supports.
  const bool only_membership =
      has(facts, FactKind::kMembershipOnly, category) &&
      !has(facts, FactKind::kIntentEvidence, category) &&
      !has(facts, FactKind::kContrabandObserved, category) &&
      !has(facts, FactKind::kIpAddressLinked, category) &&
      !has(facts, FactKind::kAccountLinked, category);
  if (only_membership) {
    score = std::min(score, 2.4);
    a.notes.emplace_back(
        "bare membership without evidence of intent: courts are split and "
        "membership alone may not support a warrant");
    a.citations.emplace_back("coreas-2005");
  }
  //  (d) recovered deleted files are good evidence (Cox).
  if (has(facts, FactKind::kDeletedFilesRecovered, category)) {
    a.notes.emplace_back("recovered deleted files support the showing");
    a.citations.emplace_back("cox-2002");
  }

  a.score = score;
  if (score >= 3.0) {
    a.standard = StandardOfProof::kProbableCause;
  } else if (score >= 1.5) {
    a.standard = StandardOfProof::kArticulableFacts;
  } else if (score >= 0.5) {
    a.standard = StandardOfProof::kMereSuspicion;
  } else {
    a.standard = StandardOfProof::kNone;
  }
  return a;
}

}  // namespace lexfor::legal
