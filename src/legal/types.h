// Core vocabulary of the legal compliance engine.
//
// These enums encode the distinctions the paper (ICDCS'12, "When Digital
// Forensic Research Meets Laws") draws in §II-III: which legal process an
// acquisition needs, which statute governs it, what kind of data is
// touched and where that data lives.

#pragma once

#include <cstdint>
#include <string_view>

namespace lexfor::legal {

// Legal process instruments, ordered by the difficulty of obtaining them
// (§II.A: "the degree of difficulty for the above processes is in the
// ascending order").  kWiretapOrder models the Title III "super-warrant"
// needed for real-time content interception, which is stricter still
// than an ordinary search warrant.
enum class ProcessKind : std::uint8_t {
  kNone = 0,
  kSubpoena = 1,
  kCourtOrder = 2,     // 18 U.S.C. § 2703(d) order / pen-trap order
  kSearchWarrant = 3,
  kWiretapOrder = 4,   // Title III interception order
};

// Standards of proof, ordered by strength.  §II.A: "Merely a suspicion is
// enough to apply for a subpoena.  Some 'specific and articulable facts'
// are needed to apply for a court order.  Probable cause is necessary to
// apply for a search warrant."
enum class StandardOfProof : std::uint8_t {
  kNone = 0,
  kMereSuspicion = 1,
  kArticulableFacts = 2,  // "specific and articulable facts"
  kProbableCause = 3,
  kProbableCausePlus = 4,  // Title III necessity showing
};

// The four bodies of law the paper identifies (§II.B).
enum class Statute : std::uint8_t {
  kFourthAmendment,
  kWiretapAct,              // Title III, 18 U.S.C. §§ 2510-2522
  kStoredCommunicationsAct, // 18 U.S.C. §§ 2701-2712
  kPenTrapStatute,          // 18 U.S.C. §§ 3121-3127
};

// What kind of data the action touches.  The content / non-content line
// is the paper's central statutory distinction: "Obtaining the real
// content of a visiting website implicates Title III while obtaining the
// IP address of the website implicates Pen/Trap statute."
enum class DataKind : std::uint8_t {
  kContent,               // payload, message bodies, subjects
  kAddressing,            // headers, TO/FROM, IPs, ports, sizes
  kSubscriberRecords,     // name, address, billing (SCA basic records)
  kTransactionalRecords,  // logs, session records (SCA § 2703(d))
};

// Where the data lives when acquired.
enum class DataState : std::uint8_t {
  kInTransit,         // moving on the wire / over the air
  kStoredAtProvider,  // held by an ISP / service provider
  kOnDevice,          // on a computer or storage device
  kPublicVenue,       // posted or exposed in a public place
};

// Real-time interception vs access to data at rest.  Title III and
// Pen/Trap govern the former, the SCA the latter (§II.B).
enum class Timing : std::uint8_t {
  kRealTime,
  kStored,
};

// Who performs the acquisition.  The Fourth Amendment restrains only the
// government and its agents; private searches are outside it (§III.B.i).
enum class ActorKind : std::uint8_t {
  kLawEnforcement,
  kGovernmentAgent,  // private party acting at the government's behest
  kProviderAdmin,    // sysadmin of the network carrying the data
  kPrivateParty,
};

// Consent situations from §III.B.c.
enum class ConsentKind : std::uint8_t {
  kNone,
  kOwnerConsent,         // owner of the device/space consents
  kCoUserSharedSpace,    // co-user consents to shared space only
  kSpouseConsent,
  kParentOfMinor,
  kEmployerPrivate,      // private-sector employer over workplace systems
  kOnePartyToComm,       // one party to the communication consents
  kAllPartiesToComm,
  kVictimOfAttack,       // victim authorizes monitoring of trespasser
  kPolicyBanner,         // terms of service / network policy eliminates REP
};

// Warrant exceptions and other grounds for warrantless action (§III.B).
enum class ExceptionKind : std::uint8_t {
  kNoReasonableExpectationOfPrivacy,
  kConsent,
  kExigentCircumstances,
  kPlainView,
  kPrivateSearch,
  kComputerTrespasser,      // 18 U.S.C. § 2511(2)(i)
  kAccessibleToPublic,      // 18 U.S.C. § 2511(2)(g)(i)
  kProbationParole,
  kEmergencyPenTrap,        // 18 U.S.C. § 3125(a)
  kProviderProtection,      // provider monitoring its own system
};

// Provider classification under the SCA (§III.A.3): ECS, RCS, neither,
// or not a provider at all.  "For any other providers, the Fourth
// Amendment applies instead of the SCA."
enum class ProviderClass : std::uint8_t {
  kNotAProvider,
  kEcs,         // electronic communication service
  kRcs,         // remote computing service
  kNonPublic,   // provider not open to the public (e.g. employer server)
};

[[nodiscard]] constexpr std::string_view to_string(ProcessKind k) noexcept {
  switch (k) {
    case ProcessKind::kNone: return "none";
    case ProcessKind::kSubpoena: return "subpoena";
    case ProcessKind::kCourtOrder: return "court order";
    case ProcessKind::kSearchWarrant: return "search warrant";
    case ProcessKind::kWiretapOrder: return "wiretap (Title III) order";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(StandardOfProof s) noexcept {
  switch (s) {
    case StandardOfProof::kNone: return "none";
    case StandardOfProof::kMereSuspicion: return "mere suspicion";
    case StandardOfProof::kArticulableFacts: return "specific and articulable facts";
    case StandardOfProof::kProbableCause: return "probable cause";
    case StandardOfProof::kProbableCausePlus: return "probable cause plus necessity";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Statute s) noexcept {
  switch (s) {
    case Statute::kFourthAmendment: return "Fourth Amendment";
    case Statute::kWiretapAct: return "Wiretap Act (Title III)";
    case Statute::kStoredCommunicationsAct: return "Stored Communications Act";
    case Statute::kPenTrapStatute: return "Pen/Trap Statute";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(DataKind k) noexcept {
  switch (k) {
    case DataKind::kContent: return "content";
    case DataKind::kAddressing: return "addressing/non-content";
    case DataKind::kSubscriberRecords: return "subscriber records";
    case DataKind::kTransactionalRecords: return "transactional records";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(DataState s) noexcept {
  switch (s) {
    case DataState::kInTransit: return "in transit";
    case DataState::kStoredAtProvider: return "stored at provider";
    case DataState::kOnDevice: return "on device";
    case DataState::kPublicVenue: return "public venue";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Timing t) noexcept {
  switch (t) {
    case Timing::kRealTime: return "real-time";
    case Timing::kStored: return "stored";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ActorKind a) noexcept {
  switch (a) {
    case ActorKind::kLawEnforcement: return "law enforcement";
    case ActorKind::kGovernmentAgent: return "government agent";
    case ActorKind::kProviderAdmin: return "provider administrator";
    case ActorKind::kPrivateParty: return "private party";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ConsentKind c) noexcept {
  switch (c) {
    case ConsentKind::kNone: return "no consent";
    case ConsentKind::kOwnerConsent: return "owner consent";
    case ConsentKind::kCoUserSharedSpace: return "co-user consent (shared space)";
    case ConsentKind::kSpouseConsent: return "spouse consent";
    case ConsentKind::kParentOfMinor: return "parent-of-minor consent";
    case ConsentKind::kEmployerPrivate: return "private employer consent";
    case ConsentKind::kOnePartyToComm: return "one-party consent";
    case ConsentKind::kAllPartiesToComm: return "all-party consent";
    case ConsentKind::kVictimOfAttack: return "victim consent";
    case ConsentKind::kPolicyBanner: return "policy/banner consent";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ExceptionKind e) noexcept {
  switch (e) {
    case ExceptionKind::kNoReasonableExpectationOfPrivacy:
      return "no reasonable expectation of privacy";
    case ExceptionKind::kConsent: return "consent";
    case ExceptionKind::kExigentCircumstances: return "exigent circumstances";
    case ExceptionKind::kPlainView: return "plain view";
    case ExceptionKind::kPrivateSearch: return "private search";
    case ExceptionKind::kComputerTrespasser: return "computer trespasser (2511(2)(i))";
    case ExceptionKind::kAccessibleToPublic: return "accessible to the public (2511(2)(g)(i))";
    case ExceptionKind::kProbationParole: return "probation/parole";
    case ExceptionKind::kEmergencyPenTrap: return "emergency pen/trap (3125(a))";
    case ExceptionKind::kProviderProtection: return "provider protection";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ProviderClass p) noexcept {
  switch (p) {
    case ProviderClass::kNotAProvider: return "not a provider";
    case ProviderClass::kEcs: return "ECS provider";
    case ProviderClass::kRcs: return "RCS provider";
    case ProviderClass::kNonPublic: return "non-public provider";
  }
  return "?";
}

// The standard of proof required to obtain each process kind (§II.A).
[[nodiscard]] constexpr StandardOfProof required_standard(ProcessKind k) noexcept {
  switch (k) {
    case ProcessKind::kNone: return StandardOfProof::kNone;
    case ProcessKind::kSubpoena: return StandardOfProof::kMereSuspicion;
    case ProcessKind::kCourtOrder: return StandardOfProof::kArticulableFacts;
    case ProcessKind::kSearchWarrant: return StandardOfProof::kProbableCause;
    case ProcessKind::kWiretapOrder: return StandardOfProof::kProbableCausePlus;
  }
  return StandardOfProof::kProbableCausePlus;
}

// True if holding `held` suffices where `required` is the minimum, i.e.
// stronger process always satisfies a weaker requirement.
[[nodiscard]] constexpr bool satisfies(ProcessKind held, ProcessKind required) noexcept {
  return static_cast<std::uint8_t>(held) >= static_cast<std::uint8_t>(required);
}

[[nodiscard]] constexpr bool satisfies(StandardOfProof held,
                                       StandardOfProof required) noexcept {
  return static_cast<std::uint8_t>(held) >= static_cast<std::uint8_t>(required);
}

// The stricter of two process requirements.
[[nodiscard]] constexpr ProcessKind stricter(ProcessKind a, ProcessKind b) noexcept {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

}  // namespace lexfor::legal
