// Scenario: a structured description of a contemplated acquisition.
//
// A Scenario captures the facts the paper's doctrine turns on: who acts,
// what kind of data is touched, where it lives, whether it moves in real
// time, how exposed it is, and which special circumstances (consent,
// attack victim, arrest, prior lawful acquisition, ...) are present.
// The ComplianceEngine maps a Scenario to a Determination.

#pragma once

#include <string>

#include "legal/types.h"

namespace lexfor::legal {

struct Scenario {
  // Free-text label used in reports ("Table 1 scene 7").
  std::string name;

  // Who performs the acquisition.
  ActorKind actor = ActorKind::kLawEnforcement;
  // True when a nominally private actor is directed by the government,
  // which makes the Fourth Amendment apply to them ("acting under color
  // of law").
  bool acting_under_color_of_law = false;

  // What is acquired, where, and when.
  DataKind data = DataKind::kContent;
  DataState state = DataState::kInTransit;
  Timing timing = Timing::kRealTime;

  // Exposure facts driving the REP analysis (§II.C).
  bool knowingly_exposed_to_public = false;   // posted/broadcast publicly
  bool shared_with_third_party = false;       // handed to others / shared folder
  bool delivered_to_recipient = false;        // transmission completed
  bool inside_home = false;                   // acquisition reveals home interior
  bool via_sense_enhancing_tech = false;      // Kyllo-style device
  bool tech_in_general_public_use = false;    // Kyllo factor (i)
  bool readily_accessible_to_public = false;  // 2511(2)(g)(i): open broadcast
  bool encrypted = false;                     // configured as non-public

  // Provider facts (SCA).
  ProviderClass provider = ProviderClass::kNotAProvider;
  // For stored email: opened/retrieved messages at a non-public provider
  // fall out of the SCA entirely (§III.A.3 Alice/Bob example).
  bool message_opened_by_recipient = false;

  // Consent and special circumstances (§III.B).
  ConsentKind consent = ConsentKind::kNone;
  bool consent_revoked = false;
  // The target area is another user's password-protected space: a
  // co-user's (or spouse's) consent cannot reach it (Trulock v. Freeh).
  bool target_area_password_protected = false;
  bool is_victim_system = false;       // monitoring happens on the victim's system
  bool targets_attacker_system = false;// reaches into the attacker's own machine
  bool exigent_circumstances = false;
  bool in_plain_view = false;          // lawful vantage, incriminating nature apparent
  bool target_on_probation = false;
  bool emergency_pen_trap = false;     // § 3125(a) emergency
  bool provider_self_protection = false;  // provider monitoring its own system

  // Jurisdiction code ("US" federal baseline; state codes like "CA"
  // switch the consent regime to all-party, §III.B.c.vi).
  std::string jurisdiction = "US";

  // Device / stored-data history (Table-1 scenes 18-20).
  bool device_lawfully_in_custody = false;       // hardware lawfully held
  bool contents_previously_lawfully_acquired = false;  // data itself already lawfully obtained
  bool credentials_lawfully_obtained = false;    // username/password lawfully in hand
  bool target_arrested = false;

  // --- fluent setters so scene definitions read like the table rows ---
  Scenario& named(std::string n) { name = std::move(n); return *this; }
  Scenario& by(ActorKind a) { actor = a; return *this; }
  Scenario& under_color_of_law(bool v = true) { acting_under_color_of_law = v; return *this; }
  Scenario& acquiring(DataKind k) { data = k; return *this; }
  Scenario& located(DataState s) { state = s; return *this; }
  Scenario& when(Timing t) { timing = t; return *this; }
  Scenario& exposed_publicly(bool v = true) { knowingly_exposed_to_public = v; return *this; }
  Scenario& shared(bool v = true) { shared_with_third_party = v; return *this; }
  Scenario& delivered(bool v = true) { delivered_to_recipient = v; return *this; }
  Scenario& in_home(bool v = true) { inside_home = v; return *this; }
  Scenario& sense_enhancing(bool v = true) { via_sense_enhancing_tech = v; return *this; }
  Scenario& general_public_use(bool v = true) { tech_in_general_public_use = v; return *this; }
  Scenario& publicly_accessible(bool v = true) { readily_accessible_to_public = v; return *this; }
  Scenario& with_encryption(bool v = true) { encrypted = v; return *this; }
  Scenario& at_provider(ProviderClass p) { provider = p; return *this; }
  Scenario& opened(bool v = true) { message_opened_by_recipient = v; return *this; }
  Scenario& with_consent(ConsentKind c) { consent = c; return *this; }
  Scenario& in_jurisdiction(std::string code) { jurisdiction = std::move(code); return *this; }
  Scenario& revoked(bool v = true) { consent_revoked = v; return *this; }
  Scenario& password_protected(bool v = true) { target_area_password_protected = v; return *this; }
  Scenario& on_victim_system(bool v = true) { is_victim_system = v; return *this; }
  Scenario& reaching_attacker(bool v = true) { targets_attacker_system = v; return *this; }
  Scenario& exigent(bool v = true) { exigent_circumstances = v; return *this; }
  Scenario& plain_view(bool v = true) { in_plain_view = v; return *this; }
  Scenario& probationer(bool v = true) { target_on_probation = v; return *this; }
  Scenario& pen_trap_emergency(bool v = true) { emergency_pen_trap = v; return *this; }
  Scenario& provider_protecting(bool v = true) { provider_self_protection = v; return *this; }
  Scenario& device_in_custody(bool v = true) { device_lawfully_in_custody = v; return *this; }
  Scenario& previously_acquired(bool v = true) { contents_previously_lawfully_acquired = v; return *this; }
  Scenario& with_credentials(bool v = true) { credentials_lawfully_obtained = v; return *this; }
  Scenario& arrested(bool v = true) { target_arrested = v; return *this; }

  // True when the actor is bound by the Fourth Amendment: law
  // enforcement, or a private party acting at the government's behest.
  [[nodiscard]] bool government_actor() const noexcept {
    return actor == ActorKind::kLawEnforcement ||
           actor == ActorKind::kGovernmentAgent ||
           acting_under_color_of_law;
  }
};

}  // namespace lexfor::legal
