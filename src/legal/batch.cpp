#include "legal/batch.h"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <optional>
#include <utility>

#include "obs/obs.h"
#include "util/bytes.h"

namespace lexfor::legal {
namespace {

// Fixed-width append primitives so the serialization is identical
// across platforms and runs (no struct padding, no endianness
// surprises, no unordered iteration).  The fixed-size portion of a
// scenario is assembled on the stack and streamed straight into the
// hasher: fingerprinting runs on every engine query once the verdict
// cache is in front, so it must not allocate.
class CanonicalHasher {
 public:
  void put_u8(std::uint8_t v) { buf_[len_++] = v; }

  void put_u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_[len_++] = static_cast<std::uint8_t>((v >> shift) & 0xff);
    }
  }

  // u32 length prefix, then the bytes: "ab"+"c" and "a"+"bc" must not
  // concatenate to the same stream.
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    flush();
    hasher_.update(s);
  }

  crypto::Sha256::Digest finish() {
    flush();
    return hasher_.finish();
  }

 private:
  void flush() {
    hasher_.update(buf_, len_);
    len_ = 0;
  }

  crypto::Sha256 hasher_;
  // Large enough for the magic plus every fixed-width field between
  // two string flushes.
  std::uint8_t buf_[64];
  std::size_t len_ = 0;
};

// One field per line, in Scenario declaration order; the booleans are
// packed into one little-endian u32 bitmask, one fixed bit each.
// Every field of the struct MUST appear here: a missed field makes two
// legally distinct scenarios collide in the verdict cache.  Covered by
// the FingerprintDistinguishesEveryField test, which flips each field
// and asserts the digest moves.
ScenarioFingerprint hash_canonical(const Scenario& s) {
  CanonicalHasher out;
  for (const char c : {'l', 'e', 'x', 'f', 'o', 'r', '.', 's', 'c', 'e', 'n',
                       'a', 'r', 'i', 'o', '.', 'v'}) {
    out.put_u8(static_cast<std::uint8_t>(c));
  }
  out.put_u8(kFingerprintVersion);
  out.put_string(s.name);
  out.put_u8(static_cast<std::uint8_t>(s.actor));
  out.put_u8(static_cast<std::uint8_t>(s.data));
  out.put_u8(static_cast<std::uint8_t>(s.state));
  out.put_u8(static_cast<std::uint8_t>(s.timing));
  out.put_u8(static_cast<std::uint8_t>(s.provider));
  out.put_u8(static_cast<std::uint8_t>(s.consent));
  std::uint32_t bits = 0;
  int bit = 0;
  const auto pack = [&bits, &bit](bool v) {
    bits |= (v ? 1u : 0u) << bit++;
  };
  pack(s.acting_under_color_of_law);
  pack(s.knowingly_exposed_to_public);
  pack(s.shared_with_third_party);
  pack(s.delivered_to_recipient);
  pack(s.inside_home);
  pack(s.via_sense_enhancing_tech);
  pack(s.tech_in_general_public_use);
  pack(s.readily_accessible_to_public);
  pack(s.encrypted);
  pack(s.message_opened_by_recipient);
  pack(s.consent_revoked);
  pack(s.target_area_password_protected);
  pack(s.is_victim_system);
  pack(s.targets_attacker_system);
  pack(s.exigent_circumstances);
  pack(s.in_plain_view);
  pack(s.target_on_probation);
  pack(s.emergency_pen_trap);
  pack(s.provider_self_protection);
  pack(s.device_lawfully_in_custody);
  pack(s.contents_previously_lawfully_acquired);
  pack(s.credentials_lawfully_obtained);
  pack(s.target_arrested);
  out.put_u32(bits);
  out.put_string(s.jurisdiction);
  return out.finish();
}

}  // namespace

ScenarioFingerprint fingerprint(const Scenario& s) {
  LEXFOR_OBS_PROFILE("legal.batch.fingerprint");
  return hash_canonical(s);
}

std::string fingerprint_hex(const Scenario& s) {
  const ScenarioFingerprint digest = hash_canonical(s);
  return to_hex(digest.data(), digest.size());
}

VerdictCache& shared_verdict_cache() {
  // Leaked on purpose; see obs::metrics().
  static VerdictCache* const instance =
      new VerdictCache(BatchOptions{}.cache_capacity,
                       BatchOptions{}.cache_shards);
  return *instance;
}

BatchEvaluator::BatchEvaluator(BatchOptions options)
    : options_(options) {
  if (options_.use_shared_cache) {
    cache_ = &shared_verdict_cache();
  } else {
    owned_cache_ = std::make_unique<VerdictCache>(options_.cache_capacity,
                                                  options_.cache_shards);
    cache_ = owned_cache_.get();
  }
}

util::ThreadPool& BatchEvaluator::pool() const {
  std::call_once(pool_once_, [this] {
    // Workers pre-register their obs ring shard so the first traced
    // event inside a batch does not pay the registration mutex.
    pool_ = std::make_unique<util::ThreadPool>(
        options_.threads, [] { LEXFOR_OBS_WARM_THREAD(); });
    pool_->set_queue_observer([](std::size_t depth) {
      LEXFOR_OBS_GAUGE_SET("legal.batch.pool_queue_depth",
                           static_cast<std::int64_t>(depth));
    });
  });
  return *pool_;
}

Determination BatchEvaluator::evaluate(const Scenario& s) const {
  ScenarioFingerprint fp;
  std::optional<Determination> hit;
  {
    LEXFOR_OBS_PROFILE("legal.batch.lookup");
    fp = fingerprint(s);
    hit = cache_->get(fp);
  }
  if (hit) {
    LEXFOR_OBS_COUNTER_ADD("legal.batch.cache_hits", 1);
    return std::move(*hit);
  }
  LEXFOR_OBS_COUNTER_ADD("legal.batch.cache_misses", 1);
  const auto start = std::chrono::steady_clock::now();
  Determination d = engine_.evaluate(s);
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  LEXFOR_OBS_HISTOGRAM_RECORD("legal.batch.eval_latency_us", elapsed.count());
  cache_->put(fp, d);
  return d;
}

std::vector<Determination> BatchEvaluator::evaluate_batch(
    const std::vector<Scenario>& batch) const {
  LEXFOR_OBS_COUNTER_ADD("legal.batch.batches", 1);
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "legal", "evaluate_batch",
                  "queries=" + std::to_string(batch.size()),
                  obs::no_sim_time());
  std::vector<Determination> out(batch.size());
  if (batch.empty()) return out;

  util::ThreadPool& workers = pool();
  // Aim for a few chunks per worker so stragglers rebalance, without
  // paying queue overhead per element.
  const std::size_t grain = std::max<std::size_t>(
      1, batch.size() / (static_cast<std::size_t>(workers.size()) * 8));
  workers.parallel_for(batch.size(), grain,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           out[i] = evaluate(batch[i]);
                         }
                       });
  return out;
}

}  // namespace lexfor::legal
