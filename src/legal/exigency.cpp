#include "legal/exigency.h"

namespace lexfor::legal {

ExigencyFinding assess_exigency(const ExigencyFactors& f) {
  ExigencyFinding out;

  const bool device_volatility = f.remote_wipe_possible || f.auto_delete_timer ||
                                 f.battery_dying ||
                                 f.incoming_traffic_overwrites;

  if (f.evidence_destruction_imminent || device_volatility) {
    out.exigency_exists = true;
    out.justifies_seizure = true;
    out.rationale.emplace_back(
        "evidence may be destroyed immediately or in a very short time");
    if (f.remote_wipe_possible) {
      out.rationale.emplace_back(
          "a destroy command can be sent to the device, encrypting or "
          "overwriting its contents");
    }
    if (f.auto_delete_timer) {
      out.rationale.emplace_back(
          "the device is set to delete stored information after a period");
    }
    if (f.battery_dying) {
      out.rationale.emplace_back(
          "dying batteries would erase volatile state");
    }
    if (f.incoming_traffic_overwrites) {
      out.rationale.emplace_back(
          "incoming messages can delete or overwrite stored information");
    }
    out.citations.emplace_back("romero-garcia-1997");
    out.citations.emplace_back("young-2006");

    // Isolation defeats the search exigency: once the device is safely
    // held, a warrant can issue before examination.
    if (f.device_can_be_isolated) {
      out.justifies_search = false;
      out.rationale.emplace_back(
          "the device can be isolated and held; the exigency supports "
          "seizure only, and a warrant must issue before the search");
    } else {
      out.justifies_search = true;
    }
  }

  if (f.danger_to_public_or_police) {
    out.exigency_exists = true;
    out.justifies_search = true;
    out.justifies_seizure = true;
    out.rationale.emplace_back(
        "the police or the public are in a dangerous situation");
    out.citations.emplace_back("mincey-1978");
  }
  if (f.hot_pursuit) {
    out.exigency_exists = true;
    out.justifies_search = true;
    out.justifies_seizure = true;
    out.rationale.emplace_back("the police are in hot pursuit of a suspect");
    out.citations.emplace_back("mincey-1978");
  }
  if (f.suspect_escape_risk) {
    out.exigency_exists = true;
    out.justifies_seizure = true;
    out.rationale.emplace_back(
        "the suspect may escape before a warrant can be secured");
    out.citations.emplace_back("mincey-1978");
  }

  if (!out.exigency_exists) {
    out.rationale.emplace_back(
        "no exigent circumstance is present; ordinary process applies");
  }
  return out;
}

Scenario apply_exigency(Scenario scenario, const ExigencyFactors& factors) {
  const auto finding = assess_exigency(factors);
  scenario.exigent_circumstances = finding.justifies_search;
  return scenario;
}

}  // namespace lexfor::legal
