#include "legal/privacy.h"

namespace lexfor::legal {
namespace {

void find_no_rep(RepAnalysis& r, std::string reason,
                 std::initializer_list<const char*> cites) {
  r.has_rep = false;
  r.reasons.push_back(std::move(reason));
  for (const char* c : cites) r.citations.emplace_back(c);
}

void note_rep(RepAnalysis& r, std::string reason,
              std::initializer_list<const char*> cites) {
  r.reasons.push_back(std::move(reason));
  for (const char* c : cites) r.citations.emplace_back(c);
}

}  // namespace

RepAnalysis analyze_rep(const Scenario& s) {
  RepAnalysis r;

  // Kyllo controls first: sense-enhancing technology revealing the home
  // interior restores REP regardless of other exposure, unless the
  // technology is in general public use.
  if (s.via_sense_enhancing_tech && s.inside_home &&
      !s.tech_in_general_public_use) {
    note_rep(r,
             "sense-enhancing technology not in general public use reveals "
             "details of the home interior; REP preserved",
             {"kyllo-2001", "katz-1967"});
    r.has_rep = true;
    return r;
  }

  // Public exposure defeats REP (§II.C.2).
  if (s.knowingly_exposed_to_public || s.state == DataState::kPublicVenue) {
    find_no_rep(r,
                "information knowingly exposed to the public carries no "
                "reasonable expectation of privacy",
                {"hoffa-1966", "gines-perez-2002", "wilson-2006"});
    return r;
  }

  // Sharing with others (shared folders, P2P) defeats REP.
  if (s.shared_with_third_party) {
    find_no_rep(r,
                "material shared with third parties (shared folder / P2P) "
                "loses its expectation of privacy",
                {"king-2007", "barrows-2007", "stults-2007"});
    return r;
  }

  // Delivery terminates the sender's REP.
  if (s.delivered_to_recipient) {
    find_no_rep(r,
                "the sender's expectation of privacy terminates upon "
                "delivery to the recipient",
                {"king-1995", "meriwether-1990"});
    return r;
  }

  // Subscriber / transactional records voluntarily conveyed to the
  // provider fall under the third-party doctrine: no constitutional REP
  // (the SCA supplies statutory protection instead).
  if (s.data == DataKind::kSubscriberRecords ||
      s.data == DataKind::kTransactionalRecords) {
    find_no_rep(r,
                "records voluntarily conveyed to a service provider carry "
                "no constitutional expectation of privacy (third-party "
                "doctrine); statutory protection may still apply",
                {"smith-1979", "couch-1973", "guest-2001"});
    return r;
  }

  // Addressing information is likewise knowingly conveyed to carriers to
  // route the communication.
  if (s.data == DataKind::kAddressing) {
    find_no_rep(r,
                "addressing information is conveyed to the carrier for "
                "routing and is analogous to dialed numbers; no "
                "constitutional REP (statutes may still protect it)",
                {"smith-1979", "forrester-2008"});
    return r;
  }

  // Data already lawfully in government hands supports no further REP.
  if (s.contents_previously_lawfully_acquired) {
    find_no_rep(r,
                "analysis of data already lawfully acquired by the "
                "government is not a new search",
                {"sloane-2008"});
    return r;
  }

  // Remaining cases: content on a device, in transit, or stored at a
  // provider.  These are the closed-container heartland: REP holds.
  switch (s.state) {
    case DataState::kOnDevice:
      note_rep(r,
               "electronic storage devices are analogous to closed "
               "containers; their owner retains REP in the contents",
               {"guest-2001", "runyan-2001", "crist-2008"});
      break;
    case DataState::kInTransit:
      note_rep(r,
               "sender and receiver retain REP in content during "
               "transmission, like a sealed letter",
               {"villarreal-1992", "katz-1967"});
      break;
    case DataState::kStoredAtProvider:
      note_rep(r,
               "content stored with a provider retains the user's REP; "
               "statutory rules govern compelled disclosure",
               {"katz-1967"});
      break;
    case DataState::kPublicVenue:
      break;  // handled above
  }
  r.has_rep = true;
  return r;
}

}  // namespace lexfor::legal
