#include "legal/statutes.h"

namespace lexfor::legal {

StatuteAnalysis analyze_statutes(const Scenario& s, const RepAnalysis& rep) {
  StatuteAnalysis a;

  const bool real_time = s.timing == Timing::kRealTime;

  // Wiretap Act: real-time acquisition of CONTENT.  Interception must be
  // contemporaneous with transmission (Steve Jackson Games; Konop) —
  // access to data at rest is never a Title III interception.
  if (real_time && s.data == DataKind::kContent &&
      s.state == DataState::kInTransit) {
    a.wiretap_act = true;
    a.notes.emplace_back(
        "real-time acquisition of communication content is an interception "
        "governed by Title III");
    a.citations.emplace_back("steve-jackson-1994");
    a.citations.emplace_back("konop-2002");
  }

  // Pen/Trap statute: real-time acquisition of addressing / non-content.
  if (real_time && s.data == DataKind::kAddressing &&
      s.state == DataState::kInTransit) {
    a.pen_trap = true;
    a.notes.emplace_back(
        "real-time collection of addressing information (headers, IPs, "
        "sizes) is governed by the Pen/Trap statute");
    a.citations.emplace_back("forrester-2008");
    a.citations.emplace_back("smith-1979");
  }

  // SCA: data at rest with a covered provider (ECS or RCS).  Per the
  // paper's Alice/Bob walk-through, an opened message retained on a
  // NON-public provider's server is held by neither an ECS nor an RCS,
  // so the SCA drops out and only the Fourth Amendment governs.
  if (s.state == DataState::kStoredAtProvider) {
    switch (s.provider) {
      case ProviderClass::kEcs:
      case ProviderClass::kRcs:
        a.sca = true;
        a.notes.emplace_back(
            "data held by an ECS/RCS provider is governed by the Stored "
            "Communications Act (18 U.S.C. 2701-2712)");
        a.citations.emplace_back("kaufman-2006");
        break;
      case ProviderClass::kNonPublic:
        if (s.message_opened_by_recipient) {
          a.notes.emplace_back(
              "an opened message retained on a non-public provider is held "
              "by neither an ECS nor an RCS; the SCA does not apply");
          a.citations.emplace_back("andersen-1998");
        } else {
          // Unretrieved mail: even a non-public server provides ECS with
          // respect to messages awaiting delivery.
          a.sca = true;
          a.notes.emplace_back(
              "a message awaiting retrieval is in ECS electronic storage "
              "even on a non-public server; the SCA applies");
        }
        break;
      case ProviderClass::kNotAProvider:
        a.notes.emplace_back(
            "the custodian is not a communications provider; the SCA does "
            "not apply and the Fourth Amendment governs");
        break;
    }
  }

  // Fourth Amendment: restrains government actors wherever REP survives.
  if (s.government_actor() && rep.has_rep) {
    a.fourth_amendment = true;
    a.notes.emplace_back(
        "a government actor confronting a surviving expectation of privacy "
        "is bound by the Fourth Amendment");
    a.citations.emplace_back("katz-1967");
  }

  return a;
}

ProcessKind sca_required_process(DataKind kind) noexcept {
  switch (kind) {
    case DataKind::kSubscriberRecords:
      // Basic subscriber information: subpoena suffices (§ 2703(c)(2)).
      return ProcessKind::kSubpoena;
    case DataKind::kTransactionalRecords:
      // Other non-content records: § 2703(d) "specific and articulable
      // facts" court order.
      return ProcessKind::kCourtOrder;
    case DataKind::kAddressing:
      return ProcessKind::kCourtOrder;
    case DataKind::kContent:
      // Content: a search warrant can disclose everything (§ 2703(a)).
      return ProcessKind::kSearchWarrant;
  }
  return ProcessKind::kSearchWarrant;
}

}  // namespace lexfor::legal
