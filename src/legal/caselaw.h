// Case-law knowledge base.
//
// Determinations made by the compliance engine carry citations, exactly
// as the paper's analysis does.  Each holding is encoded as data: a
// stable id, the reporter citation, the year, a one-line statement of
// the holding, and doctrine tags used by the rule engine to attach the
// right cases to the right rationale lines.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lexfor::legal {

// Doctrine tags: which rule a case supports.
enum class Doctrine {
  kReasonableExpectationOfPrivacy,
  kPublicExposure,
  kThirdPartyDoctrine,
  kDeliveryTerminatesPrivacy,
  kClosedContainer,
  kSenseEnhancingTech,     // Kyllo
  kConsent,
  kScopeOfConsent,
  kProbableCauseIp,
  kProbableCauseAccount,
  kMembershipInsufficient,
  kStaleness,
  kExigentCircumstances,
  kPlainView,
  kPrivateSearch,
  kProbationParole,
  kWiretapIntercept,
  kScaProviderClass,
  kPenTrapNonContent,
  kHashSearchIsSearch,
  kMiningLawfulData,
  kSearchScope,
  kOffsiteImaging,
  kWorkplaceSearch,
  kP2pNoPrivacy,
  kSharedFolder,
  kExclusionaryRule,       // fruit of the poisonous tree & its limits
  kSuppressionStanding,    // who may move to suppress
  kWarrantExpiry,          // stale/expired instruments
  kAffidavitSufficiency,   // proof backing a process application
};

struct CaseLaw {
  std::string id;        // stable slug, e.g. "katz-1967"
  std::string name;      // "Katz v. United States"
  std::string citation;  // "389 U.S. 347"
  int year = 0;
  std::string holding;   // one-line holding as used by the engine
  std::vector<Doctrine> doctrines;
};

// The full knowledge base (the paper's references [7],[14]-[96], encoded).
[[nodiscard]] const std::vector<CaseLaw>& case_law_database();

// Lookup by id; nullopt if unknown.
[[nodiscard]] std::optional<CaseLaw> find_case(std::string_view id);

// All cases supporting the given doctrine.
[[nodiscard]] std::vector<CaseLaw> cases_for(Doctrine doctrine);

// Formats "Name, Citation (Year)".
[[nodiscard]] std::string format_citation(const CaseLaw& c);

}  // namespace lexfor::legal
