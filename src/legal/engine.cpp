#include "legal/engine.h"

#include <algorithm>
#include <sstream>

#include "legal/caselaw.h"
#include "obs/obs.h"

namespace lexfor::legal {
namespace {

void add_citations(std::vector<std::string>& into,
                   const std::vector<std::string>& from) {
  for (const auto& c : from) {
    if (std::find(into.begin(), into.end(), c) == into.end()) into.push_back(c);
  }
}

}  // namespace

Determination ComplianceEngine::evaluate(const Scenario& s) const {
  LEXFOR_OBS_COUNTER_ADD("legal.evaluations", 1);
  LEXFOR_OBS_PROFILE("legal.engine.evaluate");
  LEXFOR_OBS_SPAN(obs::Level::kInfo, "legal", "evaluate",
                  "scenario=" + s.name, obs::no_sim_time());
  Determination d;
  d.scenario_name = s.name;
  d.rep = analyze_rep(s);

  const StatuteAnalysis statutes = analyze_statutes(s, d.rep);
  const std::vector<ExceptionFinding> exceptions =
      applicable_exceptions(s, d.rep, statutes);

  d.governing_statutes = statutes.applicable();
  for (const auto st : d.governing_statutes) {
    LEXFOR_OBS_EVENT(obs::Level::kInfo, "legal", "statute_applies",
                     "statute=" + std::string(to_string(st)),
                     obs::no_sim_time());
  }
  for (const auto& n : statutes.notes) d.rationale.push_back(n);
  add_citations(d.citations, statutes.citations);
  add_citations(d.citations, d.rep.citations);
  for (const auto& r : d.rep.reasons) d.rationale.push_back(r);

  // Which regimes do the fired exceptions excuse?
  bool fourth_excused = false, wiretap_excused = false, pen_trap_excused = false,
       sca_excused = false;
  for (const auto& e : exceptions) {
    d.exceptions_applied.push_back(e.kind);
    LEXFOR_OBS_EVENT(obs::Level::kInfo, "legal", "exception_applied",
                     "exception=" + std::string(to_string(e.kind)),
                     obs::no_sim_time());
    d.rationale.push_back(e.rationale);
    add_citations(d.citations, e.citations);
    fourth_excused = fourth_excused || e.excuses_fourth;
    wiretap_excused = wiretap_excused || e.excuses_wiretap;
    pen_trap_excused = pen_trap_excused || e.excuses_pen_trap;
    sca_excused = sca_excused || e.excuses_sca;
  }

  // Compose the per-regime requirements into the single minimum process.
  ProcessKind required = ProcessKind::kNone;

  if (statutes.wiretap_act && !wiretap_excused) {
    required = stricter(required, ProcessKind::kWiretapOrder);
    d.rationale.emplace_back(
        "Title III requires an interception order for real-time content "
        "acquisition absent an exception");
  }
  if (statutes.pen_trap && !pen_trap_excused) {
    required = stricter(required, ProcessKind::kCourtOrder);
    d.rationale.emplace_back(
        "the Pen/Trap statute requires a court order to install a pen "
        "register or trap-and-trace device absent an exception");
  }
  if (statutes.sca && !sca_excused) {
    const ProcessKind sca_req = sca_required_process(s.data);
    required = stricter(required, sca_req);
    std::ostringstream os;
    os << "the SCA's compelled-disclosure ladder requires at least a "
       << to_string(sca_req) << " for " << to_string(s.data);
    d.rationale.push_back(os.str());
  }
  if (statutes.fourth_amendment && !fourth_excused) {
    required = stricter(required, ProcessKind::kSearchWarrant);
    d.rationale.emplace_back(
        "a Fourth Amendment search of protected material requires a "
        "warrant supported by probable cause absent an exception");
  }

  d.required_process = required;
  d.needs_process = required != ProcessKind::kNone;
  d.required_proof = required_standard(required);

  if (!d.needs_process) {
    d.rationale.emplace_back(
        "no regime imposes an unexcused process requirement; the "
        "acquisition may proceed without warrant/court order/subpoena");
  }
  // The audit-level record of the derivation: scenario -> verdict.
  LEXFOR_OBS_EVENT(obs::Level::kAudit, "legal", "verdict",
                   "scenario=" + s.name + ",verdict=" + d.verdict() +
                       ",process=" + std::string(to_string(d.required_process)),
                   obs::no_sim_time());
  return d;
}

std::string Determination::report() const {
  std::ostringstream os;
  os << "Scenario: " << scenario_name << '\n';
  os << "Verdict:  " << verdict();
  if (needs_process) {
    os << " (minimum process: " << to_string(required_process)
       << "; standard: " << to_string(required_proof) << ")";
  }
  os << '\n';
  if (!governing_statutes.empty()) {
    os << "Governing law:";
    for (const auto st : governing_statutes) os << ' ' << to_string(st) << ';';
    os << '\n';
  }
  if (!exceptions_applied.empty()) {
    os << "Exceptions:";
    for (const auto e : exceptions_applied) os << ' ' << to_string(e) << ';';
    os << '\n';
  }
  os << "Rationale:\n";
  for (const auto& r : rationale) os << "  - " << r << '\n';
  if (!citations.empty()) {
    os << "Citations:\n";
    for (const auto& id : citations) {
      if (auto c = find_case(id)) {
        os << "  * " << format_citation(*c) << '\n';
      } else {
        os << "  * " << id << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace lexfor::legal
