#include "legal/exceptions.h"

#include "legal/jurisdiction.h"

namespace lexfor::legal {
namespace {

ExceptionFinding make(ExceptionKind kind, std::string rationale,
                      std::initializer_list<const char*> cites) {
  ExceptionFinding f;
  f.kind = kind;
  f.rationale = std::move(rationale);
  for (const char* c : cites) f.citations.emplace_back(c);
  return f;
}

}  // namespace

std::vector<ExceptionFinding> applicable_exceptions(
    const Scenario& s, const RepAnalysis& rep, const StatuteAnalysis& statutes) {
  std::vector<ExceptionFinding> out;

  // Private search: the Fourth Amendment restrains the government and its
  // agents only.  A genuinely private actor's search (including a
  // provider administrating its own network) is outside it, and law
  // enforcement may receive the fruits.
  if (!s.government_actor()) {
    auto f = make(ExceptionKind::kPrivateSearch,
                  "the actor is a private party not acting under color of "
                  "law; the Fourth Amendment does not restrain the search "
                  "and law enforcement may receive its fruits",
                  {"runyan-2001", "steiger-2003"});
    f.excuses_fourth = true;
    f.excuses_sca = true;  // voluntary action by the custodian itself
    // Provider admins monitoring their own systems also fall within the
    // Wiretap Act's provider-protection exception.
    if (s.actor == ActorKind::kProviderAdmin || s.provider_self_protection) {
      f.excuses_wiretap = true;
      f.excuses_pen_trap = true;
    }
    out.push_back(f);
  }

  // Provider protection: a provider may monitor its own system to protect
  // its rights and property, and may disclose the fruits.
  if (s.provider_self_protection && s.government_actor()) {
    auto f = make(ExceptionKind::kProviderProtection,
                  "the provider monitors its own system to protect its "
                  "rights and property and voluntarily discloses the fruits",
                  {"villanueva-1998"});
    f.excuses_wiretap = true;
    f.excuses_pen_trap = true;
    f.excuses_sca = true;
    out.push_back(f);
  }

  // No surviving REP excuses the Fourth Amendment (a "search" requires a
  // privacy expectation to invade).
  if (!rep.has_rep) {
    auto f = make(ExceptionKind::kNoReasonableExpectationOfPrivacy,
                  "no reasonable expectation of privacy survives in the "
                  "information acquired; the acquisition is not a Fourth "
                  "Amendment search",
                  {});
    f.citations = rep.citations;
    f.excuses_fourth = true;
    out.push_back(f);
  }

  // Consent (§III.B.c), in its several flavours.
  if (s.consent != ConsentKind::kNone && !s.consent_revoked) {
    ExceptionFinding f;
    f.kind = ExceptionKind::kConsent;
    switch (s.consent) {
      case ConsentKind::kOwnerConsent:
        f = make(ExceptionKind::kConsent,
                 "the owner with authority over the space consents to the "
                 "search",
                 {"matlock-1974"});
        f.excuses_fourth = true;
        f.excuses_sca = true;
        break;
      case ConsentKind::kCoUserSharedSpace:
        f = make(ExceptionKind::kConsent,
                 "a co-user consents; the consent reaches shared space but "
                 "not another user's password-protected areas",
                 {"trulock-2001", "matlock-1974"});
        // Trulock: the consent stops at another user's protected space.
        f.excuses_fourth = !s.target_area_password_protected;
        break;
      case ConsentKind::kSpouseConsent:
        f = make(ExceptionKind::kConsent,
                 "either spouse may consent to a search of the couple's "
                 "shared property",
                 {"trulock-2001"});
        f.excuses_fourth = !s.target_area_password_protected;
        break;
      case ConsentKind::kParentOfMinor:
        f = make(ExceptionKind::kConsent,
                 "parents may consent to a search of a minor child's "
                 "computer",
                 {"matlock-1974"});
        f.excuses_fourth = true;
        break;
      case ConsentKind::kEmployerPrivate:
        f = make(ExceptionKind::kConsent,
                 "a private employer with authority over workplace systems "
                 "consents",
                 {"ziegler-2007"});
        f.excuses_fourth = true;
        break;
      case ConsentKind::kOnePartyToComm: {
        // One-party consent is the federal rule, but all-party states
        // reject it (§III.B.c.vi, California recording law).
        const bool one_party_suffices =
            consent_regime(s.jurisdiction) == ConsentRegime::kOneParty;
        if (one_party_suffices) {
          f = make(ExceptionKind::kConsent,
                   "one party to the communication consents to the "
                   "interception (18 U.S.C. 2511(2)(c)); the other party "
                   "assumed the risk of their interlocutor's disclosure "
                   "(misplaced-confidence doctrine)",
                   {"cassiere-1993", "hoffa-1966"});
          f.excuses_wiretap = true;
          f.excuses_pen_trap = true;
          f.excuses_fourth = true;
        } else {
          f = make(ExceptionKind::kConsent,
                   "one-party consent given, but jurisdiction '" +
                       s.jurisdiction +
                       "' requires all parties to consent; the exception "
                       "does not apply",
                   {"cassiere-1993"});
          // No regime excused.
        }
        break;
      }
      case ConsentKind::kAllPartiesToComm:
        f = make(ExceptionKind::kConsent,
                 "all parties to the communication consent to the "
                 "interception",
                 {"cassiere-1993"});
        f.excuses_wiretap = true;
        f.excuses_pen_trap = true;
        f.excuses_fourth = true;
        break;
      case ConsentKind::kVictimOfAttack:
        // Handled by the computer-trespasser exception below, but the
        // victim's consent also covers a Fourth Amendment search of the
        // victim's own machine.  It can never reach into the attacker's
        // own computer (Table-1 scene 16).
        f = make(ExceptionKind::kConsent,
                 "the system owner (attack victim) consents to monitoring "
                 "of their own system",
                 {"villanueva-1998"});
        f.excuses_fourth = !s.targets_attacker_system;
        f.excuses_sca = !s.targets_attacker_system;
        break;
      case ConsentKind::kPolicyBanner:
        f = make(ExceptionKind::kConsent,
                 "network policy / terms of service eliminate the user's "
                 "expectation of privacy and establish the operator's "
                 "common authority to consent",
                 {"young-2003", "ziegler-2007"});
        f.excuses_fourth = true;
        f.excuses_wiretap = true;
        f.excuses_pen_trap = true;
        f.excuses_sca = true;
        break;
      case ConsentKind::kNone:
        break;
    }
    out.push_back(f);
  }

  // Computer trespasser (18 U.S.C. § 2511(2)(i)): with the victim's
  // authorization, persons acting under color of law may intercept a
  // trespasser's communications ON the victim's system.  It never
  // authorizes reaching into the attacker's own machine.
  if (s.is_victim_system && s.consent == ConsentKind::kVictimOfAttack &&
      !s.targets_attacker_system) {
    auto f = make(ExceptionKind::kComputerTrespasser,
                  "the attack victim authorizes monitoring of the "
                  "trespasser's activity on the victim's own system "
                  "(18 U.S.C. 2511(2)(i))",
                  {"villanueva-1998"});
    f.excuses_wiretap = true;
    f.excuses_pen_trap = true;
    f.excuses_fourth = true;  // no REP for a trespasser on the victim's box
    out.push_back(f);
  }

  // Accessible to the public (18 U.S.C. § 2511(2)(g)(i)): communications
  // configured to be readily accessible to the general public may be
  // intercepted by anyone.
  if (s.readily_accessible_to_public) {
    auto f = make(ExceptionKind::kAccessibleToPublic,
                  "the communication is configured so as to be readily "
                  "accessible to the general public (18 U.S.C. "
                  "2511(2)(g)(i))",
                  {"charbonneau-1997"});
    f.excuses_wiretap = true;
    f.excuses_pen_trap = true;
    f.excuses_fourth = true;
    out.push_back(f);
  }

  // Exigent circumstances (§III.B.b).
  if (s.exigent_circumstances) {
    auto f = make(ExceptionKind::kExigentCircumstances,
                  "an exigency (imminent destruction of evidence, danger, "
                  "hot pursuit, or escape) justifies immediate warrantless "
                  "action",
                  {"mincey-1978", "romero-garcia-1997", "young-2006"});
    f.excuses_fourth = true;
    out.push_back(f);
  }

  // Plain view (§III.B.e).
  if (s.in_plain_view) {
    auto f = make(ExceptionKind::kPlainView,
                  "the officer observes the evidence from a lawful vantage "
                  "point and its incriminating character is immediately "
                  "apparent",
                  {"walser-2001"});
    f.excuses_fourth = true;
    out.push_back(f);
  }

  // Probation / parole (§III.B.f).
  if (s.target_on_probation) {
    auto f = make(ExceptionKind::kProbationParole,
                  "the target is on probation/parole and subject to search "
                  "on reasonable suspicion",
                  {"knights-2001"});
    f.excuses_fourth = true;
    out.push_back(f);
  }

  // Emergency pen/trap (18 U.S.C. § 3125(a)).
  if (s.emergency_pen_trap && statutes.pen_trap) {
    auto f = make(ExceptionKind::kEmergencyPenTrap,
                  "an emergency involving danger, organized crime, national "
                  "security, or an ongoing protected-computer attack "
                  "permits a pen/trap without a prior order (18 U.S.C. "
                  "3125(a)), with required approvals",
                  {});
    f.excuses_pen_trap = true;
    out.push_back(f);
  }

  // Prior lawful acquisition: analyzing data the government already holds
  // lawfully is not a new search (Table-1 scene 19).
  if (s.contents_previously_lawfully_acquired) {
    auto f = make(ExceptionKind::kNoReasonableExpectationOfPrivacy,
                  "the data was previously acquired lawfully; further "
                  "analysis (e.g. mining) of it is not a new search",
                  {"sloane-2008"});
    f.excuses_fourth = true;
    f.excuses_sca = true;
    out.push_back(f);
  }

  // Post-arrest use of lawfully obtained credentials (Table-1 scene 20).
  // The paper classifies this as needing no process; we encode it as an
  // exposure-based exception and flag the paper's own judgment.
  if (s.target_arrested && s.credentials_lawfully_obtained) {
    auto f = make(ExceptionKind::kNoReasonableExpectationOfPrivacy,
                  "credentials lawfully obtained upon arrest expose the "
                  "remote account to inspection (paper's Table-1 judgment, "
                  "scene 20)",
                  {"meriwether-1990"});
    f.excuses_fourth = true;
    f.excuses_sca = true;
    out.push_back(f);
  }

  return out;
}

}  // namespace lexfor::legal
