// Facts and standards of proof (§III.A.1 of the paper).
//
// Investigators accumulate facts; the aggregate supports a standard of
// proof (mere suspicion -> articulable facts -> probable cause), which in
// turn determines which process instruments a court will issue.  The
// scoring rules encode the paper's probable-cause scenarios: IP-address
// identification, online-account information, the membership-alone
// caveat (Coreas), and the staleness doctrine.

#pragma once

#include <string>
#include <vector>

#include "legal/types.h"

namespace lexfor::legal {

// Categories of crime the staleness doctrine distinguishes: courts have
// held child-exploitation evidence essentially never stale (collectors
// retain material), while ordinary contraband goes stale quickly.
enum class CrimeCategory {
  kChildExploitation,
  kFraud,
  kIntrusion,     // hacking / protected-computer attacks
  kDrugs,
  kGeneral,
};

enum class FactKind {
  kIpAddressLinked,       // attacker IP tied to the crime
  kSubscriberIdentified,  // ISP resolved the IP to a person/address
  kAccountLinked,         // online account tied to criminal use
  kMembershipOnly,        // bare membership in an illicit group
  kIntentEvidence,        // searches/posts showing intent or knowledge
  kContrabandObserved,    // contraband directly observed
  kDeletedFilesRecovered, // forensic recovery of deleted material
  kWitnessStatement,
  kAnonymousTip,
  kPriorConviction,
};

struct Fact {
  FactKind kind;
  double age_days = 0.0;   // how old the information is
  std::string description;
};

struct ProofAssessment {
  StandardOfProof standard = StandardOfProof::kNone;
  double score = 0.0;              // internal score that crossed the threshold
  std::vector<std::string> notes;  // which rules fired (incl. staleness)
  std::vector<std::string> citations;
};

// True if this fact is too old to count toward probable cause for this
// crime category (Zimmerman vs Irving/Paull line of cases).
[[nodiscard]] bool is_stale(const Fact& fact, CrimeCategory category) noexcept;

// Aggregates facts into the strongest supportable standard of proof.
[[nodiscard]] ProofAssessment assess_proof(const std::vector<Fact>& facts,
                                           CrimeCategory category);

[[nodiscard]] constexpr std::string_view to_string(FactKind k) noexcept {
  switch (k) {
    case FactKind::kIpAddressLinked: return "IP address linked to crime";
    case FactKind::kSubscriberIdentified: return "subscriber identified";
    case FactKind::kAccountLinked: return "account linked to criminal use";
    case FactKind::kMembershipOnly: return "bare membership";
    case FactKind::kIntentEvidence: return "evidence of intent/knowledge";
    case FactKind::kContrabandObserved: return "contraband observed";
    case FactKind::kDeletedFilesRecovered: return "deleted files recovered";
    case FactKind::kWitnessStatement: return "witness statement";
    case FactKind::kAnonymousTip: return "anonymous tip";
    case FactKind::kPriorConviction: return "prior conviction";
  }
  return "?";
}

}  // namespace lexfor::legal
