// Deterministic JSON export of engine outputs.
//
// Downstream tooling (case-management systems, review UIs) consumes
// determinations and suppression reports as data; this module renders
// them as stable, minified JSON with full string escaping.  No external
// JSON dependency: the subset needed here (objects, arrays, strings,
// numbers, booleans) is emitted directly.

#pragma once

#include <string>

#include "legal/analysis.h"
#include "legal/engine.h"
#include "legal/suppression.h"

namespace lexfor::legal {

// JSON string literal with escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(const std::string& s);

// {"scenario":...,"verdict":...,"required_process":...,"statutes":[...],
//  "exceptions":[...],"rationale":[...],"citations":[...]}
[[nodiscard]] std::string to_json(const Determination& d);

// {"suppressed":N,"admissible":N,"findings":[{"id":..,"suppressed":..,
//  "reason":..},...]}
[[nodiscard]] std::string to_json(const SuppressionReport& r);

// {"technique":...,"feasibility":...,"bottleneck":...,"steps":[...]}
[[nodiscard]] std::string to_json(const FeasibilityReport& r);

}  // namespace lexfor::legal
