#include "legal/scenario_library.h"

#include <sstream>

namespace lexfor::legal::library {

// ---------------------------------------------------------------------------
// Fourth Amendment heartland (§II.C)
// ---------------------------------------------------------------------------

Scenario thermal_imaging_of_home() {
  return Scenario{}
      .named("thermal imaging of a home (Kyllo)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)  // details of the home interior
      .when(Timing::kRealTime)
      .in_home()
      .sense_enhancing();
}

Scenario thermal_imaging_public_tech() {
  return Scenario{}
      .named("thermal imaging with tech in general public use")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kPublicVenue)
      .when(Timing::kRealTime)
      .in_home()
      .sense_enhancing()
      .general_public_use()
      .exposed_publicly();  // heat signatures observable by anyone equipped
}

Scenario curbside_garbage_pull() {
  return Scenario{}
      .named("curbside garbage pull")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kPublicVenue)
      .when(Timing::kStored)
      .exposed_publicly();
}

Scenario planted_tracker_on_vehicle() {
  // The installation trespasses on the vehicle (a constitutionally
  // protected effect); we model it as a device-state acquisition with
  // surviving REP.
  return Scenario{}
      .named("planted location tracker on a vehicle")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kRealTime);
}

Scenario repair_shop_discovery() {
  return Scenario{}
      .named("repair technician finds contraband and reports it")
      .by(ActorKind::kPrivateParty)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored);
}

Scenario plain_view_during_lawful_search() {
  return Scenario{}
      .named("incriminating file in plain view during a lawful search")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .plain_view();
}

Scenario parolee_laptop_search() {
  return Scenario{}
      .named("parole search of a parolee's laptop")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .probationer();
}

Scenario hotel_abandoned_device() {
  return Scenario{}
      .named("device abandoned in a hotel room after checkout")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .with_consent(ConsentKind::kOwnerConsent);  // manager's authority
}

Scenario p2p_shared_folder_download() {
  return Scenario{}
      .named("download from the suspect's P2P shared folder")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .shared();  // placed in a folder served to any peer (King/Stults)
}

Scenario seized_sender_email_after_delivery() {
  return Scenario{}
      .named("sender's email examined after delivery to the recipient")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .delivered();  // the sender's REP terminated on delivery
}

Scenario exigent_phone_seizure_destruction_risk() {
  return Scenario{}
      .named("phone seized amid imminent remote-wipe risk")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .exigent();
}

Scenario remining_lawfully_imaged_disk() {
  return Scenario{}
      .named("re-mining a disk image already lawfully acquired")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .previously_acquired();
}

// ---------------------------------------------------------------------------
// Wiretap Act & consent regimes (§III.B.c)
// ---------------------------------------------------------------------------

Scenario wiretap_no_consent_federal() {
  return Scenario{}
      .named("full-content interception with no party's consent")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .in_jurisdiction("US");
}

Scenario undercover_chat_recording() {
  return Scenario{}
      .named("undercover agent records the chat (federal)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .in_jurisdiction("US");
}

Scenario undercover_chat_recording_all_party_state() {
  return undercover_chat_recording()
      .named("undercover agent records the chat (all-party state)")
      .in_jurisdiction("CA");
}

Scenario recorded_call_two_party_state_md() {
  return Scenario{}
      .named("one-party-consent call recording on a Maryland wire")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .in_jurisdiction("MD");  // all-party: one consent does not suffice
}

Scenario recorded_call_all_party_consent_wa() {
  return Scenario{}
      .named("call recording with every party's consent (Washington)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kAllPartiesToComm)
      .in_jurisdiction("WA");
}

Scenario consent_revoked_mid_call() {
  return Scenario{}
      .named("interception continuing after consent was revoked")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .revoked()
      .in_jurisdiction("US");
}

Scenario public_chatroom_observation() {
  return Scenario{}
      .named("monitoring an open public chatroom")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .publicly_accessible()  // 2511(2)(g)(i)
      .exposed_publicly();
}

// ---------------------------------------------------------------------------
// Pen/Trap & FISA-adjacent postures (§II.B)
// ---------------------------------------------------------------------------

Scenario pen_register_dialed_digits() {
  return Scenario{}
      .named("pen register on dialed digits / packet headers")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .in_jurisdiction("US");
}

Scenario fisa_style_foreign_intel_tap() {
  // FISA itself is outside the paper's four statutes; the conservative
  // domestic-wire answer is the Title III super-warrant, which is how we
  // encode the posture here (documented substitution).
  return Scenario{}
      .named("foreign-intelligence tap on a domestic wire (FISA-adjacent)")
      .by(ActorKind::kGovernmentAgent)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .in_jurisdiction("US");
}

Scenario national_security_emergency_pen_trap() {
  return Scenario{}
      .named("emergency pen/trap under 18 U.S.C. 3125(a)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .pen_trap_emergency();
}

Scenario isp_tap_with_consent_federal() {
  return Scenario{}
      .named("consensual non-content tap at the suspect's ISP (federal)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .in_jurisdiction("US");
}

Scenario isp_tap_cross_border_all_party() {
  return isp_tap_with_consent_federal()
      .named("the same ISP tap across an all-party-consent border")
      .in_jurisdiction("CA");
}

// ---------------------------------------------------------------------------
// SCA ladder & MLAT chains (§III.A)
// ---------------------------------------------------------------------------

Scenario cloud_storage_subscriber_subpoena() {
  return Scenario{}
      .named("subscriber records from a cloud-storage provider")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kSubscriberRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .in_jurisdiction("US");
}

Scenario cloud_storage_content_demand() {
  return cloud_storage_subscriber_subpoena()
      .named("stored files from a cloud-storage provider")
      .acquiring(DataKind::kContent);
}

Scenario mlat_stored_content_foreign_rcs() {
  // The treaty routes the request; the substantive rung of the 2703
  // ladder is unchanged: stored content at an RCS takes a warrant-grade
  // showing at the receiving end.
  return Scenario{}
      .named("MLAT request for content held by a foreign RCS")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .in_jurisdiction("US");
}

Scenario mlat_subscriber_identity_request() {
  return Scenario{}
      .named("MLAT request for a foreign subscriber's identity")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kSubscriberRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kEcs)
      .in_jurisdiction("US");
}

Scenario mlat_transactional_log_chain() {
  return Scenario{}
      .named("MLAT chain for cross-border session logs")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kTransactionalRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .in_jurisdiction("US");
}

Scenario historical_cell_site_dump() {
  // Paper-era posture: historical cell-site location information as
  // ordinary 2703(d) transactional material (pre-Carpenter).
  return Scenario{}
      .named("historical cell-site records from the carrier")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kTransactionalRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kEcs)
      .in_jurisdiction("US");
}

Scenario unopened_mail_on_university_server() {
  return Scenario{}
      .named("unretrieved mail on a non-public university server")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kNonPublic);
}

Scenario opened_mail_on_university_server() {
  return unopened_mail_on_university_server()
      .named("opened mail retained on a non-public university server")
      .opened();
}

// ---------------------------------------------------------------------------
// Cloud multi-tenant & provider-consent splits
// ---------------------------------------------------------------------------

Scenario cloud_provider_abuse_scan_disclosure() {
  return Scenario{}
      .named("provider's own abuse scan, fruits voluntarily disclosed")
      .by(ActorKind::kProviderAdmin)
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .provider_protecting();
}

Scenario govt_directed_admin_search() {
  return Scenario{}
      .named("provider admin searching at the government's direction")
      .by(ActorKind::kProviderAdmin)
      .under_color_of_law()  // direction converts the admin to a state actor
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs);
}

Scenario cloud_tenant_shared_workspace_consent() {
  return Scenario{}
      .named("co-tenant consents to the shared workspace")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .with_consent(ConsentKind::kCoUserSharedSpace);
}

Scenario cloud_tenant_passworded_sibling_space() {
  return cloud_tenant_shared_workspace_consent()
      .named("co-tenant consent aimed at a password-protected sibling space")
      .password_protected();  // Trulock: the consent stops here
}

Scenario cloud_policy_banner_monitoring() {
  return Scenario{}
      .named("tenant monitoring authorized by the service's policy banner")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .with_consent(ConsentKind::kPolicyBanner);
}

Scenario employer_search_of_workplace_pc() {
  return Scenario{}
      .named("private employer consents to a workplace PC search")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .with_consent(ConsentKind::kEmployerPrivate);
}

// ---------------------------------------------------------------------------
// IoT & vehicle telemetry
// ---------------------------------------------------------------------------

Scenario vehicle_telematics_live_pings() {
  return Scenario{}
      .named("live telematics location pings from a connected car")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)  // non-content location/routing data
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .in_jurisdiction("US");
}

Scenario vehicle_edr_postcrash_download() {
  return Scenario{}
      .named("post-crash download of the event data recorder")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored);
}

Scenario infotainment_owner_consent_extraction() {
  return vehicle_edr_postcrash_download()
      .named("infotainment extraction with the owner's consent")
      .with_consent(ConsentKind::kOwnerConsent);
}

Scenario smart_speaker_stored_audio_demand() {
  return Scenario{}
      .named("stored smart-speaker audio demanded from the provider")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kEcs);
}

Scenario smart_meter_interval_records() {
  return Scenario{}
      .named("smart-meter interval usage records from the utility cloud")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kTransactionalRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs);
}

Scenario iot_open_broadcast_telemetry() {
  return Scenario{}
      .named("IoT telemetry broadcast in the clear")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .publicly_accessible();  // unencrypted open broadcast, 2511(2)(g)(i)
}

// ---------------------------------------------------------------------------
// Victim-side monitoring (§III.B.c / 2511(2)(i))
// ---------------------------------------------------------------------------

Scenario honeypot_on_victim_server() {
  return Scenario{}
      .named("honeypot monitoring of the intruder on the victim's server")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kVictimOfAttack)
      .on_victim_system();
}

Scenario counterhack_into_attacker_box() {
  return Scenario{}
      .named("reaching into the attacker's own machine")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .with_consent(ConsentKind::kVictimOfAttack)
      .reaching_attacker();
}

// ---------------------------------------------------------------------------
// Registry helpers
// ---------------------------------------------------------------------------

const SceneDescriptor* find_scene(std::string_view id) noexcept {
  for (const auto& d : kSceneTable) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

std::string scene_table_markdown() {
  std::ostringstream os;
  os << "| # | Scene | Verdict | Minimum process | Doctrine |\n";
  os << "|--:|-------|---------|-----------------|----------|\n";
  std::size_t n = 0;
  for (const auto& d : kSceneTable) {
    os << "| " << ++n << " | `" << d.id << "` | " << d.expected_verdict()
       << " | " << (d.expects_process() ? to_string(d.expected_process) : "—")
       << " | " << d.summary << " |\n";
  }
  return os.str();
}

}  // namespace lexfor::legal::library
