#include "legal/scenario_library.h"

namespace lexfor::legal::library {

Scenario thermal_imaging_of_home() {
  return Scenario{}
      .named("thermal imaging of a home (Kyllo)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)  // details of the home interior
      .when(Timing::kRealTime)
      .in_home()
      .sense_enhancing();
}

Scenario thermal_imaging_public_tech() {
  return Scenario{}
      .named("thermal imaging with tech in general public use")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kPublicVenue)
      .when(Timing::kRealTime)
      .in_home()
      .sense_enhancing()
      .general_public_use()
      .exposed_publicly();  // heat signatures observable by anyone equipped
}

Scenario curbside_garbage_pull() {
  return Scenario{}
      .named("curbside garbage pull")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kPublicVenue)
      .when(Timing::kStored)
      .exposed_publicly();
}

Scenario undercover_chat_recording() {
  return Scenario{}
      .named("undercover agent records the chat (federal)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .in_jurisdiction("US");
}

Scenario undercover_chat_recording_all_party_state() {
  return undercover_chat_recording()
      .named("undercover agent records the chat (all-party state)")
      .in_jurisdiction("CA");
}

Scenario planted_tracker_on_vehicle() {
  // The installation trespasses on the vehicle (a constitutionally
  // protected effect); we model it as a device-state acquisition with
  // surviving REP.
  return Scenario{}
      .named("planted location tracker on a vehicle")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kRealTime);
}

Scenario repair_shop_discovery() {
  return Scenario{}
      .named("repair technician finds contraband and reports it")
      .by(ActorKind::kPrivateParty)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored);
}

Scenario plain_view_during_lawful_search() {
  return Scenario{}
      .named("incriminating file in plain view during a lawful search")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .plain_view();
}

Scenario parolee_laptop_search() {
  return Scenario{}
      .named("parole search of a parolee's laptop")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .probationer();
}

Scenario hotel_abandoned_device() {
  return Scenario{}
      .named("device abandoned in a hotel room after checkout")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kContent)
      .located(DataState::kOnDevice)
      .when(Timing::kStored)
      .with_consent(ConsentKind::kOwnerConsent);  // manager's authority
}

Scenario cloud_storage_subscriber_subpoena() {
  return Scenario{}
      .named("subscriber records from a cloud-storage provider")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kSubscriberRecords)
      .located(DataState::kStoredAtProvider)
      .when(Timing::kStored)
      .at_provider(ProviderClass::kRcs)
      .in_jurisdiction("US");
}

Scenario cloud_storage_content_demand() {
  return cloud_storage_subscriber_subpoena()
      .named("stored files from a cloud-storage provider")
      .acquiring(DataKind::kContent);
}

Scenario isp_tap_with_consent_federal() {
  return Scenario{}
      .named("consensual non-content tap at the suspect's ISP (federal)")
      .by(ActorKind::kLawEnforcement)
      .acquiring(DataKind::kAddressing)
      .located(DataState::kInTransit)
      .when(Timing::kRealTime)
      .with_consent(ConsentKind::kOnePartyToComm)
      .in_jurisdiction("US");
}

Scenario isp_tap_cross_border_all_party() {
  return isp_tap_with_consent_federal()
      .named("the same ISP tap across an all-party-consent border")
      .in_jurisdiction("CA");
}

}  // namespace lexfor::legal::library
