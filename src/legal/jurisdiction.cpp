#include "legal/jurisdiction.h"

#include <algorithm>

namespace lexfor::legal {

const std::vector<Jurisdiction>& jurisdictions() {
  static const std::vector<Jurisdiction> kDb = {
      {"US", "Federal (Title III)", ConsentRegime::kOneParty},
      // The all-party ("two-party") consent states.
      {"CA", "California", ConsentRegime::kAllParty},
      {"CT", "Connecticut", ConsentRegime::kAllParty},
      {"FL", "Florida", ConsentRegime::kAllParty},
      {"IL", "Illinois", ConsentRegime::kAllParty},
      {"MD", "Maryland", ConsentRegime::kAllParty},
      {"MA", "Massachusetts", ConsentRegime::kAllParty},
      {"MT", "Montana", ConsentRegime::kAllParty},
      {"NH", "New Hampshire", ConsentRegime::kAllParty},
      {"PA", "Pennsylvania", ConsentRegime::kAllParty},
      {"WA", "Washington", ConsentRegime::kAllParty},
      // A sample of one-party states.
      {"NY", "New York", ConsentRegime::kOneParty},
      {"TX", "Texas", ConsentRegime::kOneParty},
      {"VA", "Virginia", ConsentRegime::kOneParty},
      {"OH", "Ohio", ConsentRegime::kOneParty},
      {"CO", "Colorado", ConsentRegime::kOneParty},
  };
  return kDb;
}

std::optional<Jurisdiction> find_jurisdiction(std::string_view code) {
  const auto& db = jurisdictions();
  const auto it = std::find_if(db.begin(), db.end(), [&](const Jurisdiction& j) {
    return j.code == code;
  });
  if (it == db.end()) return std::nullopt;
  return *it;
}

ConsentRegime consent_regime(std::string_view code) {
  const auto j = find_jurisdiction(code);
  return j ? j->regime : ConsentRegime::kOneParty;
}

}  // namespace lexfor::legal
