// Exigent-circumstances analysis (§III.B.b of the paper).
//
// Exigency is fact-bound ("the existence of exigent circumstances is
// tied to the facts of the individual case"); this module encodes the
// factors the paper enumerates — imminent destruction of evidence,
// danger to police or public, hot pursuit, escape risk — plus the
// electronic-device specifics (remote-wipe commands, auto-delete
// timers, dying batteries, incoming messages overwriting state) and
// produces a justified yes/no with the rationale a court would review.

#pragma once

#include <string>
#include <vector>

#include "legal/scenario.h"

namespace lexfor::legal {

struct ExigencyFactors {
  // The four classic grounds.
  bool evidence_destruction_imminent = false;
  bool danger_to_public_or_police = false;
  bool hot_pursuit = false;
  bool suspect_escape_risk = false;

  // Electronic-device specifics (§III.B.b's examples).
  bool remote_wipe_possible = false;     // a "destroy command" can be sent
  bool auto_delete_timer = false;        // device deletes after a period
  bool battery_dying = false;            // volatile state will be lost
  bool incoming_traffic_overwrites = false;

  // Mitigation: if agents can simply seize and hold the device while a
  // warrant issues (e.g. a Faraday bag defeats remote wipe), the
  // exigency evaporates for the SEARCH even if seizure was urgent.
  bool device_can_be_isolated = false;
};

struct ExigencyFinding {
  bool exigency_exists = false;
  // Whether it justifies a warrantless SEARCH, or only a warrantless
  // SEIZURE pending a warrant.
  bool justifies_search = false;
  bool justifies_seizure = false;
  std::vector<std::string> rationale;
  std::vector<std::string> citations;
};

[[nodiscard]] ExigencyFinding assess_exigency(const ExigencyFactors& factors);

// Convenience: applies the finding to a scenario (sets
// exigent_circumstances when a warrantless search is justified).
[[nodiscard]] Scenario apply_exigency(Scenario scenario,
                                      const ExigencyFactors& factors);

}  // namespace lexfor::legal
