// Exclusionary-rule analysis over an evidence provenance graph.
//
// The paper's central warning is that unlawfully gathered evidence "may
// be suppressed in court".  This module makes that operational: every
// piece of evidence is a node recording what process the law required
// for its acquisition versus what was actually held; derivation edges
// record which earlier items led to it.  The analyzer marks directly
// unlawful acquisitions tainted and propagates taint to derived items
// (fruit of the poisonous tree), honoring the independent-source and
// inevitable-discovery doctrines.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "legal/types.h"
#include "util/ids.h"
#include "util/status.h"

namespace lexfor::legal {

struct AcquisitionRecord {
  EvidenceId id;
  std::string description;
  // What the compliance engine said the acquisition required, and what
  // instrument the investigators actually held (kNone when none).
  ProcessKind required = ProcessKind::kNone;
  ProcessKind held = ProcessKind::kNone;
  // Good-faith exception: officers reasonably relied on a warrant later
  // found defective; the acquisition is not treated as poisonous.
  bool good_faith = false;
  // Inevitable discovery: the item would have been found lawfully anyway;
  // cleanses derived taint for this node.
  bool inevitable_discovery = false;
  // Whose reasonable expectation of privacy the acquisition invaded.
  // Standing doctrine: only THIS person can move to suppress the item;
  // against anyone else it comes in even if unlawfully obtained.  Empty
  // means "the defendant in every motion" (the common single-suspect
  // case).
  std::string aggrieved_party;
  // Items this evidence was derived from (must already be in the graph,
  // which keeps the structure a DAG by construction).
  std::vector<EvidenceId> derived_from;

  // Was this acquisition itself lawful?
  [[nodiscard]] bool directly_lawful() const noexcept {
    return satisfies(held, required) || good_faith;
  }
};

struct SuppressionFinding {
  EvidenceId id;
  bool suppressed = false;
  std::string reason;
};

struct SuppressionReport {
  std::vector<SuppressionFinding> findings;  // in insertion order
  std::size_t suppressed_count = 0;
  std::size_t admissible_count = 0;

  [[nodiscard]] bool is_suppressed(EvidenceId id) const {
    for (const auto& f : findings) {
      if (f.id == id) return f.suppressed;
    }
    return false;
  }
};

// A DAG of evidence acquisitions.  Insertion order is preserved and
// parents must exist before children, so cycles are impossible.
class ProvenanceGraph {
 public:
  // Adds a record.  Fails if the id already exists or a parent is
  // missing.
  Status add(AcquisitionRecord record);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<AcquisitionRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool contains(EvidenceId id) const {
    return index_.count(id) != 0;
  }
  [[nodiscard]] const AcquisitionRecord* find(EvidenceId id) const;

 private:
  std::vector<AcquisitionRecord> records_;
  std::unordered_map<EvidenceId, std::size_t> index_;
};

// Runs the exclusionary-rule analysis:
//  - a node is tainted if its own acquisition was unlawful (held process
//    weaker than required, absent good faith), or
//  - it has parents and EVERY parent is tainted (independent source: one
//    lawful path in keeps it admissible), unless inevitable discovery
//    applies to the node.
[[nodiscard]] SuppressionReport analyze_suppression(const ProvenanceGraph& graph);

// Standing-aware variant: the analysis as applied to a motion by
// `movant`.  An unlawful acquisition only counts as poisonous for the
// movant when it invaded the MOVANT's rights (record.aggrieved_party is
// the movant or empty); violations of third parties' rights do not give
// this defendant a suppression remedy.
[[nodiscard]] SuppressionReport analyze_suppression_for(
    const ProvenanceGraph& graph, const std::string& movant);

}  // namespace lexfor::legal
