#include "diskimage/hash_search.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "util/string_util.h"

namespace lexfor::diskimage {

Result<HashSearcher> HashSearcher::from_text(const std::string& text) {
  std::unordered_set<std::string> known;
  for (const auto& raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    if (line.size() != 64) {
      return InvalidArgument("hash set: line is not a 64-char SHA-256 hex "
                             "digest: '" + std::string(line) + "'");
    }
    std::string digest = to_lower(line);
    for (const char c : digest) {
      const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) {
        return InvalidArgument("hash set: non-hex character in digest");
      }
    }
    known.insert(std::move(digest));
  }
  return HashSearcher{std::move(known)};
}

Result<std::vector<HashHit>> HashSearcher::search(
    const DiskImage& image, const legal::GrantedAuthority& authority,
    legal::ProcessKind required, const std::string& location,
    SimTime now) const {
  // The legal gate: examining file contents is a content acquisition.
  const Status permitted =
      authority.permits(required, legal::DataKind::kContent, location, now);
  if (!permitted.ok()) return permitted;

  std::vector<HashHit> hits;
  for (const auto& f : image.files()) {
    Bytes content;
    if (!f.deleted) {
      auto r = image.read_file(f.id);
      if (!r.ok()) continue;
      content = std::move(r).value();
    } else {
      auto r = image.recover_deleted(f.id);
      if (!r.ok()) continue;  // overwritten: unrecoverable
      content = std::move(r).value();
    }
    const std::string digest = crypto::Sha256::hex(content);
    if (known_.count(digest) != 0) {
      hits.push_back(HashHit{f.id, f.path, f.deleted, digest});
    }
  }
  return hits;
}

Bytes magic_jpeg() { return Bytes{0xFF, 0xD8, 0xFF, 0xE0}; }
Bytes magic_png() { return Bytes{0x89, 0x50, 0x4E, 0x47}; }
Bytes magic_pdf() { return Bytes{0x25, 0x50, 0x44, 0x46}; }

namespace {

bool starts_with_magic(const Bytes& data, std::size_t offset,
                       const Bytes& magic) {
  if (offset + magic.size() > data.size()) return false;
  return std::equal(magic.begin(), magic.end(), data.begin() + static_cast<std::ptrdiff_t>(offset));
}

const char* magic_type(const Bytes& data, std::size_t offset) {
  if (starts_with_magic(data, offset, magic_jpeg())) return "jpeg";
  if (starts_with_magic(data, offset, magic_png())) return "png";
  if (starts_with_magic(data, offset, magic_pdf())) return "pdf";
  return nullptr;
}

}  // namespace

std::vector<CarvedObject> Carver::carve(const DiskImage& image,
                                        std::size_t max_object_bytes) const {
  std::vector<CarvedObject> out;
  const Bytes& raw = image.raw();
  const std::size_t sector = image.sector_size();

  for (std::size_t off = 0; off < raw.size(); off += sector) {
    const char* type = magic_type(raw, off);
    if (type == nullptr) continue;

    // Extend until the next sector that begins a different object or the
    // configured cap.
    std::size_t end = off + sector;
    while (end < raw.size() && end - off < max_object_bytes &&
           magic_type(raw, end) == nullptr) {
      // Stop at an all-zero sector (unwritten space).
      const bool all_zero =
          std::all_of(raw.begin() + static_cast<std::ptrdiff_t>(end),
                      raw.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(end + sector, raw.size())),
                      [](std::uint8_t b) { return b == 0; });
      if (all_zero) break;
      end += sector;
    }

    CarvedObject obj;
    obj.offset = off;
    obj.type = type;
    obj.data.assign(raw.begin() + static_cast<std::ptrdiff_t>(off),
                    raw.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(end, raw.size())));
    out.push_back(std::move(obj));
    // Continue scanning after this object.
    off = ((end + sector - 1) / sector) * sector - sector;
  }
  return out;
}

}  // namespace lexfor::diskimage
