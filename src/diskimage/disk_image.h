// Simulated disk image: file table, sector allocation, deleted files.
//
// A minimal but honest storage model for the paper's device scenes: a
// byte array of sectors, a file table mapping paths to extents, and
// deletion that only unlinks the entry — the bytes stay until the
// sectors are reused, which is exactly why forensic recovery of deleted
// files works (and why it matters for probable cause: "It is also good
// for investigators to recover the deleted files", §III.A.1.c).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/status.h"

namespace lexfor::diskimage {

struct FileEntry {
  FileId id;
  std::string path;
  std::size_t offset = 0;  // byte offset of the extent
  std::size_t size = 0;    // logical file size
  bool deleted = false;
  bool overwritten = false;  // sectors were reused after deletion
};

class DiskImage {
 public:
  // `zero_on_reuse` controls slack behaviour: real filesystems do NOT
  // scrub a reused extent beyond the new file's bytes, leaving "file
  // slack" — remnants of the previous occupant between the new EOF and
  // the end of the extent.  Pass false to model that (and use
  // slack_bytes() to examine it); the default scrubs, which keeps
  // simple workloads simple.
  explicit DiskImage(std::size_t sector_size = 512, bool zero_on_reuse = true)
      : sector_size_(sector_size), zero_on_reuse_(zero_on_reuse) {}

  // Writes a file, preferring reuse of freed extents (first fit).  Reuse
  // marks the deleted file(s) occupying those sectors as overwritten.
  FileId write_file(std::string path, Bytes content);

  // Unlinks the file.  Content remains recoverable until overwritten.
  Status delete_file(const std::string& path);

  [[nodiscard]] const std::vector<FileEntry>& files() const noexcept {
    return table_;
  }
  [[nodiscard]] const FileEntry* find(const std::string& path) const;
  [[nodiscard]] const FileEntry* find(FileId id) const;

  // Reads a live file's content.
  [[nodiscard]] Result<Bytes> read_file(FileId id) const;
  // Attempts recovery of a deleted file; fails if overwritten.
  [[nodiscard]] Result<Bytes> recover_deleted(FileId id) const;

  // The slack of a live file: bytes between its EOF and the end of its
  // sector-aligned extent.  With zero_on_reuse == false these bytes can
  // contain remnants of previously deleted files — classic forensic
  // material.
  [[nodiscard]] Result<Bytes> slack_bytes(FileId id) const;

  [[nodiscard]] const Bytes& raw() const noexcept { return disk_; }
  [[nodiscard]] std::size_t sector_size() const noexcept {
    return sector_size_;
  }
  [[nodiscard]] std::size_t live_file_count() const;
  [[nodiscard]] std::size_t deleted_file_count() const;

 private:
  struct FreeExtent {
    std::size_t offset;
    std::size_t sectors;
  };

  [[nodiscard]] std::size_t sectors_for(std::size_t bytes) const noexcept {
    return (bytes + sector_size_ - 1) / sector_size_;
  }

  std::size_t sector_size_;
  bool zero_on_reuse_;
  Bytes disk_;
  std::vector<FileEntry> table_;
  std::vector<FreeExtent> free_list_;
  IdGenerator<FileId> file_ids_;
};

}  // namespace lexfor::diskimage
