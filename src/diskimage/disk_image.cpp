#include "diskimage/disk_image.h"

#include <algorithm>

namespace lexfor::diskimage {

FileId DiskImage::write_file(std::string path, Bytes content) {
  const std::size_t need_sectors = sectors_for(std::max<std::size_t>(
      content.size(), 1));  // empty files still own one sector

  // First fit over the free list.
  std::size_t offset = disk_.size();
  bool reused = false;
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i].sectors >= need_sectors) {
      offset = free_list_[i].offset;
      // Shrink or remove the extent.
      free_list_[i].offset += need_sectors * sector_size_;
      free_list_[i].sectors -= need_sectors;
      if (free_list_[i].sectors == 0) {
        free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      reused = true;
      break;
    }
  }

  const std::size_t extent_bytes = need_sectors * sector_size_;
  if (!reused) {
    disk_.resize(disk_.size() + extent_bytes, 0);
  } else {
    // Mark any deleted file whose extent overlaps as overwritten.
    for (auto& f : table_) {
      if (!f.deleted || f.overwritten) continue;
      const std::size_t f_end = f.offset + sectors_for(f.size) * sector_size_;
      if (f.offset < offset + extent_bytes && offset < f_end) {
        f.overwritten = true;
      }
    }
    if (zero_on_reuse_) {
      // Scrub the whole extent (old slack destroyed).
      std::fill(disk_.begin() + static_cast<std::ptrdiff_t>(offset),
                disk_.begin() +
                    static_cast<std::ptrdiff_t>(offset + extent_bytes),
                0);
    }
    // Otherwise only the new content bytes overwrite; the tail of the
    // extent keeps the previous occupant's data as file slack.
  }

  std::copy(content.begin(), content.end(),
            disk_.begin() + static_cast<std::ptrdiff_t>(offset));

  FileEntry e;
  e.id = file_ids_.next();
  e.path = std::move(path);
  e.offset = offset;
  e.size = content.size();
  table_.push_back(e);
  return e.id;
}

Status DiskImage::delete_file(const std::string& path) {
  for (auto& f : table_) {
    if (f.path == path && !f.deleted) {
      f.deleted = true;
      free_list_.push_back(FreeExtent{f.offset, sectors_for(f.size)});
      return Status::Ok();
    }
  }
  return NotFound("delete_file: no live file at " + path);
}

const FileEntry* DiskImage::find(const std::string& path) const {
  // Prefer the live entry; fall back to the most recent deleted one.
  const FileEntry* deleted_match = nullptr;
  for (const auto& f : table_) {
    if (f.path != path) continue;
    if (!f.deleted) return &f;
    deleted_match = &f;
  }
  return deleted_match;
}

const FileEntry* DiskImage::find(FileId id) const {
  for (const auto& f : table_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

Result<Bytes> DiskImage::read_file(FileId id) const {
  const auto* f = find(id);
  if (f == nullptr) return NotFound("read_file: unknown file id");
  if (f->deleted) {
    return FailedPrecondition("read_file: file is deleted; use recover_deleted");
  }
  return Bytes(disk_.begin() + static_cast<std::ptrdiff_t>(f->offset),
               disk_.begin() + static_cast<std::ptrdiff_t>(f->offset + f->size));
}

Result<Bytes> DiskImage::slack_bytes(FileId id) const {
  const auto* f = find(id);
  if (f == nullptr) return NotFound("slack_bytes: unknown file id");
  if (f->deleted) {
    return FailedPrecondition("slack_bytes: file is deleted");
  }
  const std::size_t extent_end =
      f->offset + sectors_for(std::max<std::size_t>(f->size, 1)) * sector_size_;
  return Bytes(disk_.begin() + static_cast<std::ptrdiff_t>(f->offset + f->size),
               disk_.begin() + static_cast<std::ptrdiff_t>(extent_end));
}

Result<Bytes> DiskImage::recover_deleted(FileId id) const {
  const auto* f = find(id);
  if (f == nullptr) return NotFound("recover_deleted: unknown file id");
  if (!f->deleted) {
    return FailedPrecondition("recover_deleted: file is not deleted");
  }
  if (f->overwritten) {
    return FailedPrecondition(
        "recover_deleted: sectors were reused; content unrecoverable");
  }
  return Bytes(disk_.begin() + static_cast<std::ptrdiff_t>(f->offset),
               disk_.begin() + static_cast<std::ptrdiff_t>(f->offset + f->size));
}

std::size_t DiskImage::live_file_count() const {
  return static_cast<std::size_t>(
      std::count_if(table_.begin(), table_.end(),
                    [](const FileEntry& f) { return !f.deleted; }));
}

std::size_t DiskImage::deleted_file_count() const {
  return static_cast<std::size_t>(
      std::count_if(table_.begin(), table_.end(),
                    [](const FileEntry& f) { return f.deleted; }));
}

}  // namespace lexfor::diskimage
