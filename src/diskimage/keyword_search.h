// Keyword search over a disk image.
//
// The complement of the known-file hash search: find byte patterns in
// file contents — live files, recoverable deleted files, and file slack
// (remnants of previous occupants in reused extents).  Like the hash
// search, examining content is a Fourth Amendment search, so the same
// GrantedAuthority gate applies; the paper's §III.A.2.a scope point is
// honored by searching only the paths a predicate admits.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "diskimage/disk_image.h"
#include "legal/authority.h"
#include "util/sim_time.h"

namespace lexfor::diskimage {

enum class HitRegion {
  kLiveFile,
  kDeletedFile,
  kSlack,
};

struct KeywordHit {
  FileId file;
  std::string path;
  HitRegion region = HitRegion::kLiveFile;
  std::size_t offset = 0;      // offset of the match within the region
  std::string keyword;
  Bytes context;               // up to 16 bytes around the match
};

class KeywordSearcher {
 public:
  explicit KeywordSearcher(std::vector<std::string> keywords)
      : keywords_(std::move(keywords)) {}

  // `path_in_scope`: optional predicate restricting the search to paths
  // the warrant covers (nullptr = all paths).  The legal gate mirrors
  // HashSearcher.
  [[nodiscard]] Result<std::vector<KeywordHit>> search(
      const DiskImage& image, const legal::GrantedAuthority& authority,
      legal::ProcessKind required, const std::string& location, SimTime now,
      const std::function<bool(const std::string&)>& path_in_scope =
          nullptr) const;

 private:
  void scan_region(const Bytes& data, FileId file, const std::string& path,
                   HitRegion region, std::vector<KeywordHit>& out) const;

  std::vector<std::string> keywords_;
};

}  // namespace lexfor::diskimage
