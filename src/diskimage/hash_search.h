// Known-file hash search and file carving over a disk image.
//
// Scene 18 of Table 1 (United States v. Crist): running a hash over a
// lawfully *held* drive is still a Fourth Amendment search, so the
// searcher takes a GrantedAuthority and the engine-determined
// requirement and refuses to run without them.  Scene 19 (State v.
// Sloane): mining data already lawfully acquired needs nothing — callers
// pass required = kNone in that case and the gate is open.

#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "diskimage/disk_image.h"
#include "legal/authority.h"
#include "util/sim_time.h"

namespace lexfor::diskimage {

struct HashHit {
  FileId file;
  std::string path;
  bool deleted = false;
  std::string sha256_hex;
};

// Known-file search (NSRL-style hash set matching).
class HashSearcher {
 public:
  explicit HashSearcher(std::unordered_set<std::string> known_sha256_hex)
      : known_(std::move(known_sha256_hex)) {}

  // Loads an NSRL-style hash set: one lowercase/uppercase SHA-256 hex
  // digest per line; blank lines and '#' comments ignored.  Fails on the
  // first malformed digest.
  static Result<HashSearcher> from_text(const std::string& text);

  // Hashes every file on the image — live and recoverable-deleted — and
  // reports matches against the known set.  The legal gate mirrors the
  // capture module: `required` comes from the compliance engine.
  [[nodiscard]] Result<std::vector<HashHit>> search(
      const DiskImage& image, const legal::GrantedAuthority& authority,
      legal::ProcessKind required, const std::string& location,
      SimTime now) const;

  // The number of known hashes loaded.
  [[nodiscard]] std::size_t known_count() const noexcept {
    return known_.size();
  }

 private:
  std::unordered_set<std::string> known_;
};

// Content carving: scans raw sectors for known magic signatures and
// extracts candidate objects, finding material the file table no longer
// references.
struct CarvedObject {
  std::size_t offset = 0;
  std::string type;  // "jpeg", "png", "pdf"
  Bytes data;
};

class Carver {
 public:
  // Scans sector starts for magics; an object extends until the next
  // sector that begins another magic or the end of data, capped at
  // `max_object_bytes`.
  [[nodiscard]] std::vector<CarvedObject> carve(
      const DiskImage& image, std::size_t max_object_bytes = 1 << 20) const;
};

// Magic signatures used by the carver; exposed for workload generators.
[[nodiscard]] Bytes magic_jpeg();
[[nodiscard]] Bytes magic_png();
[[nodiscard]] Bytes magic_pdf();

}  // namespace lexfor::diskimage
