#include "diskimage/keyword_search.h"

#include <algorithm>

namespace lexfor::diskimage {

void KeywordSearcher::scan_region(const Bytes& data, FileId file,
                                  const std::string& path, HitRegion region,
                                  std::vector<KeywordHit>& out) const {
  for (const auto& keyword : keywords_) {
    if (keyword.empty() || keyword.size() > data.size()) continue;
    auto it = data.begin();
    while (true) {
      it = std::search(it, data.end(), keyword.begin(), keyword.end());
      if (it == data.end()) break;
      KeywordHit hit;
      hit.file = file;
      hit.path = path;
      hit.region = region;
      hit.offset = static_cast<std::size_t>(it - data.begin());
      hit.keyword = keyword;
      const std::size_t ctx_begin = hit.offset >= 8 ? hit.offset - 8 : 0;
      const std::size_t ctx_end =
          std::min(hit.offset + keyword.size() + 8, data.size());
      hit.context.assign(data.begin() + static_cast<std::ptrdiff_t>(ctx_begin),
                         data.begin() + static_cast<std::ptrdiff_t>(ctx_end));
      out.push_back(std::move(hit));
      ++it;  // continue after this match position
    }
  }
}

Result<std::vector<KeywordHit>> KeywordSearcher::search(
    const DiskImage& image, const legal::GrantedAuthority& authority,
    legal::ProcessKind required, const std::string& location, SimTime now,
    const std::function<bool(const std::string&)>& path_in_scope) const {
  const Status permitted =
      authority.permits(required, legal::DataKind::kContent, location, now);
  if (!permitted.ok()) return permitted;

  std::vector<KeywordHit> hits;
  for (const auto& f : image.files()) {
    if (path_in_scope && !path_in_scope(f.path)) continue;

    if (!f.deleted) {
      auto content = image.read_file(f.id);
      if (content.ok()) {
        scan_region(content.value(), f.id, f.path, HitRegion::kLiveFile, hits);
      }
      auto slack = image.slack_bytes(f.id);
      if (slack.ok() && !slack.value().empty()) {
        scan_region(slack.value(), f.id, f.path, HitRegion::kSlack, hits);
      }
    } else {
      auto content = image.recover_deleted(f.id);
      if (content.ok()) {
        scan_region(content.value(), f.id, f.path, HitRegion::kDeletedFile,
                    hits);
      }
    }
  }
  return hits;
}

}  // namespace lexfor::diskimage
