// ShardedLruCache: a mutex-striped LRU map for hot read-mostly caches.
//
// The cache is split into independent shards, each guarded by its own
// mutex, so concurrent lookups from a thread pool contend only when
// they hash to the same stripe.  Each shard keeps its entries in an
// intrusive recency list (std::list spliced to the front on every hit)
// and evicts from the tail once the shard's capacity is exceeded.
// Values are returned by copy: the caller gets a stable snapshot and
// the shard lock is never held across user code.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lexfor::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  // `capacity` is the total entry budget across all shards (each shard
  // receives an equal slice, at least one entry).  `shards` is rounded
  // up to at least 1.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16) {
    shards = std::max<std::size_t>(shards, 1);
    const std::size_t per_shard =
        std::max<std::size_t>((capacity + shards - 1) / shards, 1);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  // Returns a copy of the cached value and promotes the entry to
  // most-recently-used, or nullopt on a miss.
  [[nodiscard]] std::optional<Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    const std::scoped_lock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.recency.splice(shard.recency.begin(), shard.recency, it->second);
    return it->second->second;
  }

  // Inserts or refreshes an entry, evicting the shard's least-recently-
  // used entry when the shard is full.
  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    const std::scoped_lock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.recency.splice(shard.recency.begin(), shard.recency, it->second);
      return;
    }
    shard.recency.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.recency.begin());
    if (shard.index.size() > shard.capacity) {
      shard.index.erase(shard.recency.back().first);
      shard.recency.pop_back();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard->mu);
      total += shard->index.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  void clear() {
    for (auto& shard : shards_) {
      const std::scoped_lock lock(shard->mu);
      shard->index.clear();
      shard->recency.clear();
    }
  }

 private:
  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    const std::size_t capacity;
    mutable std::mutex mu;
    std::list<std::pair<Key, Value>> recency;  // front = most recent
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) {
    // Fibonacci-mix the hash so shard choice uses different bits than
    // the unordered_map's bucket choice inside the shard.
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return *shards_[(h >> 32) % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lexfor::util
