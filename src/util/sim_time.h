// Simulation time.
//
// All simulators in LexForensica run on a single logical clock measured
// in integer microseconds since simulation start.  Integer time makes
// event ordering exact and replayable; helpers convert to/from seconds
// for human-facing output.

#pragma once

#include <cstdint>
#include <ostream>

namespace lexfor {

// A point in simulated time (microseconds since t=0).
struct SimTime {
  std::int64_t us = 0;

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime from_us(std::int64_t v) noexcept {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t v) noexcept {
    return SimTime{v * 1000};
  }
  [[nodiscard]] static constexpr SimTime from_sec(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }

  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(us) * 1e-6;
  }
  [[nodiscard]] constexpr double millis() const noexcept {
    return static_cast<double>(us) * 1e-3;
  }

  friend constexpr bool operator==(SimTime a, SimTime b) noexcept {
    return a.us == b.us;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept {
    return a.us != b.us;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept {
    return a.us < b.us;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept {
    return a.us <= b.us;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept {
    return a.us > b.us;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept {
    return a.us >= b.us;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds() << "s";
  }
};

// A span of simulated time (microseconds).
struct SimDuration {
  std::int64_t us = 0;

  [[nodiscard]] static constexpr SimDuration from_us(std::int64_t v) noexcept {
    return SimDuration{v};
  }
  [[nodiscard]] static constexpr SimDuration from_ms(double v) noexcept {
    return SimDuration{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr SimDuration from_sec(double s) noexcept {
    return SimDuration{static_cast<std::int64_t>(s * 1e6)};
  }

  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(us) * 1e-6;
  }
  [[nodiscard]] constexpr double millis() const noexcept {
    return static_cast<double>(us) * 1e-3;
  }

  friend constexpr bool operator==(SimDuration a, SimDuration b) noexcept {
    return a.us == b.us;
  }
  friend constexpr bool operator<(SimDuration a, SimDuration b) noexcept {
    return a.us < b.us;
  }
  friend constexpr bool operator<=(SimDuration a, SimDuration b) noexcept {
    return a.us <= b.us;
  }
  friend constexpr bool operator>(SimDuration a, SimDuration b) noexcept {
    return a.us > b.us;
  }
};

constexpr SimTime operator+(SimTime t, SimDuration d) noexcept {
  return SimTime{t.us + d.us};
}
constexpr SimTime operator-(SimTime t, SimDuration d) noexcept {
  return SimTime{t.us - d.us};
}
constexpr SimDuration operator-(SimTime a, SimTime b) noexcept {
  return SimDuration{a.us - b.us};
}
constexpr SimDuration operator+(SimDuration a, SimDuration b) noexcept {
  return SimDuration{a.us + b.us};
}
constexpr SimDuration operator*(SimDuration d, std::int64_t k) noexcept {
  return SimDuration{d.us * k};
}

}  // namespace lexfor
