// Strongly-typed identifiers used across LexForensica.
//
// Every entity that crosses a module boundary (nodes, packets, evidence
// items, legal processes, ...) is referred to by a small value-type id
// rather than a pointer, so simulations can be serialized, replayed and
// compared deterministically.  Ids of different entity kinds are distinct
// C++ types: passing a NodeId where an EvidenceId is expected is a compile
// error, not a runtime surprise.

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace lexfor {

// A strongly-typed 64-bit identifier.  `Tag` is an empty struct used only
// to make each instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  // An invalid/unset id.  Default construction yields the invalid id so a
  // forgotten assignment is detectable.
  constexpr Id() noexcept : value_(kInvalid) {}
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr bool operator==(Id a, Id b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Id a, Id b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Id a, Id b) noexcept {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << '#' << id.value_;
  }

 private:
  static constexpr underlying_type kInvalid = ~underlying_type{0};
  underlying_type value_;
};

// Monotonic generator for ids of one kind.  Not thread-safe by design:
// simulations are single-threaded and deterministic.
template <typename IdType>
class IdGenerator {
 public:
  constexpr IdGenerator() noexcept : next_(0) {}
  constexpr explicit IdGenerator(typename IdType::underlying_type start)
      : next_(start) {}

  [[nodiscard]] IdType next() noexcept { return IdType{next_++}; }
  [[nodiscard]] typename IdType::underlying_type issued() const noexcept {
    return next_;
  }

 private:
  typename IdType::underlying_type next_;
};

// Entity kinds.  Keep all tags here so id types are discoverable.
struct NodeIdTag {};
struct LinkIdTag {};
struct PacketIdTag {};
struct FlowIdTag {};
struct PeerIdTag {};
struct CircuitIdTag {};
struct EvidenceIdTag {};
struct ProcessIdTag {};     // legal process (warrant/order/subpoena)
struct CaseIdTag {};        // investigation case
struct MessageIdTag {};     // stored-communication message
struct AccountIdTag {};     // service-provider account
struct FileIdTag {};        // disk-image file
struct DeviceIdTag {};      // capture device
struct PlanStepIdTag {};    // investigation-plan step (lint IR)

using NodeId = Id<NodeIdTag>;
using LinkId = Id<LinkIdTag>;
using PacketId = Id<PacketIdTag>;
using FlowId = Id<FlowIdTag>;
using PeerId = Id<PeerIdTag>;
using CircuitId = Id<CircuitIdTag>;
using EvidenceId = Id<EvidenceIdTag>;
using ProcessId = Id<ProcessIdTag>;
using CaseId = Id<CaseIdTag>;
using MessageId = Id<MessageIdTag>;
using AccountId = Id<AccountIdTag>;
using FileId = Id<FileIdTag>;
using DeviceId = Id<DeviceIdTag>;
using PlanStepId = Id<PlanStepIdTag>;

}  // namespace lexfor

// std::hash support so ids can key unordered containers.
namespace std {
template <typename Tag>
struct hash<lexfor::Id<Tag>> {
  size_t operator()(lexfor::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
