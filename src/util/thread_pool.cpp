#include "util/thread_pool.h"

#include <algorithm>

namespace lexfor::util {

ThreadPool::ThreadPool(unsigned threads, WorkerInit worker_init) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, worker_init] {
      if (worker_init) worker_init();
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mu_);
    queue_.push_back(std::move(task));
    if (observer_) observer_(queue_.size());
  }
  cv_.notify_one();
}

Status ThreadPool::try_submit(std::function<void()>& task,
                              std::size_t max_depth) {
  {
    const std::scoped_lock lock(mu_);
    if (queue_.size() >= max_depth) {
      return ResourceExhausted("pool queue full");
    }
    queue_.push_back(std::move(task));
    if (observer_) observer_(queue_.size());
  }
  cv_.notify_one();
  return Status::Ok();
}

std::size_t ThreadPool::queue_depth() const {
  const std::scoped_lock lock(mu_);
  return queue_.size();
}

void ThreadPool::set_queue_observer(QueueObserver observer) {
  const std::scoped_lock lock(mu_);
  observer_ = std::move(observer);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining work even when stopping so ~ThreadPool never
      // abandons a submitted task.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      if (observer_) observer_(queue_.size());
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1 || workers_.empty()) {
    body(0, n);
    return;
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(begin + grain, n);
    submit([&, begin, end] {
      body(begin, end);
      // Notify under the lock: the waiter owns done_cv/done_mu on its
      // stack, and this ordering guarantees it cannot return (and
      // destroy them) until notify_one has completed.
      const std::scoped_lock lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace lexfor::util
