#include "util/bytes.h"

#include <cassert>
#include <cstring>

namespace lexfor {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string to_hex(const Bytes& data) { return to_hex(data.data(), data.size()); }

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

void append_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t read_u16(const Bytes& in, std::size_t offset) {
  assert(offset + 2 <= in.size());
  return static_cast<std::uint16_t>(in[offset] | (in[offset + 1] << 8));
}

std::uint32_t read_u32(const Bytes& in, std::size_t offset) {
  assert(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t read_u64(const Bytes& in, std::size_t offset) {
  assert(offset + 8 <= in.size());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  return v;
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  std::uint8_t b[4];
  std::memcpy(b, p, sizeof b);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  std::uint8_t b[4];
  std::memcpy(b, p, sizeof b);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint8_t b[8];
  std::memcpy(b, p, sizeof b);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  std::uint8_t b[8];
  std::memcpy(b, p, sizeof b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  std::memcpy(p, b, sizeof b);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  std::memcpy(p, b, sizeof b);
}

}  // namespace lexfor
