// Small online/offline statistics helpers used by benches and detectors.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace lexfor {

// Welford online accumulator: mean/variance in one pass, numerically
// stable, no stored samples.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample set (copies and sorts; fine for bench-sized data).
// p in [0,100]; linear interpolation between closest ranks.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

// Pearson correlation of two equal-length series; 0 if degenerate.
// Naive reference implementation, retained as the bit-identity oracle
// for watermark::CorrelationKernel::cross_score — production scoring
// (the passive-correlation baseline) goes through the kernel.
[[nodiscard]] inline double pearson(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace lexfor
