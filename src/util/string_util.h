// Minimal string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lexfor {

// Joins `parts` with `sep` ("a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Splits on a single-character separator; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace lexfor
