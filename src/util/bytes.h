// Byte-buffer helpers: hex encoding/decoding and simple serialization.
//
// Evidence hashing, disk-image content and packet payloads are all
// `std::vector<std::uint8_t>`; this header centralizes the conversions.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lexfor {

using Bytes = std::vector<std::uint8_t>;

// Lowercase hex encoding ("deadbeef").
[[nodiscard]] std::string to_hex(const Bytes& data);
[[nodiscard]] std::string to_hex(const std::uint8_t* data, std::size_t len);

// Decodes lowercase/uppercase hex; nullopt on odd length or non-hex chars.
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

// UTF-8/ASCII string <-> bytes.
[[nodiscard]] Bytes to_bytes(std::string_view s);
[[nodiscard]] std::string to_string(const Bytes& b);

// Little-endian integer append/read, used by the deterministic
// serializers (chain-of-custody records, disk images).
void append_u16(Bytes& out, std::uint16_t v);
void append_u32(Bytes& out, std::uint32_t v);
void append_u64(Bytes& out, std::uint64_t v);
[[nodiscard]] std::uint16_t read_u16(const Bytes& in, std::size_t offset);
[[nodiscard]] std::uint32_t read_u32(const Bytes& in, std::size_t offset);
[[nodiscard]] std::uint64_t read_u64(const Bytes& in, std::size_t offset);

// Fixed-endian word loads from raw (possibly unaligned) byte buffers.
// memcpy into a local array is the sanctioned idiom: it is defined for
// any alignment (unlike casting to uint32_t*) and compiles to a single
// move on every mainstream target.  Block-cipher/digest kernels use
// these instead of open-coding the shifts.
[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t load_le64(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t load_be64(const std::uint8_t* p) noexcept;
void store_le32(std::uint8_t* p, std::uint32_t v) noexcept;
void store_be32(std::uint8_t* p, std::uint32_t v) noexcept;

}  // namespace lexfor
