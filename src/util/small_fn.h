// SmallFn: a move-only void() callable with small-buffer storage.
//
// The event queue's payload type.  std::function was the wrong tool
// there twice over: it must be copyable (so every captured state has to
// be copyable, and a careless copy deep-copies captured packet
// payloads — the exact bug ISSUE 8 fixes), and its type-erased state
// commonly lands on the heap.  SmallFn stores callables up to
// kInlineBytes directly inside the object (simulator callbacks capture
// only index handles and PODs, so they always fit), falls back to one
// heap cell for larger captures, and is move-only — a SmallFn can hold
// move-only state, and nothing can accidentally duplicate it.
//
// Dispatch is two function pointers (invoke + relocate/destroy)
// resolved at construction; no virtual tables, no RTTI.  For the
// dominant case — a trivially copyable callable stored inline — the
// relocate pointer is left null and moves degrade to a plain memcpy of
// the buffer, so a vector<Entry> regrowth in the calendar queue moves
// entries without one indirect call per element.

#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace lexfor::util {

class SmallFn {
 public:
  // Sized so a hop callback — object pointer plus a handful of 32/64-bit
  // handles — fits inline with room to spare, while an Entry in the
  // calendar queue stays one cache line.
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn>) {
      // Trivially relocatable: moves are a memcpy, destruction a no-op;
      // relocate_ stays null as the marker.
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    } else if constexpr (sizeof(Fn) <= kInlineBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* src, void* dst) noexcept {
        Fn* fn = static_cast<Fn*>(src);
        if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* src, void* dst) noexcept {
        Fn** pp = static_cast<Fn**>(src);
        if (dst != nullptr) {
          *static_cast<Fn**>(dst) = *pp;
        } else {
          delete *pp;
        }
      };
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(std::move(other)); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { destroy(); }

  void operator()() { invoke_(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

 private:
  void move_from(SmallFn&& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (relocate_ != nullptr) {
      relocate_(other.buf_, buf_);
    } else if (invoke_ != nullptr) {
      // Trivially relocatable: blit the whole buffer.  The tail beyond
      // sizeof(Fn) is indeterminate and copying it is deliberate (the
      // exact size was erased at construction); std::byte makes that
      // well-defined, so quiet GCC's -Wuninitialized here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
      std::memcpy(buf_, other.buf_, kInlineBytes);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    }
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  void destroy() noexcept {
    if (relocate_ != nullptr) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  // relocate(src, dst): move-construct src's callable into dst and
  // destroy src; with dst == nullptr, just destroy src.  Null for an
  // empty SmallFn and for trivially relocatable callables alike
  // (engaged iff invoke_ != nullptr): those move by memcpy and need no
  // cleanup.
  void (*relocate_)(void* src, void* dst) noexcept = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

}  // namespace lexfor::util
