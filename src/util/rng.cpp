#include "util/rng.h"

#include <cmath>

namespace lexfor {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro256** requires not-all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but be defensive.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  // 53 significant bits, in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(6.283185307179586 * u2);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) p = 0x1.0p-53;
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double prod = uniform01();
  std::uint64_t n = 0;
  while (prod > limit) {
    prod *= uniform01();
    ++n;
  }
  return n;
}

Rng Rng::sub_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // One SplitMix64 step decorrelates consecutive stream indices before
  // the constructor's own SplitMix64 expansion mixes the combined seed.
  std::uint64_t sm = stream;
  return Rng{seed ^ splitmix64(sm)};
}

Rng Rng::split() noexcept {
  // Derive a child seed from two parent draws; the parent advances so
  // repeated splits yield distinct children.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng{a ^ rotl(b, 32) ^ 0xd2b74407b1ce6e93ULL};
}

}  // namespace lexfor
