// ThreadPool: a small fixed-size worker pool for fan-out workloads.
//
// LexForensica's hot paths (batch compliance evaluation, future capture
// pipelines) fan independent work items across cores.  This pool keeps
// the primitive deliberately simple: N workers, one FIFO queue, blocking
// submit, and a parallel_for helper that partitions an index range into
// chunks and waits for all of them.  util sits below obs in the
// dependency order, so instead of emitting metrics itself the pool
// exposes queue_depth() and an optional observer callback that higher
// layers (legal::BatchEvaluator) wire to an obs gauge.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace lexfor::util {

class ThreadPool {
 public:
  // Called with the queue depth after every enqueue/dequeue.  Must be
  // cheap and must not call back into the pool (invoked under the queue
  // lock).
  using QueueObserver = std::function<void(std::size_t)>;

  // Runs once on each worker thread before it takes any task.  Used by
  // higher layers to prime per-thread state (e.g. registering the
  // thread's obs ring shard) outside the hot path.
  using WorkerInit = std::function<void()>;

  // threads == 0 picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0, WorkerInit worker_init = {});
  // Drains the queue: already-submitted tasks run to completion before
  // the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  // Bounded-queue submit: enqueues only while fewer than `max_depth`
  // tasks are already queued, otherwise returns kResourceExhausted and
  // leaves `task` unmoved (the caller may run it inline or shed it).
  // max_depth == 0 always refuses — a probe for "is anything queued".
  // This is how backpressure reaches the pool itself: a verdict server
  // under overload sheds at admission AND the pool refuses to buffer
  // unboundedly behind slow workers (serve::VerdictServer degrades to
  // caller-runs, so accepted work is never lost).
  [[nodiscard]] Status try_submit(std::function<void()>& task,
                                  std::size_t max_depth);

  // Splits [0, n) into chunks of at most `grain` indices, runs
  // body(begin, end) for each chunk on the pool, and blocks until every
  // chunk has finished.  Runs inline when the range fits one chunk.
  // Must not be called from inside a pool task (the caller blocks, and
  // a blocked worker could deadlock the pool).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_depth() const;

  void set_queue_observer(QueueObserver observer);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  QueueObserver observer_;
  bool stop_ = false;
  std::vector<std::thread> workers_;  // last: joins before members die
};

}  // namespace lexfor::util
